//! Watch a two-counter machine execute *as a form workflow* — the
//! Theorem 4.1 construction, live.
//!
//! The machine transfers counter 1 into counter 2. Each machine step is a
//! little dance of access-rule-guarded updates: mark every counter node,
//! raise the root marker, add/delete the one distinguished node, unmark.
//! The example prints each quiescent instance next to the reference
//! simulator's configuration.
//!
//! ```text
//! cargo run --example two_counter
//! ```

use idar::machines::library;
use idar::reductions::tcm_to_completability;
use idar::solver::{completability, CompletabilityOptions, ExploreLimits, Verdict};

fn main() {
    let machine = library::transfer_c1_to_c2(3);
    println!(
        "machine: pump c1 to 3, then move it all to c2 ({} states, {} transitions)",
        machine.states,
        machine.delta.len()
    );

    let compiled = tcm_to_completability::reduce(&machine);
    println!(
        "compiled guarded form: depth {}, {} schema edges, completion = {}\n",
        compiled.form.schema().depth(),
        compiled.form.schema().edge_count(),
        compiled.form.completion()
    );

    // Drive the micro-protocol and print each configuration as reached.
    let mut inst = compiled.form.initial().clone();
    let mut config = compiled
        .decode_config(&inst)
        .expect("initial instance is quiescent");
    let reference = machine.trace(64);
    println!(
        "{:<8}{:<16}{:<16}micro-steps",
        "step", "form decodes", "simulator"
    );
    println!(
        "{:<8}{:<16}{:<16}{}",
        0,
        config.to_string(),
        reference[0].to_string(),
        0
    );
    let mut step = 1;
    while !machine.is_accepting(config.state) {
        match compiled.step_to_next_config(&mut inst, 10_000) {
            Some((next, micro)) => {
                config = next;
                println!(
                    "{:<8}{:<16}{:<16}{}",
                    step,
                    config.to_string(),
                    reference
                        .get(step)
                        .map(|c| c.to_string())
                        .unwrap_or_default(),
                    micro
                );
                assert_eq!(Some(&config), reference.get(step), "trace divergence");
                step += 1;
            }
            None => {
                println!("form is stuck (machine has no applicable transition)");
                break;
            }
        }
    }
    println!("\nfinal instance (accepting configuration {config}):");
    println!("{}", inst.render());

    // Completability = halting, through the generic solver.
    let r = completability(
        &compiled.form,
        &CompletabilityOptions::with_limits(ExploreLimits {
            max_states: 2_000_000,
            max_state_size: 256,
            ..ExploreLimits::default()
        }),
    );
    println!(
        "completability of the compiled form: {} (machine halts)",
        r.verdict
    );
    assert_eq!(r.verdict, Verdict::Holds);

    // And a machine that never halts: the solver cannot say Holds.
    let diverging = tcm_to_completability::reduce(&library::diverge());
    let r = completability(
        &diverging.form,
        &CompletabilityOptions::with_limits(ExploreLimits {
            max_states: 10_000,
            max_state_size: 64,
            ..ExploreLimits::default()
        }),
    );
    println!(
        "completability of a diverging machine's form: {} (undecidable cell, Thm 4.1)",
        r.verdict
    );
    assert_ne!(r.verdict, Verdict::Holds);
}
