//! A tour of the paper's hardness reductions: compile SAT, QSAT and
//! reachable-deadlock instances into guarded forms, decide them with the
//! workflow solvers, and cross-check against the baseline solvers.
//!
//! ```text
//! cargo run --example reductions_tour
//! ```

use idar::deadlock::dining_philosophers;
use idar::logic::prop::{Cnf, Lit};
use idar::logic::qbf::Qbf;
use idar::logic::PropFormula;
use idar::reductions::*;
use idar::solver::semisound::{semisoundness, SemisoundnessOptions};
use idar::solver::{completability, CompletabilityOptions, Verdict};

fn main() {
    // ── Thm 5.1: SAT → completability ────────────────────────────────────
    // (x0 ∨ x1) ∧ (¬x0 ∨ x2) ∧ (¬x1 ∨ ¬x2)
    let cnf = Cnf::new(vec![
        vec![Lit::pos(0), Lit::pos(1)],
        vec![Lit::neg(0), Lit::pos(2)],
        vec![Lit::neg(1), Lit::neg(2)],
    ]);
    let dpll = idar::logic::sat_solve(&cnf);
    let form = sat_to_completability::reduce(&cnf);
    let verdict = completability(&form, &CompletabilityOptions::default());
    println!("Thm 5.1  SAT -> completability");
    println!("  cnf: {cnf}");
    println!("  DPLL: {:?}   form: {}", dpll.is_some(), verdict.verdict);
    assert_eq!(dpll.is_some(), verdict.verdict == Verdict::Holds);
    if let Some(run) = verdict.witness_run {
        let replay = form.replay(&run).unwrap();
        let a = sat_to_completability::decode_assignment(replay.last(), cnf.vars);
        println!("  decoded model satisfies the CNF: {}", cnf.eval(&a));
    }

    // ── Thm 5.6: SAT → ¬semi-soundness ──────────────────────────────────
    let form = sat_to_non_semisoundness::reduce(&cnf);
    let s = semisoundness(&form, &SemisoundnessOptions::default());
    println!("\nThm 5.6  SAT -> not-semi-soundness");
    println!(
        "  satisfiable: {}   semi-sound: {}  (must be opposites)",
        dpll.is_some(),
        s.verdict
    );
    assert_eq!(dpll.is_some(), s.verdict == Verdict::Fails);

    // ── Thm 4.6: reachable deadlock → completability ─────────────────────
    let phil = dining_philosophers(3);
    let baseline = phil.find_reachable_deadlock();
    let form = deadlock_to_completability::reduce(&phil).unwrap();
    let verdict = completability(&form, &CompletabilityOptions::default());
    println!("\nThm 4.6  reachable deadlock -> completability (3 dining philosophers)");
    println!(
        "  explicit checker: deadlock {:?} after {} configs   form: {}",
        baseline.deadlock.is_some(),
        baseline.explored,
        verdict.verdict
    );
    assert_eq!(
        baseline.deadlock.is_some(),
        verdict.verdict == Verdict::Holds
    );

    // ── Thm 5.3: QSAT_2k → ¬semi-soundness (k = 1) ───────────────────────
    let n = 1;
    let x = PropFormula::Var(Qbf::x(0, 0, n));
    let y = PropFormula::Var(Qbf::y(0, 0, n));
    let qbf = Qbf::qsat2k(1, n, x.or(y));
    let q = qsat_to_semisoundness::reduce(&qbf).unwrap();
    let s = semisoundness(&q.form, &SemisoundnessOptions::default());
    println!("\nThm 5.3  QSAT_2 -> not-semi-soundness");
    println!("  qbf: {qbf}");
    println!("  qbf true: {}   semi-sound: {}", qbf.eval(), s.verdict);
    assert_eq!(qbf.eval(), s.verdict == Verdict::Fails);

    // ── Cor 4.7: completability → semi-soundness ─────────────────────────
    let base = sat_to_completability::reduce(&cnf);
    let reduced = completability_to_semisoundness::reduce(&base).unwrap();
    let c = completability(&base, &CompletabilityOptions::default());
    let s = semisoundness(&reduced, &SemisoundnessOptions::default());
    println!("\nCor 4.7  completability -> semi-soundness (reset/build)");
    println!(
        "  G completable: {}   G' semi-sound: {}",
        c.verdict, s.verdict
    );
    assert_eq!(c.verdict, s.verdict);

    // ── Cor 4.5: QSAT → satisfiability ───────────────────────────────────
    let qbf = {
        use idar::logic::qbf::Quantifier;
        use idar::logic::Var;
        Qbf::new(
            vec![
                (Quantifier::Exists, vec![Var(0)]),
                (Quantifier::ForAll, vec![Var(1)]),
                (Quantifier::Exists, vec![Var(2)]),
            ],
            PropFormula::var(0).or(PropFormula::var(1).and(PropFormula::var(2).not())),
        )
    };
    let f = qsat_to_satisfiability::reduce(&qbf);
    let sat = idar::solver::satisfiability::satisfiable(&f, &Default::default());
    println!("\nCor 4.5  QSAT -> satisfiability");
    println!("  qbf: {qbf}");
    println!(
        "  qbf true: {}   formula satisfiable: {}",
        qbf.eval(),
        sat.is_sat()
    );
    assert_eq!(qbf.eval(), sat.is_sat());

    println!("\nAll reductions agree with their baselines.");
}
