//! Invariant checking through completability (Sec. 3.5).
//!
//! "By checking completability for φ = d[a ∧ r] we can check if at any
//! stage there can be a decision field that contains both accept and
//! reject." An invariant holds on every reachable instance iff its
//! negation is never completable; violations come back as replayable runs
//! a form designer can step through.
//!
//! ```text
//! cargo run --example invariants
//! ```

use idar::core::{leave, Formula};
use idar::solver::invariants::check_invariant;
use idar::solver::{CompletabilityOptions, ExploreLimits, Verdict};

fn main() {
    let form = leave::example_3_12();
    println!("form: the leave application (Ex. 3.12)\n");

    let opts = CompletabilityOptions::with_limits(ExploreLimits {
        multiplicity_cap: Some(2),
        ..ExploreLimits::small()
    });

    // Workflow facts a designer would want guaranteed.
    let invariants = [
        ("decisions are exclusive", "!d[a & r]"),
        ("final implies a decision field exists", "!(f & !d)"),
        ("decisions only after submission", "!(d & !s)"),
        ("submission only with an application", "!(s & !a)"),
        ("reasons only under a rejection", "!d[r[r] & a]"),
    ];
    for (what, text) in invariants {
        let inv = Formula::parse(text).unwrap();
        let r = check_invariant(&form, &inv, &opts);
        println!(
            "{:<44} {:<10} {}",
            what,
            format!("[{text}]"),
            describe(r.verdict)
        );
        assert_ne!(r.verdict, Verdict::Fails, "unexpected violation of {text}");
    }

    // And one that does NOT hold — the checker hands back the offending run.
    println!();
    let inv = Formula::parse("!a/p[b & e]").unwrap();
    let r = check_invariant(&form, &inv, &opts);
    println!(
        "{:<44} {:<10} {}",
        "periods never get both dates (absurd)",
        "[!a/p[b & e]]",
        describe(r.verdict)
    );
    let run = r.violation.expect("violating run");
    println!("violated after {} steps:", run.len());
    let replay = form.replay(&run).unwrap();
    print!("{}", replay.last().render());
}

fn describe(v: Verdict) -> &'static str {
    match v {
        Verdict::Holds => "holds on every reachable instance",
        Verdict::Fails => "VIOLATED (see run)",
        Verdict::Unknown => "no violation found within bounds",
    }
}
