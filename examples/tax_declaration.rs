//! The introduction's motivating scenario: an electronic tax declaration
//! whose parts "may only be completed by certain persons and then only
//! depending on information that has already been entered".
//!
//! A citizen files income and deduction entries, submits; an assessor
//! reviews (possibly requesting a correction round, which re-opens the
//! declaration); the office closes the case. The access rules encode the
//! whole workflow; the example then *analyses* it like the fb-wis would:
//! fragment, completability, semi-soundness, dead events.
//!
//! ```text
//! cargo run --example tax_declaration
//! ```

use idar::core::{AccessRules, Formula, GuardedForm, Instance, Schema};
use idar::solver::ExploreLimits;
use idar::workflow::analysis;
use std::sync::Arc;

fn build_form() -> GuardedForm {
    // decl(income(src, amt), ded(kind, amt), id), sub, rev(ok, fix(why)), closed
    let schema = Arc::new(
        Schema::parse("decl(income(src, amt), ded(kind, amt), id), sub, rev(ok, fix(why)), closed")
            .expect("schema parses"),
    );
    let f = |s: &str| Formula::parse(s).expect("rule parses");
    let mut rules = AccessRules::new(&schema);
    let e = |p: &str| schema.resolve(p).expect("edge exists");

    // One declaration per form; never deletable once created.
    rules.set_both(e("decl"), f("!decl"), f("false"));
    // The citizen edits while not submitted ("editable" = ¬../sub from the
    // decl node) and the case is not closed.
    rules.set_both(e("decl/id"), f("!../sub & !id"), f("!../sub"));
    rules.set_both(e("decl/income"), f("!../sub"), f("!../sub"));
    rules.set_both(
        e("decl/income/src"),
        f("!../../sub & !src"),
        f("!../../sub"),
    );
    rules.set_both(
        e("decl/income/amt"),
        f("!../../sub & !amt"),
        f("!../../sub"),
    );
    rules.set_both(e("decl/ded"), f("!../sub"), f("!../sub"));
    rules.set_both(e("decl/ded/kind"), f("!../../sub & !kind"), f("!../../sub"));
    rules.set_both(e("decl/ded/amt"), f("!../../sub & !amt"), f("!../../sub"));
    // Submission needs an identified declaration with at least one income
    // entry, every entry fully specified; retractable until review starts.
    rules.set_both(
        e("sub"),
        f("!sub & decl[id & income] & !decl/income[!src | !amt] & !decl/ded[!kind | !amt]"),
        f("!rev & !sub"),
    );
    // The assessor opens a review once submitted; the review stays.
    rules.set_both(e("rev"), f("sub & !rev"), f("false"));
    // Exactly one of approve (ok) / correction request (fix).
    rules.set_both(e("rev/ok"), f("!(ok | fix)"), f("!../closed"));
    rules.set_both(e("rev/fix"), f("!(ok | fix)"), f("!../closed & !why"));
    rules.set_both(e("rev/fix/why"), f("!why"), f("!../../closed"));
    // Closing requires an approved review; final.
    rules.set_both(e("closed"), f("rev[ok] & !closed"), f("false"));

    let initial = Instance::empty(schema.clone());
    GuardedForm::new(schema, rules, initial, f("closed"))
}

fn main() {
    let form = build_form();
    println!("Tax declaration schema:\n\n{}", form.schema().render());

    // Analyse like the fb-wis would before accepting the form definition.
    let limits = ExploreLimits {
        multiplicity_cap: Some(1),
        max_states: 60_000,
        ..ExploreLimits::small()
    };
    let report = analysis::analyse(&form, limits);
    println!("{}", analysis::report(&form, &report));

    // The workflow in action: file, submit, get a correction request,
    // re-open, fix, resubmit, approve, close.
    let sch = form.schema().clone();
    let root = idar::core::InstNodeId::ROOT;
    let mut inst = form.initial().clone();
    let apply =
        |form: &GuardedForm, inst: &mut Instance, parent: idar::core::InstNodeId, path: &str| {
            let u = idar::core::Update::Add {
                parent,
                edge: sch.resolve(path).unwrap(),
            };
            form.apply(inst, &u)
                .unwrap_or_else(|err| panic!("{path}: {err}"))
                .expect("addition")
        };

    let decl = apply(&form, &mut inst, root, "decl");
    apply(&form, &mut inst, decl, "decl/id");
    let income = apply(&form, &mut inst, decl, "decl/income");
    apply(&form, &mut inst, income, "decl/income/src");
    apply(&form, &mut inst, income, "decl/income/amt");
    apply(&form, &mut inst, root, "sub");
    let rev = apply(&form, &mut inst, root, "rev");
    let fix = apply(&form, &mut inst, rev, "rev/fix");
    apply(&form, &mut inst, fix, "rev/fix/why");
    println!("after the correction request:\n{}", inst.render());

    // The citizen cannot edit while submitted…
    let blocked = idar::core::Update::Add {
        parent: decl,
        edge: sch.resolve("decl/ded").unwrap(),
    };
    assert!(!form.is_allowed(&inst, &blocked));
    // …the fix must be withdrawn by the assessor (ok/fix exclusivity gives
    // the correction round), then submission is retracted: first delete
    // why, then fix, then sub — leaf-only deletions force this order.
    let why = inst.children_with_label(fix, "why").next().unwrap();
    form.apply(&mut inst, &idar::core::Update::Del { node: why })
        .unwrap();
    form.apply(&mut inst, &idar::core::Update::Del { node: fix })
        .unwrap();
    let sub = inst.children_with_label(root, "sub").next().unwrap();
    form.apply(&mut inst, &idar::core::Update::Del { node: sub })
        .unwrap();
    // Now the citizen can add the deduction, resubmit; assessor approves.
    let ded = apply(&form, &mut inst, decl, "decl/ded");
    apply(&form, &mut inst, ded, "decl/ded/kind");
    apply(&form, &mut inst, ded, "decl/ded/amt");
    apply(&form, &mut inst, root, "sub");
    apply(&form, &mut inst, rev, "rev/ok");
    apply(&form, &mut inst, root, "closed");
    assert!(form.is_complete(&inst));
    println!("closed declaration:\n{}", inst.render());
}
