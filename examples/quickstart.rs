//! Quickstart: the paper's running example, end to end.
//!
//! Builds the leave-application guarded form (Fig. 1 + Ex. 3.12), walks a
//! complete run, and checks the Sec. 3.5 correctness properties with the
//! fragment-dispatched solvers.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use idar::core::{fragment, leave};
use idar::solver::semisound::{semisoundness, SemisoundnessOptions};
use idar::solver::{completability, CompletabilityOptions, ExploreLimits, Verdict};

fn main() {
    // ── The schema (Figure 1) ────────────────────────────────────────────
    let form = leave::example_3_12();
    println!("The leave application schema (Figure 1):\n");
    println!("{}", form.schema().render());
    println!("fragment: {}\n", fragment::classify(&form));

    // ── A user fills in the form (a run, Def. 3.11) ─────────────────────
    let run = leave::complete_run(&form);
    let replay = form.replay(&run).expect("the witness run is valid");
    println!("A complete run ({} updates):", run.len());
    for (i, u) in run.iter().enumerate() {
        let edge_path = match u {
            idar::core::Update::Add { edge, .. } => form.schema().path_of(*edge),
            idar::core::Update::Del { node } => form
                .schema()
                .path_of(replay.instances[i].schema_node(*node)),
        };
        println!("  step {:>2}: {} {}", i + 1, kind(u), edge_path);
    }
    println!("\nThe final instance:");
    println!("{}", replay.last().render());
    assert!(form.is_complete(replay.last()));

    // ── Completability (Def. 3.13) ───────────────────────────────────────
    let r = completability(&form, &CompletabilityOptions::default());
    println!("completability: {} (method: {})", r.verdict, r.method);
    assert_eq!(r.verdict, Verdict::Holds);

    // ── Semi-soundness of the broken variant (Sec. 3.5) ─────────────────
    let variant = leave::section_3_5_variant();
    let opts = SemisoundnessOptions {
        limits: ExploreLimits {
            multiplicity_cap: Some(1),
            max_states: 50_000,
            ..ExploreLimits::small()
        },
        ..Default::default()
    };
    let s = semisoundness(&variant, &opts);
    println!("Sec 3.5 variant semi-soundness: {}", s.verdict);
    assert_eq!(s.verdict, Verdict::Fails);
    if let Some(cex) = s.counterexample {
        println!(
            "  point of no return after {} steps — final marked before any decision:",
            cex.len()
        );
        let stuck = variant.replay(&cex).unwrap();
        println!("{}", stuck.last().render());
    }
}

fn kind(u: &idar::core::Update) -> &'static str {
    match u {
        idar::core::Update::Add { .. } => "add",
        idar::core::Update::Del { .. } => "del",
    }
}
