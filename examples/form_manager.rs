//! The fb-wis front desk: an online form manager that vets every update
//! with a completability oracle (Sec. 3.5) and rejects the ones that would
//! strand the workflow.
//!
//! Uses the broken Sec. 3.5 variant of the leave application — the form
//! is *not* semi-sound, so a naive server would let users paint
//! themselves into a corner; the manager does not.
//!
//! ```text
//! cargo run --example form_manager
//! ```

use idar::core::{leave, InstNodeId, Update};
use idar::solver::{CompletabilityOptions, ExploreLimits};
use idar::workflow::manager::{FormManager, Rejection, UnknownPolicy};

fn main() {
    let form = leave::section_3_5_variant();
    let schema = form.schema().clone();
    println!("form: leave application, Sec 3.5 variant (completable, NOT semi-sound)");

    let oracle = CompletabilityOptions::with_limits(ExploreLimits {
        multiplicity_cap: Some(1),
        max_states: 20_000,
        ..ExploreLimits::small()
    });
    let mut mgr = FormManager::new(form, oracle, UnknownPolicy::Accept);

    let e = |p: &str| schema.resolve(p).expect("edge");
    let root = InstNodeId::ROOT;
    // The citizen fills in the form.
    let steps: Vec<(&str, Update)> = vec![
        (
            "create application",
            Update::Add {
                parent: root,
                edge: e("a"),
            },
        ),
        (
            "enter name",
            Update::Add {
                parent: InstNodeId(1),
                edge: e("a/n"),
            },
        ),
        (
            "enter department",
            Update::Add {
                parent: InstNodeId(1),
                edge: e("a/d"),
            },
        ),
        (
            "add a period",
            Update::Add {
                parent: InstNodeId(1),
                edge: e("a/p"),
            },
        ),
        (
            "period begin date",
            Update::Add {
                parent: InstNodeId(4),
                edge: e("a/p/b"),
            },
        ),
        (
            "period end date",
            Update::Add {
                parent: InstNodeId(4),
                edge: e("a/p/e"),
            },
        ),
        (
            "submit",
            Update::Add {
                parent: root,
                edge: e("s"),
            },
        ),
        (
            "open decision",
            Update::Add {
                parent: root,
                edge: e("d"),
            },
        ),
    ];
    for (what, u) in steps {
        mgr.submit(u).expect(what);
        println!("accepted: {what}");
    }

    // The manager's menu at this point:
    println!(
        "\nsafe updates now: {} of {} allowed by raw rules",
        mgr.safe_updates().len(),
        {
            // (raw count for comparison)
            let form = leave::section_3_5_variant();
            let replayed = form.replay(mgr.history()).unwrap();
            form.allowed_updates(replayed.last()).len()
        }
    );

    // The manager rejects the premature `final` that the raw rules allow.
    let premature = Update::Add {
        parent: root,
        edge: e("f"),
    };
    match mgr.submit(premature) {
        Err(Rejection::WouldStrand) => {
            println!("rejected: marking final before a decision (would strand the form)")
        }
        other => panic!("expected WouldStrand, got {other:?}"),
    }

    // Decide, then finalise — both sail through.
    mgr.submit(Update::Add {
        parent: InstNodeId(8),
        edge: e("d/a"),
    })
    .expect("approve");
    println!("accepted: approve");
    mgr.submit(Update::Add {
        parent: root,
        edge: e("f"),
    })
    .expect("final");
    println!("accepted: final");

    assert!(mgr.is_complete());
    println!(
        "\nform completed in {} accepted updates; final instance:\n{}",
        mgr.history().len(),
        mgr.current().render()
    );
}
