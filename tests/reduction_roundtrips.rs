//! Randomised round-trip tests for every reduction, at sizes above the
//! per-crate unit tests: compile a problem instance, decide the resulting
//! guarded form, compare with the baseline solver.

use idar::logic::gen::{random_3cnf, random_qsat2k, Rng, XorShift};
use idar::reductions::*;
use idar::solver::semisound::{semisoundness, SemisoundnessOptions};
use idar::solver::{completability, CompletabilityOptions, Verdict};

fn verdict(b: bool) -> Verdict {
    if b {
        Verdict::Holds
    } else {
        Verdict::Fails
    }
}

#[test]
fn thm_5_1_sat_to_completability() {
    let mut sat_count = 0;
    for seed in 0..30u64 {
        let cnf = random_3cnf(seed * 13 + 1, 6, 14 + (seed as usize % 12));
        let expected = idar::logic::sat_solve(&cnf).is_some();
        sat_count += expected as usize;
        let g = sat_to_completability::reduce(&cnf);
        let r = completability(&g, &CompletabilityOptions::default());
        assert_eq!(r.verdict, verdict(expected), "seed {seed}");
    }
    assert!(sat_count > 0 && sat_count < 30, "family should be mixed");
}

#[test]
fn thm_5_6_sat_to_semisoundness() {
    for seed in 0..20u64 {
        let cnf = random_3cnf(seed * 7 + 3, 5, 10 + (seed as usize % 12));
        let expected_semisound = idar::logic::sat_solve(&cnf).is_none();
        let g = sat_to_non_semisoundness::reduce(&cnf);
        let r = semisoundness(&g, &SemisoundnessOptions::default());
        assert_eq!(r.verdict, verdict(expected_semisound), "seed {seed}");
    }
}

#[test]
fn thm_5_3_qsat_to_semisoundness_k1() {
    for seed in 0..15u64 {
        let qbf = random_qsat2k(seed, 1, 2, 8);
        let q = qsat_to_semisoundness::reduce(&qbf).unwrap();
        let r = semisoundness(&q.form, &SemisoundnessOptions::default());
        assert_eq!(r.verdict, verdict(!qbf.eval()), "seed {seed}");
    }
}

#[test]
fn thm_5_3_qsat_k2_witness_protocol() {
    for seed in 0..12u64 {
        let qbf = random_qsat2k(seed * 3 + 2, 2, 1, 6);
        let q = qsat_to_semisoundness::reduce(&qbf).unwrap();
        match qsat_to_semisoundness::strategy_witness(&q, &qbf) {
            Some(w) => {
                assert!(qbf.eval(), "witness only for true QBFs");
                let run = qsat_to_semisoundness::run_to(&q, &w);
                let replay = q.form.replay(&run).unwrap();
                assert!(!qsat_to_semisoundness::ucfree_completable(
                    &q,
                    replay.last()
                ));
            }
            None => assert!(!qbf.eval(), "true QBFs must yield a witness"),
        }
    }
}

#[test]
fn thm_4_6_deadlock_roundtrip_philosophers() {
    for n in 2..=4 {
        let inst = idar::deadlock::dining_philosophers(n);
        let baseline = inst.find_reachable_deadlock().deadlock.is_some();
        let g = deadlock_to_completability::reduce(&inst).unwrap();
        let r = completability(&g, &CompletabilityOptions::default());
        assert_eq!(r.verdict, verdict(baseline), "philosophers {n}");
    }
}

#[test]
fn cor_4_7_roundtrip_on_sat_forms() {
    for seed in 0..10u64 {
        let cnf = random_3cnf(seed + 500, 4, 9);
        let base = sat_to_completability::reduce(&cnf);
        let c = completability(&base, &CompletabilityOptions::default()).verdict;
        let g2 = completability_to_semisoundness::reduce(&base).unwrap();
        let s = semisoundness(&g2, &SemisoundnessOptions::default()).verdict;
        assert_eq!(c, s, "seed {seed}: Cor 4.7 equivalence");
    }
}

#[test]
fn sec_4_2_positive_completion_preserves_both_properties() {
    for seed in 0..8u64 {
        let cnf = random_3cnf(seed + 900, 4, 8);
        let base = sat_to_completability::reduce(&cnf);
        let g2 = positive_completion::reduce(&base).unwrap();
        let before_c = completability(&base, &CompletabilityOptions::default()).verdict;
        let after_c = completability(&g2, &CompletabilityOptions::default()).verdict;
        assert_eq!(before_c, after_c, "seed {seed} completability");
        let before_s = semisoundness(&base, &SemisoundnessOptions::default()).verdict;
        let after_s = semisoundness(&g2, &SemisoundnessOptions::default()).verdict;
        assert_eq!(before_s, after_s, "seed {seed} semisoundness");
    }
}

#[test]
fn cor_4_2_deletion_elimination_on_random_depth1_forms() {
    // Random small depth-1 forms with ¬-guarded additions (finite spaces)
    // and genuine deletions; verdicts must survive the transformation.
    use idar::core::{AccessRules, Formula, GuardedForm, Instance, Right, Schema};
    use std::sync::Arc;
    let labels = ["a", "b", "c"];
    let mut rng = XorShift::new(4242);
    let mut decided = 0;
    for round in 0..12 {
        let schema = Arc::new(Schema::parse("a, b, c").unwrap());
        let mut rules = AccessRules::new(&schema);
        for l in labels {
            let e = schema.resolve(l).unwrap();
            // Addition guarded by ¬l and possibly another label's presence.
            let other = labels[rng.below(3)];
            let add = if rng.bool() {
                Formula::parse(&format!("!{l}")).unwrap()
            } else {
                Formula::parse(&format!("!{l} & {other}")).unwrap()
            };
            rules.set(Right::Add, e, add);
            // Deletion guarded by a random label or never.
            if rng.bool() {
                let trigger = labels[rng.below(3)];
                rules.set(Right::Del, e, Formula::label(trigger));
            }
        }
        let mut init = Instance::empty(schema.clone());
        if rng.bool() {
            init.add_child_by_label(idar::core::InstNodeId::ROOT, "a")
                .unwrap();
        }
        let completion = match rng.below(3) {
            0 => Formula::parse("a & !b").unwrap(),
            1 => Formula::parse("b & c & !a").unwrap(),
            _ => Formula::parse("!a & !b & c").unwrap(),
        };
        let g = GuardedForm::new(schema, rules, init, completion);
        let before = completability(&g, &CompletabilityOptions::default()).verdict;
        let g2 = deletion_elimination::reduce(&g).unwrap();
        let after = completability(&g2, &CompletabilityOptions::default()).verdict;
        // The transformed form lives in A− depth 2: bounded exploration.
        // Its space is finite here (all adds ¬-guarded), so verdicts must
        // agree whenever the explorer closes.
        if after != Verdict::Unknown {
            assert_eq!(before, after, "round {round}");
            decided += 1;
        }
    }
    assert!(decided >= 8, "most rounds should close ({decided}/12)");
}

#[test]
fn dimacs_through_the_reduction_pipeline() {
    // A standard-format instance flows through parse → Thm 5.1 → solver,
    // and through Thm 5.6 → semi-soundness, agreeing with DPLL on both.
    let text = "c pigeonhole-ish\np cnf 4 6\n1 2 0\n3 4 0\n-1 -3 0\n-1 -4 0\n-2 -3 0\n-2 -4 0\n";
    let cnf = idar::logic::dimacs::parse(text).unwrap();
    let sat = idar::logic::sat_solve(&cnf).is_some();
    assert!(!sat, "PHP(2,2)-style instance is UNSAT");

    let g = sat_to_completability::reduce(&cnf);
    let c = completability(&g, &CompletabilityOptions::default());
    assert_eq!(c.verdict, verdict(sat));

    let g = sat_to_non_semisoundness::reduce(&cnf);
    let s = semisoundness(&g, &SemisoundnessOptions::default());
    assert_eq!(s.verdict, verdict(!sat));

    // Round-trip the serialisation too.
    let back = idar::logic::dimacs::parse(&idar::logic::dimacs::render(&cnf)).unwrap();
    assert_eq!(cnf, back);
}

#[test]
fn thm_4_1_machine_suite_roundtrip() {
    use idar::machines::library;
    // Halting and non-halting machines; verdicts must track halting
    // (bounded verdicts may be Unknown for non-halting, never Holds).
    let suite: Vec<(idar::machines::TwoCounterMachine, bool)> = vec![
        (library::count_up_then_accept(1), true),
        (library::transfer_c1_to_c2(1), true),
        (library::accept_iff_even(2), true),
        (library::accept_iff_even(1), false),
        (library::ping_pong(), false),
    ];
    for (machine, halts) in suite {
        let compiled = tcm_to_completability::reduce(&machine);
        let limits = idar::solver::ExploreLimits {
            max_states: if halts { 500_000 } else { 15_000 },
            max_state_size: 128,
            ..Default::default()
        };
        let r = completability(&compiled.form, &CompletabilityOptions::with_limits(limits));
        if halts {
            assert_eq!(r.verdict, Verdict::Holds);
        } else {
            assert_ne!(r.verdict, Verdict::Holds);
        }
    }
}
