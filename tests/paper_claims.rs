//! Integration tests pinning every concrete claim the paper makes, across
//! all crates. Each test's doc comment starts with a **`Pins:`** line
//! naming the theorem / lemma / section whose claim it verifies, followed
//! by the claim itself (quoted where the paper states it in prose).

use idar::core::{bisim, formula, fragment, leave, Formula, Instance, Schema};
use idar::solver::semisound::{semisoundness, SemisoundnessOptions};
use idar::solver::{completability, CompletabilityOptions, ExploreLimits, Verdict};
use std::sync::Arc;

fn capped(cap: usize) -> CompletabilityOptions {
    CompletabilityOptions::with_limits(ExploreLimits {
        multiplicity_cap: Some(cap),
        ..ExploreLimits::small()
    })
}

/// Pins: Ex. 3.12 / Sec. 3.5. "Consider the guarded form in Example
/// 3.12 …" — with φ = f the form is completable.
#[test]
fn leave_application_is_completable() {
    let g = leave::example_3_12();
    let r = completability(&g, &CompletabilityOptions::default());
    assert_eq!(r.verdict, Verdict::Holds);
    assert!(g.is_complete_run(r.witness_run.as_ref().unwrap()));
}

/// Pins: Sec. 3.5 (completability as analysis primitive). "except that
/// φ = f ∧ ¬s. It can be observed that if we start from the initial
/// instance there is no full run."
#[test]
fn leave_with_f_and_not_s_has_no_full_run() {
    let g = leave::example_3_12().with_completion(Formula::parse("f & !s").unwrap());
    let r = completability(&g, &capped(2));
    assert_ne!(r.verdict, Verdict::Holds);
}

/// Pins: Sec. 3.5 (invariant checking via completability). "by checking
/// completability for φ = d[a ∧ r] we can check if at any stage there
/// can be a decision field that contains both accept and reject" — with
/// Ex. 3.12's exclusive rules it cannot.
#[test]
fn decision_exclusivity_invariant() {
    let g = leave::example_3_12().with_completion(leave::both_decisions_invariant());
    let r = completability(&g, &capped(2));
    assert_ne!(r.verdict, Verdict::Holds);
}

/// Pins: Sec. 3.5 (semi-soundness, Def. 3.13). "In this case the guarded
/// form is still completable but at the same time it is possible to
/// reach an instance where there is a final field but no approval or
/// reject field."
#[test]
fn section_3_5_variant_completable_but_not_semisound() {
    let g = leave::section_3_5_variant();
    assert_eq!(completability(&g, &capped(2)).verdict, Verdict::Holds);
    let s = semisoundness(
        &g,
        &SemisoundnessOptions {
            limits: ExploreLimits {
                multiplicity_cap: Some(1),
                max_states: 50_000,
                ..ExploreLimits::small()
            },
            ..Default::default()
        },
    );
    assert_eq!(s.verdict, Verdict::Fails);
    // The counterexample matches the paper's description.
    let cex = s.counterexample.unwrap();
    let stuck = g.replay(&cex).unwrap();
    assert!(formula::holds_at_root(
        stuck.last(),
        &Formula::parse("f & !d[a] & !d[r]").unwrap()
    ));
}

/// Pins: Prop. 3.3. The homomorphism from an instance to its schema is
/// unique — maintained by construction, so every node reports exactly
/// one schema node, stable under clones and deletions.
#[test]
fn homomorphism_is_structural() {
    let s = leave::schema();
    let i = leave::figure2a(s.clone());
    for n in i.live_nodes() {
        let sn = i.schema_node(n);
        assert_eq!(i.label(n), s.label(sn));
        match (i.parent(n), s.parent(sn)) {
            (None, None) => {}
            (Some(p), Some(sp)) => assert_eq!(i.schema_node(p), sp),
            other => panic!("parent mismatch {other:?}"),
        }
    }
}

/// Pins: Lemma 3.9 (via the Fig. 3 example). Formula-equivalent
/// instances satisfy the same formulas; I ∼ can(I); can is canonical
/// across the class.
#[test]
fn lemma_3_9_on_the_figure_3_example() {
    let s = Arc::new(Schema::parse("a(c(e), d), b(c, d(e))").unwrap());
    let i = Instance::parse(
        s.clone(),
        "a(c, c(e)), a(c, c(e)), a(c(e), c(e)), a(c(e)), b(c, d(e), d(e))",
    )
    .unwrap();
    let j = Instance::parse(s, "a(c, c(e)), a(c(e)), b(c, d(e))").unwrap();
    assert!(bisim::equivalent(&i, &j));
    for f in [
        "a[c[e]]",
        "a[c & c[e]]",
        "b[d[e] & c]",
        "!a[d]",
        "a[!c[e]]",
        "b/c/../d/e",
    ] {
        let f = Formula::parse(f).unwrap();
        assert_eq!(
            formula::holds_at_root(&i, &f),
            formula::holds_at_root(&j, &f),
            "{f}"
        );
    }
    assert!(bisim::canonical(&i).isomorphic(&j));
}

/// Pins: Lemma 4.4. Witness trees with branching linear in |φ| — checked
/// through the public witness extractor on the leave example.
#[test]
fn lemma_4_4_witness_bound() {
    let s = leave::schema();
    let mut text = String::from("a(n, d");
    for _ in 0..30 {
        text.push_str(", p(b, e)");
    }
    text.push_str("), s");
    let inst = Instance::parse(s, &text).unwrap();
    let f = Formula::parse("!s | a[p[b & e]] & a[n & d]").unwrap();
    let w = idar::solver::witness::extract_witness(&inst, &f).unwrap();
    assert!(formula::holds_at_root(&w, &f));
    let max_branch = w.live_nodes().map(|n| w.children(n).len()).max().unwrap();
    assert!(max_branch <= f.size());
    assert!(w.live_count() < inst.live_count());
}

/// Pins: Table 1 / Thm 5.5 (decidable cells). Dispatching picks the
/// method the paper's upper bound licenses — `F(A+, φ+, k)` goes to
/// polynomial saturation, a non-positive form to bounded exploration.
#[test]
fn table_1_method_dispatch() {
    use idar::solver::Method;
    // F(A+, φ+, 3) → P (Thm 5.5) even though depth > 1.
    let g = leave::example_3_12(); // A−: not positive
    assert_eq!(
        idar::solver::completability::select_method(&g),
        Method::BoundedExploration
    );
    let schema = Arc::new(Schema::parse("a(b(c))").unwrap());
    let rules = idar::core::AccessRules::with_default(&schema, Formula::True);
    let pos = idar::core::GuardedForm::new(
        schema.clone(),
        rules,
        Instance::empty(schema),
        Formula::parse("a/b/c").unwrap(),
    );
    assert_eq!(
        idar::solver::completability::select_method(&pos),
        Method::PositiveSaturation
    );
}

/// Pins: Table 1 (the complexity matrix itself). The rendering matches
/// the paper's 12 rows, including the PSPACE/NP/coNP/undecidable cells.
#[test]
fn table_1_shape() {
    let t = fragment::render_table1();
    assert_eq!(t.lines().count(), 14);
    for needle in [
        "F(A+, phi+, 1)",
        "F(A-, phi-, inf)",
        "PSPACE-complete",
        "undecidable",
        "NP-complete",
        "coNP-compl",
    ] {
        assert!(t.contains(needle), "missing {needle} in\n{t}");
    }
}

/// Pins: Fig. 1 + Fig. 2 / Def. 3.1. The figure instances are instances
/// of the figure schema and decode the scenarios the caption gives.
#[test]
fn figure_2_scenarios() {
    let s = leave::schema();
    let a = leave::figure2a(s.clone());
    // "a submitted application for two periods"
    assert!(formula::holds_at_root(&a, &Formula::parse("s").unwrap()));
    let root = idar::core::InstNodeId::ROOT;
    let app = a.children_with_label(root, "a").next().unwrap();
    assert_eq!(a.children_with_label(app, "p").count(), 2);
    // "an application for a single period that was rejected"
    let b = leave::figure2b(s);
    assert!(formula::holds_at_root(
        &b,
        &Formula::parse("d[r] & f").unwrap()
    ));
    assert!(!formula::holds_at_root(
        &b,
        &Formula::parse("d[a]").unwrap()
    ));
}

/// Pins: Footnote 1. Semi-soundness is weaker than soundness — a
/// semi-sound form can still have dead events.
#[test]
fn footnote_1_semisound_but_unsound_form_exists() {
    use idar::workflow::analysis::analyse;
    let schema = Arc::new(Schema::parse("a, b, c").unwrap());
    let mut rules = idar::core::AccessRules::new(&schema);
    rules.set(
        idar::core::Right::Add,
        schema.resolve("a").unwrap(),
        Formula::parse("!a").unwrap(),
    );
    // b's delete is declared but can never fire (guard c, c unaddable).
    rules.set_both(
        schema.resolve("b").unwrap(),
        Formula::parse("a & !b").unwrap(),
        Formula::parse("c").unwrap(),
    );
    let g = idar::core::GuardedForm::new(
        schema.clone(),
        rules,
        Instance::empty(schema),
        Formula::parse("a & b").unwrap(),
    );
    let report = analyse(&g, ExploreLimits::small());
    assert_eq!(report.semisoundness, Verdict::Holds);
    assert_eq!(report.soundness, Verdict::Fails);
    assert_eq!(report.dead_events.len(), 1);
}

/// Pins: Sec. 3.5 (claim-adjacent) + Table 1 `F(A+, φ+, 1)` / Thm 5.5.
/// The paper's analyses answer policy questions on instance-dependent
/// access rules; separation-of-duty is the canonical such question. A
/// two-level approval chain over a single user with `sod(1, 2)` compiled
/// into its guards is **not** completable — no assignment of the one
/// user to both levels respects the duty — and, crucially, the compiled
/// form stays inside its *declared decidable fragment* (rejection-free
/// chains are deletion-free and depth 1), so the verdict is an exact
/// Table 1 answer, not a bounded guess near the undecidable boundary.
#[test]
fn sod_infeasibility_is_decided_inside_the_declared_fragment() {
    use idar::gen::constraints::constrained_completable;
    use idar::gen::{ChainSpec, Constraint, ConstraintSet, FragmentSpec, ScenarioSpec};

    let spec = ScenarioSpec {
        chain: ChainSpec::simple(2, 1, 1),
        constraints: ConstraintSet::of([Constraint::separation(1, 2)]),
    };
    // Fragment discipline: the generator must declare a decidable cell
    // and the built form must actually lie inside it.
    assert_eq!(spec.fragment(), FragmentSpec::DeletionFree);
    let s = spec.build("sod-regression");
    assert!(s.fragment.admits(&s.form));

    let r = completability(&s.form, &capped(1));
    assert_eq!(
        r.verdict,
        Verdict::Fails,
        "SoD must make the chain infeasible"
    );
    // Independent oracle: the trace-level constrained-reachability check
    // agrees without ever evaluating a compiled guard.
    assert_eq!(constrained_completable(&spec, 10_000), Some(false));

    // Dropping the duty restores completability — the infeasibility is
    // the constraint's doing, not the chain's.
    let free = ScenarioSpec::unconstrained(spec.chain.clone()).build("sod-regression-free");
    assert_eq!(
        completability(&free.form, &capped(1)).verdict,
        Verdict::Holds
    );
}
