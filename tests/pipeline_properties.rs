//! Property suite pinning the symmetry-reduction layer.
//!
//! The canonicalization contract (`idar_core::canon`) claims analysis
//! verdicts are invariant under *iso-value renaming* — renaming node ids
//! and permuting siblings of the initial instance. These tests drive
//! seed-generated forms from all four `idar-gen` fragments through random
//! renamings and assert:
//!
//! * `canonicalize()` maps every renaming to the identical canonical
//!   form and fingerprint (and is itself a fixpoint);
//! * completability **and** semi-soundness verdicts agree across
//!   renamings, on the sequential *and* the parallel engine;
//! * the `StateStore` intern/lookup fixpoint: interning any member of a
//!   class and looking up any other member yields the same dense id.

use idar::core::Instance;
use idar::solver::{
    analyze, AnalysisKind, AnalysisRequest, Budget, ExploreLimits, StateStore, SymmetryMode,
};
use idar_gen::{generate, generate_stream, FragmentSpec, GenConfig};
use idar_logic::gen::{Rng, XorShift};

/// Small limits so every analysis closes or bounds in milliseconds.
fn budget() -> Budget {
    Budget::with_limits(ExploreLimits {
        max_states: 2_000,
        max_state_size: 20,
        max_depth: usize::MAX,
        multiplicity_cap: Some(2),
    })
}

/// Rebuild `inst` with every node's children inserted in a random order —
/// an iso-value renaming of the instance (fresh node ids, permuted
/// siblings, same unordered labelled tree).
fn random_renaming(inst: &Instance, rng: &mut XorShift) -> Instance {
    fn go(
        src: &Instance,
        n: idar::core::InstNodeId,
        out: &mut Instance,
        m: idar::core::InstNodeId,
        rng: &mut XorShift,
    ) {
        let mut kids = src.children(n).to_vec();
        // Fisher–Yates with the seeded generator.
        for i in (1..kids.len()).rev() {
            kids.swap(i, rng.below(i + 1));
        }
        for c in kids {
            let nc = out
                .add_child(m, src.schema_node(c))
                .expect("renaming preserves the schema");
            go(src, c, out, nc, rng);
        }
    }
    let mut out = Instance::empty(inst.schema().clone());
    go(
        inst,
        idar::core::InstNodeId::ROOT,
        &mut out,
        idar::core::InstNodeId::ROOT,
        rng,
    );
    out
}

/// Seed-generated forms of one fragment, with initial instances grown a
/// little so renamings have something to permute.
fn forms_of(fragment: FragmentSpec, cases: usize) -> Vec<idar::core::GuardedForm> {
    let cfg = GenConfig::new(fragment);
    generate_stream(&cfg, 0x51AE_2026, cases)
        .iter()
        .map(|&seed| generate(&cfg, seed))
        .collect()
}

#[test]
fn canonicalize_is_renaming_invariant_on_generated_forms() {
    for fragment in FragmentSpec::ALL {
        for (k, form) in forms_of(fragment, 8).into_iter().enumerate() {
            let mut rng = XorShift::new(0xC0DE + k as u64);
            let base = form.initial().canonicalize();
            // Fixpoint.
            let again = base.instance.canonicalize();
            assert_eq!(base.instance.to_text(), again.instance.to_text());
            assert_eq!(base.fingerprint, again.fingerprint);
            for _ in 0..3 {
                let renamed = random_renaming(form.initial(), &mut rng);
                assert!(renamed.isomorphic(form.initial()), "{fragment} case {k}");
                let c = renamed.canonicalize();
                assert_eq!(
                    c.instance.to_text(),
                    base.instance.to_text(),
                    "{fragment} case {k}: canonical forms diverge"
                );
                assert_eq!(c.fingerprint, base.fingerprint);
            }
        }
    }
}

#[test]
fn verdicts_are_invariant_under_renaming_all_fragments_both_engines() {
    for fragment in FragmentSpec::ALL {
        for (k, form) in forms_of(fragment, 6).into_iter().enumerate() {
            let mut rng = XorShift::new(0xBEEF ^ (k as u64) << 3);
            for kind in [AnalysisKind::Completability, AnalysisKind::Semisoundness] {
                for threads in [1usize, 4] {
                    let base = analyze(
                        &AnalysisRequest::new(form.clone(), kind)
                            .with_budget(budget())
                            .with_threads(threads),
                    );
                    for r in 0..2 {
                        let renamed = form.with_initial(random_renaming(form.initial(), &mut rng));
                        let got = analyze(
                            &AnalysisRequest::new(renamed, kind)
                                .with_budget(budget())
                                .with_threads(threads),
                        );
                        if base.stats.limit_hit.is_none() && got.stats.limit_hit.is_none() {
                            assert_eq!(
                                got.verdict, base.verdict,
                                "{fragment} case {k}: {kind} verdict changed under \
                                 renaming {r} (threads {threads})"
                            );
                        } else {
                            // At a resource boundary the verdict may be
                            // order-dependent; decided verdicts must still
                            // never contradict each other.
                            use idar::solver::Verdict;
                            let contradiction = matches!(
                                (base.verdict, got.verdict),
                                (Verdict::Holds, Verdict::Fails) | (Verdict::Fails, Verdict::Holds)
                            );
                            assert!(
                                !contradiction,
                                "{fragment} case {k}: {kind} decided verdicts contradict \
                                 under renaming {r} (threads {threads})"
                            );
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn state_store_intern_lookup_fixpoint_on_generated_instances() {
    for fragment in FragmentSpec::ALL {
        for (k, form) in forms_of(fragment, 8).into_iter().enumerate() {
            let mut rng = XorShift::new(0xF100 + k as u64);
            let mut store = StateStore::new(SymmetryMode::Reduced);
            let (id, new) = store.intern(form.initial().clone(), None);
            assert!(new);
            for _ in 0..4 {
                let renamed = random_renaming(form.initial(), &mut rng);
                assert_eq!(
                    store.lookup(&renamed),
                    Some(id),
                    "{fragment} case {k}: lookup of a renaming missed the class"
                );
                let (again, fresh) = store.intern(renamed, None);
                assert_eq!(again, id);
                assert!(!fresh, "{fragment} case {k}: renaming re-interned as new");
            }
            assert_eq!(store.len(), 1);
            assert_eq!(store.collisions(), 0);
            assert_eq!(
                store.fingerprint(id),
                form.initial().canonicalize().fingerprint
            );
        }
    }
}
