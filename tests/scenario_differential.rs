//! Workspace-level differential suite for the scenario corpus: verdicts
//! on scenario forms must be invariant under every engine configuration
//! the pipeline exposes — sequential vs pooled exploration,
//! `SymmetryMode::{Reduced, Plain}`, and cold vs cached
//! `AnalysisRequest` paths — and the six named scenarios carry golden
//! verdict pins re-checked on every run.

use idar::gen::constraints::{check_run, constrained_completable};
use idar::gen::scenario::named_scenarios;
use idar::gen::ScenarioAxis;
use idar::solver::{
    analyze, analyze_with, AnalysisKind, AnalysisRequest, Budget, ExploreLimits, SymmetryMode,
    Verdict, VerdictCache,
};
use idar::workflow::runs::{enumerate_complete_runs, EnumerateOptions};

fn scenario_limits() -> ExploreLimits {
    ExploreLimits {
        max_states: 120_000,
        max_state_size: 64,
        max_depth: usize::MAX,
        multiplicity_cap: Some(1),
    }
}

fn budget(symmetry: SymmetryMode) -> Budget {
    Budget {
        symmetry,
        ..Budget::with_limits(scenario_limits())
    }
}

/// Run `kind` on `form` across every engine configuration and assert
/// all verdicts agree; returns the common verdict.
fn verdict_invariant(form: &idar::core::GuardedForm, kind: AnalysisKind, name: &str) -> Verdict {
    let mut verdicts = Vec::new();
    for symmetry in [SymmetryMode::Reduced, SymmetryMode::Plain] {
        for threads in [1usize, 4] {
            let req = AnalysisRequest::new(form.clone(), kind)
                .with_budget(budget(symmetry))
                .with_threads(threads);
            let cold = analyze(&req);
            verdicts.push((format!("{symmetry:?}/t{threads}/cold"), cold.verdict));

            let cache = VerdictCache::new();
            let miss = analyze_with(&req, Some(&cache));
            let hit = analyze_with(&req, Some(&cache));
            assert_eq!(
                miss.cache,
                idar::solver::CacheProvenance::Miss,
                "{name}: first cached run should miss"
            );
            assert_eq!(
                hit.cache,
                idar::solver::CacheProvenance::Hit,
                "{name}: second cached run should hit"
            );
            verdicts.push((format!("{symmetry:?}/t{threads}/miss"), miss.verdict));
            verdicts.push((format!("{symmetry:?}/t{threads}/hit"), hit.verdict));
        }
    }
    let (ref first_cfg, first) = verdicts[0];
    for (cfg, v) in &verdicts {
        assert_eq!(
            *v, first,
            "{name}/{kind}: verdict split between {first_cfg} and {cfg}"
        );
    }
    first
}

fn expect(b: bool) -> Verdict {
    if b {
        Verdict::Holds
    } else {
        Verdict::Fails
    }
}

/// Golden pins: the named corpus analyses to exactly its reasoned
/// verdicts, identically under every engine configuration.
#[test]
fn named_scenarios_pin_their_verdicts_across_all_engines() {
    let named = named_scenarios();
    assert_eq!(named.len(), 6);
    let names: Vec<&str> = named.iter().map(|n| n.scenario.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "clean_chain",
            "rejection_loop",
            "sod_infeasible",
            "bod_forced",
            "delegation_cycle",
            "mixed"
        ]
    );
    for n in &named {
        let s = &n.scenario;
        let compl = verdict_invariant(&s.form, AnalysisKind::Completability, &s.name);
        assert_eq!(
            compl,
            expect(n.expected.completable),
            "{}: completability pin",
            s.name
        );
        let semi = verdict_invariant(&s.form, AnalysisKind::Semisoundness, &s.name);
        assert_eq!(
            semi,
            expect(n.expected.semisound),
            "{}: semi-soundness pin",
            s.name
        );
        // Satisfiability of the completion formula is a necessary
        // condition for completability — it must hold for every chain
        // (the completion only asks for some final-level signature).
        let sat = verdict_invariant(&s.form, AnalysisKind::Satisfiability, &s.name);
        assert_eq!(sat, Verdict::Holds, "{}: satisfiability pin", s.name);
    }
}

/// Recipe-sampled scenarios keep verdicts engine-invariant too (the
/// named corpus is hand-shaped; this covers sampled shapes).
#[test]
fn sampled_scenarios_are_engine_invariant() {
    for axis in ScenarioAxis::ALL {
        for seed in 0..4u64 {
            let spec = axis.sample(seed);
            let s = spec.build("sampled");
            let name = format!("{axis}/{seed}");
            verdict_invariant(&s.form, AnalysisKind::Completability, &name);
            verdict_invariant(&s.form, AnalysisKind::Semisoundness, &name);
        }
    }
}

/// The compiled form's complete runs all satisfy the duty constraints
/// according to the trace-level oracle, and the solver's completability
/// verdict matches the hand-rolled constrained-reachability oracle.
#[test]
fn named_scenarios_agree_with_trace_and_reachability_oracles() {
    for n in named_scenarios() {
        let s = &n.scenario;
        let oracle = constrained_completable(&s.spec, 500_000)
            .unwrap_or_else(|| panic!("{}: oracle exhausted budget", s.name));
        assert_eq!(oracle, n.expected.completable, "{}: oracle pin", s.name);

        let runs = enumerate_complete_runs(
            &s.form,
            &EnumerateOptions {
                max_runs: 8,
                max_len: 60,
                limits: scenario_limits(),
            },
        );
        assert_eq!(
            !runs.runs.is_empty(),
            n.expected.completable,
            "{}: run enumeration disagrees with pin",
            s.name
        );
        for run in &runs.runs {
            assert!(s.form.is_complete_run(run), "{}: broken run", s.name);
            assert!(
                check_run(&s.form, &s.layout, &s.spec.constraints, run).is_ok(),
                "{}: compiled form admitted a duty-violating run",
                s.name
            );
        }
    }
}

/// Deep clean chains stay decidable and completable well past the
/// BENCH scaling range — the depth-12 acceptance point of the corpus.
#[test]
fn deep_chains_complete_up_to_depth_twelve() {
    use idar::gen::{ChainSpec, ScenarioSpec};
    for depth in [4usize, 8, 12] {
        let s = ScenarioSpec::unconstrained(ChainSpec::simple(depth, 2, 3)).build("deep");
        let req = AnalysisRequest::completability(s.form.clone())
            .with_budget(budget(SymmetryMode::Reduced));
        let report = analyze(&req);
        assert_eq!(report.verdict, Verdict::Holds, "depth {depth}");
        let run = report.run.expect("witness run");
        assert!(s.form.is_complete_run(&run));
        // Witness length: one submission plus one signature per level.
        assert_eq!(run.len(), depth + 1, "depth {depth}");
    }
}
