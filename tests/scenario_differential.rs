//! Workspace-level differential suite for the scenario corpus: verdicts
//! on scenario forms must be invariant under every engine configuration
//! the pipeline exposes — sequential vs pooled exploration,
//! `SymmetryMode::{Reduced, Plain}`, and cold vs cached
//! `AnalysisRequest` paths — and the six named scenarios carry golden
//! verdict pins re-checked on every run.

use idar::gen::constraints::{check_run, constrained_completable};
use idar::gen::scenario::named_scenarios;
use idar::gen::ScenarioAxis;
use idar::solver::{
    analyze, analyze_with, AnalysisKind, AnalysisRequest, Budget, ExploreLimits, SymmetryMode,
    Verdict, VerdictCache,
};
use idar::workflow::runs::{enumerate_complete_runs, EnumerateOptions};

fn scenario_limits() -> ExploreLimits {
    ExploreLimits {
        max_states: 120_000,
        max_state_size: 64,
        max_depth: usize::MAX,
        multiplicity_cap: Some(1),
    }
}

fn budget(symmetry: SymmetryMode) -> Budget {
    Budget {
        symmetry,
        ..Budget::with_limits(scenario_limits())
    }
}

/// Run `kind` on `form` across every engine configuration and assert
/// all verdicts agree; returns the common verdict.
fn verdict_invariant(form: &idar::core::GuardedForm, kind: AnalysisKind, name: &str) -> Verdict {
    let mut verdicts = Vec::new();
    for symmetry in [SymmetryMode::Reduced, SymmetryMode::Plain] {
        for threads in [1usize, 4] {
            let req = AnalysisRequest::new(form.clone(), kind)
                .with_budget(budget(symmetry))
                .with_threads(threads);
            let cold = analyze(&req);
            verdicts.push((format!("{symmetry:?}/t{threads}/cold"), cold.verdict));

            let cache = VerdictCache::new();
            let miss = analyze_with(&req, Some(&cache));
            let hit = analyze_with(&req, Some(&cache));
            assert_eq!(
                miss.cache,
                idar::solver::CacheProvenance::Miss,
                "{name}: first cached run should miss"
            );
            assert_eq!(
                hit.cache,
                idar::solver::CacheProvenance::Hit,
                "{name}: second cached run should hit"
            );
            verdicts.push((format!("{symmetry:?}/t{threads}/miss"), miss.verdict));
            verdicts.push((format!("{symmetry:?}/t{threads}/hit"), hit.verdict));
        }
    }
    let (ref first_cfg, first) = verdicts[0];
    for (cfg, v) in &verdicts {
        assert_eq!(
            *v, first,
            "{name}/{kind}: verdict split between {first_cfg} and {cfg}"
        );
    }
    first
}

fn expect(b: bool) -> Verdict {
    if b {
        Verdict::Holds
    } else {
        Verdict::Fails
    }
}

/// Golden pins: the named corpus analyses to exactly its reasoned
/// verdicts, identically under every engine configuration.
#[test]
fn named_scenarios_pin_their_verdicts_across_all_engines() {
    let named = named_scenarios();
    assert_eq!(named.len(), 6);
    let names: Vec<&str> = named.iter().map(|n| n.scenario.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "clean_chain",
            "rejection_loop",
            "sod_infeasible",
            "bod_forced",
            "delegation_cycle",
            "mixed"
        ]
    );
    for n in &named {
        let s = &n.scenario;
        let compl = verdict_invariant(&s.form, AnalysisKind::Completability, &s.name);
        assert_eq!(
            compl,
            expect(n.expected.completable),
            "{}: completability pin",
            s.name
        );
        let semi = verdict_invariant(&s.form, AnalysisKind::Semisoundness, &s.name);
        assert_eq!(
            semi,
            expect(n.expected.semisound),
            "{}: semi-soundness pin",
            s.name
        );
        // Satisfiability of the completion formula is a necessary
        // condition for completability — it must hold for every chain
        // (the completion only asks for some final-level signature).
        let sat = verdict_invariant(&s.form, AnalysisKind::Satisfiability, &s.name);
        assert_eq!(sat, Verdict::Holds, "{}: satisfiability pin", s.name);
    }
}

/// Recipe-sampled scenarios keep verdicts engine-invariant too (the
/// named corpus is hand-shaped; this covers sampled shapes).
#[test]
fn sampled_scenarios_are_engine_invariant() {
    for axis in ScenarioAxis::ALL {
        for seed in 0..4u64 {
            let spec = axis.sample(seed);
            let s = spec.build("sampled");
            let name = format!("{axis}/{seed}");
            verdict_invariant(&s.form, AnalysisKind::Completability, &name);
            verdict_invariant(&s.form, AnalysisKind::Semisoundness, &name);
        }
    }
}

/// The compiled form's complete runs all satisfy the duty constraints
/// according to the trace-level oracle, and the solver's completability
/// verdict matches the hand-rolled constrained-reachability oracle.
#[test]
fn named_scenarios_agree_with_trace_and_reachability_oracles() {
    for n in named_scenarios() {
        let s = &n.scenario;
        let oracle = constrained_completable(&s.spec, 500_000)
            .unwrap_or_else(|| panic!("{}: oracle exhausted budget", s.name));
        assert_eq!(oracle, n.expected.completable, "{}: oracle pin", s.name);

        let runs = enumerate_complete_runs(
            &s.form,
            &EnumerateOptions {
                max_runs: 8,
                max_len: 60,
                limits: scenario_limits(),
            },
        );
        assert_eq!(
            !runs.runs.is_empty(),
            n.expected.completable,
            "{}: run enumeration disagrees with pin",
            s.name
        );
        for run in &runs.runs {
            assert!(s.form.is_complete_run(run), "{}: broken run", s.name);
            assert!(
                check_run(&s.form, &s.layout, &s.spec.constraints, run).is_ok(),
                "{}: compiled form admitted a duty-violating run",
                s.name
            );
        }
    }
}

/// Deep clean chains stay decidable and completable well past the
/// BENCH scaling range — the depth-12 acceptance point of the corpus.
#[test]
fn deep_chains_complete_up_to_depth_twelve() {
    use idar::gen::{ChainSpec, ScenarioSpec};
    for depth in [4usize, 8, 12] {
        let s = ScenarioSpec::unconstrained(ChainSpec::simple(depth, 2, 3)).build("deep");
        let req = AnalysisRequest::completability(s.form.clone())
            .with_budget(budget(SymmetryMode::Reduced));
        let report = analyze(&req);
        assert_eq!(report.verdict, Verdict::Holds, "depth {depth}");
        let run = report.run.expect("witness run");
        assert!(s.form.is_complete_run(&run));
        // Witness length: one submission plus one signature per level.
        assert_eq!(run.len(), depth + 1, "depth {depth}");
    }
}

/// Static-screener pins for the named corpus, next to the verdict pins
/// above: the screener must decide exactly the reasoned cases, with
/// zero states explored, and flag the reasoned rules dead.
#[test]
fn named_scenarios_screen_pins() {
    use idar::core::Right;
    use idar::solver::{screen, Method, ScreenOutcome};

    let named = named_scenarios();
    let get = |name: &str| {
        &named
            .iter()
            .find(|n| n.scenario.name == name)
            .unwrap_or_else(|| panic!("{name} missing from the corpus"))
            .scenario
    };

    // sod_infeasible: one user across two SoD-separated levels — the
    // level-2 signature guard is propositionally unsatisfiable, so the
    // completion's `done(2)` falls outside the may-set. Refuted
    // statically, for both problems, with zero states explored.
    let sod = get("sod_infeasible");
    let r = screen(&sod.form);
    assert_eq!(r.completability.verdict(), Some(Verdict::Fails));
    assert_eq!(r.semisoundness.verdict(), Some(Verdict::Fails));
    assert_eq!(r.stats.chase_steps, 0, "refutation must not build states");
    let report = analyze(
        &AnalysisRequest::completability(sod.form.clone())
            .with_budget(budget(SymmetryMode::Reduced)),
    );
    assert_eq!(report.verdict, Verdict::Fails);
    assert_eq!(report.method, Method::StaticScreen);
    assert_eq!(report.stats.states, 0, "StaticNo explores zero states");

    // clean_chain: deletion-free; the greedy chase threads the chain and
    // certifies completability with a replayable witness run.
    let clean = get("clean_chain");
    assert!(clean.form.is_deletion_free());
    let r = screen(&clean.form);
    let ScreenOutcome::Decided(v, Some(run)) = &r.completability else {
        panic!("clean_chain: expected a decided outcome with a witness");
    };
    assert_eq!(*v, Verdict::Holds);
    assert!(clean.form.is_complete_run(run));
    assert!(r.dead_rules.is_empty(), "clean_chain has no dead rules");
    let report = analyze(
        &AnalysisRequest::completability(clean.form.clone())
            .with_budget(budget(SymmetryMode::Reduced)),
    );
    assert_eq!(report.method, Method::StaticScreen);
    assert_eq!(report.stats.states, 0);

    // delegation_cycle: the two delegation edges each require the other
    // to fire first — both are dead, and with them the level-2
    // signature rules they would have enabled.
    let cyc = get("delegation_cycle");
    let r = screen(&cyc.form);
    assert_eq!(r.completability.verdict(), Some(Verdict::Fails));
    let schema = cyc.form.schema();
    let dead_edges: Vec<String> = r
        .dead_rules
        .iter()
        .filter(|d| d.right == Right::Add)
        .map(|d| schema.label(d.edge).to_string())
        .collect();
    let delegation_edges: Vec<&str> = dead_edges
        .iter()
        .map(String::as_str)
        .filter(|l| l.starts_with("d2_"))
        .collect();
    assert_eq!(
        delegation_edges.len(),
        2,
        "both cyclic delegation rules must be flagged dead (got {dead_edges:?})"
    );
    for d in &r.dead_rules {
        // Dead rules are sound: exploring with them pruned must not
        // change a single allowed update anywhere reachable. Spot-check
        // the initial instance.
        let pruned = idar::solver::prune(&cyc.form, std::slice::from_ref(d));
        assert_eq!(
            cyc.form.allowed_updates(cyc.form.initial()),
            pruned.allowed_updates(pruned.initial())
        );
    }
}
