//! Property-based differential tests: the exact solvers, the bounded
//! explorer, and the formula machinery must all agree wherever their
//! domains overlap. These are the safety net for the theorem-backed
//! shortcuts (Lemma 4.3, Thm 5.2, Thm 5.5, Lemma 4.4).

use idar::core::{
    bisim, formula, AccessRules, Formula, GuardedForm, InstNodeId, Instance, Right, Schema,
};
use idar::solver::{completability, CompletabilityOptions, ExploreLimits, Method, Verdict};
use proptest::prelude::*;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

const LABELS: [&str; 4] = ["a", "b", "c", "d"];

/// A random depth-1 formula over the fixed label set (guards/completions).
fn formula_strategy(depth: u32) -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        (0..LABELS.len()).prop_map(|i| Formula::label(LABELS[i])),
        Just(Formula::True),
        Just(Formula::False),
        // `l[..[l']]` — child with a root-check filter.
        ((0..LABELS.len()), (0..LABELS.len())).prop_map(|(i, j)| {
            Formula::Path(idar::core::PathExpr::Filter(
                Box::new(idar::core::PathExpr::Label(LABELS[i].into())),
                Box::new(Formula::Path(idar::core::PathExpr::Filter(
                    Box::new(idar::core::PathExpr::Parent),
                    Box::new(Formula::label(LABELS[j])),
                ))),
            ))
        }),
    ];
    leaf.prop_recursive(depth, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

/// A positive (negation-free) random formula.
fn positive_formula_strategy(depth: u32) -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        (0..LABELS.len()).prop_map(|i| Formula::label(LABELS[i])),
        Just(Formula::True),
        Just(Formula::False),
    ];
    leaf.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
        ]
    })
}

/// A random depth-1 guarded form over the fixed labels.
fn depth1_form_strategy() -> impl Strategy<Value = GuardedForm> {
    let guards = proptest::collection::vec(formula_strategy(2), LABELS.len() * 2);
    let completion = formula_strategy(3);
    let initial_bits = 0u8..16;
    (guards, completion, initial_bits).prop_map(|(gs, completion, init)| {
        let schema = Arc::new(Schema::parse("a, b, c, d").unwrap());
        let mut rules = AccessRules::new(&schema);
        for (i, l) in LABELS.iter().enumerate() {
            let e = schema.resolve(l).unwrap();
            rules.set(Right::Add, e, gs[2 * i].clone());
            rules.set(Right::Del, e, gs[2 * i + 1].clone());
        }
        let mut initial = Instance::empty(schema.clone());
        for (i, l) in LABELS.iter().enumerate() {
            if init >> i & 1 == 1 {
                initial.add_child_by_label(InstNodeId::ROOT, l).unwrap();
            }
        }
        GuardedForm::new(schema, rules, initial, completion)
    })
}

// ---------------------------------------------------------------------------
// Solver agreement
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 4.3 in practice: on depth-1 forms, the canonical-state solver
    /// and the raw bounded explorer must agree whenever the latter closes.
    #[test]
    fn depth1_exact_agrees_with_bounded(form in depth1_form_strategy()) {
        let exact = completability(
            &form,
            &CompletabilityOptions {
                limits: ExploreLimits::small(),
                force_method: Some(Method::Depth1Canonical),
                ..Default::default()
            },
        );
        // Cap multiplicities so the raw space is finite; the guards are
        // multiplicity-blind so a cap of 2 preserves all behaviours that
        // matter for reaching each canonical class.
        let bounded = completability(
            &form,
            &CompletabilityOptions {
                limits: ExploreLimits {
                    multiplicity_cap: Some(2),
                    max_states: 60_000,
                    ..ExploreLimits::small()
                },
                force_method: Some(Method::BoundedExploration),
                ..Default::default()
            },
        );
        prop_assert!(exact.verdict != Verdict::Unknown);
        // Whenever the bounded explorer reaches a verdict it must match
        // the exact one; `Unknown` (a pruned infinite space) constrains
        // nothing.
        if bounded.verdict != Verdict::Unknown {
            prop_assert_eq!(exact.verdict, bounded.verdict);
        }
    }

    /// Witness runs returned by any method must replay to completion.
    #[test]
    fn witness_runs_replay(form in depth1_form_strategy()) {
        let r = completability(&form, &CompletabilityOptions::default());
        if let Some(run) = r.witness_run {
            prop_assert!(form.is_complete_run(&run));
        }
    }

    /// Thm 5.5 vs the depth-1 exact solver on positive depth-1 forms.
    #[test]
    fn positive_saturation_agrees_with_depth1(
        adds in proptest::collection::vec(positive_formula_strategy(2), LABELS.len()),
        completion in positive_formula_strategy(3),
    ) {
        let schema = Arc::new(Schema::parse("a, b, c, d").unwrap());
        let mut rules = AccessRules::new(&schema);
        for (i, l) in LABELS.iter().enumerate() {
            rules.set(Right::Add, schema.resolve(l).unwrap(), adds[i].clone());
        }
        let form = GuardedForm::new(
            schema.clone(),
            rules,
            Instance::empty(schema),
            completion,
        );
        let sat = completability(
            &form,
            &CompletabilityOptions {
                limits: ExploreLimits::small(),
                force_method: Some(Method::PositiveSaturation),
                ..Default::default()
            },
        );
        let exact = completability(
            &form,
            &CompletabilityOptions {
                limits: ExploreLimits::small(),
                force_method: Some(Method::Depth1Canonical),
                ..Default::default()
            },
        );
        prop_assert_eq!(sat.verdict, exact.verdict);
    }

    /// Thm 5.2 (NP solver) vs depth-1 exact on positive-rule forms with
    /// arbitrary completion formulas.
    #[test]
    fn np_agrees_with_depth1(
        adds in proptest::collection::vec(positive_formula_strategy(2), LABELS.len()),
        dels in proptest::collection::vec(positive_formula_strategy(2), LABELS.len()),
        completion in formula_strategy(3),
        init in 0u8..16,
    ) {
        let schema = Arc::new(Schema::parse("a, b, c, d").unwrap());
        let mut rules = AccessRules::new(&schema);
        for (i, l) in LABELS.iter().enumerate() {
            let e = schema.resolve(l).unwrap();
            rules.set(Right::Add, e, adds[i].clone());
            rules.set(Right::Del, e, dels[i].clone());
        }
        let mut initial = Instance::empty(schema.clone());
        for (i, l) in LABELS.iter().enumerate() {
            if init >> i & 1 == 1 {
                initial.add_child_by_label(InstNodeId::ROOT, l).unwrap();
            }
        }
        let form = GuardedForm::new(schema, rules, initial, completion);
        let np = completability(
            &form,
            &CompletabilityOptions {
                limits: ExploreLimits {
                    max_states: 100_000,
                    ..ExploreLimits::small()
                },
                force_method: Some(Method::NpTwoPhase),
                ..Default::default()
            },
        );
        let exact = completability(
            &form,
            &CompletabilityOptions {
                limits: ExploreLimits::small(),
                force_method: Some(Method::Depth1Canonical),
                ..Default::default()
            },
        );
        if np.verdict != Verdict::Unknown {
            prop_assert_eq!(np.verdict, exact.verdict);
        }
    }
}

// ---------------------------------------------------------------------------
// Formula machinery
// ---------------------------------------------------------------------------

/// A random small instance of the test schema (depth 2 for formula tests).
fn instance_strategy() -> impl Strategy<Value = Instance> {
    proptest::collection::vec((0..6usize, 0..3usize), 0..12).prop_map(|ops| {
        let schema = Arc::new(Schema::parse("a(b, c), b, c(a)").unwrap());
        let mut inst = Instance::empty(schema.clone());
        let mut nodes = vec![InstNodeId::ROOT];
        for (parent_pick, child_pick) in ops {
            let p = nodes[parent_pick % nodes.len()];
            let kids = schema.children(inst.schema_node(p));
            if kids.is_empty() {
                continue;
            }
            let e = kids[child_pick % kids.len()];
            let n = inst.add_child(p, e).unwrap();
            nodes.push(n);
        }
        inst
    })
}

fn deep_formula_strategy() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![
        Just(Formula::path("a/b")),
        Just(Formula::path("a/c")),
        Just(Formula::path("c/a")),
        Just(Formula::label("a")),
        Just(Formula::label("b")),
        Just(Formula::parse("a[b & ../c]").unwrap()),
        Just(Formula::parse("a[..[b]]").unwrap()),
        Just(Formula::parse("c/a/..").unwrap()),
    ];
    leaf.prop_recursive(3, 20, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(|a| a.not()),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Lemma 4.4 normal form preserves semantics on random instances.
    #[test]
    fn step_normal_form_preserves_semantics(
        inst in instance_strategy(),
        f in deep_formula_strategy(),
    ) {
        let n = idar::core::formula::StepFormula::from_formula(&f);
        for node in inst.live_nodes() {
            prop_assert_eq!(
                formula::holds(&inst, node, &f),
                n.holds(&inst, node),
                "normal form diverged at {} for {}", node, f
            );
            prop_assert_eq!(
                formula::holds(&inst, node, &f),
                n.nnf().holds(&inst, node),
                "nnf diverged at {} for {}", node, f
            );
        }
    }

    /// Simplification preserves semantics, never grows the formula, and
    /// preserves positivity.
    #[test]
    fn simplification_sound(
        inst in instance_strategy(),
        f in deep_formula_strategy(),
    ) {
        let s = f.simplified();
        prop_assert!(s.size() <= f.size(), "simplify grew {} -> {}", f.size(), s.size());
        // Never introduces negation (may well *remove* it).
        if f.is_positive() {
            prop_assert!(s.is_positive());
        }
        for node in inst.live_nodes() {
            prop_assert_eq!(
                formula::holds(&inst, node, &f),
                formula::holds(&inst, node, &s),
                "simplified diverged at {} for {}", node, f
            );
        }
        // Idempotence.
        prop_assert_eq!(s.clone(), s.simplified());
    }

    /// Display → parse is the identity on ASTs.
    #[test]
    fn display_parse_roundtrip(f in deep_formula_strategy()) {
        let printed = f.to_string();
        let reparsed = Formula::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse `{printed}`: {e}"));
        prop_assert_eq!(f, reparsed);
    }

    /// Lemma 3.9: formulas cannot distinguish an instance from its
    /// canonical quotient.
    #[test]
    fn canonicalisation_is_formula_invisible(
        inst in instance_strategy(),
        f in deep_formula_strategy(),
    ) {
        let can = bisim::canonical(&inst);
        prop_assert_eq!(
            formula::holds_at_root(&inst, &f),
            formula::holds_at_root(&can, &f),
            "can(I) distinguished by {}", f
        );
    }

    /// can(can(I)) ≅ can(I), and I ∼ can(I).
    #[test]
    fn canonicalisation_idempotent(inst in instance_strategy()) {
        let c1 = bisim::canonical(&inst);
        let c2 = bisim::canonical(&c1);
        prop_assert!(c1.isomorphic(&c2));
        prop_assert!(bisim::equivalent(&inst, &c1));
        prop_assert!(bisim::is_canonical(&c1));
    }

    /// χ(I) characterises I's equivalence class on random instances.
    #[test]
    fn characteristic_formula_is_characteristic(
        a in instance_strategy(),
        b in instance_strategy(),
    ) {
        let chi = bisim::characteristic_formula(&a);
        prop_assert!(formula::holds_at_root(&a, &chi));
        prop_assert_eq!(
            formula::holds_at_root(&b, &chi),
            bisim::equivalent(&a, &b),
            "chi misclassified"
        );
    }

    /// Lemma 4.4 witness extraction: whenever φ holds, the witness holds
    /// it too and respects the branching bound.
    #[test]
    fn witness_extraction_sound(
        inst in instance_strategy(),
        f in deep_formula_strategy(),
    ) {
        if formula::holds_at_root(&inst, &f) {
            let w = idar::solver::witness::extract_witness(&inst, &f)
                .expect("formula holds");
            prop_assert!(formula::holds_at_root(&w, &f));
            prop_assert!(w.live_count() <= inst.live_count());
            let max_branch = w
                .live_nodes()
                .map(|n| w.children(n).len())
                .max()
                .unwrap_or(0);
            prop_assert!(max_branch <= f.size());
        }
    }

    /// The satisfiability tableau is sound (its witnesses model the
    /// formula) and agrees with a found model's existence.
    #[test]
    fn tableau_soundness(f in deep_formula_strategy()) {
        use idar::solver::satisfiability::{satisfiable, SatOptions, SatResult};
        match satisfiable(&f, &SatOptions::default()) {
            SatResult::Sat(tree) => prop_assert!(tree.holds(0, &f)),
            SatResult::Unsat => {
                // Cross-check: no random instance should satisfy it.
                // (Weak check on a handful of instances.)
                let schema = Arc::new(Schema::parse("a(b, c), b, c(a)").unwrap());
                for text in ["", "a", "a(b), b", "a(b, c), c(a)", "c(a), b"] {
                    let inst = Instance::parse(schema.clone(), text).unwrap();
                    prop_assert!(
                        !formula::holds_at_root(&inst, &f),
                        "UNSAT but {} satisfies {}", text, f
                    );
                }
            }
            SatResult::BudgetExhausted => {}
        }
    }
}
