//! Differential tests: the parallel layered frontier engine must be
//! indistinguishable from the sequential explorer wherever the contract
//! promises it — same state set, same `SearchStats.closed`, same
//! verdicts, same BFS goal depths — on the paper's running example and on
//! the Theorem 4.1 two-counter workloads.
//!
//! These tests force thread counts above the machine's core count on
//! purpose: the parallel code paths (chunking, shared interning, layer
//! merge) are exercised even on a single-core host.

use idar::core::leave;
use idar::solver::{
    completability, CompletabilityOptions, ExploreLimits, Explorer, Method, Verdict,
};
use idar_bench::workloads;

/// Sorted iso-codes of a graph's states: the canonical state set.
fn state_set(g: &idar::solver::explore::StateGraph) -> Vec<String> {
    let mut v: Vec<String> = g.states().iter().map(|s| s.iso_code()).collect();
    v.sort_unstable();
    v
}

fn capped(cap: usize) -> ExploreLimits {
    ExploreLimits {
        multiplicity_cap: Some(cap),
        ..ExploreLimits::small()
    }
}

/// Ex. 3.12 leave form, multiplicity-capped so the space is finite: both
/// engines must enumerate exactly the same isomorphism classes and agree
/// that the capped search did not close (the cap prunes, by design).
#[test]
fn leave_example_3_12_same_state_set() {
    let form = leave::example_3_12();
    let seq = Explorer::new(&form, capped(2)).with_threads(1).graph();
    for threads in [2, 4] {
        let par = Explorer::new(&form, capped(2))
            .with_threads(threads)
            .graph();
        assert_eq!(state_set(&par), state_set(&seq), "threads={threads}");
        assert_eq!(par.stats.states, seq.stats.states);
        assert_eq!(par.stats.transitions, seq.stats.transitions);
        assert_eq!(par.stats.closed, seq.stats.closed);
        assert_eq!(par.edge_count(), seq.edge_count());
    }
}

/// Both engines find a complete run for φ = f at the same BFS depth, and
/// both runs replay.
#[test]
fn leave_example_3_12_same_goal_depth() {
    let form = leave::example_3_12();
    let seq = Explorer::new(&form, ExploreLimits::small())
        .with_threads(1)
        .find(|i| form.is_complete(i));
    let par = Explorer::new(&form, ExploreLimits::small())
        .with_threads(4)
        .find(|i| form.is_complete(i));
    let seq_run = seq.goal_run.expect("completable");
    let par_run = par.goal_run.expect("completable");
    assert_eq!(seq_run.len(), par_run.len());
    assert!(form.is_complete_run(&par_run));
}

/// φ = f ∧ ¬s has no complete run (Sec. 3.5): both engines agree on the
/// verdict-relevant facts under the capped search.
#[test]
fn leave_negative_claim_agrees() {
    let form = leave::example_3_12().with_completion(idar::core::Formula::parse("f & !s").unwrap());
    let seq = Explorer::new(&form, capped(2))
        .with_threads(1)
        .find(|i| form.is_complete(i));
    let par = Explorer::new(&form, capped(2))
        .with_threads(4)
        .find(|i| form.is_complete(i));
    assert!(seq.goal_run.is_none());
    assert!(par.goal_run.is_none());
    assert_eq!(seq.stats.closed, par.stats.closed);
    assert_eq!(seq.stats.states, par.stats.states);
}

/// Halting two-counter machines (Thm 4.1): completability through the
/// forced bounded-exploration path must return `Holds` with equal-length
/// witness runs from both engines.
#[test]
fn two_counter_halting_machines_agree() {
    let machines = [
        (
            "count_up(2)",
            idar::machines::library::count_up_then_accept(2),
        ),
        ("transfer(2)", idar::machines::library::transfer_c1_to_c2(2)),
    ];
    for (name, machine) in machines {
        let w = workloads::tcm(&machine, name, true);
        let limits = ExploreLimits {
            max_states: 500_000,
            max_state_size: 256,
            ..ExploreLimits::default()
        };
        let seq = Explorer::new(&w.form, limits)
            .with_threads(1)
            .find(|i| w.form.is_complete(i));
        let par = Explorer::new(&w.form, limits)
            .with_threads(4)
            .find(|i| w.form.is_complete(i));
        let seq_run = seq
            .goal_run
            .unwrap_or_else(|| panic!("{name}: seq finds halt"));
        let par_run = par
            .goal_run
            .unwrap_or_else(|| panic!("{name}: par finds halt"));
        assert_eq!(seq_run.len(), par_run.len(), "{name}: same BFS goal depth");
        assert!(w.form.is_complete_run(&par_run), "{name}: par run replays");
    }
}

/// A diverging machine under tight limits: neither engine may claim a
/// verdict, and closedness must agree (both searches are truncated).
#[test]
fn two_counter_diverging_machine_agrees() {
    let machine = idar::machines::library::ping_pong();
    let w = workloads::tcm(&machine, "ping_pong", false);
    let limits = ExploreLimits {
        max_states: 20_000,
        max_state_size: 64,
        ..ExploreLimits::default()
    };
    let seq = Explorer::new(&w.form, limits)
        .with_threads(1)
        .find(|i| w.form.is_complete(i));
    let par = Explorer::new(&w.form, limits)
        .with_threads(4)
        .find(|i| w.form.is_complete(i));
    assert!(seq.goal_run.is_none());
    assert!(par.goal_run.is_none());
    assert_eq!(seq.stats.closed, par.stats.closed);
    // When both searches closed, the negative answer is exact and the
    // state sets must coincide in size.
    if seq.stats.closed {
        assert_eq!(seq.stats.states, par.stats.states);
    }
}

/// The subset-lattice scaling workload: a closed 2ⁿ space where the two
/// engines must agree on everything observable.
#[test]
fn subset_lattice_closed_space_agrees() {
    let w = workloads::subset_lattice(8);
    let seq = Explorer::new(&w.form, ExploreLimits::small())
        .with_threads(1)
        .graph();
    let par = Explorer::new(&w.form, ExploreLimits::small())
        .with_threads(4)
        .graph();
    assert_eq!(seq.state_count(), 256);
    assert_eq!(state_set(&par), state_set(&seq));
    assert!(seq.stats.closed && par.stats.closed);
    assert_eq!(seq.stats.transitions, par.stats.transitions);
}

/// End-to-end through the solver dispatch: forcing bounded exploration on
/// the leave form yields the same verdict regardless of engine (the
/// solver uses the explorer's default thread count internally, so this
/// also smoke-tests the default path).
#[test]
fn completability_verdicts_engine_independent() {
    let form = leave::example_3_12();
    let r = completability(
        &form,
        &CompletabilityOptions {
            limits: ExploreLimits::small(),
            force_method: Some(Method::BoundedExploration),
            ..Default::default()
        },
    );
    assert_eq!(r.verdict, Verdict::Holds);
    assert!(form.is_complete_run(r.witness_run.as_ref().unwrap()));
}
