//! Differential tests: the pooled parallel frontier engine must be
//! indistinguishable from the sequential explorer wherever the contract
//! promises it — same state set, same `SearchStats.closed`, same
//! verdicts, same BFS goal depths — on the paper's running example, the
//! Theorem 4.1 two-counter workloads, the limit *boundaries* (depth
//! limit hitting exactly at a frontier, state-count cap firing
//! mid-layer, a goal discovered inside a pool-claimed chunk) under both
//! symmetry modes, and (via the proptest block at the bottom) on
//! seed-generated `idar-gen` forms from every fragment.
//!
//! These tests force thread counts above the machine's core count on
//! purpose: the pooled code paths (lazy spawn, chunk claiming, sharded
//! interning, barrier assignment, trim-at-finish) are exercised even on
//! a single-core host.

use idar::core::leave;
use idar::solver::{
    completability, CompletabilityOptions, ExploreLimits, Explorer, LimitKind, Method,
    SymmetryMode, Verdict,
};
use idar_bench::workloads;
use proptest::prelude::*;

/// Sorted iso-codes of a graph's states: the canonical state set.
fn state_set(g: &idar::solver::explore::StateGraph) -> Vec<String> {
    let mut v: Vec<String> = g.states().iter().map(|s| s.iso_code()).collect();
    v.sort_unstable();
    v
}

fn capped(cap: usize) -> ExploreLimits {
    ExploreLimits {
        multiplicity_cap: Some(cap),
        ..ExploreLimits::small()
    }
}

/// Ex. 3.12 leave form, multiplicity-capped so the space is finite: both
/// engines must enumerate exactly the same isomorphism classes and agree
/// that the capped search did not close (the cap prunes, by design).
#[test]
fn leave_example_3_12_same_state_set() {
    let form = leave::example_3_12();
    let seq = Explorer::new(&form, capped(2)).with_threads(1).graph();
    for threads in [2, 4] {
        let par = Explorer::new(&form, capped(2))
            .with_threads(threads)
            .graph();
        assert_eq!(state_set(&par), state_set(&seq), "threads={threads}");
        assert_eq!(par.stats.states, seq.stats.states);
        assert_eq!(par.stats.transitions, seq.stats.transitions);
        assert_eq!(par.stats.closed, seq.stats.closed);
        assert_eq!(par.edge_count(), seq.edge_count());
    }
}

/// Both engines find a complete run for φ = f at the same BFS depth, and
/// both runs replay.
#[test]
fn leave_example_3_12_same_goal_depth() {
    let form = leave::example_3_12();
    let seq = Explorer::new(&form, ExploreLimits::small())
        .with_threads(1)
        .find(|i| form.is_complete(i));
    let par = Explorer::new(&form, ExploreLimits::small())
        .with_threads(4)
        .find(|i| form.is_complete(i));
    let seq_run = seq.goal_run.expect("completable");
    let par_run = par.goal_run.expect("completable");
    assert_eq!(seq_run.len(), par_run.len());
    assert!(form.is_complete_run(&par_run));
}

/// φ = f ∧ ¬s has no complete run (Sec. 3.5): both engines agree on the
/// verdict-relevant facts under the capped search.
#[test]
fn leave_negative_claim_agrees() {
    let form = leave::example_3_12().with_completion(idar::core::Formula::parse("f & !s").unwrap());
    let seq = Explorer::new(&form, capped(2))
        .with_threads(1)
        .find(|i| form.is_complete(i));
    let par = Explorer::new(&form, capped(2))
        .with_threads(4)
        .find(|i| form.is_complete(i));
    assert!(seq.goal_run.is_none());
    assert!(par.goal_run.is_none());
    assert_eq!(seq.stats.closed, par.stats.closed);
    assert_eq!(seq.stats.states, par.stats.states);
}

/// Halting two-counter machines (Thm 4.1): completability through the
/// forced bounded-exploration path must return `Holds` with equal-length
/// witness runs from both engines.
#[test]
fn two_counter_halting_machines_agree() {
    let machines = [
        (
            "count_up(2)",
            idar::machines::library::count_up_then_accept(2),
        ),
        ("transfer(2)", idar::machines::library::transfer_c1_to_c2(2)),
    ];
    for (name, machine) in machines {
        let w = workloads::tcm(&machine, name, true);
        let limits = ExploreLimits {
            max_states: 500_000,
            max_state_size: 256,
            ..ExploreLimits::default()
        };
        let seq = Explorer::new(&w.form, limits)
            .with_threads(1)
            .find(|i| w.form.is_complete(i));
        let par = Explorer::new(&w.form, limits)
            .with_threads(4)
            .find(|i| w.form.is_complete(i));
        let seq_run = seq
            .goal_run
            .unwrap_or_else(|| panic!("{name}: seq finds halt"));
        let par_run = par
            .goal_run
            .unwrap_or_else(|| panic!("{name}: par finds halt"));
        assert_eq!(seq_run.len(), par_run.len(), "{name}: same BFS goal depth");
        assert!(w.form.is_complete_run(&par_run), "{name}: par run replays");
    }
}

/// A diverging machine under tight limits: neither engine may claim a
/// verdict, and closedness must agree (both searches are truncated).
#[test]
fn two_counter_diverging_machine_agrees() {
    let machine = idar::machines::library::ping_pong();
    let w = workloads::tcm(&machine, "ping_pong", false);
    let limits = ExploreLimits {
        max_states: 20_000,
        max_state_size: 64,
        ..ExploreLimits::default()
    };
    let seq = Explorer::new(&w.form, limits)
        .with_threads(1)
        .find(|i| w.form.is_complete(i));
    let par = Explorer::new(&w.form, limits)
        .with_threads(4)
        .find(|i| w.form.is_complete(i));
    assert!(seq.goal_run.is_none());
    assert!(par.goal_run.is_none());
    assert_eq!(seq.stats.closed, par.stats.closed);
    // When both searches closed, the negative answer is exact and the
    // state sets must coincide in size.
    if seq.stats.closed {
        assert_eq!(seq.stats.states, par.stats.states);
    }
}

/// The subset-lattice scaling workload: a closed 2ⁿ space where the two
/// engines must agree on everything observable.
#[test]
fn subset_lattice_closed_space_agrees() {
    let w = workloads::subset_lattice(8);
    let seq = Explorer::new(&w.form, ExploreLimits::small())
        .with_threads(1)
        .graph();
    let par = Explorer::new(&w.form, ExploreLimits::small())
        .with_threads(4)
        .graph();
    assert_eq!(seq.state_count(), 256);
    assert_eq!(state_set(&par), state_set(&seq));
    assert!(seq.stats.closed && par.stats.closed);
    assert_eq!(seq.stats.transitions, par.stats.transitions);
}

/// Depth limit hitting **exactly at a frontier**: layers below the limit
/// are fully expanded by both engines, the probe fires on the frontier
/// that still has successors, and everything observable agrees — under
/// both symmetry modes. (The subset lattice grants deletes, so every
/// depth-`d` frontier state has a successor and the limit must de-close
/// the search.)
#[test]
fn depth_limit_hit_exactly_at_frontier_agrees() {
    let w = workloads::subset_lattice(10);
    for symmetry in [SymmetryMode::Reduced, SymmetryMode::Plain] {
        for max_depth in [1usize, 2, 3] {
            let limits = ExploreLimits {
                max_depth,
                ..ExploreLimits::default()
            };
            let seq = Explorer::new(&w.form, limits)
                .with_threads(1)
                .with_symmetry(symmetry)
                .graph();
            assert_eq!(seq.stats.limit_hit, Some(LimitKind::Depth));
            for threads in [2, 4] {
                let par = Explorer::new(&w.form, limits)
                    .with_threads(threads)
                    .with_symmetry(symmetry)
                    .graph();
                let ctx = format!("{symmetry} depth {max_depth} threads {threads}");
                assert_eq!(par.state_count(), seq.state_count(), "{ctx}");
                assert_eq!(par.stats.states, seq.stats.states, "{ctx}");
                assert_eq!(par.stats.transitions, seq.stats.transitions, "{ctx}");
                assert!(!par.stats.closed, "{ctx}");
                assert_eq!(par.stats.limit_hit, Some(LimitKind::Depth), "{ctx}");
                assert_eq!(state_set(&par), state_set(&seq), "{ctx}");
                assert_eq!(par.edge_count(), seq.edge_count(), "{ctx}");
            }
        }
    }
}

/// A depth limit that exactly exhausts the space: the deletion-free
/// lattice's deepest states have no successors, so the probe finds
/// nothing, no limit is recorded, and the search **closes** — in both
/// engines, under both symmetry modes.
#[test]
fn depth_limit_exhausting_the_space_closes_in_both_engines() {
    use idar::core::{AccessRules, Formula, GuardedForm, Instance, Schema};
    use std::sync::Arc;
    let n = 6usize;
    let labels: Vec<String> = (0..n).map(|i| format!("l{i}")).collect();
    let schema = Arc::new(Schema::parse(&labels.join(", ")).unwrap());
    let mut rules = AccessRules::new(&schema);
    for l in &labels {
        // Add-once, never delete: depth n is a dead end, not a frontier.
        rules.set(
            idar::core::Right::Add,
            schema.resolve(l).unwrap(),
            Formula::parse(&format!("!{l}")).unwrap(),
        );
    }
    let form = GuardedForm::new(
        schema.clone(),
        rules,
        Instance::empty(schema),
        Formula::True,
    );
    let limits = ExploreLimits {
        max_depth: n,
        ..ExploreLimits::default()
    };
    for symmetry in [SymmetryMode::Reduced, SymmetryMode::Plain] {
        let seq = Explorer::new(&form, limits)
            .with_threads(1)
            .with_symmetry(symmetry)
            .graph();
        assert!(seq.stats.closed, "{symmetry}: depth n exhausts the space");
        assert_eq!(seq.stats.limit_hit, None, "{symmetry}");
        if symmetry == SymmetryMode::Reduced {
            assert_eq!(seq.state_count(), 1 << n, "one state per subset");
        }
        for threads in [2, 4] {
            let par = Explorer::new(&form, limits)
                .with_threads(threads)
                .with_symmetry(symmetry)
                .graph();
            assert!(par.stats.closed, "{symmetry} threads {threads}");
            assert_eq!(par.stats.limit_hit, None, "{symmetry} threads {threads}");
            assert_eq!(par.state_count(), seq.state_count());
            assert_eq!(par.stats.transitions, seq.stats.transitions);
            assert_eq!(state_set(&par), state_set(&seq));
        }
    }
}

/// State-count cap firing **mid-layer**: both engines must stop at
/// *exactly* the cap (the pooled engine trims barrier assignment at the
/// cap, whatever its workers interned past it), report the `States`
/// limit, and stay un-closed — under both symmetry modes.
#[test]
fn state_limit_mid_layer_agrees() {
    let w = workloads::subset_lattice(8);
    for symmetry in [SymmetryMode::Reduced, SymmetryMode::Plain] {
        for max_states in [2usize, 7, 37, 100] {
            let limits = ExploreLimits {
                max_states,
                ..ExploreLimits::default()
            };
            let seq = Explorer::new(&w.form, limits)
                .with_threads(1)
                .with_symmetry(symmetry)
                .graph();
            for threads in [2, 4] {
                let par = Explorer::new(&w.form, limits)
                    .with_threads(threads)
                    .with_symmetry(symmetry)
                    .graph();
                let ctx = format!("{symmetry} cap {max_states} threads {threads}");
                assert_eq!(seq.state_count(), max_states, "{ctx}");
                assert_eq!(par.state_count(), max_states, "{ctx}");
                assert_eq!(par.stats.states, seq.stats.states, "{ctx}");
                assert!(!seq.stats.closed && !par.stats.closed, "{ctx}");
                assert_eq!(seq.stats.limit_hit, Some(LimitKind::States), "{ctx}");
                assert_eq!(par.stats.limit_hit, Some(LimitKind::States), "{ctx}");
            }
        }
    }
}

/// A goal discovered **inside a pool-claimed chunk**: the goal sits deep
/// in combinatorially wide layers (well past the dispatch threshold for
/// every thread count tested), so it is found by a worker mid-chunk, not
/// by the coordinator — and its BFS depth must still match the
/// sequential engine exactly, under both symmetry modes.
#[test]
fn goal_found_during_stolen_chunk_agrees() {
    let w = workloads::subset_lattice(12);
    for symmetry in [SymmetryMode::Reduced, SymmetryMode::Plain] {
        // Reduced: 2¹² subsets, goal deep at depth 8. Plain: the ordered
        // space explodes past the state cap beyond depth 5, so the goal
        // sits at depth 5 — still behind combinatorially wide layers.
        let goal_size = match symmetry {
            SymmetryMode::Reduced => 8usize,
            SymmetryMode::Plain => 5usize,
        };
        let goal =
            |i: &idar::core::Instance| i.children(idar::core::InstNodeId::ROOT).len() == goal_size;
        let seq = Explorer::new(&w.form, ExploreLimits::default())
            .with_threads(1)
            .with_symmetry(symmetry)
            .find(goal);
        let seq_run = seq.goal_run.expect("goal reachable");
        assert_eq!(seq_run.len(), goal_size, "{symmetry}: goal at BFS depth");
        for threads in [2, 4, 8] {
            let par = Explorer::new(&w.form, ExploreLimits::default())
                .with_threads(threads)
                .with_symmetry(symmetry)
                .find(goal);
            let par_run = par
                .goal_run
                .unwrap_or_else(|| panic!("{symmetry} threads {threads}: goal missed"));
            assert_eq!(
                par_run.len(),
                seq_run.len(),
                "{symmetry} threads {threads}: same BFS goal depth"
            );
            let replay = w.form.replay(&par_run).expect("pooled run replays");
            assert!(goal(replay.last()), "{symmetry} threads {threads}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pooled-engine `SearchStats` and goal verdicts match the
    /// sequential engine on seed-generated forms from every `idar-gen`
    /// fragment: counts/closedness always, transitions and state sets on
    /// closed searches, goal existence and BFS depth whenever neither
    /// engine hit a limit, and every returned run must replay complete.
    #[test]
    fn pooled_engine_matches_sequential_on_generated_forms(
        ix in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        use idar_gen::{generate, FragmentSpec, GenConfig};
        let cfg = GenConfig::new(FragmentSpec::ALL[ix % FragmentSpec::ALL.len()]);
        let form = generate(&cfg, seed);
        let limits = ExploreLimits {
            max_states: 3_000,
            max_state_size: 20,
            max_depth: usize::MAX,
            multiplicity_cap: Some(2),
        };
        let seq = Explorer::new(&form, limits).with_threads(1).graph();
        let par = Explorer::new(&form, limits).with_threads(4).graph();
        prop_assert_eq!(par.state_count(), seq.state_count());
        prop_assert_eq!(par.stats.states, seq.stats.states);
        prop_assert_eq!(par.stats.closed, seq.stats.closed);
        if seq.stats.closed {
            prop_assert_eq!(par.stats.transitions, seq.stats.transitions);
            prop_assert_eq!(state_set(&par), state_set(&seq));
            prop_assert_eq!(par.edge_count(), seq.edge_count());
        }

        let seq_f = Explorer::new(&form, limits)
            .with_threads(1)
            .find(|i| form.is_complete(i));
        let par_f = Explorer::new(&form, limits)
            .with_threads(4)
            .find(|i| form.is_complete(i));
        if seq_f.stats.limit_hit.is_none() && par_f.stats.limit_hit.is_none() {
            prop_assert_eq!(seq_f.goal_run.is_some(), par_f.goal_run.is_some());
            if let (Some(a), Some(b)) = (&seq_f.goal_run, &par_f.goal_run) {
                prop_assert_eq!(a.len(), b.len());
            }
        }
        for run in [&seq_f.goal_run, &par_f.goal_run].into_iter().flatten() {
            prop_assert!(form.is_complete_run(run));
        }
    }
}

/// End-to-end through the solver dispatch: forcing bounded exploration on
/// the leave form yields the same verdict regardless of engine (the
/// solver uses the explorer's default thread count internally, so this
/// also smoke-tests the default path).
#[test]
fn completability_verdicts_engine_independent() {
    let form = leave::example_3_12();
    let r = completability(
        &form,
        &CompletabilityOptions {
            limits: ExploreLimits::small(),
            force_method: Some(Method::BoundedExploration),
            ..Default::default()
        },
    );
    assert_eq!(r.verdict, Verdict::Holds);
    assert!(form.is_complete_run(r.witness_run.as_ref().unwrap()));
}
