//! # idar — Instance-Dependent Access Rules
//!
//! A faithful, executable reproduction of *Calders, Dekeyser, Hidders,
//! Paredaens — "Analyzing Workflows implied by Instance-Dependent Access
//! Rules" (PODS 2006)*.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the formalism: schemas, instances, formulas, bisimulation
//!   and canonical instances, guarded forms, fragments (Sections 3.1–3.5).
//! * [`solver`] — decision procedures for completability and
//!   semi-soundness, satisfiability, witness extraction (Sections 4–5).
//! * [`logic`] — propositional substrate: DPLL SAT and recursive QBF.
//! * [`machines`] — two-counter (Minsky) machines (Theorem 4.1 substrate).
//! * [`deadlock`] — the reachable-deadlock problem (Theorem 4.6 substrate).
//! * [`reductions`] — every reduction in the paper, as executable
//!   compilers between problem representations.
//! * [`workflow`] — reachability graphs, run extraction, the online form
//!   manager, and full workflow soundness.
//! * [`gen`] — seed-driven scenario generation: fragment-parameterised
//!   guarded-form generators, the deterministic builders the benches
//!   share, and verdict-preserving shrinking for fuzz repros.
//! * [`server`] — the multi-tenant analysis service: a std-only HTTP
//!   front end over the pipeline with per-tenant form sessions, a
//!   process-wide verdict cache, and budgeted admission control.
//!
//! ## Quickstart
//!
//! ```
//! use idar::core::leave;
//! use idar::solver::{completability, Verdict};
//!
//! // The paper's running example: the leave-application form (Ex. 3.12).
//! let form = leave::example_3_12();
//! // Is the form completable? (It is: Thm-grade exact answer not needed —
//! // the bounded explorer finds a finishing run.)
//! let result = completability(&form, &Default::default());
//! assert!(matches!(result.verdict, Verdict::Holds));
//! ```

pub use idar_core as core;
pub use idar_deadlock as deadlock;
pub use idar_gen as gen;
pub use idar_logic as logic;
pub use idar_machines as machines;
pub use idar_reductions as reductions;
pub use idar_server as server;
pub use idar_solver as solver;
pub use idar_workflow as workflow;
