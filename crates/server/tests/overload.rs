//! Overload shedding and graceful-drain behaviour, made deterministic
//! with the [`Gate`] test instrument: holding the gate parks every
//! worker after request parse, so the tests control exactly when the
//! pool saturates — no sleeps standing in for synchronization.

mod common;

use common::{exchange, session_id, two_sibling_ron};
use idar_server::{Gate, Server, ServerConfig};
use std::time::{Duration, Instant};

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    // Generous: under `cargo test --workspace` many test binaries share
    // the CPU, and a parked-worker handoff can take a while to schedule.
    let deadline = Instant::now() + Duration::from_secs(60);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Saturate the pool and the queue, then watch an excess request get
/// shed — and verify the shed submit never touched the session it was
/// aimed at.
#[test]
fn shed_requests_never_partially_mutate_a_session() {
    let gate = Gate::new();
    let config = ServerConfig {
        threads: 2,
        concurrency: 2,
        queue_capacity: 1,
        gate: Some(gate.clone()),
        ..ServerConfig::default()
    };
    let handle = Server::start("127.0.0.1:0", config).expect("server start");
    let addr = handle.addr();

    // A live session whose state the shed request must not touch.
    let (status, _, body) = exchange(
        addr,
        "POST",
        "/v1/session",
        Some("acme"),
        &two_sibling_ron(),
    );
    assert_eq!(status, 200);
    let sid = session_id(&body);

    // Park both workers — one at a time, so the 1-slot queue never holds
    // two simultaneous connects (that would shed a parker) — then queue
    // one filler: the queue is now at capacity and every further
    // connection is shed.
    gate.hold();
    let mut parkers = Vec::new();
    for i in 0..2 {
        parkers.push(std::thread::spawn(move || {
            exchange(addr, "GET", "/healthz", None, "")
        }));
        wait_until("worker parked", || gate.waiting() == i + 1);
    }
    let filler = std::thread::spawn(move || exchange(addr, "GET", "/healthz", None, ""));
    wait_until("filler queued", || handle.metrics().accepted >= 4);

    // The excess submit — a request that *would* mutate the session —
    // is refused at admission with 429 + Retry-After.
    let (status, headers, _) = exchange(
        addr,
        "POST",
        &format!("/v1/session/{sid}/submit"),
        Some("acme"),
        "add 1 p/b",
    );
    assert_eq!(status, 429, "excess request must be shed");
    assert_eq!(headers.get("retry-after").map(String::as_str), Some("1"));
    assert!(handle.metrics().shed >= 1);

    gate.release();
    for p in parkers {
        assert_eq!(p.join().unwrap().0, 200);
    }
    assert_eq!(filler.join().unwrap().0, 200);

    // The session is exactly as it was: zero history, still open.
    let (status, _, body) = exchange(addr, "GET", &format!("/v1/session/{sid}"), Some("acme"), "");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"history\":0"),
        "shed submit mutated the session: {body}"
    );

    let finals = handle.shutdown();
    assert_eq!(finals.accepted, finals.completed, "drain invariant");
}

/// Requests in flight — parked mid-handling and queued-but-unclaimed —
/// when shutdown begins still complete with real responses.
#[test]
fn inflight_and_queued_requests_complete_on_shutdown() {
    let gate = Gate::new();
    let config = ServerConfig {
        threads: 2,
        concurrency: 2,
        queue_capacity: 8,
        gate: Some(gate.clone()),
        ..ServerConfig::default()
    };
    let handle = Server::start("127.0.0.1:0", config).expect("server start");
    let addr = handle.addr();

    // Two in-flight (parked in their workers) + one queued behind them.
    gate.hold();
    let form = two_sibling_ron();
    let inflight: Vec<_> = (0..2)
        .map(|_| {
            let form = form.clone();
            std::thread::spawn(move || {
                exchange(addr, "POST", "/v1/analyze?kind=completability", None, &form)
            })
        })
        .collect();
    wait_until("both workers parked", || gate.waiting() == 2);
    let queued = {
        let form = form.clone();
        std::thread::spawn(move || {
            exchange(addr, "POST", "/v1/analyze?kind=completability", None, &form)
        })
    };
    wait_until("third request queued", || handle.metrics().accepted >= 3);

    // Begin shutdown while all three are unfinished, then let them run.
    let shutdown = std::thread::spawn(move || handle.shutdown());
    std::thread::sleep(Duration::from_millis(30)); // let the flag land
    assert_eq!(gate.waiting(), 2, "shutdown must not abort parked work");
    gate.release();

    for t in inflight {
        let (status, headers, _) = t.join().unwrap();
        assert_eq!(status, 200, "in-flight analysis must complete");
        assert_eq!(headers.get("x-verdict").map(String::as_str), Some("holds"));
    }
    let (status, _, _) = queued.join().unwrap();
    assert_eq!(status, 200, "queued request must still be served");

    let finals = shutdown.join().unwrap();
    assert_eq!(finals.accepted, finals.completed, "drain invariant");
    assert!(finals.accepted >= 3);
}

/// A burst far beyond the queue sheds cleanly: every response is 200 or
/// 429, and after the drain `accepted == completed` exactly.
#[test]
fn burst_sheds_cleanly_and_drains() {
    let config = ServerConfig {
        threads: 2,
        concurrency: 2,
        queue_capacity: 2,
        ..ServerConfig::default()
    };
    let handle = Server::start("127.0.0.1:0", config).expect("server start");
    let addr = handle.addr();

    let clients: Vec<_> = (0..40)
        .map(|_| std::thread::spawn(move || exchange(addr, "GET", "/healthz", None, "").0))
        .collect();
    let mut ok = 0u64;
    let mut shed = 0u64;
    for c in clients {
        match c.join().unwrap() {
            200 => ok += 1,
            429 => shed += 1,
            other => panic!("unexpected status {other} under overload"),
        }
    }
    assert_eq!(ok + shed, 40);
    assert!(ok >= 1, "some requests must get through");

    let finals = handle.shutdown();
    assert_eq!(finals.accepted, finals.completed, "drain invariant");
    assert_eq!(finals.accepted, ok, "every admitted request completed");
    assert_eq!(finals.shed, shed, "shed counter matches observed 429s");
}
