//! Shared helpers for the server integration tests: a blocking HTTP
//! client and the canonical two-sibling test form.
//!
//! Each integration-test binary compiles its own copy, so helpers a
//! given binary does not use would trip `dead_code`.
#![allow(dead_code)]

use idar_core::serialize::to_ron;
use idar_core::{AccessRules, Formula, GuardedForm, Instance, Right, Schema};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// One HTTP exchange; returns `(status, headers, body)`. Headers are
/// lowercased. Write errors are tolerated (a shedding server closes its
/// read side early); the response is what counts.
pub fn exchange(
    addr: SocketAddr,
    method: &str,
    path: &str,
    tenant: Option<&str>,
    body: &str,
) -> (u16, HashMap<String, String>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let tenant_header = match tenant {
        Some(t) => format!("X-Tenant: {t}\r\n"),
        None => String::new(),
    };
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\n{tenant_header}Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(request.as_bytes());
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let text = String::from_utf8(raw).expect("utf-8 response");
    let (head, resp_body) = text.split_once("\r\n\r\n").expect("complete response");
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, resp_body.to_string())
}

/// The two-sibling form from the manager's cache test: schema `p(b)`,
/// everything addable, init `p, p`, completion `p[b]`. Its safe-update
/// sweep makes exactly 2 oracle runs and 1 cache hit cold, all hits
/// warm — the 2/3 hit-rate pin.
pub fn two_sibling_form() -> GuardedForm {
    let schema = Arc::new(Schema::parse("p(b)").unwrap());
    let mut rules = AccessRules::new(&schema);
    rules.set(
        Right::Add,
        schema.resolve("p").unwrap(),
        Formula::parse("true").unwrap(),
    );
    rules.set(
        Right::Add,
        schema.resolve("p/b").unwrap(),
        Formula::parse("true").unwrap(),
    );
    let init = Instance::parse(schema.clone(), "p, p").unwrap();
    GuardedForm::new(schema, rules, init, Formula::parse("p[b]").unwrap())
}

/// The form as a request body.
pub fn two_sibling_ron() -> String {
    to_ron(&two_sibling_form())
}

/// The trap form from the manager tests: schema `g, t`, `t` addable
/// unless present, `g` addable only into the empty instance, completion
/// `g`. Its negative guards force `BoundedExploration`, so a session on
/// it retains a state graph — the form the retained-memory metrics
/// tests need (positive forms saturate and never build one).
pub fn trap_form_ron() -> String {
    let schema = Arc::new(Schema::parse("g, t").unwrap());
    let mut rules = AccessRules::new(&schema);
    rules.set(
        Right::Add,
        schema.resolve("g").unwrap(),
        Formula::parse("!t & !g").unwrap(),
    );
    rules.set(
        Right::Add,
        schema.resolve("t").unwrap(),
        Formula::parse("!t").unwrap(),
    );
    let init = Instance::empty(schema.clone());
    to_ron(&GuardedForm::new(
        schema,
        rules,
        init,
        Formula::parse("g").unwrap(),
    ))
}

/// Pull the quoted update tokens out of a `{"safe":[...]}` body.
pub fn safe_tokens(body: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut rest = body;
    while let Some(start) = rest.find('"') {
        rest = &rest[start + 1..];
        let Some(end) = rest.find('"') else { break };
        tokens.push(rest[..end].to_string());
        rest = &rest[end + 1..];
    }
    tokens.retain(|t| t.starts_with("add ") || t.starts_with("del "));
    tokens
}

/// `{"session":N}` → N.
pub fn session_id(body: &str) -> u64 {
    body.chars()
        .skip_while(|c| !c.is_ascii_digit())
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("session id in body")
}
