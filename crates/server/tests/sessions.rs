//! Session lifecycle, cross-tenant cache sharing, and the cache
//! hit-rate regression pin over the HTTP surface.

mod common;

use common::{exchange, safe_tokens, session_id, trap_form_ron, two_sibling_ron};
use idar_server::{Server, ServerConfig};
use idar_solver::{Budget, ExploreLimits};

/// The manager-test budget: multiplicity cap 2 so the two-sibling form's
/// sweep makes exactly 2 oracle runs and 1 hit cold.
fn pin_config() -> ServerConfig {
    ServerConfig {
        budget: Budget::with_limits(ExploreLimits {
            multiplicity_cap: Some(2),
            ..ExploreLimits::small()
        }),
        ..ServerConfig::default()
    }
}

/// Satellite regression pin: a server session is a *persistent*
/// `FormManager`, so its verdict-cache hit rate over repeated sweeps
/// must be at least the single-tenant manager value from BENCH_4
/// (2 hits per 1 miss after a warm sweep, i.e. 2/3 ≈ 0.667). A
/// per-request manager would rebuild its memoized key and never reuse
/// in-session verdicts at this rate.
#[test]
fn session_reuse_keeps_cache_hit_rate_at_least_two_thirds() {
    let handle = Server::start("127.0.0.1:0", pin_config()).expect("server start");
    let addr = handle.addr();

    let (status, _, body) = exchange(
        addr,
        "POST",
        "/v1/session",
        Some("acme"),
        &two_sibling_ron(),
    );
    assert_eq!(status, 200);
    let sid = session_id(&body);

    // Cold sweep: 3 candidates, isomorphic successors solve once.
    let (status, headers, body) = exchange(
        addr,
        "GET",
        &format!("/v1/session/{sid}/safe_updates"),
        Some("acme"),
        "",
    );
    assert_eq!(status, 200);
    assert_eq!(headers.get("x-verdict").map(String::as_str), Some("safe:3"));
    assert_eq!(safe_tokens(&body).len(), 3);
    let cold = handle.cache().stats();
    assert_eq!(cold.misses, 2, "isomorphic successors solve once");
    assert_eq!(cold.hits, 1);

    // Warm sweep: the session's manager (and its memoized rules key)
    // persisted across requests, so everything hits.
    let (status, _, _) = exchange(
        addr,
        "GET",
        &format!("/v1/session/{sid}/safe_updates"),
        Some("acme"),
        "",
    );
    assert_eq!(status, 200);
    let warm = handle.cache().stats();
    assert_eq!(warm.misses, 2, "no new oracle runs on the warm sweep");
    assert_eq!(warm.hits, 4);
    assert!(
        warm.hit_rate() >= 0.66,
        "hit rate {:.3} fell below the BENCH_4 single-tenant pin (2/3)",
        warm.hit_rate()
    );

    handle.shutdown();
}

/// The cache is process-wide and keyed by rules signature: a second
/// tenant opening the *same* form pays zero oracle runs for its sweep.
#[test]
fn tenants_with_identical_rules_share_the_cache() {
    let handle = Server::start("127.0.0.1:0", pin_config()).expect("server start");
    let addr = handle.addr();

    let (_, _, body) = exchange(
        addr,
        "POST",
        "/v1/session",
        Some("acme"),
        &two_sibling_ron(),
    );
    let sid_a = session_id(&body);
    exchange(
        addr,
        "GET",
        &format!("/v1/session/{sid_a}/safe_updates"),
        Some("acme"),
        "",
    );
    let after_a = handle.cache().stats();
    assert_eq!(after_a.misses, 2);

    // Tenant B, same rules: its whole sweep is served from A's entries.
    let (_, _, body) = exchange(
        addr,
        "POST",
        "/v1/session",
        Some("globex"),
        &two_sibling_ron(),
    );
    let sid_b = session_id(&body);
    let (status, headers, _) = exchange(
        addr,
        "GET",
        &format!("/v1/session/{sid_b}/safe_updates"),
        Some("globex"),
        "",
    );
    assert_eq!(status, 200);
    assert_eq!(headers.get("x-verdict").map(String::as_str), Some("safe:3"));
    let after_b = handle.cache().stats();
    assert_eq!(
        after_b.misses, after_a.misses,
        "tenant B's sweep must not run the oracle at all"
    );
    assert!(after_b.hits > after_a.hits);

    let finals = handle.shutdown();
    assert_eq!(finals.tenants, 2);
    assert_eq!(finals.sessions, 2);
}

/// The stateless analyze route reports cache provenance: first request
/// misses, an identical second request hits. Both carry `X-Method`, and
/// the static screener (which decides the two-sibling form without
/// exploring) is counted once in `/metrics` — the cache hit replays the
/// method without re-running the screener.
#[test]
fn analyze_reports_cache_provenance_across_requests() {
    let handle = Server::start("127.0.0.1:0", pin_config()).expect("server start");
    let addr = handle.addr();
    let form = two_sibling_ron();

    let (status, headers, _) =
        exchange(addr, "POST", "/v1/analyze?kind=completability", None, &form);
    assert_eq!(status, 200);
    assert_eq!(headers.get("x-verdict").map(String::as_str), Some("holds"));
    assert_eq!(headers.get("x-cache").map(String::as_str), Some("miss"));
    assert_eq!(
        headers.get("x-method").map(String::as_str),
        Some("static-screen")
    );

    let (status, headers, _) =
        exchange(addr, "POST", "/v1/analyze?kind=completability", None, &form);
    assert_eq!(status, 200);
    assert_eq!(headers.get("x-verdict").map(String::as_str), Some("holds"));
    assert_eq!(headers.get("x-cache").map(String::as_str), Some("hit"));
    assert_eq!(
        headers.get("x-method").map(String::as_str),
        Some("static-screen")
    );

    let (status, _, body) = exchange(addr, "GET", "/metrics", None, "");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"static_screens\":1"),
        "screener must be counted once (not on the cache hit): {body}"
    );

    handle.shutdown();
}

/// Submitting a safe `add … p/b` token completes the two-sibling form.
#[test]
fn submit_applies_updates_and_reaches_completion() {
    let handle = Server::start("127.0.0.1:0", pin_config()).expect("server start");
    let addr = handle.addr();

    let (_, _, body) = exchange(
        addr,
        "POST",
        "/v1/session",
        Some("acme"),
        &two_sibling_ron(),
    );
    let sid = session_id(&body);
    let (_, _, body) = exchange(
        addr,
        "GET",
        &format!("/v1/session/{sid}/safe_updates"),
        Some("acme"),
        "",
    );
    let token = safe_tokens(&body)
        .into_iter()
        .find(|t| t.ends_with("p/b"))
        .expect("a p/b addition is safe");

    // Vet first (no mutation), then submit (applies).
    let (status, headers, _) = exchange(
        addr,
        "POST",
        &format!("/v1/session/{sid}/vet"),
        Some("acme"),
        &token,
    );
    assert_eq!(status, 200);
    assert_eq!(headers.get("x-verdict").map(String::as_str), Some("ok"));

    let (status, headers, body) = exchange(
        addr,
        "POST",
        &format!("/v1/session/{sid}/submit"),
        Some("acme"),
        &token,
    );
    assert_eq!(status, 200);
    assert_eq!(
        headers.get("x-verdict").map(String::as_str),
        Some("ok-complete"),
        "adding b under a p satisfies p[b]: {body}"
    );
    assert!(body.contains("\"complete\":true"));

    let (_, headers, body) = exchange(addr, "GET", &format!("/v1/session/{sid}"), Some("acme"), "");
    assert_eq!(
        headers.get("x-verdict").map(String::as_str),
        Some("complete")
    );
    assert!(body.contains("\"history\":1"));

    handle.shutdown();
}

/// The `/metrics` endpoint surfaces the retained-graph byte gauges, and
/// a byte budget too small for any graph turns sweeps into recorded
/// evictions with bytes freed. Uses the trap form: its negative guards
/// select bounded exploration, the only method that retains a graph.
#[test]
fn metrics_report_retained_bytes_and_evictions() {
    // Roomy budget: the session graph survives and the gauges see it.
    let handle = Server::start("127.0.0.1:0", pin_config()).expect("server start");
    let addr = handle.addr();
    let (_, _, body) = exchange(addr, "POST", "/v1/session", Some("acme"), &trap_form_ron());
    let sid = session_id(&body);
    exchange(
        addr,
        "GET",
        &format!("/v1/session/{sid}/safe_updates"),
        Some("acme"),
        "",
    );
    let m = handle.metrics();
    assert!(m.retained_states > 0, "sweep must retain a session graph");
    assert!(m.retained_bytes > m.retained_states * 4);
    assert_eq!(m.graph_evictions, 0);
    let (status, _, body) = exchange(addr, "GET", "/metrics", None, "");
    assert_eq!(status, 200);
    assert!(body.contains("\"retained_bytes\":"), "{body}");
    assert!(body.contains("\"graph_evictions\":0"), "{body}");
    handle.shutdown();

    // 16-byte budget: every built graph is immediately over budget, so
    // the sweep still answers but the eviction is counted with its
    // bytes freed, and nothing stays retained.
    let tiny = ServerConfig {
        max_retained_bytes: Some(16),
        ..pin_config()
    };
    let handle = Server::start("127.0.0.1:0", tiny).expect("server start");
    let addr = handle.addr();
    let (_, _, body) = exchange(addr, "POST", "/v1/session", Some("acme"), &trap_form_ron());
    let sid = session_id(&body);
    let (status, headers, _) = exchange(
        addr,
        "GET",
        &format!("/v1/session/{sid}/safe_updates"),
        Some("acme"),
        "",
    );
    assert_eq!(status, 200, "eviction must not change the answer");
    assert_eq!(headers.get("x-verdict").map(String::as_str), Some("safe:1"));
    let m = handle.metrics();
    assert!(m.graph_evictions >= 1, "16-byte budget must evict");
    assert!(m.evicted_bytes > 16);
    assert_eq!(m.retained_states, 0, "nothing survives a 16-byte budget");
    handle.shutdown();
}

/// Protocol error paths: missing tenant, bad form, unknown session,
/// unknown route, bad update token, closed session.
#[test]
fn error_paths_answer_with_the_right_statuses() {
    let handle = Server::start("127.0.0.1:0", pin_config()).expect("server start");
    let addr = handle.addr();

    let (status, _, _) = exchange(addr, "POST", "/v1/session", None, &two_sibling_ron());
    assert_eq!(status, 400, "session routes require X-Tenant");

    let (status, _, _) = exchange(addr, "POST", "/v1/session", Some("acme"), "not ron at all");
    assert_eq!(status, 400, "unparseable form");

    let (status, _, _) = exchange(addr, "GET", "/v1/session/99", Some("acme"), "");
    assert_eq!(status, 404, "unknown session");

    let (status, _, _) = exchange(addr, "GET", "/v1/nope", None, "");
    assert_eq!(status, 404, "unknown route");

    let (status, _, _) = exchange(addr, "POST", "/v1/analyze?kind=frobnicate", None, "");
    assert_eq!(status, 400, "unknown analysis kind");

    let (_, _, body) = exchange(
        addr,
        "POST",
        "/v1/session",
        Some("acme"),
        &two_sibling_ron(),
    );
    let sid = session_id(&body);
    let (status, _, _) = exchange(
        addr,
        "POST",
        &format!("/v1/session/{sid}/submit"),
        Some("acme"),
        "frob 1 2",
    );
    assert_eq!(status, 400, "malformed update token");

    let (status, _, _) = exchange(
        addr,
        "POST",
        &format!("/v1/session/{sid}/close"),
        Some("acme"),
        "",
    );
    assert_eq!(status, 200);
    let (status, _, _) = exchange(addr, "GET", &format!("/v1/session/{sid}"), Some("acme"), "");
    assert_eq!(status, 404, "closed sessions are gone");

    let finals = handle.shutdown();
    assert_eq!(finals.accepted, finals.completed);
    assert!(finals.bad_requests >= 5);
}
