//! Process-wide server state: tenants, sessions, metrics, and the
//! load-shedding test gate.
//!
//! Locking discipline (finest to coarsest holding time):
//!
//! * the tenant *map* lock is held only to clone a `Arc<Tenant>` out;
//! * a tenant's *session map* lock is held only to clone a session
//!   `Arc<Mutex<FormManager>>` out (or insert/remove one);
//! * a *session* lock is held for the duration of one operation on that
//!   session — two requests to the same session serialize (a form
//!   session is a linearizable object: vet-then-apply must not
//!   interleave), while requests to different sessions or tenants run
//!   concurrently on different workers.
//!
//! No analysis ever runs under the map locks.

use idar_solver::cache::CacheStats;
use idar_solver::VerdictCache;
use idar_workflow::manager::FormManager;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One tenant: an id-keyed map of live form sessions.
pub(crate) struct Tenant {
    /// Live sessions; the per-session mutex serializes operations on one
    /// session without blocking the rest of the tenant.
    pub sessions: Mutex<HashMap<u64, Arc<Mutex<FormManager>>>>,
    /// Next session id.
    pub next_session: AtomicU64,
}

impl Tenant {
    pub fn new() -> Tenant {
        Tenant {
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
        }
    }
}

/// The tenant registry plus the process-wide verdict cache.
pub(crate) struct Tenants {
    map: Mutex<HashMap<String, Arc<Tenant>>>,
}

impl Tenants {
    pub fn new() -> Tenants {
        Tenants {
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Get or create a tenant by name.
    pub fn get_or_create(&self, name: &str) -> Arc<Tenant> {
        let mut map = self.map.lock().expect("tenant map poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Arc::new(Tenant::new()))
            .clone()
    }

    /// Get an existing tenant.
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.map
            .lock()
            .expect("tenant map poisoned")
            .get(name)
            .cloned()
    }

    /// (tenant count, live session count) for the metrics endpoint.
    pub fn counts(&self) -> (usize, usize) {
        let map = self.map.lock().expect("tenant map poisoned");
        let sessions = map
            .values()
            .map(|t| t.sessions.lock().expect("session map poisoned").len())
            .sum();
        (map.len(), sessions)
    }

    /// (retained states, retained bytes) across all live sessions'
    /// graphs — the memory the incremental re-analysis layer is
    /// currently pinning. Sessions busy with an in-flight operation are
    /// skipped (`try_lock`): a metrics scrape must never queue behind an
    /// analysis, so the gauge is a floor, not an exact census.
    pub fn retained(&self) -> (u64, u64) {
        let tenants: Vec<Arc<Tenant>> = self
            .map
            .lock()
            .expect("tenant map poisoned")
            .values()
            .cloned()
            .collect();
        let (mut states, mut bytes) = (0u64, 0u64);
        for tenant in tenants {
            let sessions: Vec<Arc<Mutex<FormManager>>> = tenant
                .sessions
                .lock()
                .expect("session map poisoned")
                .values()
                .cloned()
                .collect();
            for session in sessions {
                if let Ok(mgr) = session.try_lock() {
                    states += mgr.retained_states().unwrap_or(0) as u64;
                    bytes += mgr.retained_bytes().unwrap_or(0) as u64;
                }
            }
        }
        (states, bytes)
    }
}

/// Monotonic service counters. `accepted` counts connections admitted
/// past the bounded queue; `shed` counts 429 rejections; `completed`
/// counts admitted connections fully handled (response written or peer
/// gone). After a graceful shutdown `accepted == completed` — the drain
/// invariant the tests and the smoke job assert.
#[derive(Default)]
pub struct Metrics {
    pub(crate) accepted: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) bad_requests: AtomicU64,
    pub(crate) sessions_opened: AtomicU64,
    pub(crate) graph_hits: AtomicU64,
    pub(crate) frontier_extends: AtomicU64,
    pub(crate) cold_solves: AtomicU64,
    pub(crate) graph_evictions: AtomicU64,
    pub(crate) evicted_bytes: AtomicU64,
    pub(crate) static_screens: AtomicU64,
}

/// A point-in-time copy of [`Metrics`], plus cache and registry gauges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Connections admitted to the worker queue.
    pub accepted: u64,
    /// Connections rejected with 429 at admission.
    pub shed: u64,
    /// Admitted connections fully handled.
    pub completed: u64,
    /// Requests answered 4xx for protocol reasons (not shedding).
    pub bad_requests: u64,
    /// Sessions opened over the server's lifetime.
    pub sessions_opened: u64,
    /// Oracle calls answered from a session's retained state graph
    /// (annotated-verdict lookup — no exploration at all).
    pub graph_hits: u64,
    /// Oracle calls answered by resuming exploration from a retained
    /// state (bounded frontier extension).
    pub frontier_extends: u64,
    /// Oracle calls that fell back to a full cold analysis.
    pub cold_solves: u64,
    /// Retained session graphs evicted for exceeding a memory budget
    /// (state- or byte-denominated), cumulative.
    pub graph_evictions: u64,
    /// Approximate bytes those evictions freed, cumulative.
    pub evicted_bytes: u64,
    /// Analyses decided by the pre-exploration static screener with
    /// zero states expanded — `/v1/analyze` requests plus session
    /// oracle cold solves the screener answered. Cache hits replaying a
    /// screened verdict are not counted.
    pub static_screens: u64,
    /// Live tenants.
    pub tenants: usize,
    /// Live sessions across all tenants.
    pub sessions: usize,
    /// States currently retained by live sessions' graphs (a floor:
    /// sessions busy at scrape time are skipped).
    pub retained_states: u64,
    /// Approximate resident bytes of those retained graphs (same
    /// caveat) — what the per-session byte budget bounds.
    pub retained_bytes: u64,
}

impl MetricsSnapshot {
    /// Fraction of session oracle calls answered without any exploration
    /// (`graph_hits / (graph_hits + frontier_extends + cold_solves)`);
    /// 0.0 when no oracle calls have been recorded.
    pub fn graph_hit_rate(&self) -> f64 {
        let total = self.graph_hits + self.frontier_extends + self.cold_solves;
        if total == 0 {
            0.0
        } else {
            self.graph_hits as f64 / total as f64
        }
    }
}

impl Metrics {
    pub(crate) fn snapshot(&self, tenants: &Tenants) -> MetricsSnapshot {
        let (tenant_count, session_count) = tenants.counts();
        let (retained_states, retained_bytes) = tenants.retained();
        MetricsSnapshot {
            accepted: self.accepted.load(Ordering::SeqCst),
            shed: self.shed.load(Ordering::SeqCst),
            completed: self.completed.load(Ordering::SeqCst),
            bad_requests: self.bad_requests.load(Ordering::SeqCst),
            sessions_opened: self.sessions_opened.load(Ordering::SeqCst),
            graph_hits: self.graph_hits.load(Ordering::SeqCst),
            frontier_extends: self.frontier_extends.load(Ordering::SeqCst),
            cold_solves: self.cold_solves.load(Ordering::SeqCst),
            graph_evictions: self.graph_evictions.load(Ordering::SeqCst),
            evicted_bytes: self.evicted_bytes.load(Ordering::SeqCst),
            static_screens: self.static_screens.load(Ordering::SeqCst),
            tenants: tenant_count,
            sessions: session_count,
            retained_states,
            retained_bytes,
        }
    }

    /// Fold one session operation's re-analysis provenance delta into the
    /// process-wide counters.
    pub(crate) fn record_recompute(&self, delta: &idar_workflow::manager::RecomputeStats) {
        self.graph_hits
            .fetch_add(delta.graph_hits, Ordering::SeqCst);
        self.frontier_extends
            .fetch_add(delta.frontier_extends, Ordering::SeqCst);
        self.cold_solves
            .fetch_add(delta.cold_solves, Ordering::SeqCst);
        self.static_screens
            .fetch_add(delta.screen_decided, Ordering::SeqCst);
    }

    /// Fold one session operation's graph evictions into the
    /// process-wide counters (cumulative even after the session closes).
    pub(crate) fn record_evictions(&self, evictions: u64, bytes_freed: u64) {
        if evictions == 0 {
            return;
        }
        self.graph_evictions.fetch_add(evictions, Ordering::SeqCst);
        self.evicted_bytes.fetch_add(bytes_freed, Ordering::SeqCst);
    }
}

/// Shared verdict-cache statistics, re-exported for the `/metrics`
/// endpoint and the bench harness.
pub fn cache_stats(cache: &VerdictCache) -> CacheStats {
    cache.stats()
}

/// A deterministic load-shedding **test instrument**: while held, every
/// worker blocks at the head of request handling (after the request is
/// parsed, before it is dispatched), so a test can saturate the worker
/// pool and the admission queue without timing races. `waiting()` tells
/// the test how many workers are parked.
///
/// Production configs leave this unset; it costs one branch per request.
#[derive(Default)]
pub struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    held: bool,
    waiting: usize,
}

impl Gate {
    /// A released gate.
    pub fn new() -> Arc<Gate> {
        Arc::new(Gate::default())
    }

    /// Engage the gate: subsequent requests park in `Gate::pass`.
    pub fn hold(&self) {
        self.state.lock().expect("gate poisoned").held = true;
    }

    /// Release the gate and wake every parked worker.
    pub fn release(&self) {
        self.state.lock().expect("gate poisoned").held = false;
        self.cv.notify_all();
    }

    /// How many workers are currently parked at the gate.
    pub fn waiting(&self) -> usize {
        self.state.lock().expect("gate poisoned").waiting
    }

    /// Block while the gate is held.
    pub(crate) fn pass(&self) {
        let mut st = self.state.lock().expect("gate poisoned");
        while st.held {
            st.waiting += 1;
            st = self.cv.wait(st).expect("gate poisoned");
            st.waiting -= 1;
        }
    }
}
