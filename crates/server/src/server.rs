//! The service runtime: listener, admission control, bounded worker
//! pool, and graceful shutdown.
//!
//! Request lifecycle:
//!
//! ```text
//!   accept ──► admission (bounded queue) ──full──► 429 + Retry-After
//!      │
//!      ▼ admitted
//!   worker pool (split_threads share of the thread budget)
//!      │  parse ── bad ──► 4xx
//!      ▼
//!   dispatch (routes): tenant ► session ► analyze (Budget-bounded)
//!      │                         │
//!      │                         └── process-wide VerdictCache
//!      ▼
//!   response (verdict + cache provenance) ──► Connection: close
//! ```
//!
//! **Admission control** is two-layered: the bounded connection queue
//! sheds excess load *before* the request is parsed or dispatched (a
//! shed request can therefore never touch — let alone partially mutate —
//! a tenant session), and every admitted analysis runs under the server's
//! [`Budget`], so one request can never hold a worker beyond the
//! configured exploration bounds.
//!
//! **Shutdown** is a drain, not an abort: the acceptor stops admitting,
//! queued connections are still served, in-flight analyses complete, and
//! [`ServerHandle::shutdown`] returns only when `accepted == completed`.

use crate::http::{read_request, HttpLimits, RecvError, Response};
use crate::routes;
use crate::state::{Gate, Metrics, MetricsSnapshot, Tenants};
use idar_solver::{split_threads, Budget, ExploreLimits, VerdictCache};
use idar_workflow::manager::UnknownPolicy;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs. The defaults suit the bench container: a small
/// worker pool, a queue a few bursts deep, and the oracle budget every
/// PR-4 pipeline consumer uses for interactive vetting.
#[derive(Clone)]
pub struct ServerConfig {
    /// Total thread budget shared by HTTP workers and their inner
    /// explorer threads (split with [`split_threads`], exactly like the
    /// batch analyzer). Defaults to `default_threads().max(2)` — even a
    /// 1-core host wants two workers, since they are mostly I/O-bound.
    pub threads: usize,
    /// Target concurrent requests (the `jobs` argument of
    /// [`split_threads`]); the pool gets `min(threads, concurrency)`
    /// workers and each request's analysis gets the remaining share.
    pub concurrency: usize,
    /// Admitted-but-unclaimed connections beyond this are shed with 429.
    pub queue_capacity: usize,
    /// The analysis budget every request runs under — the admission
    /// contract that bounds per-request work. Also the cache-key budget
    /// component, so all tenants with identical rule sets share entries.
    pub budget: Budget,
    /// What session vetting does with `Unknown` oracle verdicts.
    pub policy: UnknownPolicy,
    /// Per-session memory budget for incremental re-analysis: a session
    /// whose retained state graph grows beyond this many states evicts
    /// it (retracting the entries it published to the shared cache) and
    /// falls back to cold solves, so many long-lived sessions cannot pin
    /// unbounded RAM.
    pub max_retained_states: usize,
    /// Byte-denominated counterpart of `max_retained_states`: a session
    /// whose retained graph exceeds this many approximate resident bytes
    /// is evicted the same way (both caps apply). `None` keeps the
    /// state-count cap only.
    pub max_retained_bytes: Option<usize>,
    /// Value of the `Retry-After` header (seconds) on 429 responses.
    pub retry_after_secs: u32,
    /// Per-connection read/write timeout.
    pub io_timeout: Duration,
    /// Request size bounds.
    pub http_limits: HttpLimits,
    /// Load-shedding test instrument (see [`Gate`]); `None` in
    /// production configs.
    pub gate: Option<Arc<Gate>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let threads = idar_solver::default_threads().max(2);
        ServerConfig {
            threads,
            concurrency: threads,
            queue_capacity: 64,
            budget: Budget::with_limits(ExploreLimits {
                multiplicity_cap: Some(1),
                max_states: 20_000,
                ..ExploreLimits::small()
            }),
            policy: UnknownPolicy::Reject,
            max_retained_states: 65_536,
            max_retained_bytes: Some(256 * 1024 * 1024),
            retry_after_secs: 1,
            io_timeout: Duration::from_secs(10),
            http_limits: HttpLimits::default(),
            gate: None,
        }
    }
}

/// Everything the acceptor, the workers and the handle share.
pub(crate) struct Shared {
    pub config: ServerConfig,
    pub queue: Mutex<QueueState>,
    pub queue_cv: Condvar,
    pub tenants: Tenants,
    pub cache: Arc<VerdictCache>,
    pub metrics: Metrics,
    /// Explorer threads granted to each request's analysis (the
    /// `split_threads` inner share).
    pub inner_threads: usize,
}

pub(crate) struct QueueState {
    pub conns: VecDeque<TcpStream>,
    pub shutdown: bool,
}

/// The server entry point.
pub struct Server;

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start the
    /// acceptor and worker threads. The returned handle owns them.
    pub fn start(addr: &str, config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (workers, inner_threads) = split_threads(config.threads, config.concurrency);
        let shared = Arc::new(Shared {
            config,
            queue: Mutex::new(QueueState {
                conns: VecDeque::new(),
                shutdown: false,
            }),
            queue_cv: Condvar::new(),
            tenants: Tenants::new(),
            cache: Arc::new(VerdictCache::new()),
            metrics: Metrics::default(),
            inner_threads,
        });

        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("idar-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("idar-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared))?
        };

        Ok(ServerHandle {
            local_addr,
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }
}

/// Owns the running server; dropping it without [`ServerHandle::shutdown`]
/// (`ServerHandle::shutdown`) aborts the drain (threads are detached).
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(&self.shared.tenants)
    }

    /// The process-wide verdict cache (shared by every tenant, keyed by
    /// rules signature — identical rule sets share entries across
    /// tenants).
    pub fn cache(&self) -> &Arc<VerdictCache> {
        &self.shared.cache
    }

    /// The per-request explorer-thread grant (the `split_threads` inner
    /// share), exposed for tests.
    pub fn inner_threads(&self) -> usize {
        self.shared.inner_threads
    }

    /// Graceful shutdown: stop admitting, serve everything already
    /// admitted (queued and in-flight), join all threads, and return the
    /// final counters. The drain invariant `accepted == completed` holds
    /// on the returned snapshot.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            q.shutdown = true;
        }
        self.shared.queue_cv.notify_all();
        // Unblock the acceptor's blocking accept() with a wake
        // connection; it observes the flag and exits.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.metrics()
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.queue.lock().expect("queue poisoned").shutdown {
                    return;
                }
                continue;
            }
        };
        let mut q = shared.queue.lock().expect("queue poisoned");
        if q.shutdown {
            // The wake connection (or a straggler racing shutdown):
            // refuse politely without admitting.
            drop(q);
            refuse(
                stream,
                Response::json(503, "{\"error\":\"shutting down\"}"),
                shared.config.io_timeout,
            );
            return;
        }
        if q.conns.len() >= shared.config.queue_capacity {
            // Shed at admission, before the request is parsed or
            // dispatched: a shed request cannot have touched any server
            // state.
            drop(q);
            shared.metrics.shed.fetch_add(1, Ordering::SeqCst);
            refuse(
                stream,
                Response::json(429, "{\"error\":\"overloaded\"}")
                    .header("Retry-After", shared.config.retry_after_secs.to_string()),
                shared.config.io_timeout,
            );
            continue;
        }
        shared.metrics.accepted.fetch_add(1, Ordering::SeqCst);
        q.conns.push_back(stream);
        drop(q);
        shared.queue_cv.notify_one();
    }
}

/// Write a refusal response, then perform a lingering close: FIN our
/// side and drain whatever request bytes the peer is still sending.
/// Closing with unread data in the receive buffer makes TCP send RST,
/// which can destroy the refusal in flight — exactly the race a client
/// retrying on 429 must not see. The drained bytes are discarded, never
/// parsed.
fn refuse(mut stream: TcpStream, response: Response, timeout: Duration) {
    let _ = stream.set_write_timeout(Some(timeout));
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = response.write_to(&mut stream);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 1024];
    while matches!(io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0) {}
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if let Some(s) = q.conns.pop_front() {
                    break Some(s);
                }
                if q.shutdown {
                    break None;
                }
                q = shared.queue_cv.wait(q).expect("queue poisoned");
            }
        };
        let Some(mut stream) = stream else {
            return;
        };
        handle_connection(shared, &mut stream);
        shared.metrics.completed.fetch_add(1, Ordering::SeqCst);
    }
}

fn handle_connection(shared: &Shared, stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.io_timeout));
    let _ = stream.set_nodelay(true);
    let response = match read_request(stream, &shared.config.http_limits) {
        Ok(request) => {
            if let Some(gate) = &shared.config.gate {
                gate.pass();
            }
            routes::dispatch(shared, &request)
        }
        Err(RecvError::Closed) | Err(RecvError::Io(_)) => return, // peer gone; nothing to say
        Err(RecvError::Malformed(msg)) => Response::json(
            400,
            format!("{{\"error\":\"{}\"}}", crate::http::json_escape(&msg)),
        ),
        Err(RecvError::TooLarge) => Response::json(413, "{\"error\":\"request too large\"}"),
    };
    // Any non-2xx other than admission shedding is a protocol-level
    // failure (read errors and dispatch errors alike).
    if !(200..300).contains(&response.status) && response.status != 429 {
        shared.metrics.bad_requests.fetch_add(1, Ordering::SeqCst);
    }
    let _ = response.write_to(stream);
}
