//! A minimal HTTP/1.1 codec — just enough protocol for the analysis
//! service and its load generator, with zero dependencies (the same
//! offline-environment precedent as the proptest/criterion shims).
//!
//! Supported surface: request line + headers + `Content-Length` bodies,
//! one request per connection (every response carries
//! `Connection: close`). Chunked transfer encoding, continuation lines
//! and percent-decoding are deliberately out of scope; the parser is
//! strict about what it does accept and bounds both head and body sizes
//! before buffering them.

use std::io::{self, Read, Write};

/// Size bounds applied while reading a request.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of body (`Content-Length` above this is rejected
    /// before any body byte is read).
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the connection before sending a complete request
    /// (clean EOF at byte 0 included). No response should be written.
    Closed,
    /// A transport error (timeouts included).
    Io(io::Error),
    /// The bytes were not a well-formed HTTP/1.1 request (reply 400).
    Malformed(String),
    /// Head or declared body size exceeded [`HttpLimits`] (reply 413).
    TooLarge,
}

impl From<io::Error> for RecvError {
    fn from(e: io::Error) -> RecvError {
        RecvError::Io(e)
    }
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Decoded `k=v` query pairs in target order (no percent-decoding).
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// The body (UTF-8; invalid sequences are rejected as malformed).
    pub body: String,
}

impl Request {
    /// First header value with the given (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query value with the given name.
    pub fn query(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Read and parse one request from the stream, enforcing `limits`.
pub fn read_request(stream: &mut impl Read, limits: &HttpLimits) -> Result<Request, RecvError> {
    // Accumulate until the blank line ending the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > limits.max_head_bytes {
            return Err(RecvError::TooLarge);
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            if buf.is_empty() {
                return Err(RecvError::Closed);
            }
            return Err(RecvError::Malformed("eof inside request head".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| RecvError::Malformed("head is not utf-8".into()))?
        .to_string();
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| RecvError::Malformed("empty head".into()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| RecvError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| RecvError::Malformed("missing target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| RecvError::Malformed("missing version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::Malformed(format!("bad version {version:?}")));
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (
            p.to_string(),
            q.split('&')
                .filter(|kv| !kv.is_empty())
                .map(|kv| match kv.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (kv.to_string(), String::new()),
                })
                .collect(),
        ),
        None => (target.to_string(), Vec::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RecvError::Malformed(format!("bad header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length: usize = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse()
            .map_err(|_| RecvError::Malformed(format!("bad content-length {v:?}")))?,
        None => 0,
    };
    if content_length > limits.max_body_bytes {
        return Err(RecvError::TooLarge);
    }

    // The body may be partially buffered already; read the remainder.
    let body_start = head_end + 4; // past "\r\n\r\n"
    let mut body: Vec<u8> = buf[body_start.min(buf.len())..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(RecvError::Malformed("eof inside body".into()));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body =
        String::from_utf8(body).map_err(|_| RecvError::Malformed("body is not utf-8".into()))?;

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Byte offset of the first `\r\n\r\n`, if complete.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Extra headers (`Content-Type`, `Content-Length` and
    /// `Connection: close` are emitted automatically).
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Attach a header.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Response {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Serialize to the wire.
    pub fn write_to(&self, stream: &mut impl Write) -> io::Result<()> {
        let mut out = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
            self.status,
            reason(self.status),
            self.body.len()
        );
        for (k, v) in &self.headers {
            out.push_str(k);
            out.push_str(": ");
            out.push_str(v);
            out.push_str("\r\n");
        }
        out.push_str("\r\n");
        out.push_str(&self.body);
        stream.write_all(out.as_bytes())?;
        stream.flush()
    }
}

/// Canonical reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Escape a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, RecvError> {
        let mut cursor = std::io::Cursor::new(bytes.to_vec());
        read_request(&mut cursor, &HttpLimits::default())
    }

    #[test]
    fn parses_a_post_with_body_and_query() {
        let req = parse(
            b"POST /v1/analyze?kind=completability HTTP/1.1\r\n\
              Host: x\r\nX-Tenant: acme\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/analyze");
        assert_eq!(req.query("kind"), Some("completability"));
        assert_eq!(req.header("x-tenant"), Some("acme"));
        assert_eq!(req.body, "hello");
    }

    #[test]
    fn clean_eof_is_closed_not_malformed() {
        assert!(matches!(parse(b""), Err(RecvError::Closed)));
    }

    #[test]
    fn truncated_head_is_malformed() {
        assert!(matches!(
            parse(b"GET /healthz HTTP/1.1\r\nHos"),
            Err(RecvError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_declared_body_is_rejected_before_read() {
        let text = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", 100 << 20);
        assert!(matches!(parse(text.as_bytes()), Err(RecvError::TooLarge)));
    }

    #[test]
    fn response_wire_format_round_trips_lengths() {
        let mut out = Vec::new();
        Response::json(429, "{\"error\":\"overloaded\"}")
            .header("Retry-After", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"overloaded\"}"));
    }

    #[test]
    fn json_escape_covers_the_control_plane() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
