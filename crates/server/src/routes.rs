//! Request dispatch: the service API surface.
//!
//! | method & path                     | body            | meaning |
//! |-----------------------------------|-----------------|---------|
//! | `GET  /healthz`                   | —               | liveness |
//! | `GET  /metrics`                   | —               | counters + cache stats |
//! | `POST /v1/analyze?kind=K`         | form (RON)      | stateless pipeline run (K ∈ completability, semisoundness, satisfiability) |
//! | `POST /v1/session`                | form (RON)      | open a tenant session, returns its id |
//! | `GET  /v1/session/{id}`           | —               | live instance + completion state |
//! | `GET  /v1/session/{id}/safe_updates` | —            | the updates the manager would accept |
//! | `POST /v1/session/{id}/vet`       | update (text)   | vet without applying |
//! | `POST /v1/session/{id}/submit`    | update (text)   | vet and apply |
//! | `POST /v1/session/{id}/close`     | —               | drop the session |
//!
//! Session routes require an `X-Tenant` header. Update bodies use the
//! line format `add <parent-node-id> <schema-path>` / `del <node-id>`
//! — exactly what `safe_updates` returns, so clients can treat update
//! strings as opaque tokens.
//!
//! Every analysis-bearing response carries `X-Verdict` (the
//! deterministic outcome — the load generator's cross-run determinism
//! check compares these) and `X-Cache` (provenance — *not* deterministic
//! under concurrency and excluded from that check). On `/v1/analyze` the
//! provenance is `hit`/`miss`/`uncached` (the shared verdict cache); on
//! session routes it is the dominant re-analysis path of the operation's
//! oracle calls — `graph-hit` (answered from the session's retained
//! state graph), `frontier-extend` (resumed exploration from a retained
//! state), `cold` (full re-analysis), or `none` (no oracle ran).
//! `/v1/analyze` additionally carries `X-Method` — which algorithm
//! produced the verdict (e.g. `static-screen` when the pre-exploration
//! screener decided the problem with zero states expanded); the
//! `static_screens` counter in `/metrics` tallies those.

use crate::http::{json_escape, Request, Response};
use crate::server::Shared;
use idar_core::serialize::from_ron;
use idar_core::{GuardedForm, InstNodeId, Update};
use idar_solver::{analyze_with, AnalysisKind, AnalysisRequest, Verdict};
use idar_workflow::manager::{FormManager, RecomputeStats, Rejection};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

/// Route a parsed request to its handler.
pub(crate) fn dispatch(shared: &Shared, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => Response::json(200, "{\"ok\":true}"),
        ("GET", ["metrics"]) => metrics(shared),
        ("POST", ["v1", "analyze"]) => analyze(shared, req),
        ("POST", ["v1", "session"]) => open_session(shared, req),
        ("GET", ["v1", "session", id]) => with_session(shared, req, id, session_info),
        ("GET", ["v1", "session", id, "safe_updates"]) => {
            with_session(shared, req, id, safe_updates)
        }
        ("POST", ["v1", "session", id, "vet"]) => {
            with_session(shared, req, id, |s, r| vet_or_submit(s, r, false))
        }
        ("POST", ["v1", "session", id, "submit"]) => {
            with_session(shared, req, id, |s, r| vet_or_submit(s, r, true))
        }
        ("POST", ["v1", "session", id, "close"]) => close_session(shared, req, id),
        ("GET" | "POST", _) => Response::json(404, "{\"error\":\"no such route\"}"),
        _ => Response::json(405, "{\"error\":\"method not allowed\"}"),
    }
}

fn metrics(shared: &Shared) -> Response {
    let m = shared.metrics.snapshot(&shared.tenants);
    let c = shared.cache.stats();
    Response::json(
        200,
        format!(
            "{{\"accepted\":{},\"shed\":{},\"completed\":{},\"bad_requests\":{},\
             \"sessions_opened\":{},\"tenants\":{},\"sessions\":{},\
             \"graph_hits\":{},\"frontier_extends\":{},\"cold_solves\":{},\
             \"graph_hit_rate\":{:.4},\
             \"retained_states\":{},\"retained_bytes\":{},\
             \"graph_evictions\":{},\"evicted_bytes\":{},\
             \"static_screens\":{},\
             \"cache_hits\":{},\"cache_misses\":{},\"cache_hit_rate\":{:.4}}}",
            m.accepted,
            m.shed,
            m.completed,
            m.bad_requests,
            m.sessions_opened,
            m.tenants,
            m.sessions,
            m.graph_hits,
            m.frontier_extends,
            m.cold_solves,
            m.graph_hit_rate(),
            m.retained_states,
            m.retained_bytes,
            m.graph_evictions,
            m.evicted_bytes,
            m.static_screens,
            c.hits,
            c.misses,
            c.hit_rate(),
        ),
    )
}

/// Parse the RON form body, or produce the 400.
fn parse_form(body: &str) -> Result<GuardedForm, Response> {
    from_ron(body).map_err(|e| {
        Response::json(
            400,
            format!(
                "{{\"error\":\"bad form: {}\"}}",
                json_escape(&e.to_string())
            ),
        )
    })
}

fn analyze(shared: &Shared, req: &Request) -> Response {
    let kind = match req.query("kind").unwrap_or("completability") {
        "completability" => AnalysisKind::Completability,
        "semisoundness" => AnalysisKind::Semisoundness,
        "satisfiability" => AnalysisKind::Satisfiability,
        other => {
            return Response::json(
                400,
                format!("{{\"error\":\"unknown kind {}\"}}", json_escape(other)),
            )
        }
    };
    let form = match parse_form(&req.body) {
        Ok(f) => f,
        Err(resp) => return resp,
    };
    let request = AnalysisRequest::new(form, kind)
        .with_budget(shared.config.budget.clone())
        .with_threads(shared.inner_threads);
    let report = analyze_with(&request, Some(&shared.cache));
    // Count only requests the screener itself decided (`screen` is `None`
    // on cache hits, where the method is merely replayed from the entry).
    if report.method == idar_solver::Method::StaticScreen && report.screen.is_some() {
        shared.metrics.static_screens.fetch_add(1, Ordering::SeqCst);
    }
    let verdict = report.verdict.to_string();
    let cache = report.cache.to_string();
    let method = report.method.to_string();
    Response::json(
        200,
        format!(
            "{{\"kind\":\"{}\",\"fragment\":\"{}\",\"verdict\":\"{}\",\"method\":\"{}\",\
             \"cache\":\"{}\",\"states\":{},\"threads\":{}}}",
            report.kind,
            json_escape(&report.fragment.to_string()),
            verdict,
            json_escape(&method),
            cache,
            report.stats.states,
            report.threads,
        ),
    )
    .header("X-Verdict", verdict)
    .header("X-Cache", cache)
    .header("X-Method", method)
}

/// The `X-Tenant` header, or the 400 telling the client it is required.
fn tenant_name(req: &Request) -> Result<&str, Response> {
    match req.header("x-tenant") {
        Some(t) if !t.is_empty() && t.len() <= 64 => Ok(t),
        Some(_) => Err(Response::json(
            400,
            "{\"error\":\"tenant name must be 1..=64 bytes\"}",
        )),
        None => Err(Response::json(
            400,
            "{\"error\":\"session routes require an X-Tenant header\"}",
        )),
    }
}

fn open_session(shared: &Shared, req: &Request) -> Response {
    let tenant_name = match tenant_name(req) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let form = match parse_form(&req.body) {
        Ok(f) => f,
        Err(resp) => return resp,
    };
    // Every session shares the process-wide cache and is granted the
    // worker's split_threads share — the same two disciplines the batch
    // analyzer established (shared verdicts, no oversubscription).
    let mut manager = FormManager::new(form, shared.config.budget.clone(), shared.config.policy)
        .with_cache(Arc::clone(&shared.cache))
        .with_threads(shared.inner_threads)
        .with_max_retained_states(shared.config.max_retained_states);
    if let Some(bytes) = shared.config.max_retained_bytes {
        manager = manager.with_max_retained_bytes(bytes);
    }
    let tenant = shared.tenants.get_or_create(tenant_name);
    let id = tenant.next_session.fetch_add(1, Ordering::SeqCst);
    tenant
        .sessions
        .lock()
        .expect("session map poisoned")
        .insert(id, Arc::new(Mutex::new(manager)));
    shared
        .metrics
        .sessions_opened
        .fetch_add(1, Ordering::SeqCst);
    Response::json(200, format!("{{\"session\":{id}}}"))
        .header("X-Session", id.to_string())
        .header("X-Verdict", "opened")
}

/// Resolve `{tenant, id}` to a live session and run `f` on it (the
/// session mutex is held for the duration — one session is a
/// linearizable object).
fn with_session(
    shared: &Shared,
    req: &Request,
    id: &str,
    f: impl FnOnce(&mut FormManager, &Request) -> Response,
) -> Response {
    let tenant_name = match tenant_name(req) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let Ok(id) = id.parse::<u64>() else {
        return Response::json(400, "{\"error\":\"session id must be an integer\"}");
    };
    let session = shared.tenants.get(tenant_name).and_then(|t| {
        t.sessions
            .lock()
            .expect("session map poisoned")
            .get(&id)
            .cloned()
    });
    match session {
        Some(s) => {
            let mut mgr = s.lock().expect("session poisoned");
            // Snapshot the session's re-analysis provenance around the
            // operation so the delta can be folded into the process-wide
            // counters and surfaced as this response's X-Cache header.
            let before = mgr.recompute_stats();
            let ev_before = mgr.eviction_stats();
            let response = f(&mut mgr, req);
            let delta = mgr.recompute_stats().minus(&before);
            shared.metrics.record_recompute(&delta);
            let ev = mgr.eviction_stats();
            let (evictions, bytes_freed) = (
                ev.evictions - ev_before.evictions,
                ev.evicted_bytes - ev_before.evicted_bytes,
            );
            if evictions > 0 {
                shared.metrics.record_evictions(evictions, bytes_freed);
                eprintln!(
                    "idar-server: session {tenant_name}/{id}: retained graph evicted \
                     (over memory budget), {bytes_freed} bytes freed"
                );
            }
            response.header("X-Cache", recompute_tag(&delta))
        }
        None => Response::json(404, "{\"error\":\"no such session\"}"),
    }
}

/// The dominant re-analysis path among one session operation's oracle
/// calls (ties resolve toward the cheaper path).
fn recompute_tag(delta: &RecomputeStats) -> &'static str {
    if delta.total() == 0 {
        "none"
    } else if delta.graph_hits >= delta.frontier_extends && delta.graph_hits >= delta.cold_solves {
        "graph-hit"
    } else if delta.frontier_extends >= delta.cold_solves {
        "frontier-extend"
    } else {
        "cold"
    }
}

fn session_info(mgr: &mut FormManager, _req: &Request) -> Response {
    let complete = mgr.is_complete();
    Response::json(
        200,
        format!(
            "{{\"complete\":{},\"history\":{},\"instance\":\"{}\"}}",
            complete,
            mgr.history().len(),
            json_escape(&mgr.current().to_text()),
        ),
    )
    .header("X-Verdict", if complete { "complete" } else { "open" })
}

fn safe_updates(mgr: &mut FormManager, _req: &Request) -> Response {
    let safe = mgr.safe_updates();
    let encoded: Vec<String> = safe.iter().map(|u| encode_update(mgr, u)).collect();
    let body = format!(
        "{{\"safe\":[{}]}}",
        encoded
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s)))
            .collect::<Vec<_>>()
            .join(",")
    );
    Response::json(200, body).header("X-Verdict", format!("safe:{}", encoded.len()))
}

fn vet_or_submit(mgr: &mut FormManager, req: &Request, apply: bool) -> Response {
    let update = match decode_update(mgr, req.body.trim()) {
        Ok(u) => u,
        Err(msg) => {
            return Response::json(
                400,
                format!("{{\"error\":\"bad update: {}\"}}", json_escape(&msg)),
            )
        }
    };
    let outcome = if apply {
        mgr.submit(update)
    } else {
        mgr.vet(&update)
    };
    match outcome {
        Ok(()) => {
            let complete = mgr.is_complete();
            Response::json(
                200,
                format!("{{\"accepted\":true,\"complete\":{complete}}}"),
            )
            .header("X-Verdict", if complete { "ok-complete" } else { "ok" })
        }
        Err(rejection) => {
            let tag = match rejection {
                Rejection::NotAllowed => "not-allowed",
                Rejection::WouldStrand => "would-strand",
                Rejection::Undecided => "undecided",
            };
            // A vetoed update is a *successful* request with a negative
            // business outcome — 200, not 4xx (the admission mix gate
            // counts statuses, not verdicts).
            Response::json(
                200,
                format!(
                    "{{\"accepted\":false,\"reason\":\"{}\"}}",
                    json_escape(&rejection.to_string())
                ),
            )
            .header("X-Verdict", tag)
        }
    }
}

fn close_session(shared: &Shared, req: &Request, id: &str) -> Response {
    let tenant_name = match tenant_name(req) {
        Ok(t) => t,
        Err(resp) => return resp,
    };
    let Ok(id) = id.parse::<u64>() else {
        return Response::json(400, "{\"error\":\"session id must be an integer\"}");
    };
    let removed = shared
        .tenants
        .get(tenant_name)
        .and_then(|t| t.sessions.lock().expect("session map poisoned").remove(&id));
    match removed {
        Some(_) => Response::json(200, "{\"closed\":true}").header("X-Verdict", "closed"),
        None => Response::json(404, "{\"error\":\"no such session\"}"),
    }
}

/// Encode an update as the wire token `safe_updates` hands out.
fn encode_update(mgr: &FormManager, u: &Update) -> String {
    match u {
        Update::Add { parent, edge } => {
            format!("add {} {}", parent.0, mgr.form().schema().path_of(*edge))
        }
        Update::Del { node } => format!("del {}", node.0),
    }
}

/// Parse the wire token back into an update.
fn decode_update(mgr: &FormManager, s: &str) -> Result<Update, String> {
    let mut parts = s.split_whitespace();
    match parts.next() {
        Some("add") => {
            let parent: u32 = parts
                .next()
                .ok_or("add needs a parent node id")?
                .parse()
                .map_err(|_| "parent must be an integer".to_string())?;
            let path = parts.next().ok_or("add needs a schema path")?;
            let edge = mgr
                .form()
                .schema()
                .resolve(path)
                .map_err(|e| format!("no schema edge {path:?}: {e}"))?;
            Ok(Update::Add {
                parent: InstNodeId(parent),
                edge,
            })
        }
        Some("del") => {
            let node: u32 = parts
                .next()
                .ok_or("del needs a node id")?
                .parse()
                .map_err(|_| "node must be an integer".to_string())?;
            Ok(Update::Del {
                node: InstNodeId(node),
            })
        }
        _ => Err(format!(
            "unknown update {s:?} (want `add <id> <path>` or `del <id>`)"
        )),
    }
}

/// The verdict header value for a [`Verdict`] — shared with the bench
/// crate's assertions.
pub fn verdict_tag(v: Verdict) -> &'static str {
    match v {
        Verdict::Holds => "holds",
        Verdict::Fails => "fails",
        Verdict::Unknown => "unknown",
    }
}
