//! idar-server: multi-tenant analysis-as-a-service over the unified
//! pipeline.
//!
//! A long-running, std-only HTTP/1.1 service exposing the
//! `AnalysisRequest`-shaped operations (stateless analyze plus live
//! `FormManager` sessions with vet / submit / safe-updates) to multiple
//! tenants over a bounded worker pool. Three disciplines carry over from
//! the batch layers:
//!
//! * **one thread budget** — workers and their inner explorer threads
//!   split a single budget via `split_threads`, so concurrent requests
//!   never oversubscribe the host;
//! * **one verdict cache** — process-wide and keyed by rules signature,
//!   so tenants running identical rule sets share entries (a popular
//!   form is analyzed once, served many times);
//! * **one admission contract** — every request runs under the server
//!   [`Budget`](idar_solver::Budget), and excess load is shed with
//!   `429 + Retry-After` *before* the request is parsed or dispatched,
//!   so a shed request can never partially mutate a session.
//!
//! Start one with [`Server::start`]; drive it with the `idar-load`
//! generator in the bench crate, or any HTTP client:
//!
//! ```no_run
//! use idar_server::{Server, ServerConfig};
//! let handle = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
//! println!("serving on {}", handle.addr());
//! let finals = handle.shutdown(); // graceful drain
//! assert_eq!(finals.accepted, finals.completed);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod routes;
pub mod server;
pub mod state;

pub use http::{HttpLimits, Request, Response};
pub use routes::verdict_tag;
pub use server::{Server, ServerConfig, ServerHandle};
pub use state::{Gate, Metrics, MetricsSnapshot};
