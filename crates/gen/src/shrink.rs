//! Verdict-preserving minimisation of failing forms.
//!
//! [`shrink`] greedily applies size-reducing transformations to a guarded
//! form while a caller-supplied oracle keeps reporting "still failing".
//! Every accepted step strictly decreases [`form_size`], so shrinking is
//! **monotone** and terminates; the result is locally minimal (no single
//! transformation can shrink it further without losing the failure).
//!
//! Transformations, tried in decreasing bite size:
//!
//! 1. delete a schema subtree (with its rules and instance nodes),
//! 2. revert an explicit guard to the table default,
//! 3. replace a guard by a constant or an immediate subformula,
//! 4. delete an initial-instance leaf,
//! 5. shrink the completion formula the same way.

use crate::scenario::ScenarioSpec;
use idar_core::{
    AccessRules, Formula, GuardedForm, InstNodeId, Instance, PathExpr, Right, SchemaBuilder,
    SchemaNodeId,
};
use std::sync::Arc;

/// The size measure shrinking is monotone in: schema nodes + live
/// initial-instance nodes + completion AST size + total AST size of
/// explicit (non-default) guards.
pub fn form_size(form: &GuardedForm) -> usize {
    let schema = form.schema();
    let default = form.rules().default_guard();
    let guards: usize = schema
        .edge_ids()
        .flat_map(|e| [Right::Add, Right::Del].map(|r| form.rules().get(r, e)))
        .filter(|g| *g != default)
        .map(Formula::size)
        .sum();
    schema.node_count() + form.initial().live_count() + form.completion().size() + guards
}

/// Minimise `form` while `still_failing` returns `true` for every
/// accepted candidate. The oracle is never consulted on forms at least as
/// large as the current one, and `shrink` returns a form on which
/// `still_failing` held (or the input unchanged if nothing smaller kept
/// failing).
pub fn shrink(
    form: &GuardedForm,
    mut still_failing: impl FnMut(&GuardedForm) -> bool,
) -> GuardedForm {
    let mut cur = form.clone();
    let mut cur_size = form_size(&cur);
    loop {
        let mut improved = false;
        for cand in candidates(&cur) {
            if form_size(&cand) < cur_size && still_failing(&cand) {
                cur_size = form_size(&cand);
                cur = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return cur;
        }
    }
}

/// All single-step shrink candidates of `cur`, biggest bites first.
fn candidates(cur: &GuardedForm) -> Vec<GuardedForm> {
    let schema = cur.schema();
    let default = cur.rules().default_guard().clone();
    let mut out = Vec::new();

    // 1. Schema subtree removal, newest edges first (leaves before trunks).
    let edges: Vec<SchemaNodeId> = schema.edge_ids().collect();
    for &e in edges.iter().rev() {
        out.push(remove_schema_subtree(cur, e));
    }

    // 2./3. Guard simplification.
    for &e in &edges {
        for right in [Right::Add, Right::Del] {
            let g = cur.rules().get(right, e);
            if g == &default {
                continue;
            }
            let mut replacements = vec![default.clone()];
            replacements.extend(formula_shrinks(g));
            for repl in replacements {
                let mut rules = cur.rules().clone();
                rules.set(right, e, repl);
                out.push(GuardedForm::new(
                    schema.clone(),
                    rules,
                    cur.initial().clone(),
                    cur.completion().clone(),
                ));
            }
        }
    }

    // 4. Initial-instance leaf removal.
    let leaves: Vec<InstNodeId> = cur
        .initial()
        .live_nodes()
        .filter(|&n| n != InstNodeId::ROOT && cur.initial().is_leaf(n))
        .collect();
    for n in leaves {
        let mut init = cur.initial().clone();
        init.remove_leaf(n).expect("live leaf");
        out.push(cur.with_initial(init));
    }

    // 5. Completion shrinks.
    for repl in formula_shrinks(cur.completion()) {
        out.push(cur.with_completion(repl));
    }

    out
}

/// Constants and immediate subformulas of `f`, all strictly smaller.
fn formula_shrinks(f: &Formula) -> Vec<Formula> {
    let mut out = Vec::new();
    if f.size() > 1 {
        out.push(Formula::True);
        out.push(Formula::False);
    }
    match f {
        Formula::Not(a) => out.push((**a).clone()),
        Formula::And(a, b) | Formula::Or(a, b) => {
            out.push((**a).clone());
            out.push((**b).clone());
        }
        Formula::Path(PathExpr::Filter(p, inner)) => {
            out.push(Formula::Path((**p).clone()));
            out.push((**inner).clone());
        }
        _ => {}
    }
    out
}

/// Rebuild `cur` without the schema subtree rooted at `removed`: rules on
/// removed edges are dropped, initial-instance nodes mapped into the
/// subtree are dropped with it, formulas are kept verbatim (a label step
/// into a removed subtree simply never matches).
fn remove_schema_subtree(cur: &GuardedForm, removed: SchemaNodeId) -> GuardedForm {
    let schema = cur.schema();
    let mut gone = vec![false; schema.node_count()];
    gone[removed.index()] = true;
    for id in schema.edge_ids() {
        // Creation order is topological, so parents are marked first.
        if let Some(p) = schema.parent(id) {
            if gone[p.index()] {
                gone[id.index()] = true;
            }
        }
    }

    let mut b = SchemaBuilder::new();
    let mut map = vec![SchemaNodeId::ROOT; schema.node_count()];
    for id in schema.edge_ids() {
        if gone[id.index()] {
            continue;
        }
        let p = schema.parent(id).expect("edge");
        map[id.index()] = b
            .child(map[p.index()], schema.label(id))
            .expect("sibling uniqueness is inherited");
    }
    let new_schema = Arc::new(b.build());

    let default = cur.rules().default_guard().clone();
    let mut rules = AccessRules::with_default(&new_schema, default.clone());
    for id in schema.edge_ids() {
        if gone[id.index()] {
            continue;
        }
        for right in [Right::Add, Right::Del] {
            let g = cur.rules().get(right, id);
            if g != &default {
                rules.set(right, map[id.index()], g.clone());
            }
        }
    }

    let old_init = cur.initial();
    let mut init = Instance::empty(new_schema.clone());
    let mut imap = vec![InstNodeId::ROOT; old_init.slot_count()];
    for n in old_init.live_nodes() {
        if n == InstNodeId::ROOT {
            continue;
        }
        let sn = old_init.schema_node(n);
        if gone[sn.index()] {
            continue;
        }
        let p = old_init.parent(n).expect("non-root");
        // A surviving schema node's ancestors survive, so the parent was
        // mapped already (live_nodes is parent-before-child).
        let np = imap[p.index()];
        imap[n.index()] = init
            .add_child(np, map[sn.index()])
            .expect("schema edge preserved");
    }

    GuardedForm::new(new_schema, rules, init, cur.completion().clone())
}

/// The size measure scenario shrinking is monotone in: user-pool size +
/// per-level structure (approvers, delegations, rejection loops) +
/// duty count.
pub fn scenario_size(spec: &ScenarioSpec) -> usize {
    spec.chain.users
        + spec
            .chain
            .levels
            .iter()
            .map(|l| {
                1 + l.approvers.len() + l.delegations.len() + usize::from(l.rejection.is_some())
            })
            .sum::<usize>()
        + spec.constraints.len()
}

/// Minimise a failing [`ScenarioSpec`] the way [`shrink`] minimises a
/// form: greedily accept the first strictly smaller candidate the oracle
/// still rejects, so fuzz failures on the scenario axes report minimal
/// chains before the form-level shrinker takes over. Every candidate is
/// a *valid* spec (`chain.validate()` and `constraints.validate()` both
/// pass), so the repro always rebuilds.
pub fn shrink_scenario(
    spec: &ScenarioSpec,
    mut still_failing: impl FnMut(&ScenarioSpec) -> bool,
) -> ScenarioSpec {
    let mut cur = spec.clone();
    let mut cur_size = scenario_size(&cur);
    loop {
        let mut improved = false;
        for cand in scenario_candidates(&cur) {
            debug_assert!(cand.chain.validate().is_ok());
            if scenario_size(&cand) < cur_size && still_failing(&cand) {
                cur_size = scenario_size(&cand);
                cur = cand;
                improved = true;
                break;
            }
        }
        if !improved {
            return cur;
        }
    }
}

/// All valid single-step scenario shrink candidates, biggest bites first:
/// drop the last level (with the duties touching it), drop a duty, drop
/// a rejection loop, drop a delegation, drop an approver, trim the user
/// pool to the ids actually referenced.
fn scenario_candidates(cur: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();
    let levels = cur.chain.levels.len();

    // 1. Drop any one level: duties touching it disappear, duties and
    // rejection targets beyond it are renumbered down.
    if levels > 1 {
        for n in (1..=levels).rev() {
            let mut c = cur.clone();
            c.chain.levels.remove(n - 1);
            let shift = |s: usize| if s > n { s - 1 } else { s };
            c.constraints = crate::constraints::ConstraintSet::of(
                c.constraints
                    .iter()
                    .filter(|d| d.a != n && d.b != n)
                    .map(|d| {
                        let mut d = *d;
                        d.a = shift(d.a);
                        d.b = shift(d.b);
                        d
                    }),
            );
            for (ix, l) in c.chain.levels.iter_mut().enumerate() {
                let m = ix + 1; // new 1-based number
                if let Some(k) = l.rejection {
                    let nk = if k > n {
                        k - 1
                    } else if k == n {
                        n.saturating_sub(1).max(1)
                    } else {
                        k
                    };
                    l.rejection = if nk < m { Some(nk) } else { None };
                }
            }
            if c.chain.validate().is_ok() {
                out.push(c);
            }
        }
    }

    // 2. Drop one duty.
    for ix in 0..cur.constraints.len() {
        let mut c = cur.clone();
        c.constraints.remove(ix);
        out.push(c);
    }

    // 3./4./5. Per-level bites.
    for ix in 0..levels {
        if cur.chain.levels[ix].rejection.is_some() {
            let mut c = cur.clone();
            c.chain.levels[ix].rejection = None;
            out.push(c);
        }
        for d in 0..cur.chain.levels[ix].delegations.len() {
            let mut c = cur.clone();
            c.chain.levels[ix].delegations.remove(d);
            if c.chain.eligible(ix).is_empty() {
                continue; // the level must stay signable
            }
            out.push(c);
        }
        for a in 0..cur.chain.levels[ix].approvers.len() {
            let mut c = cur.clone();
            c.chain.levels[ix].approvers.remove(a);
            if c.chain.eligible(ix).is_empty() {
                continue;
            }
            out.push(c);
        }
    }

    // 6. Trim the user pool to what is referenced.
    let referenced = cur
        .chain
        .levels
        .iter()
        .flat_map(|l| {
            l.approvers
                .iter()
                .copied()
                .chain(l.delegations.iter().flat_map(|&(f, t)| [f, t]))
        })
        .max()
        .map_or(1, |m| m + 1);
    if referenced < cur.chain.users {
        let mut c = cur.clone();
        c.chain.users = referenced;
        out.push(c);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FragmentSpec, GenConfig};
    use crate::form::generate;

    #[test]
    fn shrink_is_monotone_and_preserves_oracle() {
        for seed in 0..30u64 {
            let g = generate(&GenConfig::new(FragmentSpec::Guarded), seed);
            let before = form_size(&g);
            // Oracle: the schema still has at least one edge.
            let oracle = |f: &GuardedForm| f.schema().edge_count() >= 1;
            assert!(oracle(&g));
            let small = shrink(&g, oracle);
            assert!(form_size(&small) <= before);
            assert!(oracle(&small));
            // Locally minimal for this oracle: exactly one edge remains,
            // no explicit guards, empty instance, trivial completion.
            assert_eq!(small.schema().edge_count(), 1);
            assert_eq!(small.initial().live_count(), 1);
            assert_eq!(small.completion().size(), 1);
        }
    }

    #[test]
    fn shrink_preserves_completability_verdict() {
        use idar_solver::{completability, CompletabilityOptions, ExploreLimits, Verdict};
        let opts = CompletabilityOptions::with_limits(ExploreLimits {
            max_states: 5_000,
            max_state_size: 24,
            max_depth: 32,
            multiplicity_cap: Some(2),
        });
        let mut shrunk_any = false;
        for seed in 0..12u64 {
            let g = generate(&GenConfig::new(FragmentSpec::Guarded), seed);
            let verdict = completability(&g, &opts).verdict;
            if verdict == Verdict::Unknown {
                continue;
            }
            let small = shrink(&g, |f| completability(f, &opts).verdict == verdict);
            assert_eq!(
                completability(&small, &opts).verdict,
                verdict,
                "seed {seed}"
            );
            assert!(form_size(&small) <= form_size(&g));
            if form_size(&small) < form_size(&g) {
                shrunk_any = true;
            }
        }
        assert!(shrunk_any, "shrinker never made progress on any seed");
    }

    #[test]
    fn scenario_shrink_reaches_minimal_failing_spec() {
        use crate::constraints::{constrained_completable, Constraint, ConstraintSet};
        use crate::scenario::{ChainSpec, ScenarioSpec};
        // A big chain whose SoD pair over a single shared approver makes
        // it incompletable; the minimal spec keeping that failure is the
        // two constrained levels with one user each.
        let mut chain = ChainSpec::simple(5, 1, 1);
        chain.users = 3;
        chain.levels[0].approvers = vec![0];
        chain.levels[4].approvers = vec![0];
        let spec = ScenarioSpec {
            chain,
            constraints: ConstraintSet::of([Constraint::separation(1, 5)]),
        };
        let failing = |s: &ScenarioSpec| constrained_completable(s, 50_000) == Some(false);
        assert!(failing(&spec));
        let small = shrink_scenario(&spec, failing);
        assert!(failing(&small));
        assert!(scenario_size(&small) < scenario_size(&spec));
        assert_eq!(small.chain.levels.len(), 2);
        assert_eq!(small.chain.users, 1);
        assert_eq!(small.constraints.len(), 1);
    }

    #[test]
    fn remove_subtree_drops_rules_and_instance_nodes() {
        let g = generate(&GenConfig::new(FragmentSpec::Guarded), 3);
        let schema = g.schema();
        let last = schema.edge_ids().last().unwrap();
        let g2 = remove_schema_subtree(&g, last);
        assert!(g2.schema().node_count() < schema.node_count());
        assert!(g2.initial().live_count() <= g.initial().live_count());
        // The surviving form serializes and round-trips.
        let text = idar_core::serialize::to_ron(&g2);
        assert!(idar_core::serialize::from_ron(&text).is_ok());
    }
}
