//! Deterministic named form families — the single construction path
//! shared by the Criterion benches, the `reproduce` harness and the
//! differential fuzzer.
//!
//! Before this module, `crates/bench/src/workloads.rs` hand-assembled
//! each family (schema loop + rule loop + completion); the same assembly
//! is now expressed once through [`flat_form`] and reused everywhere.

use idar_core::{AccessRules, Formula, GuardedForm, Instance, Right, SchemaBuilder, SchemaNodeId};
use idar_machines::TwoCounterMachine;
use idar_reductions::tcm_to_completability::TcmForm;
use std::sync::Arc;

/// Assemble a depth-1 ("flat") guarded form from per-field guards.
///
/// `fields` lists `(label, add_guard, del_guard)`; a `None` guard falls
/// through to the table default (`false`). The completion formula is
/// taken as-is. This is the common shape of the Table 1 scaling families.
pub fn flat_form(
    fields: &[(String, Option<Formula>, Option<Formula>)],
    completion: Formula,
) -> GuardedForm {
    let mut b = SchemaBuilder::new();
    let edges: Vec<SchemaNodeId> = fields
        .iter()
        .map(|(label, _, _)| b.child(SchemaNodeId::ROOT, label).expect("unique labels"))
        .collect();
    let schema = Arc::new(b.build());
    let mut rules = AccessRules::new(&schema);
    for (&e, (_, add, del)) in edges.iter().zip(fields) {
        if let Some(g) = add {
            rules.set(Right::Add, e, g.clone());
        }
        if let Some(g) = del {
            rules.set(Right::Del, e, g.clone());
        }
    }
    let initial = Instance::empty(schema.clone());
    GuardedForm::new(schema, rules, initial, completion)
}

/// The conjunction "every listed label present" — the standard completion
/// of the scaling families.
pub fn all_present(labels: impl IntoIterator<Item = String>) -> Formula {
    Formula::conj(labels.into_iter().map(|l| Formula::label(&l)))
}

/// `F(A+, φ+, 1)` — a dependency chain: label `i` requires label `i−1`;
/// completion = all present. Completable for every `n`.
pub fn positive_chain(n: usize) -> GuardedForm {
    let fields: Vec<_> = (0..n)
        .map(|i| {
            let guard = if i == 0 {
                Formula::True
            } else {
                Formula::label(&format!("l{}", i - 1))
            };
            (format!("l{i}"), Some(guard), None)
        })
        .collect();
    flat_form(&fields, all_present((0..n).map(|i| format!("l{i}"))))
}

/// `F(A−, φ+, 1)` — the full subset lattice over `n` labels: every label
/// freely addable (while absent) and deletable; completion = all present.
///
/// The reachable space is exactly the 2ⁿ subsets of the label set and the
/// search *closes*, which makes this the scaling workload for the
/// frontier explorer: layer `d` holds `C(n, d)` states.
pub fn subset_lattice(n: usize) -> GuardedForm {
    let fields: Vec<_> = (0..n)
        .map(|i| {
            (
                format!("l{i}"),
                Some(Formula::label(&format!("l{i}")).not()),
                Some(Formula::True),
            )
        })
        .collect();
    flat_form(&fields, all_present((0..n).map(|i| format!("l{i}"))))
}

/// `F(A−, φ+, 1)` **deletion-free** — the monotone subset lattice over
/// `n` labels: every label addable while absent, *never* deletable;
/// completion = all present. The reachable space is still all 2ⁿ subsets
/// (reached by additions alone), but node counts grow monotonically
/// along every run — the precondition for frontier-only exploration,
/// where closed BFS layers can be dropped because states at different
/// depths are never isomorphic.
pub fn monotone_lattice(n: usize) -> GuardedForm {
    let fields: Vec<_> = (0..n)
        .map(|i| {
            (
                format!("l{i}"),
                Some(Formula::label(&format!("l{i}")).not()),
                None,
            )
        })
        .collect();
    flat_form(&fields, all_present((0..n).map(|i| format!("l{i}"))))
}

/// The Thm 4.1 two-counter-machine form: compile `machine` into a depth-2
/// guarded form whose completability is exactly the machine's halting.
///
/// Thin, *shared* entry point over
/// [`idar_reductions::tcm_to_completability::reduce`] so bench and fuzz
/// construct machine workloads identically (including the micro-step
/// trace facility of [`TcmForm`]).
pub fn two_counter(machine: &TwoCounterMachine) -> TcmForm {
    idar_reductions::tcm_to_completability::reduce(machine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_and_lattice_shapes() {
        let c = positive_chain(4);
        assert_eq!(c.schema().edge_count(), 4);
        assert_eq!(c.schema().depth(), 1);
        assert!(c.rules().all_positive(c.schema()));
        let l = subset_lattice(3);
        assert_eq!(l.schema().edge_count(), 3);
        assert!(!l.rules().all_positive(l.schema()));
    }

    #[test]
    fn flat_form_defaults_to_false() {
        let g = flat_form(&[("a".into(), None, None)], Formula::True);
        assert!(g.allowed_updates(g.initial()).is_empty());
    }

    #[test]
    fn two_counter_builder_matches_reduction() {
        let m = idar_machines::library::count_up_then_accept(1);
        let a = two_counter(&m);
        let b = idar_reductions::tcm_to_completability::reduce(&m);
        assert_eq!(
            idar_core::serialize::to_ron(&a.form),
            idar_core::serialize::to_ron(&b.form)
        );
    }
}
