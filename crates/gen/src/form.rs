//! The seed-driven guarded-form generator.
//!
//! [`generate`] is a pure function of `(config, seed)`: the same pair
//! always yields the same form, on every platform — the determinism
//! contract the differential fuzz harness and CI rely on. All randomness
//! flows through [`idar_logic::gen::Rng`].
//!
//! Generated formulas are *contextual*: a guard for edge `e` is built from
//! path atoms that actually mean something at `e`'s parent node (sibling
//! labels, grandchild paths, `../`-sibling paths), so the access rules
//! interact with the instance rather than being dead syntax.

use crate::config::{FragmentSpec, GenConfig};
use idar_core::{
    AccessRules, Formula, GuardedForm, Instance, PathExpr, Right, Schema, SchemaBuilder,
    SchemaNodeId,
};
use idar_logic::gen::{split_mix, Rng, XorShift};
use std::sync::Arc;

/// Generate one guarded form from `(config, seed)`, deterministically.
pub fn generate(config: &GenConfig, seed: u64) -> GuardedForm {
    let mut rng = XorShift::new(split_mix(seed ^ config.fragment.tag()));
    let positive = config.fragment == FragmentSpec::Positive;

    // --- schema ---------------------------------------------------------
    let max_depth = match config.fragment {
        FragmentSpec::Depth1 => 1,
        _ => config.size.max_depth.max(1),
    };
    let n_fields = rng.range(1, config.size.max_fields.max(1));
    let mut b = SchemaBuilder::new();
    let mut nodes: Vec<(SchemaNodeId, usize)> = vec![(SchemaNodeId::ROOT, 0)];
    for i in 0..n_fields {
        // Candidates: nodes that can still grow a child within the depth cap.
        let parents: Vec<SchemaNodeId> = nodes
            .iter()
            .filter(|&&(_, d)| d < max_depth)
            .map(|&(n, _)| n)
            .collect();
        let p = parents[rng.below(parents.len())];
        let d = nodes.iter().find(|&&(n, _)| n == p).expect("known node").1;
        let c = b.child(p, &format!("f{i}")).expect("globally fresh label");
        nodes.push((c, d + 1));
    }
    let schema = Arc::new(b.build());

    // --- access rules ---------------------------------------------------
    let mut rules = AccessRules::new(&schema);
    for e in schema.edge_ids() {
        let parent = schema.parent(e).expect("edge has a parent");
        if rng.chance(config.rule_density, 100) {
            let budget = rng.range(1, config.size.max_formula_size.max(1));
            let g = gen_formula(&mut rng, &atoms_at(&schema, parent), budget, positive);
            rules.set(Right::Add, e, g);
        }
        if config.fragment != FragmentSpec::DeletionFree && rng.chance(config.rule_density / 2, 100)
        {
            let budget = rng.range(1, config.size.max_formula_size.max(1));
            let g = gen_formula(&mut rng, &atoms_at(&schema, parent), budget, positive);
            rules.set(Right::Del, e, g);
        }
    }
    // Guarantee at least one potentially-enabled addition so the form is
    // not trivially frozen at its initial instance.
    let has_enabled_add = schema
        .edge_ids()
        .any(|e| rules.get(Right::Add, e) != &Formula::False);
    if !has_enabled_add {
        let first = schema.children(SchemaNodeId::ROOT)[0];
        rules.set(Right::Add, first, Formula::True);
    }

    // --- initial instance -----------------------------------------------
    let initial = if rng.bool() || config.size.max_initial_nodes == 0 {
        Instance::empty(schema.clone())
    } else {
        let budget = rng.range(1, config.size.max_initial_nodes);
        let mut chooser = |n: usize| rng.below(n);
        Instance::arbitrary_with(schema.clone(), budget, &mut chooser)
    };

    // --- completion formula ---------------------------------------------
    let completion = {
        let budget = rng.range(1, config.size.max_formula_size.max(1));
        gen_formula(
            &mut rng,
            &atoms_at(&schema, SchemaNodeId::ROOT),
            budget,
            positive,
        )
    };

    GuardedForm::new(schema, rules, initial, completion)
}

/// The per-case seeds of a fuzzing stream: `count` decorrelated seeds
/// derived from `(config.fragment, master_seed)`. Case `k`'s form is
/// `generate(config, stream[k])`; the derivation is stable, so any case
/// can be regenerated in isolation from `(master_seed, fragment, k)`.
pub fn generate_stream(config: &GenConfig, master_seed: u64, count: usize) -> Vec<u64> {
    (0..count as u64)
        .map(|k| split_mix(master_seed ^ split_mix(config.fragment.tag().wrapping_add(k))))
        .collect()
}

/// Path atoms that are meaningful when evaluated at `ctx`: child labels,
/// child/grandchild paths, and `../sibling` paths.
fn atoms_at(schema: &Schema, ctx: SchemaNodeId) -> Vec<PathExpr> {
    let mut out = Vec::new();
    for &c in schema.children(ctx) {
        out.push(PathExpr::Label(schema.label(c).to_string()));
        for &g in schema.children(c) {
            out.push(PathExpr::Seq(
                Box::new(PathExpr::Label(schema.label(c).to_string())),
                Box::new(PathExpr::Label(schema.label(g).to_string())),
            ));
        }
    }
    if let Some(p) = schema.parent(ctx) {
        for &sib in schema.children(p) {
            out.push(PathExpr::Seq(
                Box::new(PathExpr::Parent),
                Box::new(PathExpr::Label(schema.label(sib).to_string())),
            ));
        }
    }
    out
}

/// A random formula of AST size ≈ `budget` over `atoms`; negation-free
/// when `positive`.
fn gen_formula(rng: &mut impl Rng, atoms: &[PathExpr], budget: usize, positive: bool) -> Formula {
    if budget <= 1 || atoms.is_empty() {
        // Leaf: usually an atom, occasionally a constant.
        return if atoms.is_empty() || rng.chance(1, 8) {
            if rng.bool() {
                Formula::True
            } else {
                Formula::False
            }
        } else {
            Formula::Path(atoms[rng.below(atoms.len())].clone())
        };
    }
    let arms = if positive { 3 } else { 4 };
    match rng.below(arms) {
        0 => {
            let left = rng.range(1, budget - 1);
            gen_formula(rng, atoms, left, positive).and(gen_formula(
                rng,
                atoms,
                budget - 1 - left,
                positive,
            ))
        }
        1 => {
            let left = rng.range(1, budget - 1);
            gen_formula(rng, atoms, left, positive).or(gen_formula(
                rng,
                atoms,
                budget - 1 - left,
                positive,
            ))
        }
        2 => {
            // A filtered path: `atom[inner]`, evaluated at the atom's end.
            let atom = atoms[rng.below(atoms.len())].clone();
            let inner = gen_formula(rng, atoms, budget.saturating_sub(2).max(1), positive);
            Formula::Path(PathExpr::Filter(Box::new(atom), Box::new(inner)))
        }
        _ => gen_formula(rng, atoms, budget - 1, positive).not(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::fragment::{classify, Polarity};
    use idar_core::serialize;

    #[test]
    fn deterministic_per_seed() {
        for frag in FragmentSpec::ALL {
            let cfg = GenConfig::new(frag);
            for seed in 0..20u64 {
                let a = generate(&cfg, seed);
                let b = generate(&cfg, seed);
                assert_eq!(serialize::to_ron(&a), serialize::to_ron(&b));
            }
            let a = generate(&cfg, 1);
            let b = generate(&cfg, 2);
            assert_ne!(serialize::to_ron(&a), serialize::to_ron(&b));
        }
    }

    #[test]
    fn fragments_respected() {
        for frag in FragmentSpec::ALL {
            let cfg = GenConfig::new(frag);
            for seed in 0..50u64 {
                let g = generate(&cfg, seed);
                assert!(frag.admits(&g), "{frag} seed {seed} escaped its fragment");
            }
        }
    }

    #[test]
    fn positive_really_positive() {
        let cfg = GenConfig::new(FragmentSpec::Positive);
        for seed in 0..30u64 {
            let g = generate(&cfg, seed);
            let f = classify(&g);
            assert_eq!(f.access, Polarity::Positive);
            assert_eq!(f.completion, Polarity::Positive);
        }
    }

    #[test]
    fn serialization_roundtrips() {
        for frag in FragmentSpec::ALL {
            let cfg = GenConfig::new(frag);
            for seed in 0..20u64 {
                let g = generate(&cfg, seed);
                let text = serialize::to_ron(&g);
                let g2 = serialize::from_ron(&text).expect("generated forms serialize");
                assert_eq!(text, serialize::to_ron(&g2), "not canonical at seed {seed}");
            }
        }
    }

    #[test]
    fn stream_seeds_are_stable_and_distinct() {
        let cfg = GenConfig::new(FragmentSpec::Guarded);
        let a = generate_stream(&cfg, 0xC0FFEE, 100);
        let b = generate_stream(&cfg, 0xC0FFEE, 100);
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len());
        // Different fragments get different streams from one master seed.
        let c = generate_stream(&GenConfig::new(FragmentSpec::Positive), 0xC0FFEE, 100);
        assert_ne!(a, c);
    }
}
