//! # idar-gen
//!
//! The workspace's **scenario engine**: deterministic, seed-driven
//! generation of guarded forms — schemas, instance-dependent access rules,
//! initial instances and completion formulas — parameterised by the
//! paper's fragment lattice (Sec. 3.5), a size envelope and a rule
//! density.
//!
//! Three layers:
//!
//! * [`config`] / [`form`] — the random generators. Every decision is
//!   drawn through the [`idar_logic::gen::Rng`] trait, so a `u64` seed
//!   reproduces a form bit-for-bit (`generate(&cfg, seed)`); the fragment
//!   parameter ([`FragmentSpec`]) guarantees the generated form *stays
//!   inside* its fragment (positive guards/completion, depth-1 schema,
//!   deletion-free rules).
//! * [`builders`] — the deterministic named families the benchmarks and
//!   the fuzz harness share ([`builders::subset_lattice`],
//!   [`builders::positive_chain`], [`builders::flat_form`],
//!   [`builders::two_counter`]), so one construction path feeds both.
//! * [`cnf`] — deterministic CNF families (implication chains,
//!   pigeonhole, seeded random 3-CNF) for the SAT-engine benches and the
//!   cdcl-vs-dpll differential oracle.
//! * [`scenario`] / [`constraints`] — the realistic corpus: multi-level
//!   approval chains (delegation, rejection loops) compiled to depth-1
//!   guarded forms, Crampton–Gutin SoD/BoD duties compiled into guards
//!   with an independent trace-level checker and a hand-rolled
//!   reachability oracle, and WfCommons-style recipe sampling
//!   ([`ScenarioRecipe`]) behind the fuzz axes ([`ScenarioAxis`]).
//! * [`mod@shrink`] — greedy, size-monotone minimisation of a failing form
//!   while an oracle keeps reporting the failure; the differential fuzz
//!   harness uses it to emit minimal `.ron` repro cases
//!   ([`idar_core::serialize`]).
//!
//! The random-instance evaluation style follows Crampton & Gutin's
//! workflow-satisfiability experiments; determinism-per-seed is the
//! contract CI relies on (`fuzz --seed N` reproduces the identical case
//! sequence).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builders;
pub mod cnf;
pub mod config;
pub mod constraints;
pub mod form;
pub mod scenario;
pub mod shrink;

pub use config::{FragmentSpec, GenConfig, SizeEnvelope};
pub use constraints::{Constraint, ConstraintSet, Duty};
pub use form::{generate, generate_stream};
pub use scenario::{
    named_scenarios, scenario_stream, ChainSpec, LevelSpec, Scenario, ScenarioAxis, ScenarioRecipe,
    ScenarioSpec,
};
pub use shrink::{form_size, scenario_size, shrink, shrink_scenario};
