//! Deterministic CNF workload families for the SAT-engine benches and
//! the cdcl-vs-dpll differential fuzz oracle.
//!
//! Three families with known verdicts and very different propagation
//! profiles:
//!
//! * [`implication_chain`] — trivially SAT, pure unit propagation; the
//!   workload that exposed the quadratic rescan in the original DPLL
//!   (53.6 s for 200k clauses before the indexed unit queue / CDCL);
//! * [`pigeonhole`] — `PHP(h+1, h)`, UNSAT with exponentially long
//!   resolution proofs: a stress test for conflict analysis;
//! * [`random_3cnf`] (re-exported from `idar_logic`) — seeded uniform
//!   3-CNF around arbitrary clause/variable ratios.

use idar_logic::prop::{Cnf, Lit};

pub use idar_logic::gen::{random_3cnf, random_3cnf_with};

/// `x0 ∧ (x0 → x1) ∧ … ∧ (x_{n−2} → x_{n−1})`: `n` clauses over `n`
/// variables, satisfiable only by the all-true assignment. Solvable by
/// unit propagation alone — any super-linear solver behaviour shows up
/// immediately at large `n`.
pub fn implication_chain(n: usize) -> Cnf {
    assert!(n >= 1);
    let mut clauses = Vec::with_capacity(n);
    clauses.push(vec![Lit::pos(0)]);
    for i in 0..n as u32 - 1 {
        clauses.push(vec![Lit::neg(i), Lit::pos(i + 1)]);
    }
    Cnf::new(clauses)
}

/// [`implication_chain`] with the final variable contradicted — UNSAT,
/// refutable by propagation alone.
pub fn implication_chain_unsat(n: usize) -> Cnf {
    let mut cnf = implication_chain(n);
    cnf.clauses
        .push(idar_logic::Clause(vec![Lit::neg(n as u32 - 1)]));
    cnf
}

/// The pigeonhole principle `PHP(holes + 1, holes)`: pigeon `i` sits in
/// hole `j` via variable `holes·i + j`; every pigeon is placed and no two
/// pigeons share a hole. UNSAT for every `holes ≥ 1`.
pub fn pigeonhole(holes: usize) -> Cnf {
    assert!(holes >= 1);
    let h = holes as u32;
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    for i in 0..h + 1 {
        clauses.push((0..h).map(|j| Lit::pos(h * i + j)).collect());
    }
    for j in 0..h {
        for i1 in 0..h + 1 {
            for i2 in (i1 + 1)..h + 1 {
                clauses.push(vec![Lit::neg(h * i1 + j), Lit::neg(h * i2 + j)]);
            }
        }
    }
    Cnf::new(clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_logic::Engine;

    #[test]
    fn chain_shapes_and_verdicts() {
        let cnf = implication_chain(100);
        assert_eq!(cnf.vars, 100);
        assert_eq!(cnf.clauses.len(), 100);
        let model = idar_logic::sat_solve(&cnf).expect("chain is SAT");
        assert!(cnf.eval(&model));
        assert!((0..100).all(|i| model.get(idar_logic::Var(i))));
        assert!(idar_logic::sat_solve(&implication_chain_unsat(100)).is_none());
    }

    #[test]
    fn pigeonhole_is_unsat_for_every_engine() {
        for holes in 1..4 {
            let cnf = pigeonhole(holes);
            for engine in Engine::ALL {
                assert!(engine.solve(&cnf).is_none(), "{engine} PHP({holes})");
            }
        }
    }

    #[test]
    fn families_are_deterministic() {
        assert_eq!(implication_chain(10), implication_chain(10));
        assert_eq!(pigeonhole(3), pigeonhole(3));
        assert_eq!(random_3cnf(5, 6, 12), random_3cnf(5, 6, 12));
    }
}
