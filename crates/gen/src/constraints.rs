//! SoD/BoD duty constraints over approval chains, compiled into guards —
//! with a trace-level checker and a hand-rolled reachability oracle kept
//! **independent** of both the compiler and the solver stack, so the
//! fuzz harness can run a compiled-guards vs trace-oracle differential.
//!
//! The constraint language is Crampton–Gutin's core: a duty relates two
//! *steps* (here: chain levels) and either forbids (`Separation`) or
//! forces (`Binding`) them to bind the same user.
//!
//! # Compilation contract
//!
//! A user binds a level by holding a **live** signature on it (rejection
//! loops delete signatures, releasing the binding — this is the natural
//! reading of duties under rework). The compiler conjoins, symmetrically
//! onto both sides' signature add-guards:
//!
//! * `Separation(a, b)`: `s{a}_u{u}` additionally requires
//!   `¬s{b}_u{u}` — `u` must not currently bind the other level
//!   (and vice versa).
//! * `Binding(a, b)`: `s{a}_u{u}` additionally requires
//!   `¬s{b}_u{v}` for every eligible `v ≠ u` — whoever binds first
//!   fixes the user for the pair.
//!
//! The trace checker ([`check_run`]) re-states exactly that invariant
//! over raw update sequences without evaluating a single guard, and
//! [`constrained_completable`] decides completability of a constrained
//! chain by breadth-first search over the *unconstrained* form with the
//! invariant enforced structurally. Agreement between the two paths is
//! what the differential fuzz axis asserts.

use crate::scenario::{ChainLayout, EdgeRole, ScenarioSpec, UserId};
use idar_core::{AccessRules, Formula, GuardedForm, InstNodeId, Right, Schema, Update};
use std::collections::{HashSet, VecDeque};
use std::fmt;

/// The two duty kinds of the core constraint language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Duty {
    /// The two levels must be signed by *different* users.
    Separation,
    /// The two levels must be signed by the *same* user.
    Binding,
}

/// A duty over a pair of 1-based chain levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// Separation or binding.
    pub duty: Duty,
    /// First level (1-based).
    pub a: usize,
    /// Second level (1-based, different from `a`).
    pub b: usize,
}

impl Constraint {
    /// `Separation(a, b)`.
    pub fn separation(a: usize, b: usize) -> Constraint {
        Constraint {
            duty: Duty::Separation,
            a,
            b,
        }
    }

    /// `Binding(a, b)`.
    pub fn binding(a: usize, b: usize) -> Constraint {
        Constraint {
            duty: Duty::Binding,
            a,
            b,
        }
    }

    /// If `level` is one side of this duty, the other side.
    fn other(&self, level: usize) -> Option<usize> {
        if level == self.a {
            Some(self.b)
        } else if level == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = match self.duty {
            Duty::Separation => "sod",
            Duty::Binding => "bod",
        };
        write!(f, "{d}({},{})", self.a, self.b)
    }
}

/// An ordered set of duties (order only affects guard-conjunct order,
/// not semantics).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstraintSet {
    items: Vec<Constraint>,
}

impl ConstraintSet {
    /// No duties.
    pub fn empty() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// A set from an iterator.
    pub fn of(items: impl IntoIterator<Item = Constraint>) -> ConstraintSet {
        ConstraintSet {
            items: items.into_iter().collect(),
        }
    }

    /// Append a duty.
    pub fn push(&mut self, c: Constraint) {
        self.items.push(c);
    }

    /// Drop the duty at `ix` (shrinker support).
    pub fn remove(&mut self, ix: usize) -> Constraint {
        self.items.remove(ix)
    }

    /// Number of duties.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate the duties in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Constraint> {
        self.items.iter()
    }

    /// Both sides of every duty must be valid 1-based levels and differ.
    pub fn validate(&self, levels: usize) -> Result<(), String> {
        for c in &self.items {
            if c.a == 0 || c.b == 0 || c.a > levels || c.b > levels {
                return Err(format!("{c}: level out of range (1..={levels})"));
            }
            if c.a == c.b {
                return Err(format!("{c}: a duty needs two distinct levels"));
            }
        }
        Ok(())
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

/// Conjoin the compiled duty terms onto the signature add-guards of
/// `rules` (see the module docs for the contract).
pub fn compile(
    rules: &mut AccessRules,
    schema: &Schema,
    layout: &ChainLayout,
    set: &ConstraintSet,
) {
    for c in set.iter() {
        for (level, other) in [(c.a, c.b), (c.b, c.a)] {
            for &(u, edge) in layout.sig_edges(level) {
                let terms: Vec<Formula> = match c.duty {
                    Duty::Separation => layout
                        .sig_edge(other, u)
                        .map(|e| Formula::label(schema.label(e)).not())
                        .into_iter()
                        .collect(),
                    Duty::Binding => layout
                        .sig_edges(other)
                        .iter()
                        .filter(|&&(v, _)| v != u)
                        .map(|&(_, e)| Formula::label(schema.label(e)).not())
                        .collect(),
                };
                if terms.is_empty() {
                    continue;
                }
                let g = rules.get(Right::Add, edge).clone();
                rules.set(Right::Add, edge, g.and(Formula::conj(terms)));
            }
        }
    }
}

/// A duty violation found by the trace checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The violated duty.
    pub constraint: Constraint,
    /// 0-based index of the offending update in the run.
    pub step: usize,
    /// The level being signed at that step.
    pub level: usize,
    /// The user signing it.
    pub user: UserId,
    /// The user currently binding the duty's other level, if any.
    pub bound: Option<UserId>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {}: u{} signs level {} violating {} (other side bound to {:?})",
            self.step, self.user, self.level, self.constraint, self.bound
        )
    }
}

/// The duty invariant at a prospective signature `(level, user)` given
/// the current live bindings — the single definition [`check_run`],
/// [`constrained_completable`] and (via compilation) the guards share.
fn duty_ok(
    set: &ConstraintSet,
    bindings: &[Option<UserId>],
    level: usize,
    user: UserId,
) -> Result<(), (Constraint, Option<UserId>)> {
    for c in set.iter() {
        let Some(other) = c.other(level) else {
            continue;
        };
        let bound = bindings[other - 1];
        match c.duty {
            Duty::Separation => {
                if bound == Some(user) {
                    return Err((*c, bound));
                }
            }
            Duty::Binding => {
                if bound.is_some_and(|v| v != user) {
                    return Err((*c, bound));
                }
            }
        }
    }
    Ok(())
}

/// Trace-level oracle: walk `updates` **structurally** (no guard or
/// formula evaluation) over `form`'s instances, tracking which user's
/// signature is live on each level, and report the first duty
/// violation. Independent of [`compile`] by construction.
pub fn check_run(
    form: &GuardedForm,
    layout: &ChainLayout,
    set: &ConstraintSet,
    updates: &[Update],
) -> Result<(), Violation> {
    let mut inst = form.initial().clone();
    let mut bindings: Vec<Option<UserId>> = vec![None; layout.levels];
    for (step, up) in updates.iter().enumerate() {
        match up {
            Update::Add { edge, .. } => {
                if let EdgeRole::Sig { level, user } = layout.role(*edge) {
                    if let Err((constraint, bound)) = duty_ok(set, &bindings, level, user) {
                        return Err(Violation {
                            constraint,
                            step,
                            level,
                            user,
                            bound,
                        });
                    }
                    bindings[level - 1] = Some(user);
                }
            }
            Update::Del { node } => {
                if let EdgeRole::Sig { level, .. } = layout.role(inst.schema_node(*node)) {
                    bindings[level - 1] = None;
                }
            }
        }
        form.apply_unchecked(&mut inst, up).expect("structural run");
    }
    Ok(())
}

/// Hand-rolled bounded reachability oracle for constrained chains,
/// bypassing the entire solver stack: breadth-first search over the
/// **unconstrained** form's update relation, pruning signature adds
/// that violate the duty invariant read directly off the instance.
///
/// Returns `Some(verdict)` when the search closes or finds a complete
/// instance within `max_states`, `None` when the cap is hit first. The
/// differential axis compares this against the solver's verdict on the
/// *compiled* form.
pub fn constrained_completable(spec: &ScenarioSpec, max_states: usize) -> Option<bool> {
    let base = ScenarioSpec::unconstrained(spec.chain.clone()).build("oracle-base");
    let form = &base.form;
    let layout = &base.layout;
    let set = &spec.constraints;

    let key = |inst: &idar_core::Instance| -> Vec<u32> {
        let mut k: Vec<u32> = inst
            .children(InstNodeId::ROOT)
            .iter()
            .map(|&c| inst.schema_node(c).index() as u32)
            .collect();
        k.sort_unstable();
        k
    };
    let bindings_of = |inst: &idar_core::Instance| -> Vec<Option<UserId>> {
        let mut b = vec![None; layout.levels];
        for &c in inst.children(InstNodeId::ROOT) {
            if let EdgeRole::Sig { level, user } = layout.role(inst.schema_node(c)) {
                b[level - 1] = Some(user);
            }
        }
        b
    };

    let mut seen: HashSet<Vec<u32>> = HashSet::new();
    let mut queue = VecDeque::new();
    seen.insert(key(form.initial()));
    queue.push_back(form.initial().clone());
    while let Some(inst) = queue.pop_front() {
        if form.is_complete(&inst) {
            return Some(true);
        }
        let bindings = bindings_of(&inst);
        for up in form.allowed_updates(&inst) {
            if let Update::Add { edge, .. } = up {
                if let EdgeRole::Sig { level, user } = layout.role(edge) {
                    if duty_ok(set, &bindings, level, user).is_err() {
                        continue;
                    }
                }
            }
            let mut next = inst.clone();
            form.apply(&mut next, &up).expect("allowed update");
            if seen.insert(key(&next)) {
                if seen.len() > max_states {
                    return None;
                }
                queue.push_back(next);
            }
        }
    }
    Some(false)
}

/// Enumerate *every* duty set over `levels` with at most `max` duties —
/// the exhaustive half of the small-instance differential tests.
pub fn all_constraint_sets(levels: usize, max: usize) -> Vec<ConstraintSet> {
    let mut pairs = Vec::new();
    for a in 1..=levels {
        for b in (a + 1)..=levels {
            pairs.push(Constraint::separation(a, b));
            pairs.push(Constraint::binding(a, b));
        }
    }
    let mut out = vec![ConstraintSet::empty()];
    let mut frontier: Vec<Vec<Constraint>> = vec![Vec::new()];
    for _ in 0..max {
        let mut next = Vec::new();
        for base in &frontier {
            let start = base
                .last()
                .map(|l| pairs.iter().position(|p| p == l).unwrap() + 1)
                .unwrap_or(0);
            for p in &pairs[start..] {
                let mut ext = base.clone();
                ext.push(*p);
                out.push(ConstraintSet::of(ext.clone()));
                next.push(ext);
            }
        }
        frontier = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ChainSpec, LevelSpec};

    fn two_level_shared_user() -> ChainSpec {
        ChainSpec {
            users: 2,
            levels: vec![LevelSpec::approvers([0, 1]), LevelSpec::approvers([0, 1])],
        }
    }

    #[test]
    fn separation_blocks_reuse() {
        let spec = ScenarioSpec {
            chain: two_level_shared_user(),
            constraints: ConstraintSet::of([Constraint::separation(1, 2)]),
        };
        let s = spec.build("t");
        // sub, s1_u0, s2_u0 violates; the trace oracle agrees with the
        // compiled guard refusing the third step.
        let sub = s.form.schema().resolve("sub").unwrap();
        let s1 = s.layout.sig_edge(1, 0).unwrap();
        let s2 = s.layout.sig_edge(2, 0).unwrap();
        let mk = |edge| Update::Add {
            parent: InstNodeId::ROOT,
            edge,
        };
        let run = [mk(sub), mk(s1), mk(s2)];
        let v = check_run(&s.form, &s.layout, &spec.constraints, &run).unwrap_err();
        assert_eq!(v.step, 2);
        assert_eq!(v.constraint, Constraint::separation(1, 2));
        // And the compiled form refuses the same step.
        let run_ok = s.form.replay(&run[..2]).unwrap();
        assert!(!s.form.is_allowed(run_ok.last(), &mk(s2)));
        // A different user is fine both ways.
        let s2b = s.layout.sig_edge(2, 1).unwrap();
        let good = [mk(sub), mk(s1), mk(s2b)];
        assert!(check_run(&s.form, &s.layout, &spec.constraints, &good).is_ok());
        assert!(s.form.is_complete_run(&good));
    }

    #[test]
    fn binding_forces_reuse() {
        let spec = ScenarioSpec {
            chain: two_level_shared_user(),
            constraints: ConstraintSet::of([Constraint::binding(1, 2)]),
        };
        let s = spec.build("t");
        let sub = s.form.schema().resolve("sub").unwrap();
        let mk = |edge| Update::Add {
            parent: InstNodeId::ROOT,
            edge,
        };
        let bad = [
            mk(sub),
            mk(s.layout.sig_edge(1, 0).unwrap()),
            mk(s.layout.sig_edge(2, 1).unwrap()),
        ];
        assert!(check_run(&s.form, &s.layout, &spec.constraints, &bad).is_err());
        let good = [
            mk(sub),
            mk(s.layout.sig_edge(1, 0).unwrap()),
            mk(s.layout.sig_edge(2, 0).unwrap()),
        ];
        assert!(check_run(&s.form, &s.layout, &spec.constraints, &good).is_ok());
        assert!(s.form.is_complete_run(&good));
    }

    #[test]
    fn oracle_decides_small_chains() {
        // Feasible separated pair: two users available.
        let ok = ScenarioSpec {
            chain: two_level_shared_user(),
            constraints: ConstraintSet::of([Constraint::separation(1, 2)]),
        };
        assert_eq!(constrained_completable(&ok, 10_000), Some(true));
        // Infeasible: a single user cannot separate from themselves.
        let bad = ScenarioSpec {
            chain: ChainSpec {
                users: 1,
                levels: vec![LevelSpec::approvers([0]), LevelSpec::approvers([0])],
            },
            constraints: ConstraintSet::of([Constraint::separation(1, 2)]),
        };
        assert_eq!(constrained_completable(&bad, 10_000), Some(false));
        // Cap of zero states reports indecision, not a verdict.
        assert_eq!(constrained_completable(&ok, 0), None);
    }

    #[test]
    fn constraint_set_enumeration_counts() {
        // 2 levels → 1 pair → {sod, bod}: empty, 2 singletons, 1 pairset.
        let sets = all_constraint_sets(2, 2);
        assert_eq!(sets.len(), 4);
        for s in &sets {
            s.validate(2).unwrap();
        }
    }
}
