//! Realistic scenario corpus: multi-level **approval chains** with
//! per-level approver sets, instance-dependent delegation and rejection
//! loops, emitted as guarded forms — plus recipe-based sampling so the
//! fuzz and bench layers can draw synthetic-yet-realistic workloads.
//!
//! # Encoding
//!
//! A chain is compiled to a **depth-1** schema: one `sub` edge (the
//! submission) and, per level `i` (1-based), one signature edge
//! `s{i}_u{u}` per eligible user, one delegation edge `d{i}_u{f}_u{t}`
//! per declared delegation, and one `rej{i}` edge when the level carries
//! a rejection loop. All guards are evaluated at the root and every add
//! guard carries a "not already present" conjunct, so each edge holds at
//! most one child and the reachable space is finite.
//!
//! * `done(0) = sub`, `done(i) = ⋁_u s{i}_u{u}` — level `i` is approved
//!   when some eligible user's signature is live.
//! * signature `s{i}_u{u}` is addable when `done(i−1) ∧ ¬done(i)`, the
//!   level has no live rejection, and `u` has *authority*: approvers
//!   have it unconditionally, pure delegates only once a delegation edge
//!   targeting them is live — authority is instance-dependent.
//! * delegation `d{i}_u{f}_u{t}` itself requires `f` to have authority
//!   at level `i`, so delegation chains work and pure delegation
//!   *cycles* deadlock (nobody can issue the first delegation).
//! * a rejection loop at level `j` returning to level `k < j` adds a
//!   `rej{j}` marker; while it is live the signatures of levels
//!   `k..j−1` become deletable and level `j` cannot be approved; the
//!   marker itself clears only when all of `k..j−1` are rolled back.
//!
//! The completion formula is `done(N)`. Chains without rejection loops
//! never grant `del`, so they land in [`FragmentSpec::DeletionFree`];
//! otherwise the declared fragment is [`FragmentSpec::Depth1`] — in both
//! cases a *decidable* cell of Table 1, which the property tests assert
//! via [`FragmentSpec::admits`].
//!
//! SoD/BoD duties (Crampton–Gutin style) are layered on by
//! [`crate::constraints`]; see that module for the compilation contract.

use crate::config::FragmentSpec;
use crate::constraints::{self, ConstraintSet};
use idar_core::{AccessRules, Formula, GuardedForm, Instance, Right, SchemaBuilder, SchemaNodeId};
use idar_logic::gen::{split_mix, Rng, XorShift};
use std::fmt;
use std::sync::Arc;

/// A user is an index into the chain's user pool (label `u{n}`).
pub type UserId = usize;

/// One approval level of a chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelSpec {
    /// Users with unconditional authority to sign this level.
    pub approvers: Vec<UserId>,
    /// Delegation edges `(from, to)`: once live, `to` gains authority.
    /// The *from* side needs authority itself for the edge to fire.
    pub delegations: Vec<(UserId, UserId)>,
    /// `Some(k)` adds a rejection loop returning the form to level `k`
    /// (1-based, `k <` this level's number).
    pub rejection: Option<usize>,
}

impl LevelSpec {
    /// A plain level: the given approvers, no delegation, no rejection.
    pub fn approvers(users: impl IntoIterator<Item = UserId>) -> LevelSpec {
        LevelSpec {
            approvers: users.into_iter().collect(),
            delegations: Vec::new(),
            rejection: None,
        }
    }
}

/// A complete approval-chain specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSpec {
    /// Size of the user pool; all `UserId`s must be `< users`.
    pub users: usize,
    /// The levels, in approval order (level numbers are 1-based).
    pub levels: Vec<LevelSpec>,
}

impl ChainSpec {
    /// A clean chain: `levels` levels, approver sets of size
    /// `approvers_per_level` rotating through a pool of `users`.
    pub fn simple(levels: usize, approvers_per_level: usize, users: usize) -> ChainSpec {
        let per = approvers_per_level.clamp(1, users.max(1));
        let levels = (0..levels)
            .map(|i| LevelSpec::approvers((0..per).map(move |a| (i + a) % users.max(1))))
            .collect();
        ChainSpec {
            users: users.max(1),
            levels,
        }
    }

    /// Users that can (eventually) sign `level_ix` (0-based): approvers
    /// plus delegation targets, sorted and deduplicated.
    pub fn eligible(&self, level_ix: usize) -> Vec<UserId> {
        let l = &self.levels[level_ix];
        let mut out: Vec<UserId> = l
            .approvers
            .iter()
            .copied()
            .chain(l.delegations.iter().map(|&(_, t)| t))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Structural validity: at least one level, ids in range, rejection
    /// targets strictly earlier, every level eventually signable.
    pub fn validate(&self) -> Result<(), String> {
        if self.levels.is_empty() {
            return Err("chain needs at least one level".into());
        }
        if self.users == 0 {
            return Err("chain needs at least one user".into());
        }
        for (ix, l) in self.levels.iter().enumerate() {
            let n = ix + 1;
            for &u in &l.approvers {
                if u >= self.users {
                    return Err(format!("level {n}: approver u{u} out of range"));
                }
            }
            for &(f, t) in &l.delegations {
                if f >= self.users || t >= self.users {
                    return Err(format!("level {n}: delegation out of range"));
                }
                if f == t {
                    return Err(format!("level {n}: self-delegation u{f}"));
                }
            }
            if self.eligible(ix).is_empty() {
                return Err(format!("level {n}: nobody can ever sign"));
            }
            if let Some(k) = l.rejection {
                if k == 0 || k >= n {
                    return Err(format!(
                        "level {n}: rejection must return to 1..={}",
                        n.saturating_sub(1)
                    ));
                }
            }
        }
        Ok(())
    }

    /// True iff some level carries a rejection loop (the only source of
    /// `del` rights in the encoding).
    pub fn has_rejection(&self) -> bool {
        self.levels.iter().any(|l| l.rejection.is_some())
    }
}

/// What a schema edge of a scenario form *means*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeRole {
    /// The `sub` submission edge.
    Submit,
    /// Signature of `user` at `level` (1-based).
    Sig {
        /// 1-based level number.
        level: usize,
        /// The signing user.
        user: UserId,
    },
    /// Delegation of authority at `level` from `from` to `to`.
    Delegation {
        /// 1-based level number.
        level: usize,
        /// Delegating user (needs authority itself).
        from: UserId,
        /// User gaining authority.
        to: UserId,
    },
    /// Rejection marker at `level`, rolling back to `return_to`.
    Rejection {
        /// 1-based level number the marker sits on.
        level: usize,
        /// 1-based level the form returns to.
        return_to: usize,
    },
}

/// Edge → role map for a built chain, used by the constraint compiler
/// and the trace-level oracle to interpret runs structurally.
#[derive(Debug, Clone)]
pub struct ChainLayout {
    /// Number of levels.
    pub levels: usize,
    /// Size of the user pool.
    pub users: usize,
    roles: Vec<Option<EdgeRole>>, // indexed by SchemaNodeId
    sig_edges: Vec<Vec<(UserId, SchemaNodeId)>>, // per 0-based level, sorted by user
}

impl ChainLayout {
    /// The role of a schema edge (panics on the root).
    pub fn role(&self, edge: SchemaNodeId) -> EdgeRole {
        self.roles[edge.index()].expect("root has no role")
    }

    /// Signature edges of a 1-based level, `(user, edge)` sorted by user.
    pub fn sig_edges(&self, level: usize) -> &[(UserId, SchemaNodeId)] {
        &self.sig_edges[level - 1]
    }

    /// The signature edge of `user` at 1-based `level`, if eligible.
    pub fn sig_edge(&self, level: usize, user: UserId) -> Option<SchemaNodeId> {
        self.sig_edges[level - 1]
            .iter()
            .find(|&&(u, _)| u == user)
            .map(|&(_, e)| e)
    }
}

/// A built scenario: the spec it came from, the compiled guarded form,
/// the edge-role layout and the *declared* fragment.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Human-readable name (named corpus entries; `"sampled"` otherwise).
    pub name: String,
    /// The originating specification (chain + duties).
    pub spec: ScenarioSpec,
    /// The compiled guarded form (duty guards included).
    pub form: GuardedForm,
    /// Edge-role map for structural interpretation of runs.
    pub layout: ChainLayout,
    /// Declared fragment; `fragment.admits(&form)` is a tested invariant.
    pub fragment: FragmentSpec,
}

/// A chain plus its duty constraints — the unit the recipe sampler
/// produces and the scenario shrinker minimises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// The approval chain.
    pub chain: ChainSpec,
    /// SoD/BoD duties over the chain's levels.
    pub constraints: ConstraintSet,
}

impl ScenarioSpec {
    /// A spec with no duties.
    pub fn unconstrained(chain: ChainSpec) -> ScenarioSpec {
        ScenarioSpec {
            chain,
            constraints: ConstraintSet::empty(),
        }
    }

    /// The fragment this spec's form is declared to live in: chains
    /// without rejection loops grant no `del` right at all.
    pub fn fragment(&self) -> FragmentSpec {
        if self.chain.has_rejection() {
            FragmentSpec::Depth1
        } else {
            FragmentSpec::DeletionFree
        }
    }

    /// Compile the spec into a [`Scenario`]. Panics on an invalid spec
    /// (the samplers and named corpus only produce valid ones).
    pub fn build(&self, name: &str) -> Scenario {
        self.chain.validate().expect("valid chain spec");
        self.constraints
            .validate(self.chain.levels.len())
            .expect("valid constraint set");
        let (form, layout) = build_form(&self.chain, &self.constraints);
        Scenario {
            name: name.to_string(),
            spec: self.clone(),
            form,
            layout,
            fragment: self.fragment(),
        }
    }

    /// One-line summary for fuzz repro-file headers.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "users={} levels=[{}]",
            self.chain.users,
            self.chain
                .levels
                .iter()
                .map(|l| {
                    let mut part = format!("{{a:{:?}", l.approvers);
                    if !l.delegations.is_empty() {
                        part.push_str(&format!(" d:{:?}", l.delegations));
                    }
                    if let Some(k) = l.rejection {
                        part.push_str(&format!(" rej->{k}"));
                    }
                    part.push('}');
                    part
                })
                .collect::<Vec<_>>()
                .join(", ")
        );
        if !self.constraints.is_empty() {
            s.push_str(&format!(" duties={}", self.constraints));
        }
        s
    }
}

/// Compile a chain + duties into a guarded form and its layout.
fn build_form(chain: &ChainSpec, duties: &ConstraintSet) -> (GuardedForm, ChainLayout) {
    let n = chain.levels.len();
    let mut b = SchemaBuilder::new();
    let mut roles: Vec<Option<EdgeRole>> = vec![None]; // root
    let push = |b: &mut SchemaBuilder,
                roles: &mut Vec<Option<EdgeRole>>,
                label: String,
                role: EdgeRole| {
        let e = b.child(SchemaNodeId::ROOT, &label).expect("unique label");
        debug_assert_eq!(e.index(), roles.len());
        roles.push(Some(role));
        e
    };

    let sub = push(&mut b, &mut roles, "sub".into(), EdgeRole::Submit);
    let mut sig_edges: Vec<Vec<(UserId, SchemaNodeId)>> = Vec::with_capacity(n);
    let mut del_edges: Vec<Vec<((UserId, UserId), SchemaNodeId)>> = Vec::with_capacity(n);
    let mut rej_edges: Vec<Option<SchemaNodeId>> = Vec::with_capacity(n);
    for (ix, l) in chain.levels.iter().enumerate() {
        let lvl = ix + 1;
        let sigs = chain
            .eligible(ix)
            .into_iter()
            .map(|u| {
                let e = push(
                    &mut b,
                    &mut roles,
                    format!("s{lvl}_u{u}"),
                    EdgeRole::Sig {
                        level: lvl,
                        user: u,
                    },
                );
                (u, e)
            })
            .collect();
        sig_edges.push(sigs);
        let dels = l
            .delegations
            .iter()
            .map(|&(f, t)| {
                let e = push(
                    &mut b,
                    &mut roles,
                    format!("d{lvl}_u{f}_u{t}"),
                    EdgeRole::Delegation {
                        level: lvl,
                        from: f,
                        to: t,
                    },
                );
                ((f, t), e)
            })
            .collect();
        del_edges.push(dels);
        rej_edges.push(l.rejection.map(|k| {
            push(
                &mut b,
                &mut roles,
                format!("rej{lvl}"),
                EdgeRole::Rejection {
                    level: lvl,
                    return_to: k,
                },
            )
        }));
    }
    let schema = Arc::new(b.build());

    // done(i): level i approved; done(0) = submitted.
    let done = |lvl: usize| -> Formula {
        if lvl == 0 {
            Formula::label("sub")
        } else {
            Formula::disj(
                sig_edges[lvl - 1]
                    .iter()
                    .map(|&(_, e)| Formula::label(schema.label(e))),
            )
        }
    };
    // authority(lvl, u): None = unconditional (approver); otherwise the
    // disjunction of live delegation edges targeting u.
    let authority = |lvl: usize, u: UserId| -> Option<Formula> {
        if chain.levels[lvl - 1].approvers.contains(&u) {
            None
        } else {
            Some(Formula::disj(
                del_edges[lvl - 1]
                    .iter()
                    .filter(|&&((_, t), _)| t == u)
                    .map(|&(_, e)| Formula::label(schema.label(e))),
            ))
        }
    };
    // Rejection loops whose rollback window [return_to, level) covers a
    // 1-based level m.
    let covering: Vec<Vec<usize>> = (1..=n)
        .map(|m| {
            (1..=n)
                .filter(|&j| {
                    chain.levels[j - 1]
                        .rejection
                        .is_some_and(|k| k <= m && m < j)
                })
                .collect()
        })
        .collect();

    let mut rules = AccessRules::new(&schema);
    rules.set(Right::Add, sub, Formula::label("sub").not());
    for (ix, _) in chain.levels.iter().enumerate() {
        let lvl = ix + 1;
        let pending = done(lvl - 1).and(done(lvl).not());
        for &(u, e) in &sig_edges[ix] {
            let mut g = pending.clone();
            if let Some(r) = rej_edges[ix] {
                g = g.and(Formula::label(schema.label(r)).not());
            }
            if let Some(auth) = authority(lvl, u) {
                g = g.and(auth);
            }
            rules.set(Right::Add, e, g);
            // Rollback: a live signature is deletable exactly while a
            // covering rejection marker is live.
            if !covering[ix].is_empty() {
                rules.set(
                    Right::Del,
                    e,
                    Formula::disj(
                        covering[ix].iter().map(|&j| {
                            Formula::label(schema.label(rej_edges[j - 1].expect("loop")))
                        }),
                    ),
                );
            }
        }
        for &((f, _), e) in &del_edges[ix] {
            let mut g = pending.clone().and(Formula::label(schema.label(e)).not());
            if let Some(auth) = authority(lvl, f) {
                g = g.and(auth);
            }
            rules.set(Right::Add, e, g);
        }
        if let Some(r) = rej_edges[ix] {
            let k = chain.levels[ix].rejection.expect("loop");
            rules.set(
                Right::Add,
                r,
                pending.and(Formula::label(schema.label(r)).not()),
            );
            // The marker clears once every covered level is rolled back.
            rules.set(
                Right::Del,
                r,
                Formula::conj((k..lvl).map(|m| done(m).not())),
            );
        }
    }

    let completion = done(n);
    let layout = ChainLayout {
        levels: n,
        users: chain.users,
        roles,
        sig_edges,
    };
    constraints::compile(&mut rules, &schema, &layout, duties);

    let initial = Instance::empty(schema.clone());
    let form = GuardedForm::new(schema, rules, initial, completion);
    (form, layout)
}

// ---------------------------------------------------------------------
// Recipes
// ---------------------------------------------------------------------

/// Distribution envelope from which [`ScenarioRecipe::sample`] draws
/// concrete [`ScenarioSpec`]s — the WfCommons idea: characterise a
/// workload family by its size/branching/density distributions, then
/// sample synthetic instances that look like the family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioRecipe {
    /// Recipe name (repro headers, BENCH rows).
    pub name: &'static str,
    /// Inclusive range of chain depth.
    pub levels: (usize, usize),
    /// Inclusive range of user-pool size.
    pub users: (usize, usize),
    /// Inclusive range of approvers per level (clamped to the pool).
    pub approvers_per_level: (usize, usize),
    /// Per-level probability (percent) of a delegation edge.
    pub delegation_pct: u32,
    /// Per-level probability (percent) of a rejection loop (levels ≥ 2).
    pub rejection_pct: u32,
    /// Per-level-pair probability (percent) of a separation duty.
    pub sod_pct: u32,
    /// Per-level-pair probability (percent) of a binding duty.
    pub bod_pct: u32,
}

impl ScenarioRecipe {
    /// Plain approval chains: delegation and rejection, no duties.
    pub fn approval() -> ScenarioRecipe {
        ScenarioRecipe {
            name: "approval",
            levels: (2, 5),
            users: (2, 4),
            approvers_per_level: (1, 3),
            delegation_pct: 40,
            rejection_pct: 35,
            sod_pct: 0,
            bod_pct: 0,
        }
    }

    /// Separation-of-duty heavy chains.
    pub fn sod() -> ScenarioRecipe {
        ScenarioRecipe {
            name: "sod",
            levels: (2, 4),
            users: (2, 4),
            approvers_per_level: (1, 3),
            delegation_pct: 20,
            rejection_pct: 25,
            sod_pct: 45,
            bod_pct: 0,
        }
    }

    /// Binding-of-duty heavy chains.
    pub fn bod() -> ScenarioRecipe {
        ScenarioRecipe {
            name: "bod",
            levels: (2, 4),
            users: (2, 4),
            approvers_per_level: (1, 3),
            delegation_pct: 20,
            rejection_pct: 25,
            sod_pct: 0,
            bod_pct: 45,
        }
    }

    /// Deep, narrow, rejection-heavy chains — the *ringi* pattern of
    /// sequential sign-off with frequent send-back.
    pub fn ringi() -> ScenarioRecipe {
        ScenarioRecipe {
            name: "ringi",
            levels: (4, 6),
            users: (2, 4),
            approvers_per_level: (1, 2),
            delegation_pct: 30,
            rejection_pct: 50,
            sod_pct: 10,
            bod_pct: 10,
        }
    }

    /// Short, wide, separation-heavy chains — committee sign-off.
    pub fn committee() -> ScenarioRecipe {
        ScenarioRecipe {
            name: "committee",
            levels: (2, 3),
            users: (3, 4),
            approvers_per_level: (2, 3),
            delegation_pct: 15,
            rejection_pct: 15,
            sod_pct: 35,
            bod_pct: 10,
        }
    }

    /// Short clean chains, no rejection — lands in the deletion-free
    /// fragment.
    pub fn lightweight() -> ScenarioRecipe {
        ScenarioRecipe {
            name: "lightweight",
            levels: (1, 3),
            users: (2, 3),
            approvers_per_level: (1, 2),
            delegation_pct: 10,
            rejection_pct: 0,
            sod_pct: 0,
            bod_pct: 0,
        }
    }

    /// Derive a recipe from an observed corpus of chains (WfCommons
    /// style): ranges become the corpus min/max, densities its observed
    /// frequencies.
    pub fn from_chains(corpus: &[ChainSpec]) -> ScenarioRecipe {
        assert!(!corpus.is_empty(), "empty corpus");
        let minmax = |it: &mut dyn Iterator<Item = usize>| -> (usize, usize) {
            let mut lo = usize::MAX;
            let mut hi = 0;
            for v in it {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            (lo, hi.max(lo))
        };
        let levels = minmax(&mut corpus.iter().map(|c| c.levels.len()));
        let users = minmax(&mut corpus.iter().map(|c| c.users));
        let approvers = minmax(
            &mut corpus
                .iter()
                .flat_map(|c| c.levels.iter().map(|l| l.approvers.len())),
        );
        let total_levels: usize = corpus.iter().map(|c| c.levels.len()).sum();
        let pct = |hits: usize| ((hits * 100) / total_levels.max(1)) as u32;
        let delegation = pct(corpus
            .iter()
            .flat_map(|c| &c.levels)
            .filter(|l| !l.delegations.is_empty())
            .count());
        let rejection = pct(corpus
            .iter()
            .flat_map(|c| &c.levels)
            .filter(|l| l.rejection.is_some())
            .count());
        ScenarioRecipe {
            name: "derived",
            levels,
            users,
            approvers_per_level: approvers,
            delegation_pct: delegation,
            rejection_pct: rejection,
            sod_pct: 0,
            bod_pct: 0,
        }
    }

    /// Sample a concrete spec — a pure function of `(self, seed)`.
    pub fn sample(&self, seed: u64) -> ScenarioSpec {
        let mut rng = XorShift::new(split_mix(seed ^ 0x5343_454E)); // "SCEN"
        let users = rng.range(self.users.0.max(1), self.users.1.max(1));
        let depth = rng.range(self.levels.0.max(1), self.levels.1.max(1));
        let mut levels = Vec::with_capacity(depth);
        for ix in 0..depth {
            let hi = self.approvers_per_level.1.min(users);
            let lo = self.approvers_per_level.0.min(hi);
            let want = rng.range(lo, hi);
            let mut approvers = sample_distinct(&mut rng, users, want);
            let mut delegations = Vec::new();
            if users >= 2 && rng.chance(self.delegation_pct, 100) {
                let from = if approvers.is_empty() {
                    rng.below(users)
                } else {
                    approvers[rng.below(approvers.len())]
                };
                let mut to = rng.below(users);
                if to == from {
                    to = (to + 1) % users;
                }
                delegations.push((from, to));
                // Occasionally chain the delegation one hop further.
                if users >= 3 && rng.chance(self.delegation_pct / 2, 100) {
                    let mut next = rng.below(users);
                    if next == to {
                        next = (next + 1) % users;
                    }
                    if next != to {
                        delegations.push((to, next));
                    }
                }
            }
            if approvers.is_empty() && delegations.is_empty() {
                approvers.push(rng.below(users));
            }
            let rejection = if ix >= 1 && rng.chance(self.rejection_pct, 100) {
                Some(rng.range(1, ix))
            } else {
                None
            };
            levels.push(LevelSpec {
                approvers,
                delegations,
                rejection,
            });
        }
        let chain = ChainSpec { users, levels };
        let mut constraints = ConstraintSet::empty();
        'pairs: for a in 1..=depth {
            for b in (a + 1)..=depth {
                if constraints.len() >= 4 {
                    break 'pairs; // keep compiled guards readable
                }
                if rng.chance(self.sod_pct, 100) {
                    constraints.push(constraints::Constraint::separation(a, b));
                } else if rng.chance(self.bod_pct, 100) {
                    constraints.push(constraints::Constraint::binding(a, b));
                }
            }
        }
        ScenarioSpec { chain, constraints }
    }
}

/// Sample `want` distinct values in `0..pool` (best effort, bounded).
fn sample_distinct(rng: &mut impl Rng, pool: usize, want: usize) -> Vec<usize> {
    let mut out: Vec<usize> = Vec::with_capacity(want.min(pool));
    let mut tries = 0;
    while out.len() < want.min(pool) && tries < 4 * pool.max(1) {
        let v = rng.below(pool);
        if !out.contains(&v) {
            out.push(v);
        }
        tries += 1;
    }
    out.sort_unstable();
    out
}

// ---------------------------------------------------------------------
// Fuzz axes
// ---------------------------------------------------------------------

/// The scenario fuzz axes, mirroring [`FragmentSpec`]'s role for the
/// abstract generator: each axis names a recipe family and a distinct
/// per-axis seed stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioAxis {
    /// Plain approval chains (delegation + rejection, no duties).
    Approval,
    /// Separation-of-duty heavy chains.
    Sod,
    /// Binding-of-duty heavy chains.
    Bod,
    /// Rotating named recipes (*ringi*, committee, lightweight).
    Recipe,
}

impl ScenarioAxis {
    /// All axes, in the fixed order the fuzz harness iterates them.
    pub const ALL: [ScenarioAxis; 4] = [
        ScenarioAxis::Approval,
        ScenarioAxis::Sod,
        ScenarioAxis::Bod,
        ScenarioAxis::Recipe,
    ];

    /// Stable machine name (CLI argument / repro-file header).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioAxis::Approval => "approval",
            ScenarioAxis::Sod => "sod",
            ScenarioAxis::Bod => "bod",
            ScenarioAxis::Recipe => "recipe",
        }
    }

    /// Parse a [`ScenarioAxis::name`] back.
    pub fn from_name(s: &str) -> Option<ScenarioAxis> {
        ScenarioAxis::ALL.into_iter().find(|a| a.name() == s)
    }

    /// Seed-mixing tag so axes draw disjoint case streams from one
    /// master seed.
    pub fn tag(self) -> u64 {
        match self {
            ScenarioAxis::Approval => 0x617070,
            ScenarioAxis::Sod => 0x736F64,
            ScenarioAxis::Bod => 0x626F64,
            ScenarioAxis::Recipe => 0x726370,
        }
    }

    /// Sample this axis at `seed`: axes map to recipes; [`Recipe`]
    /// rotates through the named recipe families.
    ///
    /// [`Recipe`]: ScenarioAxis::Recipe
    pub fn sample(self, seed: u64) -> ScenarioSpec {
        let recipe = match self {
            ScenarioAxis::Approval => ScenarioRecipe::approval(),
            ScenarioAxis::Sod => ScenarioRecipe::sod(),
            ScenarioAxis::Bod => ScenarioRecipe::bod(),
            ScenarioAxis::Recipe => match split_mix(seed ^ self.tag()) % 3 {
                0 => ScenarioRecipe::ringi(),
                1 => ScenarioRecipe::committee(),
                _ => ScenarioRecipe::lightweight(),
            },
        };
        recipe.sample(split_mix(seed ^ self.tag()))
    }
}

impl fmt::Display for ScenarioAxis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-case seeds for `count` scenario cases of `axis` — the same
/// SplitMix derivation as [`crate::form::generate_stream`], so
/// `fuzz --seed N` reproduces the identical scenario sequence.
pub fn scenario_stream(axis: ScenarioAxis, master_seed: u64, count: usize) -> Vec<u64> {
    (0..count)
        .map(|k| split_mix(master_seed ^ split_mix(axis.tag().wrapping_add(k as u64))))
        .collect()
}

// ---------------------------------------------------------------------
// Named corpus
// ---------------------------------------------------------------------

/// Expected analysis outcomes of a named scenario, pinned in the
/// differential suite and in `reproduce`'s BENCH report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expected {
    /// Is the form completable from its (empty) initial instance?
    pub completable: bool,
    /// Is every reachable instance still completable?
    pub semisound: bool,
}

/// A named corpus entry: scenario plus its reasoned, pinned verdicts.
#[derive(Debug, Clone)]
pub struct NamedScenario {
    /// The built scenario.
    pub scenario: Scenario,
    /// Pinned expected verdicts.
    pub expected: Expected,
}

/// The six named scenarios the golden tests and BENCH reports pin.
///
/// | name | shape | expected |
/// |------|-------|----------|
/// | `clean_chain` | 4 levels, rotating approvers | completable, semisound |
/// | `rejection_loop` | 3 levels, loop 3→1 | completable, semisound |
/// | `sod_infeasible` | 2 levels, one shared user, SoD(1,2) | neither |
/// | `bod_forced` | BoD(1,3), level 3 only `u0` | completable, **not** semisound |
/// | `delegation_cycle` | level 2 has only a delegation cycle | neither |
/// | `mixed` | BoD trap repaired by a rejection loop + SoD | completable, semisound |
pub fn named_scenarios() -> Vec<NamedScenario> {
    let mk = |name: &str, spec: ScenarioSpec, completable: bool, semisound: bool| NamedScenario {
        scenario: spec.build(name),
        expected: Expected {
            completable,
            semisound,
        },
    };
    let mut out = Vec::new();

    out.push(mk(
        "clean_chain",
        ScenarioSpec::unconstrained(ChainSpec::simple(4, 2, 3)),
        true,
        true,
    ));

    // Rejection loop at level 3 returning to level 1: rework states can
    // always roll back fully and re-approve.
    let mut rejection = ChainSpec {
        users: 2,
        levels: vec![
            LevelSpec::approvers([0]),
            LevelSpec::approvers([1]),
            LevelSpec::approvers([0]),
        ],
    };
    rejection.levels[2].rejection = Some(1);
    out.push(mk(
        "rejection_loop",
        ScenarioSpec::unconstrained(rejection),
        true,
        true,
    ));

    // One user must sign both levels of a separated pair: infeasible, so
    // even the initial instance cannot complete.
    let sod = ScenarioSpec {
        chain: ChainSpec {
            users: 1,
            levels: vec![LevelSpec::approvers([0]), LevelSpec::approvers([0])],
        },
        constraints: ConstraintSet::of([constraints::Constraint::separation(1, 2)]),
    };
    out.push(mk("sod_infeasible", sod, false, false));

    // BoD(1,3) with level 3 restricted to u0: if u1 signs level 1 the
    // form is trapped (no rejection loop to undo it) — completable but
    // not semisound.
    let bod = ScenarioSpec {
        chain: ChainSpec {
            users: 2,
            levels: vec![
                LevelSpec::approvers([0, 1]),
                LevelSpec::approvers([0, 1]),
                LevelSpec::approvers([0]),
            ],
        },
        constraints: ConstraintSet::of([constraints::Constraint::binding(1, 3)]),
    };
    out.push(mk("bod_forced", bod, true, false));

    // Level 2 has no approver, only a delegation cycle u1⇄u2: neither
    // delegation can fire first, so level 2 is unreachable.
    let cycle = ScenarioSpec::unconstrained(ChainSpec {
        users: 3,
        levels: vec![
            LevelSpec::approvers([0]),
            LevelSpec {
                approvers: vec![],
                delegations: vec![(1, 2), (2, 1)],
                rejection: None,
            },
        ],
    });
    out.push(mk("delegation_cycle", cycle, false, false));

    // The bod_forced trap, repaired: a rejection loop at level 3
    // returning to level 1 lets a trapped run roll back and re-bind.
    let mut mixed_chain = ChainSpec {
        users: 3,
        levels: vec![
            LevelSpec::approvers([0, 1]),
            LevelSpec::approvers([1, 2]),
            LevelSpec::approvers([0]),
        ],
    };
    mixed_chain.levels[2].rejection = Some(1);
    let mixed = ScenarioSpec {
        chain: mixed_chain,
        constraints: ConstraintSet::of([
            constraints::Constraint::binding(1, 3),
            constraints::Constraint::separation(1, 2),
        ]),
    };
    out.push(mk("mixed", mixed, true, true));

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_names_roundtrip() {
        for a in ScenarioAxis::ALL {
            assert_eq!(ScenarioAxis::from_name(a.name()), Some(a));
        }
        assert_eq!(ScenarioAxis::from_name("nope"), None);
        let mut tags: Vec<u64> = ScenarioAxis::ALL.iter().map(|a| a.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), ScenarioAxis::ALL.len());
    }

    #[test]
    fn simple_chain_builds_depth1() {
        let s = ScenarioSpec::unconstrained(ChainSpec::simple(3, 2, 3)).build("t");
        assert_eq!(s.form.schema().depth(), 1);
        assert_eq!(s.fragment, FragmentSpec::DeletionFree);
        assert!(s.fragment.admits(&s.form));
        // sub + 3 levels × 2 approvers
        assert_eq!(s.form.schema().edge_count(), 7);
    }

    #[test]
    fn clean_chain_has_a_complete_run() {
        let s = ScenarioSpec::unconstrained(ChainSpec::simple(3, 1, 2)).build("t");
        // The obvious run: submit, then sign each level in order.
        let mut inst = s.form.initial().clone();
        let mut steps = 0;
        while !s.form.is_complete(&inst) {
            let ups = s.form.allowed_updates(&inst);
            assert!(!ups.is_empty(), "stuck at {steps}");
            s.form.apply(&mut inst, &ups[0]).unwrap();
            steps += 1;
            assert!(steps <= 16);
        }
    }

    #[test]
    fn named_scenarios_declare_admitted_fragments() {
        for n in named_scenarios() {
            assert!(
                n.scenario.fragment.admits(&n.scenario.form),
                "{}",
                n.scenario.name
            );
            assert!(n.scenario.form.schema().depth() <= 1);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        for axis in ScenarioAxis::ALL {
            for seed in [0u64, 1, 0xC0FFEE] {
                let a = axis.sample(seed);
                let b = axis.sample(seed);
                assert_eq!(a, b);
                a.chain.validate().unwrap();
                a.constraints.validate(a.chain.levels.len()).unwrap();
                let fa = a.build("x");
                let fb = b.build("x");
                assert_eq!(
                    idar_core::serialize::to_ron(&fa.form),
                    idar_core::serialize::to_ron(&fb.form)
                );
            }
        }
    }

    #[test]
    fn derived_recipe_reflects_corpus() {
        let corpus = vec![ChainSpec::simple(2, 1, 2), ChainSpec::simple(5, 2, 3)];
        let r = ScenarioRecipe::from_chains(&corpus);
        assert_eq!(r.levels, (2, 5));
        assert_eq!(r.users, (2, 3));
        assert_eq!(r.approvers_per_level, (1, 2));
        assert_eq!(r.rejection_pct, 0);
        r.sample(7).chain.validate().unwrap();
    }
}
