//! Generator configuration: fragment restriction, size envelope, rule
//! density.

use idar_core::fragment::{DepthClass, Polarity};
use std::fmt;

/// Which fragment of Sec. 3.5 the generator must stay inside.
///
/// Each spec names a *generator family*, not just a classification: the
/// generated form is guaranteed to satisfy the spec's defining property
/// (checked by [`FragmentSpec::admits`] and the property tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FragmentSpec {
    /// `F(A+, φ+, d)` — all access guards and the completion formula are
    /// positive (negation-free). Completability is polynomial (Thm 5.5).
    Positive,
    /// `F(A−, φ−, d)` — unrestricted guarded forms: negation anywhere,
    /// any depth within the envelope. The general (undecidable) cell.
    Guarded,
    /// `F(A−, φ−, 1)` — depth-1 schemas, unrestricted formulas. The
    /// PSPACE-complete cell with an exact canonical-state solver.
    Depth1,
    /// Deletion-free forms: no `del` right is ever granted (all deletion
    /// guards are `false`), the target shape of the Cor. 4.2
    /// deletion-elimination construction.
    DeletionFree,
}

impl FragmentSpec {
    /// All specs, in the fixed order the fuzz harness iterates them.
    pub const ALL: [FragmentSpec; 4] = [
        FragmentSpec::Positive,
        FragmentSpec::Guarded,
        FragmentSpec::Depth1,
        FragmentSpec::DeletionFree,
    ];

    /// Stable machine name (CLI argument / repro-file header).
    pub fn name(self) -> &'static str {
        match self {
            FragmentSpec::Positive => "positive",
            FragmentSpec::Guarded => "guarded",
            FragmentSpec::Depth1 => "depth1",
            FragmentSpec::DeletionFree => "deletion-free",
        }
    }

    /// Parse a [`FragmentSpec::name`] back.
    pub fn from_name(s: &str) -> Option<FragmentSpec> {
        FragmentSpec::ALL.into_iter().find(|f| f.name() == s)
    }

    /// A seed-mixing tag so the same master seed yields distinct case
    /// streams per fragment.
    pub(crate) fn tag(self) -> u64 {
        match self {
            FragmentSpec::Positive => 0x706F73,
            FragmentSpec::Guarded => 0x677264,
            FragmentSpec::Depth1 => 0x643165,
            FragmentSpec::DeletionFree => 0x64656C,
        }
    }

    /// Does `form` satisfy this spec's defining property?
    pub fn admits(self, form: &idar_core::GuardedForm) -> bool {
        let frag = idar_core::fragment::classify(form);
        match self {
            FragmentSpec::Positive => {
                frag.access == Polarity::Positive && frag.completion == Polarity::Positive
            }
            FragmentSpec::Guarded => true,
            FragmentSpec::Depth1 => frag.depth == DepthClass::One,
            FragmentSpec::DeletionFree => {
                let schema = form.schema();
                schema.edge_ids().all(|e| {
                    form.rules().get(idar_core::Right::Del, e) == &idar_core::Formula::False
                })
            }
        }
    }
}

impl fmt::Display for FragmentSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Bounds on the size of generated forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeEnvelope {
    /// Maximum number of schema edges (non-root nodes); at least 1.
    pub max_fields: usize,
    /// Maximum schema depth (ignored — forced to 1 — by
    /// [`FragmentSpec::Depth1`]).
    pub max_depth: usize,
    /// Maximum number of nodes *added* to the initial instance beyond the
    /// root (the initial instance is empty about half the time).
    pub max_initial_nodes: usize,
    /// Maximum AST size of each generated guard / completion formula.
    pub max_formula_size: usize,
}

impl Default for SizeEnvelope {
    fn default() -> Self {
        // Small enough that bounded exploration usually closes under the
        // fuzz harness's limits, large enough to exercise depth, sibling
        // multiplicity and guard interaction.
        SizeEnvelope {
            max_fields: 5,
            max_depth: 3,
            max_initial_nodes: 4,
            max_formula_size: 7,
        }
    }
}

/// Everything a generation run is parameterised by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Fragment the generated forms must stay inside.
    pub fragment: FragmentSpec,
    /// Size envelope.
    pub size: SizeEnvelope,
    /// Percentage (0..=100) of (right, edge) pairs that get an explicit
    /// guard; the rest fall through to the table default (`false`).
    pub rule_density: u32,
}

impl GenConfig {
    /// The default configuration for a fragment.
    pub fn new(fragment: FragmentSpec) -> GenConfig {
        GenConfig {
            fragment,
            size: SizeEnvelope::default(),
            rule_density: 70,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for f in FragmentSpec::ALL {
            assert_eq!(FragmentSpec::from_name(f.name()), Some(f));
        }
        assert_eq!(FragmentSpec::from_name("nope"), None);
    }

    #[test]
    fn tags_distinct() {
        let mut tags: Vec<u64> = FragmentSpec::ALL.iter().map(|f| f.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), FragmentSpec::ALL.len());
    }
}
