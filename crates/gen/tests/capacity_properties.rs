//! Property tests for the out-of-core capacity layer (via the proptest
//! shim), over idar-gen generated forms:
//!
//! * the **delta codec** is an encode/decode fixpoint on the canonical
//!   words of reachable instances — full-word checkpoints, parent
//!   deltas, empty-diff and empty-base boundary cases, and the raw
//!   varint layer;
//! * **spill equivalence** — a spill budget tiny enough to page out
//!   almost every record must leave search results untouched: identical
//!   `SearchStats` against the sequential in-RAM engine, agreeing state
//!   counts / closedness / goal depth against the pooled parallel
//!   engine, across `SymmetryMode::{Reduced, Plain}`;
//! * **verdict equivalence** — `completability` under a memory-bounded
//!   `Budget` answers exactly as the unbounded run (the budget moves
//!   bytes, never answers).

use idar_core::delta;
use idar_core::{GuardedForm, Instance};
use idar_gen::{generate, FragmentSpec, GenConfig};
use idar_solver::{completability, Budget, ExploreLimits, Explorer, MemoryBudget, SymmetryMode};
use proptest::prelude::*;

fn spec_of(ix: usize) -> FragmentSpec {
    FragmentSpec::ALL[ix % FragmentSpec::ALL.len()]
}

/// Limits small enough that every case closes or bounds in milliseconds.
fn limits() -> ExploreLimits {
    ExploreLimits {
        max_states: 1_500,
        max_state_size: 16,
        max_depth: usize::MAX,
        multiplicity_cap: Some(2),
    }
}

/// A budget of a few hundred bytes: at these limits the arena holds at
/// most a handful of records, so nearly every lookup faults a page back
/// in — the heaviest spill traffic the engine can see.
fn tiny_budget() -> MemoryBudget {
    MemoryBudget::bytes(512)
}

/// Walk a random run from the initial instance, collecting every state
/// visited (BFS parents and children alike — consecutive entries are the
/// parent/child pairs the record store delta-encodes against).
fn random_run(form: &GuardedForm, picks: &[usize]) -> Vec<Instance> {
    let mut states = vec![form.initial().clone()];
    for &p in picks {
        let cur = states.last().unwrap();
        let moves = form.allowed_updates(cur);
        if moves.is_empty() {
            break;
        }
        let mut next = cur.clone();
        form.apply(&mut next, &moves[p % moves.len()]).unwrap();
        states.push(next);
    }
    states
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `decode_full(encode_full(w)) == w` and
    /// `decode_delta(base, encode_delta(base, w)) == w` for the canonical
    /// words of every state along a random run, using the run's actual
    /// parent/child pairs as delta bases — exactly the record layout the
    /// spill store writes (a checkpoint every K states, deltas between).
    #[test]
    fn delta_codec_roundtrips_canonical_words(
        ix in 0usize..4,
        seed in 0u64..1_000_000,
        picks in proptest::collection::vec(0usize..8, 0..12),
    ) {
        let form = generate(&GenConfig::new(spec_of(ix)), seed);
        let states = random_run(&form, &picks);
        let mut enc = Vec::new();
        let mut dec = Vec::new();
        for pair in states.windows(2) {
            let base = pair[0].canon_key();
            let words = pair[1].canon_key();
            // Full-word checkpoint record.
            enc.clear();
            delta::encode_full(words.words(), &mut enc);
            dec.clear();
            delta::decode_full(&enc, &mut dec);
            prop_assert_eq!(&dec[..], words.words());
            // Delta against the BFS parent (the common case) …
            enc.clear();
            delta::encode_delta(base.words(), words.words(), &mut enc);
            dec.clear();
            delta::decode_delta(base.words(), &enc, &mut dec);
            prop_assert_eq!(&dec[..], words.words());
            // … and the reverse direction (shrinking diffs).
            enc.clear();
            delta::encode_delta(words.words(), base.words(), &mut enc);
            dec.clear();
            delta::decode_delta(words.words(), &enc, &mut dec);
            prop_assert_eq!(&dec[..], base.words());
        }
        // Boundary cases: empty diff (state vs itself) and empty base
        // (the first record after a checkpoint reset).
        if let Some(s) = states.last() {
            let key = s.canon_key();
            enc.clear();
            delta::encode_delta(key.words(), key.words(), &mut enc);
            dec.clear();
            delta::decode_delta(key.words(), &enc, &mut dec);
            prop_assert_eq!(&dec[..], key.words());
            enc.clear();
            delta::encode_delta(&[], key.words(), &mut enc);
            dec.clear();
            delta::decode_delta(&[], &enc, &mut dec);
            prop_assert_eq!(&dec[..], key.words());
        }
    }

    /// The varint layer round-trips arbitrary `u32`s, including the
    /// continuation-byte boundaries the delta records straddle.
    #[test]
    fn varints_roundtrip(vals in proptest::collection::vec(0u32..u32::MAX, 0..32)) {
        let mut buf = Vec::new();
        for &v in &vals {
            delta::write_varint(&mut buf, v);
        }
        // Boundary values alongside the random ones.
        for v in [0, 127, 128, 16_383, 16_384, u32::MAX] {
            delta::write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            prop_assert_eq!(delta::read_varint(&buf, &mut pos), v);
        }
        for v in [0, 127, 128, 16_383, 16_384, u32::MAX] {
            prop_assert_eq!(delta::read_varint(&buf, &mut pos), v);
        }
        prop_assert_eq!(pos, buf.len());
    }

    /// A tiny spill budget leaves the goal search untouched: stats are
    /// bit-identical to the sequential in-RAM engine, and state counts /
    /// closedness / goal depth agree with the pooled parallel engine —
    /// under both the symmetry quotient and plain exploration.
    #[test]
    fn heavy_spill_equals_in_ram_search(
        ix in 0usize..4,
        seed in 0u64..1_000_000,
        plain in 0usize..2,
    ) {
        let form = generate(&GenConfig::new(spec_of(ix)), seed);
        let sym = if plain == 1 { SymmetryMode::Plain } else { SymmetryMode::Reduced };
        let seq = Explorer::new(&form, limits())
            .with_symmetry(sym)
            .with_threads(1)
            .find(|i| form.is_complete(i));
        let (spilled, report) = Explorer::new(&form, limits())
            .with_symmetry(sym)
            .with_memory_budget(tiny_budget())
            .find_spilled(|i| form.is_complete(i));
        prop_assert_eq!(spilled.stats, seq.stats, "spill report: {:?}", report);
        match (&seq.goal_run, &spilled.goal_run) {
            (Some(a), Some(b)) => {
                prop_assert_eq!(a.len(), b.len(), "BFS goal depth must agree");
                prop_assert!(form.is_complete_run(b), "spilled witness replays");
            }
            (None, None) => {}
            (a, b) => prop_assert!(
                false,
                "goal existence differs: seq {} vs spilled {}",
                a.is_some(),
                b.is_some()
            ),
        }
        // The pooled parallel engine is only stats-identical where the
        // engine differential guarantees it (closed spaces, goal depth
        // when no limit was hit).
        let par = Explorer::new(&form, limits())
            .with_symmetry(sym)
            .with_threads(4)
            .find(|i| form.is_complete(i));
        if par.stats.limit_hit.is_none() && spilled.stats.limit_hit.is_none() {
            prop_assert_eq!(
                par.goal_run.is_some(),
                spilled.goal_run.is_some(),
                "goal existence differs from the parallel engine"
            );
            if let (Some(a), Some(b)) = (&par.goal_run, &spilled.goal_run) {
                prop_assert_eq!(a.len(), b.len());
            }
        }
    }

    /// `completability` under a memory-bounded budget answers exactly as
    /// the unbounded run — same verdict, same witness existence, same
    /// resolved method — for every fragment (methods that never touch
    /// the explorer simply ignore the budget).
    #[test]
    fn budgeted_completability_verdicts_match(
        ix in 0usize..4,
        seed in 0u64..1_000_000,
    ) {
        let form = generate(&GenConfig::new(spec_of(ix)), seed);
        let unbounded = Budget::with_limits(limits());
        let bounded = Budget {
            memory: tiny_budget(),
            ..unbounded.clone()
        };
        let a = completability(&form, &unbounded);
        let b = completability(&form, &bounded);
        prop_assert_eq!(a.verdict, b.verdict);
        prop_assert_eq!(a.method, b.method);
        prop_assert_eq!(a.witness_run.is_some(), b.witness_run.is_some());
        if let Some(run) = &b.witness_run {
            prop_assert!(form.is_complete_run(run), "budgeted witness replays");
        }
    }
}
