//! Property tests for the scenario corpus (via the proptest shim):
//!
//! * approval-chain builders are **deterministic per seed**;
//! * generated forms **stay inside their declared** [`FragmentSpec`]
//!   (the fragment-boundary discipline the Table 1 pins rely on);
//! * compiled SoD/BoD guards **agree with the trace-level oracle** — on
//!   recipe-sampled chains and on exhaustively enumerated ≤3-level
//!   chains with every duty set of size ≤ 2;
//! * scenario shrinking is **monotone** and only emits valid specs.

use idar_core::serialize;
use idar_gen::constraints::{all_constraint_sets, check_run, constrained_completable};
use idar_gen::scenario::{ChainSpec, LevelSpec};
use idar_gen::{scenario_size, shrink_scenario, ConstraintSet, ScenarioAxis, ScenarioSpec};
use idar_solver::{completability, CompletabilityOptions, ExploreLimits, Verdict};
use idar_workflow::runs::{enumerate_complete_runs, EnumerateOptions};
use proptest::prelude::*;

fn axis_of(ix: usize) -> ScenarioAxis {
    ScenarioAxis::ALL[ix % ScenarioAxis::ALL.len()]
}

fn scenario_opts() -> CompletabilityOptions {
    CompletabilityOptions::with_limits(ExploreLimits {
        max_states: 60_000,
        max_state_size: 64,
        max_depth: usize::MAX,
        multiplicity_cap: Some(1),
    })
}

/// Solver-on-compiled-form vs hand-rolled BFS-with-trace-invariant;
/// `None` when either side gave up within its budget.
fn differential(spec: &ScenarioSpec) -> Option<(bool, bool)> {
    let s = spec.build("diff");
    let solver = completability(&s.form, &scenario_opts());
    let solver = match solver.verdict {
        Verdict::Holds => true,
        Verdict::Fails => false,
        Verdict::Unknown => return None,
    };
    let oracle = constrained_completable(spec, 200_000)?;
    Some((solver, oracle))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn builders_are_deterministic_per_seed(ix in 0usize..4, seed in 0u64..1_000_000) {
        let axis = axis_of(ix);
        let a = axis.sample(seed);
        let b = axis.sample(seed);
        prop_assert_eq!(&a, &b);
        let fa = a.build("a");
        let fb = b.build("b");
        prop_assert_eq!(
            serialize::to_ron(&fa.form),
            serialize::to_ron(&fb.form)
        );
    }

    #[test]
    fn forms_stay_inside_their_declared_fragment(ix in 0usize..4, seed in 0u64..1_000_000) {
        let axis = axis_of(ix);
        let spec = axis.sample(seed);
        let s = spec.build("frag");
        prop_assert_eq!(s.fragment, spec.fragment());
        prop_assert!(
            s.fragment.admits(&s.form),
            "{} seed {} escaped {}: {}",
            axis, seed, s.fragment, spec.summary()
        );
        prop_assert!(s.form.schema().depth() <= 1);
    }

    #[test]
    fn compiled_guards_agree_with_trace_oracle(ix in 0usize..4, seed in 0u64..1_000_000) {
        let spec = axis_of(ix).sample(seed);
        if let Some((solver, oracle)) = differential(&spec) {
            prop_assert_eq!(
                solver, oracle,
                "solver vs oracle split on {}", spec.summary()
            );
        }
        // Every complete run of the compiled form satisfies the duties
        // according to the trace checker.
        let s = spec.build("runs");
        // `max_len` stays near the minimal run length: rejection loops
        // make the run graph cyclic and the simple-path DFS explodes
        // when the bound admits several rework cycles.
        let runs = enumerate_complete_runs(
            &s.form,
            &EnumerateOptions {
                max_runs: 4,
                max_len: spec.chain.levels.len() + 10,
                limits: ExploreLimits {
                    max_states: 20_000,
                    ..scenario_opts().limits
                },
            },
        );
        for run in &runs.runs {
            prop_assert!(
                check_run(&s.form, &s.layout, &spec.constraints, run).is_ok(),
                "compiled form admitted a duty-violating run on {}", spec.summary()
            );
        }
    }

    #[test]
    fn scenario_shrinking_is_monotone(ix in 0usize..4, seed in 0u64..1_000_000) {
        let spec = axis_of(ix).sample(seed);
        // Oracle: the chain still has at least one level — satisfied by
        // every spec, so shrinking drives to the global minimum while
        // every intermediate acceptance must strictly reduce the size.
        let mut sizes = vec![scenario_size(&spec)];
        let small = shrink_scenario(&spec, |s| {
            sizes.push(scenario_size(s));
            !s.chain.levels.is_empty()
        });
        for w in sizes.windows(2) {
            prop_assert!(w[1] < w[0], "non-monotone shrink step {:?}", w);
        }
        prop_assert!(small.chain.validate().is_ok());
        prop_assert!(small.constraints.validate(small.chain.levels.len()).is_ok());
        prop_assert_eq!(small.chain.levels.len(), 1);
        prop_assert!(small.constraints.is_empty());
    }
}

/// Exhaustive half of the differential: every chain shape over ≤3
/// levels × {1, 2} approvers drawn from a 2-user pool, against *every*
/// duty set with ≤2 duties.
#[test]
fn exhaustive_small_chain_differential() {
    let approver_choices: [&[usize]; 3] = [&[0], &[1], &[0, 1]];
    let mut chains: Vec<ChainSpec> = Vec::new();
    for depth in 1..=3usize {
        let mut picks = vec![0usize; depth];
        loop {
            let levels: Vec<LevelSpec> = picks
                .iter()
                .map(|&p| LevelSpec::approvers(approver_choices[p].iter().copied()))
                .collect();
            chains.push(ChainSpec { users: 2, levels });
            // Odometer over approver choices.
            let mut i = 0;
            loop {
                if i == depth {
                    break;
                }
                picks[i] += 1;
                if picks[i] < approver_choices.len() {
                    break;
                }
                picks[i] = 0;
                i += 1;
            }
            if i == depth {
                break;
            }
        }
    }
    let mut cases = 0usize;
    for chain in &chains {
        for set in all_constraint_sets(chain.levels.len(), 2) {
            let spec = ScenarioSpec {
                chain: chain.clone(),
                constraints: set,
            };
            let (solver, oracle) = differential(&spec).expect("small chains decide within budget");
            assert_eq!(solver, oracle, "split on {}", spec.summary());
            cases += 1;
        }
    }
    // 3 + 9×4 + 27×13 sets... just pin a healthy lower bound.
    assert!(cases >= 300, "only {cases} exhaustive cases");
}

/// The named corpus carries reasoned verdict pins; re-derive the
/// completability half with the independent oracle.
#[test]
fn named_scenarios_match_the_independent_oracle() {
    for n in idar_gen::named_scenarios() {
        let got =
            constrained_completable(&n.scenario.spec, 500_000).expect("named scenarios decide");
        assert_eq!(
            got, n.expected.completable,
            "{}: oracle disagrees with pin",
            n.scenario.name
        );
    }
}

/// Rejection loops must not break determinism of the *builder* even
/// though they make the state space cyclic: build twice, compare RON.
#[test]
fn rejection_loops_build_deterministically() {
    let mut chain = ChainSpec::simple(4, 2, 3);
    chain.levels[2].rejection = Some(1);
    chain.levels[3].rejection = Some(2);
    let spec = ScenarioSpec {
        chain,
        constraints: ConstraintSet::empty(),
    };
    let a = spec.build("x");
    let b = spec.build("y");
    assert_eq!(serialize::to_ron(&a.form), serialize::to_ron(&b.form));
    assert_eq!(a.fragment, idar_gen::FragmentSpec::Depth1);
    assert!(a.fragment.admits(&a.form));
}
