//! Property tests for the generator invariants (via the proptest shim):
//!
//! * generated forms are **well-formed** — valid schema/instance pairing,
//!   canonical serialization round-trips, replayable updates;
//! * fragment-restricted generators **stay inside their fragment**;
//! * shrinking is **monotone** in form size and preserves the oracle.

use idar_core::serialize;
use idar_core::{GuardedForm, Update};
use idar_gen::{form_size, generate, shrink, FragmentSpec, GenConfig};
use proptest::prelude::*;

fn spec_of(ix: usize) -> FragmentSpec {
    FragmentSpec::ALL[ix % FragmentSpec::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generated_forms_are_well_formed(ix in 0usize..4, seed in 0u64..1_000_000) {
        let cfg = GenConfig::new(spec_of(ix));
        let g = generate(&cfg, seed);
        // Schema: at least one field, root labelled r.
        prop_assert!(g.schema().edge_count() >= 1);
        prop_assert_eq!(g.schema().label(idar_core::SchemaNodeId::ROOT), "r");
        // The initial instance is an instance of the form's schema (same
        // allocation) and parses back from its own text.
        prop_assert!(std::sync::Arc::ptr_eq(g.initial().schema(), g.schema()));
        let reparsed = idar_core::Instance::parse(
            g.schema().clone(),
            &g.initial().to_text(),
        ).unwrap();
        prop_assert!(reparsed.isomorphic(g.initial()));
        // Every allowed update on the initial instance applies cleanly.
        for u in g.allowed_updates(g.initial()) {
            let mut inst = g.initial().clone();
            prop_assert!(g.apply(&mut inst, &u).is_ok());
        }
    }

    #[test]
    fn serialization_is_canonical(ix in 0usize..4, seed in 0u64..1_000_000) {
        let cfg = GenConfig::new(spec_of(ix));
        let g = generate(&cfg, seed);
        let once = serialize::to_ron(&g);
        let back = serialize::from_ron(&once).unwrap();
        prop_assert_eq!(&once, &serialize::to_ron(&back));
    }

    #[test]
    fn fragment_generators_stay_inside_their_fragment(ix in 0usize..4, seed in 0u64..1_000_000) {
        let spec = spec_of(ix);
        let g = generate(&GenConfig::new(spec), seed);
        prop_assert!(spec.admits(&g), "{} escaped: {}", spec, serialize::to_ron(&g));
    }

    #[test]
    fn depth1_forms_have_depth_one(seed in 0u64..1_000_000) {
        let g = generate(&GenConfig::new(FragmentSpec::Depth1), seed);
        prop_assert!(g.schema().depth() <= 1);
    }

    #[test]
    fn deletion_free_forms_never_allow_deletions(seed in 0u64..1_000_000) {
        let g = generate(&GenConfig::new(FragmentSpec::DeletionFree), seed);
        // No deletion is allowed on the initial instance nor on any
        // one-step successor.
        let check = |form: &GuardedForm, inst: &idar_core::Instance| {
            form.allowed_updates(inst)
                .iter()
                .all(|u| matches!(u, Update::Add { .. }))
        };
        prop_assert!(check(&g, g.initial()));
        for u in g.allowed_updates(g.initial()) {
            let mut inst = g.initial().clone();
            g.apply(&mut inst, &u).unwrap();
            prop_assert!(check(&g, &inst));
        }
    }

    #[test]
    fn shrinking_is_monotone_in_form_size(seed in 0u64..1_000_000) {
        let g = generate(&GenConfig::new(FragmentSpec::Guarded), seed);
        let before = form_size(&g);
        let small = shrink(&g, |f| f.schema().edge_count() >= 1);
        prop_assert!(form_size(&small) <= before);
        prop_assert!(small.schema().edge_count() >= 1);
    }

    #[test]
    fn shrinking_preserves_a_semantic_oracle(seed in 0u64..40_000) {
        // Oracle: the completion formula mentions at least one label. Any
        // shrink accepted must keep that property.
        let g = generate(&GenConfig::new(FragmentSpec::Positive), seed);
        let oracle = |f: &GuardedForm| !f.completion().labels().is_empty();
        prop_assume!(oracle(&g));
        let small = shrink(&g, oracle);
        prop_assert!(oracle(&small));
        prop_assert!(form_size(&small) <= form_size(&g));
    }
}

/// Shrinking chains strictly decrease: instrument the oracle to observe
/// every accepted candidate in order.
#[test]
fn shrink_accepted_chain_strictly_decreases() {
    for seed in 0..10u64 {
        let g = generate(&GenConfig::new(FragmentSpec::Guarded), seed);
        let mut last = form_size(&g);
        let mut sizes = Vec::new();
        let _ = shrink(&g, |f| {
            // The shrinker only consults the oracle on strictly smaller
            // candidates; accepting all of them makes every call an
            // accepted step.
            sizes.push(form_size(f));
            true
        });
        for s in sizes {
            assert!(
                s < last,
                "seed {seed}: non-decreasing step {s} after {last}"
            );
            last = s;
        }
    }
}
