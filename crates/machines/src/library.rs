//! A library of two-counter machines with *known* halting behaviour,
//! used to validate the Theorem 4.1 reduction: the compiled guarded form
//! must be completable exactly for the halting machines.

use crate::{Action, DeltaBuilder, State, Test, TwoCounterMachine};

/// Increment counter 1 up to `n`, then accept. Halts for every `n`.
///
/// States: `0` = counting (with a unary encoding of progress in the
/// machine's *structure*: one state per count), `n+1` = accept.
pub fn count_up_then_accept(n: u32) -> TwoCounterMachine {
    let mut b = DeltaBuilder::new();
    for i in 0..n {
        b = b.rule_any(i, i + 1, Action::Inc, Action::Keep);
    }
    TwoCounterMachine::new(n + 2, vec![State(n)], b.build()).expect("valid by construction")
    // note: n+2 states so the table stays valid for n = 0 (state 1 unused)
}

/// A minimal diverging machine: a self-loop that increments forever.
pub fn diverge() -> TwoCounterMachine {
    let delta = DeltaBuilder::new()
        .rule_any(0, 0, Action::Inc, Action::Keep)
        .build();
    TwoCounterMachine::new(2, vec![State(1)], delta).expect("valid by construction")
}

/// A two-state ping-pong that never accepts (loops without growing).
pub fn ping_pong() -> TwoCounterMachine {
    let delta = DeltaBuilder::new()
        .rule_any(0, 1, Action::Inc, Action::Keep)
        .rule(1, Test::Positive, Test::Zero, 0, Action::Dec, Action::Keep)
        .rule(
            1,
            Test::Positive,
            Test::Positive,
            0,
            Action::Dec,
            Action::Keep,
        )
        .build();
    TwoCounterMachine::new(3, vec![State(2)], delta).expect("valid by construction")
}

/// Pump counter 1 to `n` (one state per unit), then move everything to
/// counter 2, then accept. Exercises increments *and* decrements.
pub fn transfer_c1_to_c2(n: u32) -> TwoCounterMachine {
    let mut b = DeltaBuilder::new();
    // Phase 1: states 0..n pump c1.
    for i in 0..n {
        b = b.rule_any(i, i + 1, Action::Inc, Action::Keep);
    }
    // Phase 2: state n moves c1 to c2 until c1 = 0, then accepts (n+1).
    let pump = n;
    let accept = n + 1;
    b = b
        .rule(
            pump,
            Test::Positive,
            Test::Zero,
            pump,
            Action::Dec,
            Action::Inc,
        )
        .rule(
            pump,
            Test::Positive,
            Test::Positive,
            pump,
            Action::Dec,
            Action::Inc,
        )
        .rule(
            pump,
            Test::Zero,
            Test::Zero,
            accept,
            Action::Keep,
            Action::Keep,
        )
        .rule(
            pump,
            Test::Zero,
            Test::Positive,
            accept,
            Action::Keep,
            Action::Keep,
        );
    TwoCounterMachine::new(n + 2, vec![State(accept)], b.build()).expect("valid by construction")
}

/// Pump counter 1 to `n`, then repeatedly subtract 2; accept iff the
/// counter reaches exactly 0 (i.e. iff `n` is even). For odd `n` the
/// machine gets stuck at `c1 = 1` in a non-accepting state — it never
/// halts (acceptance-wise).
pub fn accept_iff_even(n: u32) -> TwoCounterMachine {
    let mut b = DeltaBuilder::new();
    for i in 0..n {
        b = b.rule_any(i, i + 1, Action::Inc, Action::Keep);
    }
    let sub_outer = n; // c1 > 0: subtract one, go to inner
    let sub_inner = n + 1; // c1 > 0: subtract one, back to outer; c1 = 0: stuck
    let accept = n + 2;
    b = b
        .rule(
            sub_outer,
            Test::Positive,
            Test::Zero,
            sub_inner,
            Action::Dec,
            Action::Keep,
        )
        .rule(
            sub_outer,
            Test::Positive,
            Test::Positive,
            sub_inner,
            Action::Dec,
            Action::Keep,
        )
        .rule(
            sub_outer,
            Test::Zero,
            Test::Zero,
            accept,
            Action::Keep,
            Action::Keep,
        )
        .rule(
            sub_outer,
            Test::Zero,
            Test::Positive,
            accept,
            Action::Keep,
            Action::Keep,
        )
        .rule(
            sub_inner,
            Test::Positive,
            Test::Zero,
            sub_outer,
            Action::Dec,
            Action::Keep,
        )
        .rule(
            sub_inner,
            Test::Positive,
            Test::Positive,
            sub_outer,
            Action::Dec,
            Action::Keep,
        );
    // sub_inner with c1 = 0: no rule — stuck (odd n).
    TwoCounterMachine::new(n + 3, vec![State(accept)], b.build()).expect("valid by construction")
}

/// The paper's own single-transition example (Sec. 4.1, Increments):
/// `δ(q0, 0, +) = (q1, +, 0)`. From `(q0, 0, 0)` nothing applies (the
/// machine is stuck); from `(q0, 0, m)` with `m > 0` it makes one step to
/// `(q1, 1, m)` and accepts iff `q1 ∈ F`.
pub fn paper_single_transition() -> TwoCounterMachine {
    let delta = DeltaBuilder::new()
        .rule(0, Test::Zero, Test::Positive, 1, Action::Inc, Action::Keep)
        .build();
    TwoCounterMachine::new(2, vec![State(1)], delta).expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunOutcome;

    #[test]
    fn library_halting_behaviour() {
        assert!(count_up_then_accept(0).run(10).halted());
        assert!(count_up_then_accept(5).run(100).halted());
        assert!(!diverge().run(5_000).halted());
        assert!(!ping_pong().run(5_000).halted());
        assert!(transfer_c1_to_c2(3).run(100).halted());
        assert!(accept_iff_even(4).run(100).halted());
        assert!(!accept_iff_even(5).run(100).halted());
    }

    #[test]
    fn odd_machine_gets_stuck_not_budget() {
        let m = accept_iff_even(3);
        assert!(matches!(m.run(1_000), RunOutcome::Stuck { .. }));
    }

    #[test]
    fn paper_example_is_stuck_on_empty_input() {
        // With both counters 0, δ(q0, 0, +) does not apply.
        let m = paper_single_transition();
        assert!(matches!(m.run(10), RunOutcome::Stuck { steps: 0, .. }));
        // From (q0, 0, 1) it accepts in one step.
        let c = crate::Config {
            state: State(0),
            c1: 0,
            c2: 1,
        };
        assert!(m.run_from(c, 10).halted());
    }
}
