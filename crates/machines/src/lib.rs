//! # idar-machines
//!
//! Two-counter (Minsky) machines — the substrate of the paper's Theorem 4.1
//! undecidability proof.
//!
//! Sec. 4.1: "a two-counter machine without input can be modelled as a
//! three-tuple `(Q, F, δ)`, with `Q` a finite set of states, `F ⊆ Q` the
//! set of accepting states, and `δ` the transition function that maps
//! `Q × {0,+} × {0,+}` to `Q × {−,0,+} × {−,0,+}`". Configurations are
//! `(q, n, m)`; a machine *halts* when it reaches an accepting state (or
//! gets stuck with no applicable transition — only acceptance counts as
//! halting here, matching the paper's "the stopping condition … will
//! simply be the disjunction of all accepting states").
//!
//! The crate provides the machine model with validation, a reference
//! simulator with a step budget, and a library of machines with known
//! behaviour for validating the Theorem 4.1 reduction.

#![forbid(unsafe_code)]

pub mod library;
pub mod program;

pub use program::{Counter, Instr, Program};

use std::collections::BTreeMap;
use std::fmt;

/// A machine state, by index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct State(pub u32);

impl State {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// Zero-test outcome for a counter: zero or strictly positive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Test {
    /// Counter is zero (`0`).
    Zero,
    /// Counter is strictly positive (`+`).
    Positive,
}

impl Test {
    pub fn of(value: u64) -> Test {
        if value == 0 {
            Test::Zero
        } else {
            Test::Positive
        }
    }

    /// Both outcomes, for iteration.
    pub const ALL: [Test; 2] = [Test::Zero, Test::Positive];
}

impl fmt::Display for Test {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Test::Zero => write!(f, "0"),
            Test::Positive => write!(f, "+"),
        }
    }
}

/// A counter action: decrement, keep, increment (`−`, `0`, `+`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    Dec,
    Keep,
    Inc,
}

impl Action {
    pub fn apply(self, value: u64) -> Option<u64> {
        match self {
            Action::Dec => value.checked_sub(1),
            Action::Keep => Some(value),
            Action::Inc => Some(value + 1),
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Dec => write!(f, "-"),
            Action::Keep => write!(f, "0"),
            Action::Inc => write!(f, "+"),
        }
    }
}

/// The left-hand side of a transition: state + zero-tests of both counters.
pub type Domain = (State, Test, Test);

/// The right-hand side: target state + counter actions.
pub type Effect = (State, Action, Action);

/// A configuration `(q, n, m)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Config {
    pub state: State,
    pub c1: u64,
    pub c2: u64,
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.state, self.c1, self.c2)
    }
}

/// A deterministic two-counter machine without input (Sec. 4.1).
#[derive(Debug, Clone)]
pub struct TwoCounterMachine {
    /// Number of states (`Q = {q0, …}`), state 0 is initial.
    pub states: u32,
    /// Accepting states `F`.
    pub accepting: Vec<State>,
    /// The (partial) transition function δ.
    pub delta: BTreeMap<Domain, Effect>,
}

/// Validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A transition references a state ≥ `states`.
    BadState(State),
    /// A transition decrements a counter whose test is `Zero`.
    DecrementOfZero(Domain),
    /// An accepting state has outgoing transitions (acceptance must halt;
    /// keeps "halting ⇔ reaching F" unambiguous).
    AcceptingNotFinal(State),
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::BadState(s) => write!(f, "state {s} out of range"),
            MachineError::DecrementOfZero((q, t1, t2)) => {
                write!(
                    f,
                    "transition delta({q},{t1},{t2}) decrements a zero counter"
                )
            }
            MachineError::AcceptingNotFinal(s) => {
                write!(f, "accepting state {s} has outgoing transitions")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// The outcome of a bounded simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Reached an accepting state after the given number of steps.
    Halted { steps: u64, config: Config },
    /// No transition applies (and the state is not accepting).
    Stuck { steps: u64, config: Config },
    /// The step budget ran out.
    OutOfBudget { config: Config },
}

impl RunOutcome {
    /// Did the machine accept within the budget?
    pub fn halted(&self) -> bool {
        matches!(self, RunOutcome::Halted { .. })
    }
}

impl TwoCounterMachine {
    /// Construct and validate.
    pub fn new(
        states: u32,
        accepting: Vec<State>,
        delta: BTreeMap<Domain, Effect>,
    ) -> Result<TwoCounterMachine, MachineError> {
        let m = TwoCounterMachine {
            states,
            accepting,
            delta,
        };
        m.validate()?;
        Ok(m)
    }

    fn validate(&self) -> Result<(), MachineError> {
        for s in &self.accepting {
            if s.0 >= self.states {
                return Err(MachineError::BadState(*s));
            }
        }
        for (&(q, t1, t2), &(p, a1, a2)) in &self.delta {
            if q.0 >= self.states {
                return Err(MachineError::BadState(q));
            }
            if p.0 >= self.states {
                return Err(MachineError::BadState(p));
            }
            if (t1 == Test::Zero && a1 == Action::Dec) || (t2 == Test::Zero && a2 == Action::Dec) {
                return Err(MachineError::DecrementOfZero((q, t1, t2)));
            }
            if self.accepting.contains(&q) {
                return Err(MachineError::AcceptingNotFinal(q));
            }
        }
        Ok(())
    }

    /// Is `s` accepting?
    pub fn is_accepting(&self, s: State) -> bool {
        self.accepting.contains(&s)
    }

    /// The initial configuration `(q0, 0, 0)` ("the empty string as
    /// input").
    pub fn initial(&self) -> Config {
        Config {
            state: State(0),
            c1: 0,
            c2: 0,
        }
    }

    /// One step of the machine, if a transition applies.
    pub fn step(&self, c: Config) -> Option<Config> {
        let key = (c.state, Test::of(c.c1), Test::of(c.c2));
        let &(p, a1, a2) = self.delta.get(&key)?;
        Some(Config {
            state: p,
            c1: a1.apply(c.c1).expect("validated: no decrement of zero"),
            c2: a2.apply(c.c2).expect("validated: no decrement of zero"),
        })
    }

    /// Simulate from the initial configuration with a step budget.
    pub fn run(&self, max_steps: u64) -> RunOutcome {
        self.run_from(self.initial(), max_steps)
    }

    /// Simulate from an arbitrary configuration.
    pub fn run_from(&self, mut c: Config, max_steps: u64) -> RunOutcome {
        let mut steps = 0u64;
        loop {
            if self.is_accepting(c.state) {
                return RunOutcome::Halted { steps, config: c };
            }
            if steps >= max_steps {
                return RunOutcome::OutOfBudget { config: c };
            }
            match self.step(c) {
                Some(next) => {
                    c = next;
                    steps += 1;
                }
                None => return RunOutcome::Stuck { steps, config: c },
            }
        }
    }

    /// The full trace from the initial configuration (bounded), including
    /// the initial configuration itself. Used to validate the Thm 4.1
    /// compilation step by step.
    pub fn trace(&self, max_steps: u64) -> Vec<Config> {
        let mut out = vec![self.initial()];
        let mut c = self.initial();
        for _ in 0..max_steps {
            if self.is_accepting(c.state) {
                break;
            }
            match self.step(c) {
                Some(next) => {
                    out.push(next);
                    c = next;
                }
                None => break,
            }
        }
        out
    }
}

/// Convenience builder for transition tables.
#[derive(Debug, Clone, Default)]
pub struct DeltaBuilder {
    delta: BTreeMap<Domain, Effect>,
}

impl DeltaBuilder {
    pub fn new() -> DeltaBuilder {
        DeltaBuilder::default()
    }

    /// Add `δ(q, t1, t2) = (p, a1, a2)`.
    pub fn rule(
        mut self,
        q: u32,
        t1: Test,
        t2: Test,
        p: u32,
        a1: Action,
        a2: Action,
    ) -> DeltaBuilder {
        self.delta.insert((State(q), t1, t2), (State(p), a1, a2));
        self
    }

    /// Add rules for *all four* test combinations of state `q` with the
    /// same effect (when the effect never decrements, this is safe).
    pub fn rule_any(self, q: u32, p: u32, a1: Action, a2: Action) -> DeltaBuilder {
        let mut b = self;
        for t1 in Test::ALL {
            for t2 in Test::ALL {
                if (t1 == Test::Zero && a1 == Action::Dec)
                    || (t2 == Test::Zero && a2 == Action::Dec)
                {
                    continue;
                }
                b = b.rule(q, t1, t2, p, a1, a2);
            }
        }
        b
    }

    pub fn build(self) -> BTreeMap<Domain, Effect> {
        self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_zero_decrement() {
        let delta = DeltaBuilder::new()
            .rule(0, Test::Zero, Test::Zero, 1, Action::Dec, Action::Keep)
            .build();
        assert_eq!(
            TwoCounterMachine::new(2, vec![State(1)], delta).unwrap_err(),
            MachineError::DecrementOfZero((State(0), Test::Zero, Test::Zero))
        );
    }

    #[test]
    fn validation_rejects_bad_states() {
        let delta = DeltaBuilder::new()
            .rule(0, Test::Zero, Test::Zero, 7, Action::Keep, Action::Keep)
            .build();
        assert!(matches!(
            TwoCounterMachine::new(2, vec![State(1)], delta),
            Err(MachineError::BadState(State(7)))
        ));
    }

    #[test]
    fn validation_rejects_accepting_with_outgoing() {
        let delta = DeltaBuilder::new()
            .rule(0, Test::Zero, Test::Zero, 0, Action::Inc, Action::Keep)
            .build();
        assert!(matches!(
            TwoCounterMachine::new(1, vec![State(0)], delta),
            Err(MachineError::AcceptingNotFinal(State(0)))
        ));
    }

    #[test]
    fn count_to_three() {
        let m = library::count_up_then_accept(3);
        let out = m.run(100);
        let RunOutcome::Halted { config, .. } = out else {
            panic!("should halt, got {out:?}");
        };
        assert_eq!(config.c1, 3);
    }

    #[test]
    fn diverging_machine_exhausts_budget() {
        let m = library::diverge();
        assert!(matches!(m.run(10_000), RunOutcome::OutOfBudget { .. }));
    }

    #[test]
    fn stuck_machine() {
        // A machine with no transitions at all gets stuck immediately.
        let m = TwoCounterMachine::new(2, vec![State(1)], BTreeMap::new()).unwrap();
        assert!(matches!(m.run(10), RunOutcome::Stuck { steps: 0, .. }));
    }

    #[test]
    fn transfer_preserves_total() {
        let m = library::transfer_c1_to_c2(5);
        let out = m.run(1000);
        let RunOutcome::Halted { config, .. } = out else {
            panic!("should halt, got {out:?}");
        };
        assert_eq!(config.c1, 0);
        assert_eq!(config.c2, 5);
    }

    #[test]
    fn parity_machines() {
        for n in 0..8 {
            let m = library::accept_iff_even(n);
            assert_eq!(
                m.run(10_000).halted(),
                n % 2 == 0,
                "even-accepting machine on n = {n}"
            );
        }
    }

    #[test]
    fn trace_is_step_consistent() {
        let m = library::count_up_then_accept(4);
        let t = m.trace(1000);
        for w in t.windows(2) {
            assert_eq!(m.step(w[0]), Some(w[1]));
        }
        assert!(m.is_accepting(t.last().unwrap().state));
    }
}
