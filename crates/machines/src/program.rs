//! A small instruction language over two counters, compiled to the
//! `(Q, F, δ)` machine model.
//!
//! Writing `δ` tables by hand is error-prone (four zero-test combinations
//! per state); most machines are more naturally expressed as straight-line
//! programs with jumps, in the style Minsky used:
//!
//! ```
//! use idar_machines::program::{Instr, Program};
//! use idar_machines::Counter;
//!
//! // c2 := c1 (destructive move), then accept.
//! let p = Program::new(vec![
//!     Instr::Jz(Counter::C1, 3), // 0: if c1 == 0 goto accept
//!     Instr::Dec(Counter::C1),   // 1
//!     Instr::Inc(Counter::C2),   // 2 (falls through back via jump)
//!     Instr::Accept,             // 3
//! ]);
//! // Oops — after Inc we fall into Accept; add a jump in real programs.
//! let machine = p.compile().unwrap();
//! assert!(machine.run(100).halted());
//! ```
//!
//! Each instruction becomes one machine state; `Jz` tests a counter,
//! `Inc`/`Dec` fall through to the next instruction, `Goto` jumps,
//! `Accept` maps to an accepting state and `Halt` to a stuck (rejecting)
//! state. The compiler guarantees the produced machine validates
//! (decrements are guarded by the zero tests).

use crate::{Action, DeltaBuilder, MachineError, State, Test, TwoCounterMachine};

/// Which counter an instruction touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    C1,
    C2,
}

/// One instruction; the program counter is the instruction index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Increment the counter, fall through.
    Inc(Counter),
    /// Decrement the counter, fall through. If the counter is zero the
    /// machine gets **stuck** (no transition) — guard with [`Instr::Jz`].
    Dec(Counter),
    /// Jump to the target when the counter is zero; fall through otherwise.
    Jz(Counter, usize),
    /// Unconditional jump.
    Goto(usize),
    /// Accept (halt successfully).
    Accept,
    /// Reject: loop here forever without accepting. Compiled as a stuck
    /// state, so "halts" (accepts) is false.
    Halt,
}

/// A straight-line two-counter program.
#[derive(Debug, Clone)]
pub struct Program {
    pub instrs: Vec<Instr>,
}

/// Compilation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A jump target is past the end of the program.
    BadTarget { at: usize, target: usize },
    /// Empty programs have no entry point.
    Empty,
    /// The compiled machine failed validation (should not happen; kept for
    /// honesty in the API).
    Machine(MachineError),
}

impl std::fmt::Display for ProgramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgramError::BadTarget { at, target } => {
                write!(f, "instruction {at} jumps to {target}, past the end")
            }
            ProgramError::Empty => write!(f, "empty program"),
            ProgramError::Machine(e) => write!(f, "compiled machine invalid: {e}"),
        }
    }
}
impl std::error::Error for ProgramError {}

impl Program {
    pub fn new(instrs: Vec<Instr>) -> Program {
        Program { instrs }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Compile to the paper's machine model: one state per instruction.
    pub fn compile(&self) -> Result<TwoCounterMachine, ProgramError> {
        if self.instrs.is_empty() {
            return Err(ProgramError::Empty);
        }
        let n = self.instrs.len();
        for (at, i) in self.instrs.iter().enumerate() {
            let target = match i {
                Instr::Jz(_, t) | Instr::Goto(t) => Some(*t),
                _ => None,
            };
            if let Some(t) = target {
                if t >= n {
                    return Err(ProgramError::BadTarget { at, target: t });
                }
            }
        }

        let mut b = DeltaBuilder::new();
        let mut accepting = Vec::new();
        for (pc, instr) in self.instrs.iter().enumerate() {
            let pc = pc as u32;
            let next = pc + 1; // fall-through; may be out of range → stuck
            match *instr {
                Instr::Accept => accepting.push(State(pc)),
                Instr::Halt => { /* no transitions: stuck, not accepting */ }
                Instr::Inc(c) => {
                    // Falling off the end is allowed: the machine just
                    // gets stuck in a fresh sink state `n` (added below).
                    let (a1, a2) = action_pair(c, Action::Inc);
                    b = b.rule_any(pc, next.min(n as u32), a1, a2);
                }
                Instr::Dec(c) => {
                    let (a1, a2) = action_pair(c, Action::Dec);
                    // Only defined when the counter is non-zero; zero →
                    // stuck (programs should guard with Jz).
                    match c {
                        Counter::C1 => {
                            for t2 in Test::ALL {
                                b = b.rule(pc, Test::Positive, t2, next.min(n as u32), a1, a2);
                            }
                        }
                        Counter::C2 => {
                            for t1 in Test::ALL {
                                b = b.rule(pc, t1, Test::Positive, next.min(n as u32), a1, a2);
                            }
                        }
                    }
                }
                Instr::Jz(c, target) => {
                    let target = target as u32;
                    match c {
                        Counter::C1 => {
                            for t2 in Test::ALL {
                                b = b.rule(pc, Test::Zero, t2, target, Action::Keep, Action::Keep);
                                b = b.rule(
                                    pc,
                                    Test::Positive,
                                    t2,
                                    next.min(n as u32),
                                    Action::Keep,
                                    Action::Keep,
                                );
                            }
                        }
                        Counter::C2 => {
                            for t1 in Test::ALL {
                                b = b.rule(pc, t1, Test::Zero, target, Action::Keep, Action::Keep);
                                b = b.rule(
                                    pc,
                                    t1,
                                    Test::Positive,
                                    next.min(n as u32),
                                    Action::Keep,
                                    Action::Keep,
                                );
                            }
                        }
                    }
                }
                Instr::Goto(target) => {
                    b = b.rule_any(pc, target as u32, Action::Keep, Action::Keep);
                }
            }
        }
        // One extra sink state for fall-through off the end.
        TwoCounterMachine::new((n + 1) as u32, accepting, b.build()).map_err(ProgramError::Machine)
    }
}

fn action_pair(c: Counter, a: Action) -> (Action, Action) {
    match c {
        Counter::C1 => (a, Action::Keep),
        Counter::C2 => (Action::Keep, a),
    }
}

/// `c1 := a; c2 := b; accept` — useful to seed configurations in tests.
pub fn set_counters(a: u32, b: u32) -> Program {
    let mut instrs = Vec::new();
    for _ in 0..a {
        instrs.push(Instr::Inc(Counter::C1));
    }
    for _ in 0..b {
        instrs.push(Instr::Inc(Counter::C2));
    }
    instrs.push(Instr::Accept);
    Program::new(instrs)
}

/// Multiply-by-two: pump `n` into c1, then for each unit of c1 add two to
/// c2; accepts with `c2 = 2n`. Exercises nested loops through `Jz`.
pub fn double(n: u32) -> Program {
    let mut instrs = Vec::new();
    for _ in 0..n {
        instrs.push(Instr::Inc(Counter::C1));
    }
    let loop_start = instrs.len();
    // loop: if c1 == 0 goto accept
    instrs.push(Instr::Jz(Counter::C1, loop_start + 5));
    instrs.push(Instr::Dec(Counter::C1));
    instrs.push(Instr::Inc(Counter::C2));
    instrs.push(Instr::Inc(Counter::C2));
    instrs.push(Instr::Goto(loop_start));
    instrs.push(Instr::Accept);
    Program::new(instrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunOutcome;

    #[test]
    fn set_counters_works() {
        let m = set_counters(3, 5).compile().unwrap();
        let RunOutcome::Halted { config, .. } = m.run(100) else {
            panic!("should accept");
        };
        assert_eq!((config.c1, config.c2), (3, 5));
    }

    #[test]
    fn double_doubles() {
        for n in 0..5 {
            let m = double(n).compile().unwrap();
            let RunOutcome::Halted { config, .. } = m.run(1000) else {
                panic!("double({n}) should accept");
            };
            assert_eq!(config.c1, 0);
            assert_eq!(config.c2, (2 * n) as u64);
        }
    }

    #[test]
    fn unguarded_dec_gets_stuck() {
        let m = Program::new(vec![Instr::Dec(Counter::C1), Instr::Accept])
            .compile()
            .unwrap();
        assert!(matches!(m.run(10), RunOutcome::Stuck { steps: 0, .. }));
    }

    #[test]
    fn halt_never_accepts() {
        let m = Program::new(vec![Instr::Halt]).compile().unwrap();
        assert!(!m.run(100).halted());
    }

    #[test]
    fn infinite_loop_runs_out_of_budget() {
        let m = Program::new(vec![Instr::Inc(Counter::C1), Instr::Goto(0)])
            .compile()
            .unwrap();
        assert!(matches!(m.run(1000), RunOutcome::OutOfBudget { .. }));
    }

    #[test]
    fn bad_targets_rejected() {
        let p = Program::new(vec![Instr::Goto(9)]);
        assert_eq!(
            p.compile().unwrap_err(),
            ProgramError::BadTarget { at: 0, target: 9 }
        );
        assert_eq!(
            Program::new(vec![]).compile().unwrap_err(),
            ProgramError::Empty
        );
    }

    #[test]
    fn compiled_program_through_theorem_4_1() {
        // End-to-end: program → machine → guarded form still simulates
        // faithfully (cross-crate sanity lives in idar-reductions; here we
        // just check the machine level).
        let m = double(2).compile().unwrap();
        let trace = m.trace(1000);
        for w in trace.windows(2) {
            assert_eq!(m.step(w[0]), Some(w[1]));
        }
        assert!(m.is_accepting(trace.last().unwrap().state));
    }
}
