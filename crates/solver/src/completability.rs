//! Fragment-dispatched completability (Def. 3.13).
//!
//! [`completability`] is a thin wrapper over the unified
//! [`analysis`](crate::analysis) pipeline; the dispatch below inspects the
//! form's fragment (Sec. 3.5) and picks the strongest procedure Table 1
//! licenses:
//!
//! 1. `F(A+, φ+, ·)` → Thm 5.5 saturation (exact, polynomial).
//! 2. depth ≤ 1      → Lemma 4.3 canonical-state search (exact, ≤ 2ⁿ states).
//! 3. `F(A+, φ−, k)` → Thm 5.2 capped search (exact, NP).
//! 4. otherwise      → bounded exploration (undecidable in general, Thm 4.1):
//!    `Holds` on a found run, `Fails` only if the search *closed*, else
//!    `Unknown`.

use crate::analysis::Budget;
use crate::depth1::Depth1System;
use crate::explore::Explorer;
use crate::verdict::{Method, SearchStats, Verdict};
use idar_core::{GuardedForm, Update};

/// Options for [`completability`] — an alias of the pipeline-wide
/// [`Budget`] (the former standalone struct was one of three copies of
/// the same `ExploreLimits` plumbing).
pub type CompletabilityOptions = Budget;

/// The result of a completability query.
#[derive(Debug, Clone)]
pub struct CompletabilityResult {
    /// The three-valued answer.
    pub verdict: Verdict,
    /// Which algorithm ran.
    pub method: Method,
    /// A complete run when `Holds` (replayable with
    /// [`GuardedForm::replay`]).
    pub witness_run: Option<Vec<Update>>,
    /// Statistics of the search that produced the verdict.
    pub stats: SearchStats,
}

/// Decide (or bound) completability of `form`. See module docs for the
/// dispatch; exactness is tied to [`Method`] and `stats.closed`.
///
/// Routes through the unified pipeline
/// ([`analyze`](crate::analysis::analyze)); use
/// [`analyze_with`](crate::analysis::analyze_with) directly to add a
/// [`VerdictCache`](crate::cache::VerdictCache).
pub fn completability(form: &GuardedForm, options: &CompletabilityOptions) -> CompletabilityResult {
    let report = crate::analysis::analyze(
        &crate::analysis::AnalysisRequest::completability(form.clone())
            .with_budget(options.clone()),
    );
    CompletabilityResult {
        verdict: report.verdict,
        method: report.method,
        witness_run: report.run,
        stats: report.stats,
    }
}

/// The method the dispatcher would choose for this form.
pub fn select_method(form: &GuardedForm) -> Method {
    let frag = idar_core::fragment::classify(form);
    use idar_core::fragment::{DepthClass, Polarity};
    if frag.access == Polarity::Positive && frag.completion == Polarity::Positive {
        Method::PositiveSaturation
    } else if frag.depth == DepthClass::One {
        Method::Depth1Canonical
    } else if frag.access == Polarity::Positive {
        Method::NpTwoPhase
    } else {
        Method::BoundedExploration
    }
}

/// The cold execution path behind the pipeline: method selection plus the
/// budgeted run.
pub(crate) fn run_completability(
    form: &GuardedForm,
    budget: &Budget,
    threads: Option<usize>,
) -> CompletabilityResult {
    let method = budget.force_method.unwrap_or_else(|| select_method(form));
    run_method(form, method, budget, threads)
}

fn run_method(
    form: &GuardedForm,
    method: Method,
    budget: &Budget,
    threads: Option<usize>,
) -> CompletabilityResult {
    match method {
        Method::PositiveSaturation => match crate::positive::completability_positive(form) {
            Ok(ans) => CompletabilityResult {
                verdict: ans.verdict,
                method,
                witness_run: (ans.verdict == Verdict::Holds).then_some(ans.run),
                stats: ans.stats,
            },
            // Preconditions violated (only possible when forced): fall back.
            Err(_) => run_method(form, Method::BoundedExploration, budget, threads),
        },
        Method::Depth1Canonical => match Depth1System::new(form) {
            Ok(sys) => {
                let ans = sys.completability();
                let witness_run = ans.moves.as_ref().map(|m| sys.concretize(form, m));
                CompletabilityResult {
                    verdict: ans.verdict,
                    method,
                    witness_run,
                    stats: ans.stats,
                }
            }
            Err(_) => run_method(form, Method::BoundedExploration, budget, threads),
        },
        Method::NpTwoPhase => match crate::np::completability_np(form, &budget.limits) {
            Ok(ans) => CompletabilityResult {
                verdict: ans.verdict,
                method,
                witness_run: ans.run,
                stats: ans.stats,
            },
            Err(_) => run_method(form, Method::BoundedExploration, budget, threads),
        },
        // Forcing the screener runs it alone: a conclusive outcome is the
        // answer, an inconclusive one is an honest `Unknown` (the caller
        // asked for the screen, not for the exploration behind it).
        Method::StaticScreen => {
            let s = crate::screen::screen(form);
            match s.completability {
                crate::screen::ScreenOutcome::Decided(verdict, run) => CompletabilityResult {
                    verdict,
                    method,
                    witness_run: run,
                    stats: SearchStats {
                        closed: true,
                        ..SearchStats::default()
                    },
                },
                crate::screen::ScreenOutcome::Inconclusive => CompletabilityResult {
                    verdict: Verdict::Unknown,
                    method,
                    witness_run: None,
                    stats: SearchStats::default(),
                },
            }
        }
        Method::BoundedExploration | Method::ReachableEnumeration | Method::SatTableau => {
            let mut explorer = Explorer::new(form, budget.limits)
                .with_symmetry(budget.symmetry)
                .with_memory_budget(budget.memory);
            if let Some(t) = threads {
                explorer = explorer.with_threads(t);
            }
            let out = explorer.find(|i| form.is_complete(i));
            let verdict = match (&out.goal_run, out.stats.closed) {
                (Some(_), _) => Verdict::Holds,
                (None, true) => Verdict::Fails, // space exhausted: exact
                (None, false) => Verdict::Unknown,
            };
            CompletabilityResult {
                verdict,
                method: Method::BoundedExploration,
                witness_run: out.goal_run,
                stats: out.stats,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ExploreLimits;
    use idar_core::leave;

    #[test]
    fn leave_form_is_completable() {
        // Ex. 3.12 with φ = f: completable by additions alone, so the
        // static screener's greedy chase decides it before any state is
        // expanded (probe order: screen → exploration).
        let g = leave::example_3_12();
        let r = completability(&g, &CompletabilityOptions::default());
        assert_eq!(r.verdict, Verdict::Holds);
        assert_eq!(r.method, Method::StaticScreen);
        assert_eq!(r.stats.states, 0);
        assert!(g.is_complete_run(r.witness_run.as_ref().unwrap()));

        // Forcing the explorer (depth 3, A−) must agree and find a run.
        let forced = completability(
            &g,
            &CompletabilityOptions {
                force_method: Some(Method::BoundedExploration),
                ..CompletabilityOptions::default()
            },
        );
        assert_eq!(forced.verdict, Verdict::Holds);
        assert_eq!(forced.method, Method::BoundedExploration);
        assert!(g.is_complete_run(forced.witness_run.as_ref().unwrap()));
    }

    #[test]
    fn leave_form_with_f_and_not_s_is_not_completable() {
        // Sec. 3.5: "if we start from the initial instance there is no full
        // run" for φ = f ∧ ¬s. The run space of the leave form is infinite
        // (unboundedly many periods), so we add a multiplicity cap: with
        // duplicates capped the space closes, and — every guard being
        // multiplicity-blind and `s` being permanently undeletable — the
        // capped verdict reflects the true one. The library reports
        // `Fails` only because the capped search closed; the theory-level
        // caveat is documented in EXPERIMENTS.md.
        let g = leave::example_3_12().with_completion(idar_core::Formula::parse("f & !s").unwrap());
        let limits = ExploreLimits {
            multiplicity_cap: Some(2),
            ..ExploreLimits::small()
        };
        let r = completability(&g, &CompletabilityOptions::with_limits(limits));
        // Capped exploration exhausted the space without a complete state.
        assert_ne!(r.verdict, Verdict::Holds);
        assert!(r.witness_run.is_none());
    }

    #[test]
    fn invariant_check_via_completability() {
        // Sec. 3.5: φ = d[a ∧ r] asks whether a decision can ever hold
        // both accept and reject. With Ex. 3.12's rules it cannot.
        let g = leave::example_3_12().with_completion(leave::both_decisions_invariant());
        let limits = ExploreLimits {
            multiplicity_cap: Some(2),
            ..ExploreLimits::small()
        };
        let r = completability(&g, &CompletabilityOptions::with_limits(limits));
        assert_ne!(r.verdict, Verdict::Holds);
    }

    #[test]
    fn dispatch_selects_expected_methods() {
        use idar_core::{AccessRules, Formula, Instance, Schema};
        use std::sync::Arc;
        // Positive/positive → saturation.
        let schema = Arc::new(Schema::parse("a(b)").unwrap());
        let rules = AccessRules::with_default(&schema, Formula::True);
        let g = GuardedForm::new(
            schema.clone(),
            rules,
            Instance::empty(schema),
            Formula::parse("a").unwrap(),
        );
        assert_eq!(select_method(&g), Method::PositiveSaturation);

        // Depth-1 with negation → canonical.
        let schema = Arc::new(Schema::parse("a, b").unwrap());
        let rules = AccessRules::with_default(&schema, Formula::parse("!a").unwrap());
        let g = GuardedForm::new(
            schema.clone(),
            rules,
            Instance::empty(schema),
            Formula::parse("a").unwrap(),
        );
        assert_eq!(select_method(&g), Method::Depth1Canonical);

        // Deep, positive rules, negative completion → NP.
        let schema = Arc::new(Schema::parse("a(b)").unwrap());
        let rules = AccessRules::with_default(&schema, Formula::True);
        let g = GuardedForm::new(
            schema.clone(),
            rules,
            Instance::empty(schema),
            Formula::parse("!a").unwrap(),
        );
        assert_eq!(select_method(&g), Method::NpTwoPhase);

        // Deep with negated rules → bounded.
        let schema = Arc::new(Schema::parse("a(b)").unwrap());
        let rules = AccessRules::with_default(&schema, Formula::parse("!b").unwrap());
        let g = GuardedForm::new(
            schema.clone(),
            rules,
            Instance::empty(schema),
            Formula::parse("a").unwrap(),
        );
        assert_eq!(select_method(&g), Method::BoundedExploration);
    }

    #[test]
    fn methods_agree_on_small_forms() {
        // Differential test: on depth-1 positive forms, the three exact
        // methods must return the exact verdict; bounded exploration must
        // never *contradict* it (it may return Unknown on `Fails` cases
        // whose run space is infinite — unbounded duplicate additions).
        use idar_core::{AccessRules, Formula, Instance, Right, Schema};
        use std::sync::Arc;
        let cases = [
            (vec![("a", "true"), ("b", "a")], "a & b", Verdict::Holds),
            (vec![("a", "b"), ("b", "a")], "a", Verdict::Fails),
            (vec![("a", "true"), ("b", "a & zz")], "b", Verdict::Fails),
        ];
        for (rules_spec, completion, expected) in cases {
            let schema = Arc::new(Schema::parse("a, b, zz").unwrap());
            let mut rules = AccessRules::new(&schema);
            for (l, add) in &rules_spec {
                rules.set(
                    Right::Add,
                    schema.resolve(l).unwrap(),
                    Formula::parse(add).unwrap(),
                );
            }
            let g = GuardedForm::new(
                schema.clone(),
                rules,
                Instance::empty(schema),
                Formula::parse(completion).unwrap(),
            );
            for m in [
                Method::PositiveSaturation,
                Method::Depth1Canonical,
                Method::NpTwoPhase,
            ] {
                let r = completability(
                    &g,
                    &CompletabilityOptions {
                        limits: ExploreLimits::small(),
                        force_method: Some(m),
                        ..CompletabilityOptions::default()
                    },
                );
                assert_eq!(r.verdict, expected, "method {m} on {completion}");
            }
            let bounded = completability(
                &g,
                &CompletabilityOptions {
                    limits: ExploreLimits::small(),
                    force_method: Some(Method::BoundedExploration),
                    ..CompletabilityOptions::default()
                },
            );
            assert_ne!(
                bounded.verdict,
                expected.not(),
                "bounded exploration contradicts the exact verdict on {completion}"
            );
        }
    }
}
