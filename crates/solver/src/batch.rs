//! Concurrent batch analysis of many guarded forms.
//!
//! A production form-based WIS does not check one form at a time: a
//! designer saves a change and *every* deployed form variant is re-vetted;
//! a nightly job sweeps the whole catalogue. [`BatchAnalyzer`] is the
//! entry point for that shape of workload — it fans a set of forms out
//! over a worker pool and runs the selected analyses (completability,
//! semi-soundness, completion-formula satisfiability) under one shared
//! [`ExploreLimits`] budget.
//!
//! Parallelism is two-level: the batch pool parallelises *across* forms
//! (one job = one analysis of one form), and each bounded search may
//! itself use the parallel frontier engine *within* a form. For batches
//! of many small forms the across-forms level dominates; for a few huge
//! forms the within-form level does. Both are std-only thread pools, so
//! oversubscription degrades gracefully under the OS scheduler.
//!
//! Results come back in submission order, independent of scheduling:
//!
//! ```
//! use idar_core::leave;
//! use idar_solver::batch::{BatchAnalyzer, BatchItem};
//! use idar_solver::{ExploreLimits, Verdict};
//!
//! let limits = ExploreLimits { multiplicity_cap: Some(1), ..ExploreLimits::small() };
//! let items = vec![
//!     BatchItem::new("leave", leave::example_3_12()),
//!     BatchItem::new("variant", leave::section_3_5_variant()),
//! ];
//! let reports = BatchAnalyzer::new().with_limits(limits).run(items);
//! assert_eq!(reports.len(), 2);
//! assert_eq!(reports[0].name, "leave");
//! assert_eq!(
//!     reports[1].semisoundness.as_ref().unwrap().verdict,
//!     Verdict::Fails, // the Sec. 3.5 variant is not semi-sound
//! );
//! ```

use crate::completability::{completability, CompletabilityOptions, CompletabilityResult};
use crate::explore::ExploreLimits;
use crate::satisfiability::{satisfiable, SatOptions, SatResult};
use crate::semisound::{semisoundness, SemisoundnessOptions, SemisoundnessResult};
use idar_core::GuardedForm;

/// One form to analyse, with a display name for the report.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// Name echoed back in the corresponding [`FormReport`].
    pub name: String,
    /// The form under analysis.
    pub form: GuardedForm,
}

impl BatchItem {
    /// Bundle a name and a form.
    pub fn new(name: impl Into<String>, form: GuardedForm) -> Self {
        BatchItem {
            name: name.into(),
            form,
        }
    }
}

/// Which analyses a [`BatchAnalyzer`] runs per form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisSelection {
    /// Run [`completability`] (Def. 3.13).
    pub completability: bool,
    /// Run [`semisoundness`] (Def. 3.14).
    pub semisoundness: bool,
    /// Check the completion formula is satisfiable over the form's schema
    /// (Cor. 4.5) — a cheap necessary condition for completability that
    /// catches dead completion formulas without any state search.
    pub satisfiability: bool,
}

impl Default for AnalysisSelection {
    fn default() -> Self {
        AnalysisSelection {
            completability: true,
            semisoundness: true,
            satisfiability: true,
        }
    }
}

/// The per-form outcome of a batch run. Fields are `None` when the
/// corresponding analysis was not selected.
#[derive(Debug, Clone)]
pub struct FormReport {
    /// The submitted [`BatchItem::name`].
    pub name: String,
    /// Completability verdict and witness, if selected.
    pub completability: Option<CompletabilityResult>,
    /// Semi-soundness verdict and counterexample, if selected.
    pub semisoundness: Option<SemisoundnessResult>,
    /// Completion-formula satisfiability, if selected.
    pub satisfiability: Option<SatResult>,
}

/// Runs the selected analyses over many forms concurrently. See the
/// module docs for the execution model.
#[derive(Debug, Clone)]
pub struct BatchAnalyzer {
    limits: ExploreLimits,
    threads: usize,
    selection: AnalysisSelection,
}

impl Default for BatchAnalyzer {
    fn default() -> Self {
        BatchAnalyzer::new()
    }
}

impl BatchAnalyzer {
    /// An analyzer with default limits, all analyses selected, and
    /// [`default_threads`](crate::explore::default_threads) pool size.
    pub fn new() -> BatchAnalyzer {
        BatchAnalyzer {
            limits: ExploreLimits::default(),
            threads: crate::explore::default_threads(),
            selection: AnalysisSelection::default(),
        }
    }

    /// Set the shared exploration limits for every search in the batch.
    pub fn with_limits(mut self, limits: ExploreLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Set the worker-pool size (1 = run the batch sequentially).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Choose which analyses to run per form.
    pub fn with_selection(mut self, selection: AnalysisSelection) -> Self {
        self.selection = selection;
        self
    }

    /// Run the batch. Reports come back in submission order.
    pub fn run(&self, items: Vec<BatchItem>) -> Vec<FormReport> {
        // One job = one (form, analysis) pair, so a slow semi-soundness
        // check on one form does not serialise the rest of the batch.
        #[derive(Clone, Copy, PartialEq)]
        enum Kind {
            Compl,
            Semi,
            Sat,
        }
        let mut kinds = Vec::new();
        if self.selection.completability {
            kinds.push(Kind::Compl);
        }
        if self.selection.semisoundness {
            kinds.push(Kind::Semi);
        }
        if self.selection.satisfiability {
            kinds.push(Kind::Sat);
        }

        let jobs: Vec<(usize, Kind)> = (0..items.len())
            .flat_map(|i| kinds.iter().map(move |&k| (i, k)))
            .collect();

        /// One analysis outcome, computed without touching the report.
        enum JobResult {
            Compl(CompletabilityResult),
            Semi(SemisoundnessResult),
            Sat(SatResult),
        }

        impl JobResult {
            fn store(self, report: &mut FormReport) {
                match self {
                    JobResult::Compl(r) => report.completability = Some(r),
                    JobResult::Semi(r) => report.semisoundness = Some(r),
                    JobResult::Sat(r) => report.satisfiability = Some(r),
                }
            }
        }

        let limits = self.limits;
        let run_job = |item: &BatchItem, kind: Kind| match kind {
            Kind::Compl => JobResult::Compl(completability(
                &item.form,
                &CompletabilityOptions::with_limits(limits),
            )),
            Kind::Semi => JobResult::Semi(semisoundness(
                &item.form,
                &SemisoundnessOptions {
                    limits,
                    oracle_limits: None,
                },
            )),
            Kind::Sat => JobResult::Sat(satisfiable(
                item.form.completion(),
                &SatOptions {
                    schema: Some(item.form.schema().clone()),
                    ..SatOptions::default()
                },
            )),
        };

        let mut reports: Vec<FormReport> = items
            .iter()
            .map(|it| FormReport {
                name: it.name.clone(),
                completability: None,
                semisoundness: None,
                satisfiability: None,
            })
            .collect();

        let pool_threads = self.threads.min(jobs.len());
        #[cfg(feature = "parallel")]
        if pool_threads > 1 {
            use std::sync::atomic::{AtomicUsize, Ordering};
            use std::sync::Mutex;

            // Per-form report slots behind independent locks; workers pull
            // jobs from one shared counter until drained. The analysis
            // itself runs outside any lock — the slot mutex is held only
            // for the field store, so the three analyses of one form
            // proceed concurrently on different workers.
            let slots: Vec<Mutex<&mut FormReport>> = reports.iter_mut().map(Mutex::new).collect();
            let next = AtomicUsize::new(0);
            let jobs = &jobs;
            let items = &items;
            let slots = &slots;
            let next = &next;
            let run_job = &run_job;
            std::thread::scope(|scope| {
                for _ in 0..pool_threads {
                    scope.spawn(move || loop {
                        let j = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(i, kind)) = jobs.get(j) else {
                            break;
                        };
                        let result = run_job(&items[i], kind);
                        result.store(&mut slots[i].lock().expect("report slot poisoned"));
                    });
                }
            });
            return reports;
        }

        for &(i, kind) in &jobs {
            run_job(&items[i], kind).store(&mut reports[i]);
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Verdict;
    use idar_core::{leave, AccessRules, Formula, Instance, Schema};
    use std::sync::Arc;

    fn capped_limits() -> ExploreLimits {
        ExploreLimits {
            multiplicity_cap: Some(1),
            max_states: 50_000,
            ..ExploreLimits::small()
        }
    }

    fn suite() -> Vec<BatchItem> {
        let schema = Arc::new(Schema::parse("a, b").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set(
            idar_core::Right::Add,
            schema.resolve("a").unwrap(),
            Formula::parse("!a").unwrap(),
        );
        let tiny = idar_core::GuardedForm::new(
            schema.clone(),
            rules,
            Instance::empty(schema),
            Formula::parse("a & b").unwrap(), // b can never be added
        );
        vec![
            BatchItem::new("leave", leave::example_3_12()),
            BatchItem::new("variant", leave::section_3_5_variant()),
            BatchItem::new("tiny_incompletable", tiny),
        ]
    }

    #[test]
    fn sequential_batch_verdicts() {
        let reports = BatchAnalyzer::new()
            .with_limits(capped_limits())
            .with_threads(1)
            .run(suite());
        assert_eq!(reports.len(), 3);
        assert_eq!(
            reports[0].completability.as_ref().unwrap().verdict,
            Verdict::Holds
        );
        assert_eq!(
            reports[1].semisoundness.as_ref().unwrap().verdict,
            Verdict::Fails
        );
        assert_eq!(
            reports[2].completability.as_ref().unwrap().verdict,
            Verdict::Fails
        );
        // The incompletable form's completion is satisfiable in general
        // trees of its schema — the state search, not the formula, rules
        // it out.
        assert!(reports[2].satisfiability.as_ref().unwrap().is_sat());
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_batch_matches_sequential() {
        let seq = BatchAnalyzer::new()
            .with_limits(capped_limits())
            .with_threads(1)
            .run(suite());
        let par = BatchAnalyzer::new()
            .with_limits(capped_limits())
            .with_threads(4)
            .run(suite());
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.name, p.name);
            assert_eq!(
                s.completability.as_ref().unwrap().verdict,
                p.completability.as_ref().unwrap().verdict
            );
            assert_eq!(
                s.semisoundness.as_ref().unwrap().verdict,
                p.semisoundness.as_ref().unwrap().verdict
            );
            assert_eq!(
                s.satisfiability.as_ref().unwrap().is_sat(),
                p.satisfiability.as_ref().unwrap().is_sat()
            );
        }
    }

    #[test]
    fn selection_is_respected() {
        let reports = BatchAnalyzer::new()
            .with_limits(capped_limits())
            .with_selection(AnalysisSelection {
                completability: true,
                semisoundness: false,
                satisfiability: false,
            })
            .run(suite());
        for r in &reports {
            assert!(r.completability.is_some());
            assert!(r.semisoundness.is_none());
            assert!(r.satisfiability.is_none());
        }
    }
}
