//! Concurrent batch analysis of many guarded forms.
//!
//! A production form-based WIS does not check one form at a time: a
//! designer saves a change and *every* deployed form variant is re-vetted;
//! a nightly job sweeps the whole catalogue. [`BatchAnalyzer`] is the
//! entry point for that shape of workload — it fans a set of forms out
//! over a worker pool, expresses every job as an
//! [`AnalysisRequest`] through the
//! unified pipeline, and shares one [`VerdictCache`] across the whole
//! batch (so duplicate forms — isomorphic initial instances included —
//! are solved once).
//!
//! Parallelism is two-level: the batch pool parallelises *across* forms
//! (one job = one analysis of one form), and each bounded search may
//! itself use the parallel frontier engine *within* a form. The analyzer
//! **splits one thread budget** between the levels: with `t` configured
//! threads and `j` jobs, the
//! pool gets `min(t, j)` workers and every inner analysis is granted
//! `t / pool` explorer threads — so the total concurrent worker count
//! never exceeds the configured budget. (A saturated pool runs its
//! searches single-threaded; a single huge job gets the whole budget
//! within-form. The historical bug here was inner analyses defaulting to
//! `default_threads()` *each*, oversubscribing the host `t × t`-fold.)
//!
//! Results come back in submission order, independent of scheduling:
//!
//! ```
//! use idar_core::leave;
//! use idar_solver::batch::{BatchAnalyzer, BatchItem};
//! use idar_solver::{ExploreLimits, Verdict};
//!
//! let limits = ExploreLimits { multiplicity_cap: Some(1), ..ExploreLimits::small() };
//! let items = vec![
//!     BatchItem::new("leave", leave::example_3_12()),
//!     BatchItem::new("variant", leave::section_3_5_variant()),
//! ];
//! let reports = BatchAnalyzer::new().with_limits(limits).run(items);
//! assert_eq!(reports.len(), 2);
//! assert_eq!(reports[0].name, "leave");
//! assert_eq!(
//!     reports[1].semisoundness.as_ref().unwrap().verdict,
//!     Verdict::Fails, // the Sec. 3.5 variant is not semi-sound
//! );
//! ```

use crate::analysis::{analyze_keyed, AnalysisKind, AnalysisReport, AnalysisRequest, Budget};
use crate::cache::{rules_signature_of, CacheStats, RulesSignature, VerdictCache};
use crate::explore::ExploreLimits;
use idar_core::GuardedForm;
use std::sync::Arc;

/// One form to analyse, with a display name for the report.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// Name echoed back in the corresponding [`FormReport`].
    pub name: String,
    /// The form under analysis.
    pub form: GuardedForm,
}

impl BatchItem {
    /// Bundle a name and a form.
    pub fn new(name: impl Into<String>, form: GuardedForm) -> Self {
        BatchItem {
            name: name.into(),
            form,
        }
    }
}

/// Which analyses a [`BatchAnalyzer`] runs per form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisSelection {
    /// Run completability (Def. 3.13).
    pub completability: bool,
    /// Run semi-soundness (Def. 3.14).
    pub semisoundness: bool,
    /// Check the completion formula is satisfiable over the form's schema
    /// (Cor. 4.5) — a cheap necessary condition for completability that
    /// catches dead completion formulas without any state search.
    pub satisfiability: bool,
}

impl AnalysisSelection {
    /// The pipeline kinds this selection enables, in report order.
    fn kinds(&self) -> Vec<AnalysisKind> {
        let mut kinds = Vec::new();
        if self.completability {
            kinds.push(AnalysisKind::Completability);
        }
        if self.semisoundness {
            kinds.push(AnalysisKind::Semisoundness);
        }
        if self.satisfiability {
            kinds.push(AnalysisKind::Satisfiability);
        }
        kinds
    }
}

impl Default for AnalysisSelection {
    fn default() -> Self {
        AnalysisSelection {
            completability: true,
            semisoundness: true,
            satisfiability: true,
        }
    }
}

/// The per-form outcome of a batch run. Fields are `None` when the
/// corresponding analysis was not selected.
#[derive(Debug, Clone)]
pub struct FormReport {
    /// The submitted [`BatchItem::name`].
    pub name: String,
    /// Completability report (verdict, method, witness, cache
    /// provenance), if selected.
    pub completability: Option<AnalysisReport>,
    /// Semi-soundness report, if selected.
    pub semisoundness: Option<AnalysisReport>,
    /// Completion-formula satisfiability report, if selected.
    pub satisfiability: Option<AnalysisReport>,
}

/// Runs the selected analyses over many forms concurrently. See the
/// module docs for the execution model.
#[derive(Debug, Clone)]
pub struct BatchAnalyzer {
    budget: Budget,
    threads: usize,
    selection: AnalysisSelection,
    cache: Arc<VerdictCache>,
}

impl Default for BatchAnalyzer {
    fn default() -> Self {
        BatchAnalyzer::new()
    }
}

impl BatchAnalyzer {
    /// An analyzer with default budget, all analyses selected, a fresh
    /// verdict cache, and [`default_threads`](crate::explore::default_threads)
    /// pool size.
    pub fn new() -> BatchAnalyzer {
        BatchAnalyzer {
            budget: Budget::default(),
            threads: crate::explore::default_threads(),
            selection: AnalysisSelection::default(),
            cache: Arc::new(VerdictCache::new()),
        }
    }

    /// Set the shared exploration limits for every search in the batch.
    pub fn with_limits(mut self, limits: ExploreLimits) -> Self {
        self.budget.limits = limits;
        self
    }

    /// Set the full shared budget for every job in the batch.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Set the worker-pool size (1 = run the batch sequentially).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Choose which analyses to run per form.
    pub fn with_selection(mut self, selection: AnalysisSelection) -> Self {
        self.selection = selection;
        self
    }

    /// Share a verdict cache with other analyzers or managers (e.g. the
    /// nightly sweep and the online vetting path).
    pub fn with_cache(mut self, cache: Arc<VerdictCache>) -> Self {
        self.cache = cache;
        self
    }

    /// The analyzer's verdict cache (to inspect hit rates or share).
    pub fn cache(&self) -> &Arc<VerdictCache> {
        &self.cache
    }

    /// Hit/miss counters of the analyzer's cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Run the batch. Reports come back in submission order.
    pub fn run(&self, items: Vec<BatchItem>) -> Vec<FormReport> {
        // One job = one (form, analysis-kind) pair, so a slow
        // semi-soundness check on one form does not serialise the rest of
        // the batch.
        let kinds = self.selection.kinds();
        let jobs: Vec<(usize, AnalysisKind)> = (0..items.len())
            .flat_map(|i| kinds.iter().map(move |&k| (i, k)))
            .collect();

        fn store(report: &mut FormReport, result: AnalysisReport) {
            match result.kind {
                AnalysisKind::Completability => report.completability = Some(result),
                AnalysisKind::Semisoundness => report.semisoundness = Some(result),
                AnalysisKind::Satisfiability => report.satisfiability = Some(result),
            }
        }

        // One rule-table serialization per item, not per (item, kind).
        let rules_sigs: Vec<RulesSignature> = items
            .iter()
            .map(|it| rules_signature_of(&it.form))
            .collect();

        let (pool_threads, inner_threads) = split_threads(self.threads, jobs.len());
        #[cfg(not(feature = "parallel"))]
        let _ = pool_threads; // the pool branch below is compiled out

        let budget = &self.budget;
        let cache = &self.cache;
        let rules_sigs = &rules_sigs;
        let run_job = move |i: usize, item: &BatchItem, kind: AnalysisKind| {
            let key = VerdictCache::key_with(&rules_sigs[i], &item.form, kind, budget);
            // The explicit thread grant is load-bearing: without it every
            // inner analysis would spawn `default_threads()` explorer
            // workers on top of the pool's own.
            let request = AnalysisRequest::new(item.form.clone(), kind)
                .with_budget(budget.clone())
                .with_threads(inner_threads);
            analyze_keyed(&request, cache, &key)
        };

        let mut reports: Vec<FormReport> = items
            .iter()
            .map(|it| FormReport {
                name: it.name.clone(),
                completability: None,
                semisoundness: None,
                satisfiability: None,
            })
            .collect();

        #[cfg(feature = "parallel")]
        if pool_threads > 1 {
            use std::sync::atomic::{AtomicUsize, Ordering};
            use std::sync::Mutex;

            // Per-form report slots behind independent locks; workers pull
            // jobs from one shared counter until drained. The analysis
            // itself runs outside any lock — the slot mutex is held only
            // for the field store, so the three analyses of one form
            // proceed concurrently on different workers.
            let slots: Vec<Mutex<&mut FormReport>> = reports.iter_mut().map(Mutex::new).collect();
            let next = AtomicUsize::new(0);
            let jobs = &jobs;
            let items = &items;
            let slots = &slots;
            let next = &next;
            let run_job = &run_job;
            std::thread::scope(|scope| {
                for _ in 0..pool_threads {
                    scope.spawn(move || loop {
                        let j = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(i, kind)) = jobs.get(j) else {
                            break;
                        };
                        let result = run_job(i, &items[i], kind);
                        store(&mut slots[i].lock().expect("report slot poisoned"), result);
                    });
                }
            });
            return reports;
        }

        for &(i, kind) in &jobs {
            let result = run_job(i, &items[i], kind);
            store(&mut reports[i], result);
        }
        reports
    }
}

/// Split one thread budget between the across-forms pool and the
/// within-form explorer: `(pool, inner)` with `pool * inner <= threads`
/// (never more concurrent workers than configured), `pool <= jobs` (no
/// idle pool members), and both at least 1. A saturated pool implies
/// single-threaded inner searches; a lone job gets the whole budget
/// within-form.
///
/// Exported because every layered consumer of the pipeline has the same
/// oversubscription problem the batch analyzer had: `idar-server` splits
/// its budget between HTTP workers and per-request explorer threads with
/// this exact function.
pub fn split_threads(threads: usize, jobs: usize) -> (usize, usize) {
    let threads = threads.max(1);
    let pool = threads.min(jobs).max(1);
    let inner = (threads / pool).max(1);
    (pool, inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Verdict;
    use idar_core::{leave, AccessRules, Formula, Instance, Schema};
    use std::sync::Arc;

    fn capped_limits() -> ExploreLimits {
        ExploreLimits {
            multiplicity_cap: Some(1),
            max_states: 50_000,
            ..ExploreLimits::small()
        }
    }

    fn suite() -> Vec<BatchItem> {
        let schema = Arc::new(Schema::parse("a, b").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set(
            idar_core::Right::Add,
            schema.resolve("a").unwrap(),
            Formula::parse("!a").unwrap(),
        );
        let tiny = idar_core::GuardedForm::new(
            schema.clone(),
            rules,
            Instance::empty(schema),
            Formula::parse("a & b").unwrap(), // b can never be added
        );
        vec![
            BatchItem::new("leave", leave::example_3_12()),
            BatchItem::new("variant", leave::section_3_5_variant()),
            BatchItem::new("tiny_incompletable", tiny),
        ]
    }

    #[test]
    fn sequential_batch_verdicts() {
        let reports = BatchAnalyzer::new()
            .with_limits(capped_limits())
            .with_threads(1)
            .run(suite());
        assert_eq!(reports.len(), 3);
        assert_eq!(
            reports[0].completability.as_ref().unwrap().verdict,
            Verdict::Holds
        );
        assert_eq!(
            reports[1].semisoundness.as_ref().unwrap().verdict,
            Verdict::Fails
        );
        assert_eq!(
            reports[2].completability.as_ref().unwrap().verdict,
            Verdict::Fails
        );
        // The incompletable form's completion is satisfiable in general
        // trees of its schema — the state search, not the formula, rules
        // it out.
        assert_eq!(
            reports[2].satisfiability.as_ref().unwrap().verdict,
            Verdict::Holds
        );
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_batch_matches_sequential() {
        let seq = BatchAnalyzer::new()
            .with_limits(capped_limits())
            .with_threads(1)
            .run(suite());
        let par = BatchAnalyzer::new()
            .with_limits(capped_limits())
            .with_threads(4)
            .run(suite());
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.name, p.name);
            assert_eq!(
                s.completability.as_ref().unwrap().verdict,
                p.completability.as_ref().unwrap().verdict
            );
            assert_eq!(
                s.semisoundness.as_ref().unwrap().verdict,
                p.semisoundness.as_ref().unwrap().verdict
            );
            assert_eq!(
                s.satisfiability.as_ref().unwrap().verdict,
                p.satisfiability.as_ref().unwrap().verdict
            );
        }
    }

    #[test]
    fn selection_is_respected() {
        let reports = BatchAnalyzer::new()
            .with_limits(capped_limits())
            .with_selection(AnalysisSelection {
                completability: true,
                semisoundness: false,
                satisfiability: false,
            })
            .run(suite());
        for r in &reports {
            assert!(r.completability.is_some());
            assert!(r.semisoundness.is_none());
            assert!(r.satisfiability.is_none());
        }
    }

    /// The oversubscription regression: the thread budget is split
    /// between the pool and the inner searches, so the total concurrent
    /// worker count (`pool × inner`) never exceeds the configured count
    /// for any (threads, jobs) combination.
    #[test]
    fn thread_budget_split_never_oversubscribes() {
        for threads in 0..=16 {
            for jobs in 0..=24 {
                let (pool, inner) = split_threads(threads, jobs);
                assert!(pool >= 1 && inner >= 1);
                assert!(pool <= jobs.max(1), "threads={threads} jobs={jobs}");
                assert!(
                    pool * inner <= threads.max(1),
                    "threads={threads} jobs={jobs}: pool {pool} × inner {inner} oversubscribes"
                );
            }
        }
        assert_eq!(split_threads(4, 100), (4, 1), "saturated pool: inner 1");
        assert_eq!(split_threads(8, 2), (2, 4), "few jobs: budget split");
        assert_eq!(split_threads(4, 1), (1, 4), "lone job: whole budget");
    }

    /// End-to-end: a parallel batch grants every inner analysis exactly
    /// its split share, observable as [`AnalysisReport::threads`] — the
    /// historical `N×N` bug had each of the pool's workers spawning
    /// `default_threads()` explorer threads of its own.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_batch_runs_inner_analyses_single_threaded() {
        // 3 items × 3 kinds = 9 jobs on a 2-thread budget → pool 2,
        // inner 1: at most 2 concurrent explorer workers in total.
        let reports = BatchAnalyzer::new()
            .with_limits(capped_limits())
            .with_threads(2)
            .run(suite());
        for r in &reports {
            for rep in [&r.completability, &r.semisoundness, &r.satisfiability] {
                assert_eq!(rep.as_ref().unwrap().threads, 1, "{}", r.name);
            }
        }
        // A lone job gets the whole budget within-form instead.
        let reports = BatchAnalyzer::new()
            .with_limits(capped_limits())
            .with_threads(4)
            .with_selection(AnalysisSelection {
                completability: true,
                semisoundness: false,
                satisfiability: false,
            })
            .run(vec![BatchItem::new("solo", leave::example_3_12())]);
        assert_eq!(reports[0].completability.as_ref().unwrap().threads, 4);
    }

    /// Duplicate (and isomorphic-duplicate) forms in one batch are solved
    /// once: the shared cache serves the repeats.
    #[test]
    fn batch_cache_deduplicates_identical_forms() {
        let analyzer = BatchAnalyzer::new()
            .with_limits(capped_limits())
            .with_threads(1)
            .with_selection(AnalysisSelection {
                completability: true,
                semisoundness: false,
                satisfiability: false,
            });
        let items = vec![
            BatchItem::new("a", leave::example_3_12()),
            BatchItem::new("b", leave::example_3_12()),
            BatchItem::new("c", leave::example_3_12()),
        ];
        let reports = analyzer.run(items);
        let stats = analyzer.cache_stats();
        assert_eq!(stats.misses, 1, "one cold solve");
        assert_eq!(stats.hits, 2, "two served from cache");
        for r in &reports {
            assert_eq!(r.completability.as_ref().unwrap().verdict, Verdict::Holds);
        }
        use crate::analysis::CacheProvenance;
        assert_eq!(
            reports[0].completability.as_ref().unwrap().cache,
            CacheProvenance::Miss
        );
        assert_eq!(
            reports[2].completability.as_ref().unwrap().cache,
            CacheProvenance::Hit
        );
    }
}
