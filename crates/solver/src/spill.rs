//! The **out-of-core state store**: a compressed, spillable memory
//! hierarchy that bounds exploration scale by disk instead of RSS.
//!
//! The flat [`StateStore`](crate::store::StateStore) keeps every
//! instance, canonical word sequence, and provenance pointer resident —
//! ~0.5 KB per state on workflow-shaped instances, which caps searches
//! around 10⁶–10⁷ states on a normal box. This module replaces the
//! resident columns with a three-level hierarchy, with **zero semantic
//! change**: the capacity engine
//! ([`Explorer::find_spilled`](crate::explore::Explorer::find_spilled))
//! visits the same states in the same order and returns the same
//! [`SearchStats`](crate::verdict::SearchStats) as the sequential in-RAM
//! engine.
//!
//! 1. **Delta-encoded records.** A state's canonical words are stored as
//!    a varint diff against its BFS parent's words
//!    ([`idar_core::delta`]) — successive states differ by one leaf
//!    update, so most diffs are a few bytes. Every K states along a
//!    parent chain a full-word *checkpoint* is written instead, so
//!    decoding any state replays at most K deltas. The record also
//!    carries the BFS provenance (parent id + discovering update), so
//!    parent pointers and witness runs live on disk too, not in RAM.
//! 2. **A paged arena.** Records append into 64 KiB pages. Under a
//!    [`MemoryBudget`] the oldest sealed pages spill to an anonymous
//!    temp file (plain `File` pread/pwrite, std-only) and are faulted
//!    back through a small fixed LRU cache only when actually read.
//! 3. **A pinned hot set.** Decoded words of the *active frontier
//!    window* — the BFS layers `d−1, d, d+1` when layer `d` is being
//!    expanded — stay resident, because that is where almost every
//!    duplicate lands (a single update moves one layer up or down).
//!    Dedup buckets probe fingerprint-first and word-length-second, so a
//!    spilled record is only faulted in on a true 64-bit fingerprint
//!    match outside the hot window.
//!
//! **Frontier-only mode** goes further for deletion-free forms
//! ([`GuardedForm::is_deletion_free`](idar_core::GuardedForm::is_deletion_free)):
//! node counts grow monotonically along every run, so states at
//! different BFS depths can never be isomorphic, and the dedup index for
//! closed layers can be dropped outright — no arena, no records, no
//! provenance. The trade: `run_to` witnesses are unavailable (the mode
//! is for verdict kinds that never need them).
//!
//! What the budget does and does not bound: the [`MemoryBudget`] caps
//! the *arena-resident encoded bytes* (enforced after every append).
//! The hot window, the dedup bucket index (~25 B/state), and the
//! engine's frontier queue are pinned working state and scale with the
//! frontier width, not the explored total.

use crate::store::SymmetryMode;
use idar_core::delta::{self, read_varint, write_varint};
use idar_core::{CanonKey, InstNodeId, Instance, SchemaNodeId, Update};
use std::collections::{HashMap, VecDeque};
use std::fs::File;

/// A byte budget for the resident (non-spilled) part of the paged state
/// arena. [`MemoryBudget::unbounded`] (the default) keeps every page
/// hot; a bounded budget spills cold pages to a temp file.
///
/// The budget is deliberately **not** part of the verdict-cache key
/// ([`crate::analysis::Budget`] excludes it from `Hash`/`Eq`): spilling
/// changes where bytes live, never what the search visits or answers,
/// so budgeted and unbudgeted runs share cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MemoryBudget {
    limit: Option<usize>,
}

impl MemoryBudget {
    /// No byte limit: the arena never spills.
    pub const fn unbounded() -> MemoryBudget {
        MemoryBudget { limit: None }
    }

    /// Cap arena-resident encoded bytes at `n`.
    pub const fn bytes(n: usize) -> MemoryBudget {
        MemoryBudget { limit: Some(n) }
    }

    /// Is a byte limit set?
    pub fn is_bounded(self) -> bool {
        self.limit.is_some()
    }

    /// The byte limit, if any.
    pub fn limit(self) -> Option<usize> {
        self.limit
    }
}

impl std::fmt::Display for MemoryBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.limit {
            None => write!(f, "unbounded"),
            Some(n) => write!(f, "{n} B"),
        }
    }
}

/// What a capacity-engine run did memory-wise — the observability side
/// of the hierarchy, archived by the bench harness and surfaced in
/// server metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillReport {
    /// Distinct states interned.
    pub states: usize,
    /// Raw canonical-word bytes that passed through (`4 × word count`).
    pub word_bytes: u64,
    /// Encoded record bytes appended to the arena (0 in frontier-only
    /// mode, which stores no records at all).
    pub encoded_bytes: u64,
    /// Full-word checkpoint records among them.
    pub checkpoints: u64,
    /// Pages written out to the spill file.
    pub spilled_pages: u64,
    /// Bytes written out to the spill file.
    pub spilled_bytes: u64,
    /// Page faults: reads that had to go back to the spill file.
    pub faults: u64,
    /// Peak arena-resident bytes (what the [`MemoryBudget`] bounds).
    pub arena_peak_bytes: u64,
    /// Did the run drop closed-layer words entirely?
    pub frontier_only: bool,
}

// --- paged arena -------------------------------------------------------

const PAGE_SIZE: usize = 64 * 1024;
/// Pages kept decoded after a fault (fixed overhead, ≤ 1 MiB): chain
/// decodes revisit the same few pages, and evicting them instantly
/// would re-read one page per delta step.
const FAULT_CACHE_PAGES: usize = 16;

const CHECKPOINT_FLAG: u16 = 0x8000;
const LEN_MASK: u16 = 0x7fff;

/// Where one encoded record lives: page index, byte offset in the page,
/// record length (low 15 bits) plus the checkpoint flag (high bit).
/// 8 bytes of RAM per state — the only per-state arena bookkeeping.
#[derive(Debug, Clone, Copy)]
struct EncRec {
    page: u32,
    off: u16,
    lenflag: u16,
}

impl EncRec {
    #[inline]
    fn len(self) -> usize {
        (self.lenflag & LEN_MASK) as usize
    }

    #[inline]
    fn is_checkpoint(self) -> bool {
        self.lenflag & CHECKPOINT_FLAG != 0
    }
}

/// The anonymous spill file. On unix the path is unlinked immediately
/// after creation, so the file vanishes with the handle no matter how
/// the process exits; elsewhere it is removed on drop.
#[derive(Debug)]
struct SpillFile {
    file: File,
    #[cfg(not(unix))]
    path: std::path::PathBuf,
}

#[cfg(not(unix))]
impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

fn open_spill_file() -> SpillFile {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "idar-spill-{}-{}.bin",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create_new(true)
        .open(&path)
        .expect("create spill temp file");
    #[cfg(unix)]
    {
        let _ = std::fs::remove_file(&path);
        SpillFile { file }
    }
    #[cfg(not(unix))]
    {
        SpillFile { file, path }
    }
}

#[cfg(unix)]
fn pread(file: &File, offset: u64, buf: &mut [u8]) {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset).expect("spill file read");
}

#[cfg(unix)]
fn pwrite(file: &File, offset: u64, buf: &[u8]) {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, offset).expect("spill file write");
}

#[cfg(not(unix))]
fn pread(file: &File, offset: u64, buf: &mut [u8]) {
    use std::io::{Read, Seek, SeekFrom};
    let mut f = file;
    f.seek(SeekFrom::Start(offset)).expect("spill file seek");
    f.read_exact(buf).expect("spill file read");
}

#[cfg(not(unix))]
fn pwrite(file: &File, offset: u64, buf: &[u8]) {
    use std::io::{Seek, SeekFrom, Write};
    let mut f = file;
    f.seek(SeekFrom::Start(offset)).expect("spill file seek");
    f.write_all(buf).expect("spill file write");
}

/// A sealed page: resident, or at an offset in the spill file.
#[derive(Debug)]
enum Slot {
    Hot(Box<[u8]>),
    Cold { offset: u64, len: u32 },
}

/// Append-only record arena over 64 KiB pages with file-backed spilling.
/// Single-writer (the sequential capacity engine owns it).
#[derive(Debug, Default)]
struct PagedArena {
    sealed: Vec<Slot>,
    /// The page being filled; always resident.
    open: Vec<u8>,
    /// Total bytes across `Slot::Hot` sealed pages.
    hot_sealed_bytes: usize,
    /// Sealed pages below this index are cold (spill proceeds oldest
    /// first — old pages belong to closed BFS layers, read only on
    /// out-of-window duplicate confirms).
    next_to_spill: usize,
    file: Option<SpillFile>,
    file_len: u64,
    /// LRU of faulted-back pages, capped at [`FAULT_CACHE_PAGES`].
    cache: VecDeque<(u32, Box<[u8]>)>,
    spilled_pages: u64,
    spilled_bytes: u64,
    faults: u64,
}

impl PagedArena {
    /// Append a record, returning its `(page, offset)` address.
    fn append(&mut self, bytes: &[u8]) -> (u32, u16) {
        debug_assert!(bytes.len() <= LEN_MASK as usize);
        if !self.open.is_empty() && self.open.len() + bytes.len() > PAGE_SIZE {
            let sealed = std::mem::take(&mut self.open).into_boxed_slice();
            self.hot_sealed_bytes += sealed.len();
            self.sealed.push(Slot::Hot(sealed));
        }
        if self.open.capacity() == 0 {
            self.open.reserve(PAGE_SIZE);
        }
        let addr = (self.sealed.len() as u32, self.open.len() as u16);
        self.open.extend_from_slice(bytes);
        addr
    }

    /// Arena-resident bytes: the open page plus hot sealed pages. (The
    /// fixed-size fault cache is excluded — it is bounded overhead, not
    /// growth.)
    fn hot_bytes(&self) -> usize {
        self.open.len() + self.hot_sealed_bytes
    }

    /// Spill oldest sealed pages until resident bytes fit `limit` (or
    /// nothing sealed is left to spill; the open page never spills).
    fn enforce(&mut self, limit: usize) {
        while self.hot_bytes() > limit && self.next_to_spill < self.sealed.len() {
            let slot = &mut self.sealed[self.next_to_spill];
            if let Slot::Hot(bytes) = slot {
                let len = bytes.len();
                let offset = self.file_len;
                let file = &self.file.get_or_insert_with(open_spill_file).file;
                pwrite(file, offset, bytes);
                self.file_len += len as u64;
                self.hot_sealed_bytes -= len;
                self.spilled_pages += 1;
                self.spilled_bytes += len as u64;
                *slot = Slot::Cold {
                    offset,
                    len: len as u32,
                };
            }
            self.next_to_spill += 1;
        }
    }

    /// Read a record through the hierarchy: open page → hot sealed page
    /// → fault cache → spill file (counted as a fault).
    fn with_record<R>(&mut self, rec: EncRec, f: impl FnOnce(&[u8]) -> R) -> R {
        let (off, len) = (rec.off as usize, rec.len());
        if rec.page as usize == self.sealed.len() {
            return f(&self.open[off..off + len]);
        }
        let (offset, plen) = match &self.sealed[rec.page as usize] {
            Slot::Hot(bytes) => return f(&bytes[off..off + len]),
            Slot::Cold { offset, len } => (*offset, *len as usize),
        };
        if let Some(pos) = self.cache.iter().position(|(p, _)| *p == rec.page) {
            let entry = self.cache.remove(pos).expect("position in bounds");
            self.cache.push_back(entry);
        } else {
            self.faults += 1;
            let mut buf = vec![0u8; plen];
            let file = &self
                .file
                .as_ref()
                .expect("cold page implies spill file")
                .file;
            pread(file, offset, &mut buf);
            if self.cache.len() >= FAULT_CACHE_PAGES {
                self.cache.pop_front();
            }
            self.cache.push_back((rec.page, buf.into_boxed_slice()));
        }
        let page = &self.cache.back().expect("just pushed").1;
        f(&page[off..off + len])
    }
}

// --- record header (provenance) ----------------------------------------

/// Append the provenance header: `parent_id + 1` (0 for the root), then
/// the discovering update (tag + fields) when there is a parent.
fn write_header(out: &mut Vec<u8>, parent: Option<(u32, Update)>) {
    match parent {
        None => write_varint(out, 0),
        Some((p, u)) => {
            write_varint(out, p + 1);
            match u {
                Update::Add { parent, edge } => {
                    write_varint(out, 0);
                    write_varint(out, parent.0);
                    write_varint(out, edge.0);
                }
                Update::Del { node } => {
                    write_varint(out, 1);
                    write_varint(out, node.0);
                }
            }
        }
    }
}

/// Parse the provenance header; returns the BFS tree edge and the byte
/// length of the header (the word record starts right after).
fn parse_header(bytes: &[u8]) -> (Option<(u32, Update)>, usize) {
    let mut pos = 0;
    let pp1 = read_varint(bytes, &mut pos);
    if pp1 == 0 {
        return (None, pos);
    }
    let tag = read_varint(bytes, &mut pos);
    let u = if tag == 0 {
        Update::Add {
            parent: InstNodeId(read_varint(bytes, &mut pos)),
            edge: SchemaNodeId(read_varint(bytes, &mut pos)),
        }
    } else {
        Update::Del {
            node: InstNodeId(read_varint(bytes, &mut pos)),
        }
    };
    (Some((pp1 - 1, u)), pos)
}

// --- the spillable store ----------------------------------------------

/// Full-word checkpoint period K: decoding any state replays at most
/// K−1 deltas from the nearest checkpoint ancestor.
const CHECKPOINT_EVERY: u8 = 8;

/// One fingerprint bucket. The overwhelmingly common singleton case is
/// inline — no per-state `Vec` allocation.
#[derive(Debug)]
enum SpillBucket {
    One(u32),
    Many(Vec<u32>),
}

/// The spillable, delta-compressed state store the capacity engine runs
/// on. Ids are dense `u32`s in discovery order (the sequential BFS
/// invariant the hot-window arithmetic relies on). See the module docs
/// for the hierarchy.
#[derive(Debug)]
pub(crate) struct SpillStore {
    symmetry: SymmetryMode,
    budget: MemoryBudget,
    frontier_only: bool,
    arena: PagedArena,
    buckets: HashMap<u64, SpillBucket>,
    /// Record address per state (empty in frontier-only mode).
    recs: Vec<EncRec>,
    /// Delta-chain distance from the nearest checkpoint (empty in
    /// frontier-only mode).
    dists: Vec<u8>,
    /// Word count per state, saturated to `u16::MAX` — the cheap probe
    /// prefilter (unequal lengths can never be equal words).
    wlens: Vec<u16>,
    /// Decoded words of the hot window `[hot_base, count)`: the layers
    /// `d−1, d, d+1` while layer `d` expands.
    hot: VecDeque<Box<[u32]>>,
    hot_base: u32,
    /// First state id of each BFS depth (discovery order makes layers
    /// contiguous id ranges).
    layer_start: Vec<u32>,
    count: u32,
    collisions: u64,
    word_bytes: u64,
    encoded_bytes: u64,
    checkpoints: u64,
    arena_peak: u64,
    enc_buf: Vec<u8>,
}

impl SpillStore {
    pub fn new(symmetry: SymmetryMode, budget: MemoryBudget, frontier_only: bool) -> SpillStore {
        SpillStore {
            symmetry,
            budget,
            frontier_only,
            arena: PagedArena::default(),
            buckets: HashMap::new(),
            recs: Vec::new(),
            dists: Vec::new(),
            wlens: Vec::new(),
            hot: VecDeque::new(),
            hot_base: 0,
            layer_start: Vec::new(),
            count: 0,
            collisions: 0,
            word_bytes: 0,
            encoded_bytes: 0,
            checkpoints: 0,
            arena_peak: 0,
            enc_buf: Vec::new(),
        }
    }

    /// The dedup key of an instance under this store's symmetry mode.
    pub fn key_of(&self, inst: &Instance) -> CanonKey {
        match self.symmetry {
            SymmetryMode::Reduced => inst.canon_key(),
            SymmetryMode::Plain => inst.ordered_key(),
        }
    }

    /// Detected 64-bit fingerprint collisions.
    #[cfg(test)]
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Advance the hot window when the engine starts expanding BFS layer
    /// `depth`: drop decoded words below layer `depth − 1` (duplicate
    /// confirms of a layer-`depth` expansion can land one layer down at
    /// the deepest — a single deletion). In frontier-only mode also drop
    /// the whole dedup index: on a deletion-free form, successors (layer
    /// `depth + 1`) can only collide with each other.
    pub fn begin_layer(&mut self, depth: u32) {
        if depth == 0 {
            return;
        }
        let keep_from = self
            .layer_start
            .get((depth - 1) as usize)
            .copied()
            .unwrap_or(self.hot_base);
        while self.hot_base < keep_from {
            self.hot.pop_front();
            self.hot_base += 1;
        }
        if self.frontier_only {
            self.buckets.clear();
        }
    }

    /// Intern a state by its dedup key: return its dense id and whether
    /// it was new. `parent` is the discovering BFS tree edge (`None`
    /// only for the root); `depth` its BFS depth. The parent must still
    /// be in the hot window (true for every BFS expansion).
    pub fn intern(
        &mut self,
        key: CanonKey,
        parent: Option<(u32, Update)>,
        depth: u32,
    ) -> (u32, bool) {
        let fp = key.fingerprint();
        let wlen = key.words().len().min(u16::MAX as usize) as u16;
        // Fingerprint-first probe: touch words — possibly faulting a
        // spilled page — only on a full 64-bit match that also passes
        // the length prefilter.
        let mut had_candidates = false;
        let probe: Option<Result<u32, Vec<u32>>> = self.buckets.get(&fp).map(|b| match b {
            SpillBucket::One(id) => Ok(*id),
            SpillBucket::Many(ids) => Err(ids.clone()),
        });
        if let Some(probe) = probe {
            let one;
            let cands: &[u32] = match &probe {
                Ok(id) => {
                    one = [*id];
                    &one
                }
                Err(ids) => ids,
            };
            for &cand in cands {
                had_candidates = true;
                if self.wlens[cand as usize] != wlen {
                    continue;
                }
                if self.words_equal(cand, key.words()) {
                    return (cand, false);
                }
            }
        }
        if had_candidates {
            self.collisions += 1;
        }

        let id = self.count;
        self.count += 1;
        if depth as usize == self.layer_start.len() {
            self.layer_start.push(id);
        }
        self.wlens.push(wlen);
        self.word_bytes += 4 * key.words().len() as u64;

        if !self.frontier_only {
            let dist = match parent {
                Some((p, _)) => self.dists[p as usize].saturating_add(1),
                None => CHECKPOINT_EVERY,
            };
            let checkpoint = dist >= CHECKPOINT_EVERY;
            let mut enc = std::mem::take(&mut self.enc_buf);
            enc.clear();
            write_header(&mut enc, parent);
            if checkpoint {
                delta::encode_full(key.words(), &mut enc);
            } else {
                let (p, _) = parent.expect("non-checkpoint state has a parent");
                debug_assert!(p >= self.hot_base, "delta base parent must be hot");
                let base = &self.hot[(p - self.hot_base) as usize];
                delta::encode_delta(base, key.words(), &mut enc);
            }
            assert!(
                enc.len() <= LEN_MASK as usize,
                "state encoding too large for the paged arena (max_state_size too big?)"
            );
            let (page, off) = self.arena.append(&enc);
            self.recs.push(EncRec {
                page,
                off,
                lenflag: enc.len() as u16 | if checkpoint { CHECKPOINT_FLAG } else { 0 },
            });
            self.dists.push(if checkpoint { 0 } else { dist });
            self.encoded_bytes += enc.len() as u64;
            if checkpoint {
                self.checkpoints += 1;
            }
            self.enc_buf = enc;
            if let Some(limit) = self.budget.limit() {
                self.arena.enforce(limit);
            }
            self.arena_peak = self.arena_peak.max(self.arena.hot_bytes() as u64);
        }

        let (_, words) = key.into_parts();
        self.hot.push_back(words);
        match self.buckets.entry(fp) {
            std::collections::hash_map::Entry::Occupied(mut e) => match e.get_mut() {
                SpillBucket::One(a) => {
                    let a = *a;
                    *e.get_mut() = SpillBucket::Many(vec![a, id]);
                }
                SpillBucket::Many(v) => v.push(id),
            },
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(SpillBucket::One(id));
            }
        }
        (id, true)
    }

    /// Are state `id`'s words equal to `words`? Hot-window states
    /// compare against pinned decoded words; older states decode their
    /// delta chain (the only path that can fault spilled pages).
    fn words_equal(&mut self, id: u32, words: &[u32]) -> bool {
        if id >= self.hot_base {
            return *self.hot[(id - self.hot_base) as usize] == *words;
        }
        debug_assert!(
            !self.frontier_only,
            "frontier-only buckets never hold out-of-window states"
        );
        self.decode_words(id) == words
    }

    /// Decode state `id`'s words: walk the BFS parent chain to the
    /// nearest checkpoint (≤ K−1 steps), then replay deltas forward.
    fn decode_words(&mut self, id: u32) -> Vec<u32> {
        let mut chain = vec![id];
        while !self.recs[*chain.last().expect("non-empty") as usize].is_checkpoint() {
            let rec = self.recs[*chain.last().expect("non-empty") as usize];
            let parent = self
                .arena
                .with_record(rec, |b| parse_header(b).0)
                .expect("non-checkpoint record has a parent")
                .0;
            chain.push(parent);
        }
        let cp = chain.pop().expect("chain ends at a checkpoint");
        let mut cur: Vec<u32> = Vec::new();
        let rec = self.recs[cp as usize];
        self.arena.with_record(rec, |b| {
            let (_, hdr) = parse_header(b);
            delta::decode_full(&b[hdr..], &mut cur);
        });
        let mut nxt: Vec<u32> = Vec::new();
        for &i in chain.iter().rev() {
            let rec = self.recs[i as usize];
            nxt.clear();
            let base = &cur;
            self.arena.with_record(rec, |b| {
                let (_, hdr) = parse_header(b);
                delta::decode_delta(base, &b[hdr..], &mut nxt);
            });
            std::mem::swap(&mut cur, &mut nxt);
        }
        cur
    }

    /// Reconstruct the update sequence from the root to `id` out of the
    /// on-record provenance (replayable via `GuardedForm::replay`).
    /// `None` in frontier-only mode, which stores no provenance.
    pub fn run_to(&mut self, id: u32) -> Option<Vec<Update>> {
        if self.frontier_only {
            return None;
        }
        let mut rev = Vec::new();
        let mut i = id;
        loop {
            let rec = self.recs[i as usize];
            match self.arena.with_record(rec, |b| parse_header(b).0) {
                Some((p, u)) => {
                    rev.push(u);
                    i = p;
                }
                None => break,
            }
        }
        rev.reverse();
        Some(rev)
    }

    /// The run's memory-hierarchy accounting.
    pub fn report(&self) -> SpillReport {
        SpillReport {
            states: self.count as usize,
            word_bytes: self.word_bytes,
            encoded_bytes: self.encoded_bytes,
            checkpoints: self.checkpoints,
            spilled_pages: self.arena.spilled_pages,
            spilled_bytes: self.arena.spilled_bytes,
            faults: self.arena.faults,
            arena_peak_bytes: self.arena_peak,
            frontier_only: self.frontier_only,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::Schema;
    use std::sync::Arc;

    #[test]
    fn arena_append_read_spill_round_trip() {
        let mut arena = PagedArena::default();
        let records: Vec<Vec<u8>> = (0..2000u32)
            .map(|i| {
                (0..50)
                    .map(|j| (i.wrapping_mul(31).wrapping_add(j)) as u8)
                    .collect()
            })
            .collect();
        let recs: Vec<EncRec> = records
            .iter()
            .map(|r| {
                let (page, off) = arena.append(r);
                EncRec {
                    page,
                    off,
                    lenflag: r.len() as u16,
                }
            })
            .collect();
        // ~100 KB over two-ish pages; force everything sealed to spill.
        arena.enforce(0);
        assert!(arena.spilled_pages > 0);
        assert!(arena.hot_bytes() < PAGE_SIZE + 1);
        for (rec, expect) in recs.iter().zip(&records) {
            arena.with_record(*rec, |b| assert_eq!(b, &expect[..]));
        }
        assert!(arena.faults > 0);
        // Second sweep hits the fault cache for at least some pages.
        let faults_after_first = arena.faults;
        for (rec, expect) in recs.iter().zip(&records).take(10) {
            arena.with_record(*rec, |b| assert_eq!(b, &expect[..]));
        }
        assert_eq!(arena.faults, faults_after_first);
    }

    #[test]
    fn header_round_trips() {
        let cases = [
            None,
            Some((
                0,
                Update::Add {
                    parent: InstNodeId(7),
                    edge: SchemaNodeId(3),
                },
            )),
            Some((
                123_456,
                Update::Del {
                    node: InstNodeId(42),
                },
            )),
        ];
        for parent in cases {
            let mut out = Vec::new();
            write_header(&mut out, parent);
            let (parsed, len) = parse_header(&out);
            assert_eq!(parsed, parent);
            assert_eq!(len, out.len());
        }
    }

    /// BFS-shaped interning: dedup agrees with the flat store's
    /// semantics, run_to replays provenance, and cold (out-of-window)
    /// duplicate confirms decode through the spill file.
    #[test]
    fn spill_store_dedups_and_replays_cold() {
        let schema = Arc::new(Schema::parse("a(b), s").unwrap());
        let a = schema.resolve("a").unwrap();
        let b = schema.resolve("a/b").unwrap();
        let s = schema.resolve("s").unwrap();
        // A long chain of instances, each one update apart: checkpoint
        // records grow with the instance, so the arena seals (and, at
        // budget 0, spills) multiple pages.
        const CHAIN: usize = 1500;
        let mut store = SpillStore::new(SymmetryMode::Reduced, MemoryBudget::bytes(0), false);
        let mut cur = Instance::empty(schema.clone());
        let (root_id, _) = store.intern(store.key_of(&cur), None, 0);
        let mut updates: Vec<Update> = Vec::new();
        let an = cur.add_child(InstNodeId::ROOT, a).unwrap();
        updates.push(Update::Add {
            parent: InstNodeId::ROOT,
            edge: a,
        });
        let mut prev = root_id;
        let mut probe = None;
        for k in 0..CHAIN {
            if k > 0 {
                let edge = if k % 3 == 2 { s } else { b };
                let parent = if edge == s { InstNodeId::ROOT } else { an };
                cur.add_child(parent, edge).unwrap();
                updates.push(Update::Add { parent, edge });
            }
            let (id, new) =
                store.intern(store.key_of(&cur), Some((prev, updates[k])), k as u32 + 1);
            assert!(new, "chain states are distinct");
            assert_eq!(id, k as u32 + 1);
            prev = id;
            if id == 3 {
                probe = Some(cur.clone());
            }
        }
        // Provenance replays from on-record headers.
        assert_eq!(store.run_to(prev), Some(updates.clone()));
        let spilled_before = store.report().spilled_pages;
        assert!(spilled_before > 0, "budget 0 spills sealed pages");
        // Push the hot window far past the chain, then re-intern an old
        // state: the confirm must decode its delta chain from the
        // (budget-0, fully spilled) arena.
        for d in store.count..store.count + 4 {
            store.layer_start.push(store.count);
            // simulate empty deeper layers so begin_layer advances
            store.begin_layer(d);
        }
        assert_eq!(store.hot_base, store.count);
        let probe = probe.expect("state 3 captured");
        let (id, new) = store.intern(store.key_of(&probe), Some((0, updates[0])), 3);
        assert!(!new, "old state is found through the cold path");
        assert_eq!(id, 3);
        assert!(store.report().faults > 0, "cold confirm faulted pages in");
        assert_eq!(store.collisions(), 0);
    }

    /// Frontier-only mode drops closed layers: no arena bytes, no
    /// provenance, and per-layer dedup still catches within-layer
    /// duplicates.
    #[test]
    fn frontier_only_keeps_no_records() {
        let schema = Arc::new(Schema::parse("a, b").unwrap());
        let a = schema.resolve("a").unwrap();
        let b = schema.resolve("b").unwrap();
        let root = Instance::empty(schema.clone());
        let mut ia = root.clone();
        ia.add_child(InstNodeId::ROOT, a).unwrap();
        let mut ib = root.clone();
        ib.add_child(InstNodeId::ROOT, b).unwrap();
        let mut iab = ia.clone();
        iab.add_child(InstNodeId::ROOT, b).unwrap();
        let mut iba = ib.clone();
        iba.add_child(InstNodeId::ROOT, a).unwrap();

        let mut store = SpillStore::new(SymmetryMode::Reduced, MemoryBudget::unbounded(), true);
        let ua = Update::Add {
            parent: InstNodeId::ROOT,
            edge: a,
        };
        let ub = Update::Add {
            parent: InstNodeId::ROOT,
            edge: b,
        };
        let (r, _) = store.intern(store.key_of(&root), None, 0);
        let (x, _) = store.intern(store.key_of(&ia), Some((r, ua)), 1);
        let (y, _) = store.intern(store.key_of(&ib), Some((r, ub)), 1);
        assert_ne!(x, y);
        store.begin_layer(1);
        let (z, new_z) = store.intern(store.key_of(&iab), Some((x, ub)), 2);
        assert!(new_z);
        // {a,b} discovered again via the other parent: within-layer dedup.
        let (z2, new_z2) = store.intern(store.key_of(&iba), Some((y, ua)), 2);
        assert_eq!((z2, new_z2), (z, false));
        let report = store.report();
        assert_eq!(report.encoded_bytes, 0);
        assert_eq!(report.checkpoints, 0);
        assert!(report.frontier_only);
        assert_eq!(store.run_to(z), None);
    }
}
