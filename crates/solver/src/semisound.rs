//! Fragment-dispatched semi-soundness (Def. 3.14): *every* reachable
//! instance must be completable.
//!
//! * depth ≤ 1 → **exact** via the canonical-state system (Lemma 4.3 /
//!   Thm 4.6 / Cor. 4.7): forward-reachable set ∩ backward-reachable set
//!   of complete states.
//! * deeper forms → bounded enumeration of reachable states (isomorphism
//!   deduplication via the shared [`StateStore`](crate::store::StateStore))
//!   with a per-state completability oracle; the oracle is exact whenever
//!   the fragment offers one (`A+φ+`: Thm 5.5 saturation at any depth;
//!   `A+φ−`: Thm 5.2). A counterexample (reachable + provably-incompletable
//!   state) yields an exact `Fails` even when the enumeration itself is
//!   bounded; `Holds` is exact only if the enumeration closed *and* every
//!   per-state answer was exact.
//!
//! [`semisoundness`] is a thin wrapper over the unified
//! [`analysis`](crate::analysis) pipeline.

use crate::analysis::Budget;
use crate::depth1::Depth1System;
use crate::explore::Explorer;
use crate::verdict::{Method, SearchStats, Verdict};
use idar_core::{GuardedForm, Update};

/// Options for [`semisoundness`] — an alias of the pipeline-wide
/// [`Budget`] (use `limits` for the reachable-state enumeration and
/// `oracle_limits` for the per-state completability oracle).
pub type SemisoundnessOptions = Budget;

/// The result of a semi-soundness query.
#[derive(Debug, Clone)]
pub struct SemisoundnessResult {
    /// The three-valued answer.
    pub verdict: Verdict,
    /// Which algorithm ran.
    pub method: Method,
    /// When `Fails`: a run from the initial instance to an incompletable
    /// reachable instance (the workflow's "point of no return").
    pub counterexample: Option<Vec<Update>>,
    /// States enumerated / canonical states visited.
    pub stats: SearchStats,
}

/// Decide (or bound) semi-soundness of `form`.
///
/// Routes through the unified pipeline
/// ([`analyze`](crate::analysis::analyze)); use
/// [`analyze_with`](crate::analysis::analyze_with) directly to add a
/// [`VerdictCache`](crate::cache::VerdictCache).
pub fn semisoundness(form: &GuardedForm, options: &SemisoundnessOptions) -> SemisoundnessResult {
    let report = crate::analysis::analyze(
        &crate::analysis::AnalysisRequest::semisoundness(form.clone()).with_budget(options.clone()),
    );
    SemisoundnessResult {
        verdict: report.verdict,
        method: report.method,
        counterexample: report.run,
        stats: report.stats,
    }
}

/// The cold execution path behind the pipeline.
pub(crate) fn run_semisoundness(
    form: &GuardedForm,
    budget: &Budget,
    threads: Option<usize>,
) -> SemisoundnessResult {
    if form.schema().depth() <= 1 {
        if let Ok(sys) = Depth1System::new(form) {
            let ans = sys.semisoundness();
            let counterexample = ans.moves.as_ref().map(|m| sys.concretize(form, m));
            return SemisoundnessResult {
                verdict: ans.verdict,
                method: Method::Depth1Canonical,
                counterexample,
                stats: ans.stats,
            };
        }
    }
    bounded_semisoundness(form, budget, threads)
}

fn bounded_semisoundness(
    form: &GuardedForm,
    budget: &Budget,
    threads: Option<usize>,
) -> SemisoundnessResult {
    let mut explorer = Explorer::new(form, budget.limits).with_symmetry(budget.symmetry);
    if let Some(t) = threads {
        explorer = explorer.with_threads(t);
    }
    let graph = explorer.graph();
    let oracle_opts = Budget {
        limits: budget.oracle(),
        symmetry: budget.symmetry,
        ..Budget::default()
    };

    let mut any_unknown = false;
    // States whose completability we have already established, keyed by
    // graph index. A state that *is* complete, or can reach a known-
    // completable state, is completable — we exploit the graph edges to
    // avoid re-running the oracle where possible (reverse BFS from
    // complete states).
    let n = graph.state_count();
    let mut completable = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for (i, s) in graph.states().iter().enumerate() {
        if form.is_complete(s) {
            completable[i] = true;
            queue.push_back(i);
        }
    }
    // Reverse edges within the enumerated subgraph.
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, _, j) in graph.succ.iter() {
        rev[j.index()].push(i.index());
    }
    while let Some(j) = queue.pop_front() {
        for &i in &rev[j] {
            if !completable[i] {
                completable[i] = true;
                queue.push_back(i);
            }
        }
    }

    for (i, &ok) in completable.iter().enumerate() {
        if ok {
            continue;
        }
        // Not completable within the enumerated subgraph; ask the oracle
        // (which can go beyond the enumeration's frontier).
        let sub = form.with_initial(graph.state(i).clone());
        let r = crate::completability::run_completability(&sub, &oracle_opts, threads);
        match r.verdict {
            Verdict::Holds => { /* fine */ }
            Verdict::Fails => {
                // Exact incompletability of a genuinely reachable state:
                // exact counterexample regardless of enumeration limits.
                return SemisoundnessResult {
                    verdict: Verdict::Fails,
                    method: Method::ReachableEnumeration,
                    counterexample: Some(graph.run_to(i)),
                    stats: graph.stats,
                };
            }
            Verdict::Unknown => any_unknown = true,
        }
    }

    let verdict = if graph.stats.closed && !any_unknown {
        Verdict::Holds
    } else {
        Verdict::Unknown
    };
    SemisoundnessResult {
        verdict,
        method: Method::ReachableEnumeration,
        counterexample: None,
        stats: graph.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::completability::{completability, CompletabilityOptions};
    use crate::explore::ExploreLimits;
    use idar_core::leave;

    fn capped(cap: usize) -> SemisoundnessOptions {
        SemisoundnessOptions {
            limits: ExploreLimits {
                multiplicity_cap: Some(cap),
                ..ExploreLimits::small()
            },
            ..SemisoundnessOptions::default()
        }
    }

    #[test]
    fn section_3_5_variant_is_not_semisound() {
        // The paper's own example of a completable but non-semi-sound
        // form: final can arrive before any decision, and then blocks it.
        let g = leave::section_3_5_variant();
        let r = semisoundness(&g, &capped(2));
        assert_eq!(r.verdict, Verdict::Fails);
        let cex = r.counterexample.expect("counterexample run");
        // The counterexample replays and its final instance has `f` but no
        // decision children.
        let replay = g.replay(&cex).unwrap();
        let stuck = replay.last();
        assert!(!g.is_complete(stuck));
        assert!(idar_core::formula::holds_at_root(
            stuck,
            &idar_core::Formula::parse("f & !d[a | r]").unwrap()
        ));
    }

    #[test]
    fn depth1_exact_path_is_used() {
        use idar_core::{AccessRules, Formula, Instance, Schema};
        use std::sync::Arc;
        let schema = Arc::new(Schema::parse("g, t").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set_both(
            schema.resolve("g").unwrap(),
            Formula::parse("!t & !g").unwrap(),
            Formula::False,
        );
        rules.set_both(
            schema.resolve("t").unwrap(),
            Formula::parse("!t").unwrap(),
            Formula::False,
        );
        let g = GuardedForm::new(
            schema.clone(),
            rules,
            Instance::empty(schema),
            Formula::parse("g").unwrap(),
        );
        let r = semisoundness(&g, &SemisoundnessOptions::default());
        assert_eq!(r.method, Method::Depth1Canonical);
        assert_eq!(r.verdict, Verdict::Fails);
        let cex = r.counterexample.unwrap();
        assert_eq!(cex.len(), 1); // adding `t` is the point of no return
    }

    #[test]
    fn positive_deep_form_semisound() {
        // Positive rules + positive completion at depth 2: every reachable
        // state is completable via saturation (monotone), so semi-sound —
        // and the per-state oracle is exact.
        use idar_core::{AccessRules, Formula, Instance, Schema};
        use std::sync::Arc;
        let schema = Arc::new(Schema::parse("a(b, c)").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set(
            idar_core::Right::Add,
            schema.resolve("a").unwrap(),
            Formula::True,
        );
        rules.set(
            idar_core::Right::Add,
            schema.resolve("a/b").unwrap(),
            Formula::True,
        );
        rules.set(
            idar_core::Right::Add,
            schema.resolve("a/c").unwrap(),
            Formula::parse("b").unwrap(),
        );
        let g = GuardedForm::new(
            schema.clone(),
            rules,
            Instance::empty(schema),
            Formula::parse("a[b & c]").unwrap(),
        );
        let r = semisoundness(&g, &capped(2));
        // Capped enumeration cannot close (duplicates pruned), so the
        // verdict is Unknown-or-Holds; it must NOT be Fails.
        assert_ne!(r.verdict, Verdict::Fails);
    }

    #[test]
    fn deep_counterexample_is_exact_despite_caps() {
        // Depth-2 form in F(A+, φ−, 2): completion a ∧ ¬a[b], but once a
        // `b` has been added it can never be deleted (its del guard `..[t]`
        // needs a `t`, whose add guard is false). Adding `b` is the point
        // of no return. The per-state oracle is the exact NP solver
        // (Thm 5.2), so the `Fails` verdict is exact even though the
        // reachable-state enumeration itself is capped.
        use idar_core::{AccessRules, Formula, Instance, Right, Schema};
        use std::sync::Arc;
        let schema = Arc::new(Schema::parse("a(b), t").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set(Right::Add, schema.resolve("a").unwrap(), Formula::True);
        rules.set(Right::Add, schema.resolve("a/b").unwrap(), Formula::True);
        rules.set(
            Right::Del,
            schema.resolve("a/b").unwrap(),
            Formula::parse("..[t]").unwrap(),
        );
        let g = GuardedForm::new(
            schema.clone(),
            rules,
            Instance::empty(schema),
            Formula::parse("a & !a[b]").unwrap(),
        );
        // Sanity: the form itself is completable (just add a, skip b).
        let c = completability(
            &g,
            &CompletabilityOptions::with_limits(ExploreLimits::small()),
        );
        assert_eq!(c.verdict, Verdict::Holds);

        let r = semisoundness(&g, &capped(2));
        assert_eq!(r.verdict, Verdict::Fails);
        let cex = r.counterexample.unwrap();
        let replay = g.replay(&cex).unwrap();
        assert!(!g.is_complete(replay.last()));
        // The trap instance indeed contains a `b`.
        assert!(idar_core::formula::holds_at_root(
            replay.last(),
            &idar_core::Formula::parse("a[b]").unwrap()
        ));
    }
}
