//! The unified **analysis pipeline**: one request type, one report type,
//! one execution path for every analysis in the workspace.
//!
//! Before this layer, each analysis (completability, semi-soundness,
//! completion-formula satisfiability) had its own entry point with its own
//! options struct, its own `ExploreLimits` plumbing, and no way to share
//! work. [`AnalysisRequest`] + [`analyze`] replace that with a single
//! flow:
//!
//! ```text
//!   AnalysisRequest { form, kind, budget }
//!        │
//!        ├─ 1. cache probe ── hit ──────────────► AnalysisReport (Hit)
//!        ├─ 2. fragment classification (Sec. 3.5)
//!        ├─ 3. method selection (Table 1 dispatch, or budget.force_method)
//!        ├─ 4. budgeted run (Explorer / Depth1System / saturation / NP /
//!        │       tableau — all under budget.limits & budget.symmetry)
//!        └─ 5. verdict + witness + stats + cache store
//!                                                ► AnalysisReport (Miss)
//! ```
//!
//! The classic free functions ([`completability`](crate::completability::completability),
//! [`semisoundness`](crate::semisound::semisoundness), the batch analyzer, the
//! workflow `FormManager`, and both bench binaries) are thin wrappers
//! around this pipeline; [`Budget`] is the *one* place exploration limits
//! live (the former `CompletabilityOptions` / `SemisoundnessOptions` are
//! aliases of it).

use crate::cache::{CachedVerdict, VerdictCache};
use crate::explore::ExploreLimits;
use crate::satisfiability::{satisfiable, SatOptions, SatResult, WitnessTree};
use crate::spill::MemoryBudget;
use crate::store::SymmetryMode;
use crate::verdict::{Method, SearchStats, Verdict};
use idar_core::fragment::Fragment;
use idar_core::{GuardedForm, Update};
use std::fmt;

/// Which decision problem an [`AnalysisRequest`] poses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalysisKind {
    /// Completability (Def. 3.13): some run reaches a complete instance.
    Completability,
    /// Semi-soundness (Def. 3.14): every reachable instance is
    /// completable.
    Semisoundness,
    /// Completion-formula satisfiability over the form's schema
    /// (Cor. 4.5) — a cheap necessary condition for completability.
    Satisfiability,
}

impl fmt::Display for AnalysisKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisKind::Completability => write!(f, "completability"),
            AnalysisKind::Semisoundness => write!(f, "semi-soundness"),
            AnalysisKind::Satisfiability => write!(f, "satisfiability"),
        }
    }
}

/// The one budget struct every analysis shares — exploration limits,
/// per-state oracle limits, method override, and the symmetry quotient.
///
/// This replaces the `ExploreLimits` plumbing that used to be copied
/// across `CompletabilityOptions`, `SemisoundnessOptions`, and
/// `BatchAnalyzer`; those names are now aliases of `Budget`. Everything
/// in the budget is verdict-affecting and therefore part of the
/// [`VerdictCache`] key — with two deliberate exceptions: worker-thread
/// counts (not in the struct: engines are verdict-identical by
/// contract) and [`Budget::memory`] (in the struct but excluded from
/// the manual `PartialEq`/`Hash` impls below: the out-of-core capacity
/// engine visits the same states and returns the same verdicts as the
/// in-RAM engines — spilling moves bytes, never answers — so budgeted
/// and unbudgeted runs share cache entries).
#[derive(Debug, Clone, Default)]
pub struct Budget {
    /// Resource limits for the bounded/NP code paths.
    pub limits: ExploreLimits,
    /// Limits for per-state completability oracles (semi-soundness);
    /// defaults to `limits` when `None`.
    pub oracle_limits: Option<ExploreLimits>,
    /// Skip the fragment dispatch and force a method (for ablations and
    /// differential tests). Only meaningful for completability.
    pub force_method: Option<Method>,
    /// The state-space quotient explicit-state searches run under
    /// (default: symmetry-reduced).
    pub symmetry: SymmetryMode,
    /// Byte budget for explicit-state goal searches (default:
    /// unbounded). Bounded budgets route bounded-exploration
    /// completability through the out-of-core capacity engine
    /// ([`crate::spill`]). **Not** verdict-affecting, hence not part of
    /// the cache key.
    pub memory: MemoryBudget,
    /// Skip the pre-exploration static screener ([`mod@crate::screen`]).
    /// The screener issues only sound verdicts and its dead-rule pruning
    /// preserves the reachable state graph, so this flag is **not**
    /// verdict-affecting — excluded from `PartialEq`/`Hash` below like
    /// `memory`, so screened and unscreened runs share cache entries.
    /// (The screener is also bypassed whenever `force_method` is set.)
    pub skip_screen: bool,
}

impl PartialEq for Budget {
    fn eq(&self, other: &Self) -> bool {
        // `memory` and `skip_screen` intentionally omitted — see the
        // struct docs.
        self.limits == other.limits
            && self.oracle_limits == other.oracle_limits
            && self.force_method == other.force_method
            && self.symmetry == other.symmetry
    }
}

impl Eq for Budget {}

impl std::hash::Hash for Budget {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // `memory` and `skip_screen` intentionally omitted — must stay
        // consistent with `eq`.
        self.limits.hash(state);
        self.oracle_limits.hash(state);
        self.force_method.hash(state);
        self.symmetry.hash(state);
    }
}

impl Budget {
    /// A budget with the given limits and everything else default.
    pub fn with_limits(limits: ExploreLimits) -> Budget {
        Budget {
            limits,
            ..Budget::default()
        }
    }

    /// The per-state oracle limits (falling back to the main limits).
    pub fn oracle(&self) -> ExploreLimits {
        self.oracle_limits.unwrap_or(self.limits)
    }
}

/// A fully-specified analysis problem: the form, the question, and the
/// budget. Build one and hand it to [`analyze`] / [`analyze_with`].
#[derive(Debug, Clone)]
pub struct AnalysisRequest {
    /// The guarded form under analysis.
    pub form: GuardedForm,
    /// The question.
    pub kind: AnalysisKind,
    /// The resource budget (also the cache key's limit component).
    pub budget: Budget,
    /// Worker threads for the explicit-state engines (`None`: the
    /// [`default_threads`](crate::explore::default_threads) count).
    pub threads: Option<usize>,
}

impl AnalysisRequest {
    /// A request with default budget and thread count.
    pub fn new(form: GuardedForm, kind: AnalysisKind) -> AnalysisRequest {
        AnalysisRequest {
            form,
            kind,
            budget: Budget::default(),
            threads: None,
        }
    }

    /// Shorthand for a completability request.
    pub fn completability(form: GuardedForm) -> AnalysisRequest {
        Self::new(form, AnalysisKind::Completability)
    }

    /// Shorthand for a semi-soundness request.
    pub fn semisoundness(form: GuardedForm) -> AnalysisRequest {
        Self::new(form, AnalysisKind::Semisoundness)
    }

    /// Shorthand for a completion-satisfiability request.
    pub fn satisfiability(form: GuardedForm) -> AnalysisRequest {
        Self::new(form, AnalysisKind::Satisfiability)
    }

    /// Replace the budget.
    pub fn with_budget(mut self, budget: Budget) -> AnalysisRequest {
        self.budget = budget;
        self
    }

    /// Pin the worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> AnalysisRequest {
        self.threads = Some(threads.max(1));
        self
    }
}

/// Where a report's verdict came from, cache-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheProvenance {
    /// No cache was consulted ([`analyze`] without a cache).
    Uncached,
    /// The cache was probed, missed, and now holds this verdict.
    Miss,
    /// The verdict was served from the cache (witnesses are omitted on
    /// hits — see [`crate::cache`] for why).
    Hit,
}

impl fmt::Display for CacheProvenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheProvenance::Uncached => write!(f, "uncached"),
            CacheProvenance::Miss => write!(f, "miss"),
            CacheProvenance::Hit => write!(f, "hit"),
        }
    }
}

/// The uniform result of the pipeline: verdict, provenance, and evidence.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The question that was asked.
    pub kind: AnalysisKind,
    /// The form's fragment (Sec. 3.5), computed during dispatch.
    pub fragment: Fragment,
    /// The three-valued answer.
    pub verdict: Verdict,
    /// The algorithm that produced it.
    pub method: Method,
    /// Evidence run: a complete run for completability `Holds`, a run to
    /// an incompletable instance for semi-soundness `Fails`. `None` on
    /// cache hits and for satisfiability.
    pub run: Option<Vec<Update>>,
    /// A witness tree for satisfiability `Holds`.
    pub sat_witness: Option<WitnessTree>,
    /// Statistics of the search that produced the verdict (the original
    /// cold run's stats on cache hits).
    pub stats: SearchStats,
    /// Cache provenance of this report.
    pub cache: CacheProvenance,
    /// Worker threads the explicit-state engines were granted for this
    /// request ([`AnalysisRequest::threads`], defaulted). Thread counts
    /// are *accounting*, not budget: they never affect the verdict, but
    /// layered callers (e.g. [`crate::batch::BatchAnalyzer`]) rely on the
    /// grant to keep total concurrency within one configured budget.
    pub threads: usize,
    /// Counters from the static screener's pass over this request:
    /// `Some` whenever the screener ran (cold completability or
    /// semi-soundness without `force_method`/`skip_screen`), whether or
    /// not it decided. `None` on cache hits and for satisfiability.
    pub screen: Option<crate::screen::ScreenStats>,
}

/// Run the pipeline without a cache.
pub fn analyze(request: &AnalysisRequest) -> AnalysisReport {
    analyze_with(request, None)
}

/// Run the pipeline, consulting (and filling) `cache` when given. Hits
/// skip the analysis entirely (the probe hashes the rule table and the
/// initial instance, nothing more) and return [`CacheProvenance::Hit`]
/// with no witness; misses run cold and store their verdict for the next
/// identical request — where "identical" quotients the initial instance
/// by isomorphism (see [`crate::cache`]).
pub fn analyze_with(request: &AnalysisRequest, cache: Option<&VerdictCache>) -> AnalysisReport {
    match cache {
        // Key construction serializes the rule table — compute it once
        // and reuse it for the probe and the store.
        Some(c) => analyze_keyed(
            request,
            c,
            &VerdictCache::key_for(&request.form, request.kind, &request.budget),
        ),
        None => run_cold(request),
    }
}

/// [`analyze_with`] with the cache key precomputed — the hot path for
/// callers whose rule table is fixed across many requests (e.g. a form
/// manager vetting successor instances: memoise
/// [`rules_signature_of`](crate::cache::rules_signature_of) once and
/// build per-request keys with
/// [`VerdictCache::key_with`](crate::cache::VerdictCache::key_with)).
pub fn analyze_keyed(
    request: &AnalysisRequest,
    cache: &VerdictCache,
    key: &crate::cache::CacheKey,
) -> AnalysisReport {
    if let Some(hit) = cache.get_keyed(key) {
        return AnalysisReport {
            kind: request.kind,
            fragment: hit.fragment,
            verdict: hit.verdict,
            method: hit.method,
            run: None,
            sat_witness: None,
            stats: hit.stats,
            cache: CacheProvenance::Hit,
            threads: granted_threads(request),
            screen: None,
        };
    }
    let mut report = run_cold(request);
    // Limit-hit `Unknown`s are *not* stored: at a resource boundary the
    // verdict can depend on enumeration order, which differs between
    // merely-isomorphic siblings sharing this key — serving one sibling's
    // boundary `Unknown` to another could mask a verdict the cold run
    // would have decided. Decided verdicts (and closed-search Unknowns,
    // which cannot occur) are renaming-invariant and safe to share.
    let cacheable = !(report.verdict == Verdict::Unknown && report.stats.limit_hit.is_some());
    if cacheable {
        cache.put_keyed(
            key,
            CachedVerdict {
                verdict: report.verdict,
                method: report.method,
                fragment: report.fragment,
                stats: report.stats,
            },
        );
    }
    report.cache = CacheProvenance::Miss;
    report
}

/// The worker-thread count a request resolves to (its pin, or the
/// explorer default).
fn granted_threads(request: &AnalysisRequest) -> usize {
    request
        .threads
        .unwrap_or_else(crate::explore::default_threads)
}

/// Steps 2–4 of the pipeline: classify, **screen**, select, run. For
/// completability and semi-soundness the static screener runs before
/// method selection (probe order: cache → screen → exploration/SAT);
/// a conclusive screen is the whole answer ([`Method::StaticScreen`],
/// zero states), an inconclusive one still hands the chosen engine the
/// dead-rule-pruned form — same reachable graph, smaller rule table.
fn run_cold(request: &AnalysisRequest) -> AnalysisReport {
    let fragment = idar_core::fragment::classify(&request.form);
    let threads = granted_threads(request);
    // The screener is bypassed under `force_method` (ablations and
    // differential tests must exercise the forced engine verbatim).
    let screened = (request.budget.force_method.is_none()
        && !request.budget.skip_screen
        && matches!(
            request.kind,
            AnalysisKind::Completability | AnalysisKind::Semisoundness
        ))
    .then(|| crate::screen::screen(&request.form));
    let screen_stats = screened.as_ref().map(|s| s.stats);
    if let Some(s) = &screened {
        let outcome = match request.kind {
            AnalysisKind::Completability => &s.completability,
            AnalysisKind::Semisoundness => &s.semisoundness,
            AnalysisKind::Satisfiability => unreachable!("not screened"),
        };
        if let crate::screen::ScreenOutcome::Decided(verdict, run) = outcome {
            return AnalysisReport {
                kind: request.kind,
                fragment,
                verdict: *verdict,
                method: Method::StaticScreen,
                run: run.clone(),
                sat_witness: None,
                stats: SearchStats {
                    closed: true,
                    ..SearchStats::default()
                },
                cache: CacheProvenance::Uncached,
                threads,
                screen: screen_stats,
            };
        }
    }
    // Inconclusive screens prune; dead rules never fire at a reachable
    // state, so the pruned form's verdict is the original's.
    let pruned = screened
        .as_ref()
        .filter(|s| !s.dead_rules.is_empty())
        .map(|s| crate::screen::prune(&request.form, &s.dead_rules));
    let form = pruned.as_ref().unwrap_or(&request.form);
    match request.kind {
        AnalysisKind::Completability => {
            let r =
                crate::completability::run_completability(form, &request.budget, request.threads);
            AnalysisReport {
                kind: request.kind,
                fragment,
                verdict: r.verdict,
                method: r.method,
                run: r.witness_run,
                sat_witness: None,
                stats: r.stats,
                cache: CacheProvenance::Uncached,
                threads,
                screen: screen_stats,
            }
        }
        AnalysisKind::Semisoundness => {
            let r = crate::semisound::run_semisoundness(form, &request.budget, request.threads);
            AnalysisReport {
                kind: request.kind,
                fragment,
                verdict: r.verdict,
                method: r.method,
                run: r.counterexample,
                sat_witness: None,
                stats: r.stats,
                cache: CacheProvenance::Uncached,
                threads,
                screen: screen_stats,
            }
        }
        AnalysisKind::Satisfiability => {
            let opts = SatOptions {
                schema: Some(request.form.schema().clone()),
                ..SatOptions::default()
            };
            let (verdict, sat_witness) = match satisfiable(request.form.completion(), &opts) {
                SatResult::Sat(w) => (Verdict::Holds, Some(w)),
                SatResult::Unsat => (Verdict::Fails, None),
                SatResult::BudgetExhausted => (Verdict::Unknown, None),
            };
            AnalysisReport {
                kind: request.kind,
                fragment,
                verdict,
                method: Method::SatTableau,
                run: None,
                sat_witness,
                stats: SearchStats::default(),
                cache: CacheProvenance::Uncached,
                threads,
                screen: None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::leave;

    #[test]
    fn pipeline_answers_all_three_kinds() {
        let form = leave::example_3_12();
        let budget = Budget::with_limits(ExploreLimits {
            multiplicity_cap: Some(1),
            max_states: 50_000,
            ..ExploreLimits::small()
        });
        let c = analyze(&AnalysisRequest::completability(form.clone()).with_budget(budget.clone()));
        assert_eq!(c.verdict, Verdict::Holds);
        assert!(form.is_complete_run(c.run.as_ref().unwrap()));
        assert_eq!(c.cache, CacheProvenance::Uncached);

        let s = analyze(&AnalysisRequest::satisfiability(form.clone()));
        assert_eq!(s.verdict, Verdict::Holds);
        assert_eq!(s.method, Method::SatTableau);
        assert!(s.sat_witness.is_some());

        let variant = leave::section_3_5_variant();
        let ss = analyze(&AnalysisRequest::semisoundness(variant.clone()).with_budget(budget));
        assert_eq!(ss.verdict, Verdict::Fails);
        let cex = ss.run.expect("counterexample");
        assert!(variant.replay(&cex).is_ok());
    }

    #[test]
    fn cache_round_trip_preserves_the_verdict() {
        let cache = VerdictCache::new();
        let form = leave::example_3_12();
        let req =
            AnalysisRequest::completability(form).with_budget(Budget::with_limits(ExploreLimits {
                multiplicity_cap: Some(1),
                ..ExploreLimits::small()
            }));
        let cold = analyze_with(&req, Some(&cache));
        assert_eq!(cold.cache, CacheProvenance::Miss);
        let warm = analyze_with(&req, Some(&cache));
        assert_eq!(warm.cache, CacheProvenance::Hit);
        assert_eq!(warm.verdict, cold.verdict);
        assert_eq!(warm.method, cold.method);
        assert_eq!(warm.stats, cold.stats);
        assert!(warm.run.is_none(), "hits do not carry witnesses");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn budget_symmetry_is_dispatched() {
        // Plain-mode bounded exploration visits more states but agrees on
        // the verdict.
        let form = leave::example_3_12();
        let mk = |symmetry| {
            AnalysisRequest::completability(form.clone()).with_budget(Budget {
                limits: ExploreLimits {
                    multiplicity_cap: Some(1),
                    ..ExploreLimits::small()
                },
                symmetry,
                force_method: Some(Method::BoundedExploration),
                ..Budget::default()
            })
        };
        let reduced = analyze(&mk(SymmetryMode::Reduced));
        let plain = analyze(&mk(SymmetryMode::Plain));
        assert_eq!(reduced.verdict, plain.verdict);
        assert_eq!(reduced.verdict, Verdict::Holds);
    }
}
