//! # idar-solver
//!
//! Decision procedures for the two correctness properties of guarded forms
//! (Defs. 3.13 / 3.14):
//!
//! * **completability** — does some run from the initial instance reach an
//!   instance satisfying the completion formula?
//! * **semi-soundness** — is every reachable instance completable?
//!
//! Table 1 of the paper dictates what is achievable per fragment, and this
//! crate implements exactly the upper bounds the paper proves, falling back
//! to *honest* bounded search everywhere else:
//!
//! | fragment             | completability                                  | semi-soundness |
//! |----------------------|-------------------------------------------------|----------------|
//! | `F(A+, φ+, d)` any d | exact, P ([`positive`], Thm 5.5)                 | exact for d = 1; bounded reachable-enumeration with exact per-state oracle otherwise |
//! | `F(A+, φ−, k)`       | exact, NP ([`np`], Thm 5.2)                      | bounded (Π^P_2k-hard, upper open) |
//! | `F(A−, φ±, 1)`       | exact, PSPACE ([`depth1`], Lemma 4.3 + Thm 4.6)  | exact ([`depth1`], Cor. 4.7) |
//! | `F(A−, φ±, ≥2)`      | bounded ([`explore`]) — undecidable (Thm 4.1)    | bounded |
//!
//! Every verdict is three-valued ([`Verdict`]): `Holds`, `Fails`, or
//! `Unknown` with the resource bound that was hit. Exact code paths
//! document the theorem that licenses them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod batch;
pub mod cache;
pub mod completability;
pub mod depth1;
pub mod explore;
pub mod invariants;
pub mod np;
pub mod positive;
pub mod satengine;
pub mod satisfiability;
pub mod screen;
pub mod semisound;
pub mod session;
pub mod spill;
pub mod store;
pub mod verdict;
pub mod witness;

pub use analysis::{
    analyze, analyze_keyed, analyze_with, AnalysisKind, AnalysisReport, AnalysisRequest, Budget,
    CacheProvenance,
};
pub use batch::{split_threads, AnalysisSelection, BatchAnalyzer, BatchItem, FormReport};
pub use cache::{
    rules_signature_of, CacheKey, CacheStats, CachedVerdict, RulesSignature, SessionDelta,
    VerdictCache,
};
pub use completability::{
    completability, select_method, CompletabilityOptions, CompletabilityResult,
};
pub use depth1::Depth1System;
pub use explore::{default_threads, ExploreLimits, ExploreOutcome, Explorer, StateGraph};
pub use invariants::{check_invariant, check_invariants, InvariantResult};
pub use screen::{prune, screen, ScreenOutcome, ScreenReport, ScreenStats};
pub use semisound::{semisoundness, SemisoundnessOptions, SemisoundnessResult};
pub use session::{ExpandEvent, ExpansionLog, SessionGraph};
pub use spill::{MemoryBudget, SpillReport};
#[cfg(feature = "parallel")]
pub use store::{PackedStateId, ShardedStateStore};
pub use store::{StateId, StateStore, SuccessorTable, SymmetryMode};
pub use verdict::{LimitKind, Method, Verdict};
