//! **Exact** completability for `F(A+, φ−, k)` — Thm 5.2.
//!
//! The theorem's proof normalises any completing run into additions
//! followed by deletions (with positive rules a deletion and a subsequent
//! addition always commute) and then shrinks the additions phase: to make
//! a sub-formula true at a node one never needs more than one child per
//! obligation, so the witness instance has per-node fan-out linear in the
//! *size of the guarded form*, and — the schema depth being a constant `k`
//! — polynomial size overall. That bound is what makes the problem NP
//! (a polynomial certificate) rather than merely semi-decidable.
//!
//! We realise the bound as a **sibling-multiplicity cap** handed to the
//! bounded explorer: a breadth-first search over the capped space is a
//! complete decision procedure for this fragment — if the capped search
//! exhausts without finding a complete instance, the form is
//! incompletable. Worst-case exponential time, as expected for an
//! NP-complete problem.

use crate::explore::{ExploreLimits, Explorer};
use crate::verdict::{LimitKind, SearchStats, Verdict};
use idar_core::{GuardedForm, Right, Update};

/// The per-(node, schema-edge) sibling multiplicity that Thm 5.2's witness
/// argument justifies.
///
/// The proof adds at most one child per obligation ("we add at most one
/// addition that adds a child under that node" per sub-formula ψ), and an
/// obligation can only demand an `l`-child if `l` occurs as a path step in
/// one of the guarded form's formulas. So per label `l` the witness never
/// needs more than (#occurrences of `l` across the completion formula and
/// all guards) fresh siblings, on top of whatever multiplicity the initial
/// instance already has. We use the maximum over all labels as a uniform
/// per-edge cap (a superset of the per-label-capped space, still finite).
pub fn theorem_5_2_bound(form: &GuardedForm) -> usize {
    use std::collections::HashMap;
    let mut occurrences: HashMap<String, usize> = HashMap::new();
    let mut count = |f: &idar_core::Formula| {
        for l in f.label_occurrences() {
            *occurrences.entry(l.to_string()).or_insert(0) += 1;
        }
    };
    count(form.completion());
    for e in form.schema().edge_ids() {
        count(form.rules().get(Right::Add, e));
        count(form.rules().get(Right::Del, e));
    }
    let max_occurrences = occurrences.values().copied().max().unwrap_or(0);
    let init_mult = form
        .initial()
        .live_nodes()
        .map(|n| {
            form.schema()
                .children(form.initial().schema_node(n))
                .iter()
                .map(|&e| form.initial().children_at(n, e).count())
                .max()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0);
    max_occurrences + init_mult + 1
}

/// Result of the NP-fragment solver.
#[derive(Debug, Clone)]
pub struct NpAnswer {
    /// `Holds`/`Fails` are exact (Thm 5.2); `Unknown` means an *auxiliary*
    /// limit (state count / state size) was hit before the capped space was
    /// exhausted.
    pub verdict: Verdict,
    /// A complete run when `Holds`.
    pub run: Option<Vec<Update>>,
    /// The multiplicity cap used.
    pub cap: usize,
    /// Statistics of the capped search.
    pub stats: SearchStats,
}

/// Preconditions for this solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotNpFragment(pub String);

impl std::fmt::Display for NotNpFragment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "form is outside F(A+, phi-, k): {}", self.0)
    }
}
impl std::error::Error for NotNpFragment {}

/// Decide completability for a form with positive access rules (the
/// completion formula may use negation) — `F(A+, φ−, k)`, Thm 5.2.
///
/// `aux_limits` bounds only time/memory (states, state size); the
/// multiplicity cap is computed from the theorem and overrides whatever the
/// caller put there. Uses the default SAT engine (CDCL) for the
/// completion-formula pre-check; see [`completability_np_with_engine`].
pub fn completability_np(
    form: &GuardedForm,
    aux_limits: &ExploreLimits,
) -> Result<NpAnswer, NotNpFragment> {
    completability_np_with_engine(form, aux_limits, idar_logic::Engine::default())
}

/// [`completability_np`] with an explicit SAT engine.
///
/// Before the capped search runs, the completion formula's propositional
/// atom abstraction (see [`crate::satengine`]) goes to `engine`: if no
/// valuation of the root-evaluated atoms satisfies φ then no instance can
/// — an exact `Fails` without exploring a single state. The Thm 5.1
/// SAT→completability encodings of unsatisfiable CNFs hit exactly this
/// path, replacing an exponential search by one SAT call.
pub fn completability_np_with_engine(
    form: &GuardedForm,
    aux_limits: &ExploreLimits,
    engine: idar_logic::Engine,
) -> Result<NpAnswer, NotNpFragment> {
    for e in form.schema().edge_ids() {
        for right in [Right::Add, Right::Del] {
            let g = form.rules().get(right, e);
            if !g.is_positive() {
                return Err(NotNpFragment(format!(
                    "A({right}, {}) = `{g}` contains negation",
                    form.schema().path_of(e)
                )));
            }
        }
    }
    {
        use idar_core::formula::StepFormula;
        let step = StepFormula::from_formula(form.completion());
        if crate::satengine::surely_unsatisfiable(&step, engine) {
            // Nothing to search: the verdict is exact, so report the
            // (empty) exploration as closed.
            return Ok(NpAnswer {
                verdict: Verdict::Fails,
                run: None,
                cap: 0,
                stats: SearchStats {
                    closed: true,
                    ..SearchStats::default()
                },
            });
        }
    }
    let cap = theorem_5_2_bound(form);
    let limits = ExploreLimits {
        multiplicity_cap: Some(cap),
        // The capped witness instance is polynomial for constant depth;
        // make sure the size limit does not cut below it.
        max_state_size: aux_limits.max_state_size.max(
            form.initial()
                .live_count()
                .saturating_mul(cap.saturating_mul(form.schema().node_count()).max(1)),
        ),
        ..*aux_limits
    };
    let explorer = Explorer::new(form, limits);
    let out = explorer.find(|i| form.is_complete(i));
    match out.goal_run {
        Some(run) => Ok(NpAnswer {
            verdict: Verdict::Holds,
            run: Some(run),
            cap,
            stats: out.stats,
        }),
        None => {
            // Exhausted: if the only pruning was the theorem-justified
            // multiplicity cap, the negative answer is exact.
            let exact =
                out.stats.closed || matches!(out.stats.limit_hit, Some(LimitKind::Multiplicity));
            Ok(NpAnswer {
                verdict: if exact {
                    Verdict::Fails
                } else {
                    Verdict::Unknown
                },
                run: None,
                cap,
                stats: out.stats,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::{AccessRules, Formula, Instance, Schema};
    use std::sync::Arc;

    fn form(
        schema: &str,
        rules: &[(&str, &str, &str)],
        initial: &str,
        completion: &str,
    ) -> GuardedForm {
        let schema = Arc::new(Schema::parse(schema).unwrap());
        let mut table = AccessRules::new(&schema);
        for (l, add, del) in rules {
            table.set_both(
                schema.resolve(l).unwrap(),
                Formula::parse(add).unwrap(),
                Formula::parse(del).unwrap(),
            );
        }
        let init = Instance::parse(schema.clone(), initial).unwrap();
        GuardedForm::new(schema, table, init, Formula::parse(completion).unwrap())
    }

    #[test]
    fn negative_completion_needs_deletion() {
        // φ = b ∧ ¬a with a initially present; positive del guard `b`.
        let g = form(
            "a, b",
            &[("a", "false", "b"), ("b", "true", "false")],
            "a",
            "b & !a",
        );
        let ans = completability_np(&g, &ExploreLimits::small()).unwrap();
        assert_eq!(ans.verdict, Verdict::Holds);
        assert!(g.is_complete_run(ans.run.as_ref().unwrap()));
    }

    #[test]
    fn incompletable_is_exact() {
        // φ = ¬a but a is frozen (no delete right).
        let g = form("a, b", &[("b", "true", "true")], "a", "!a");
        let ans = completability_np(&g, &ExploreLimits::small()).unwrap();
        assert_eq!(ans.verdict, Verdict::Fails);
    }

    #[test]
    fn needs_two_siblings() {
        // φ = a[b] ∧ a[¬b]: requires two distinct `a` children. The
        // multiplicity cap must not cut below 2.
        let g = form(
            "a(b)",
            &[("a", "true", "false"), ("a/b", "a[!b]", "false")],
            "",
            "a[b] & a[!b]",
        );
        // A(add, a/b) = a[!b] (evaluated at the a node… `a[!b]` from an `a`
        // node looks for an a-child of a — none; so use a guard at the
        // right level: rewrite so b is addable whenever two a's exist).
        let g = {
            let schema = g.schema().clone();
            let mut rules = AccessRules::new(&schema);
            rules.set(Right::Add, schema.resolve("a").unwrap(), Formula::True);
            rules.set(Right::Add, schema.resolve("a/b").unwrap(), Formula::True);
            GuardedForm::new(
                schema.clone(),
                rules,
                Instance::empty(schema),
                Formula::parse("a[b] & a[!b]").unwrap(),
            )
        };
        let ans = completability_np(&g, &ExploreLimits::small()).unwrap();
        assert_eq!(ans.verdict, Verdict::Holds);
        let run = ans.run.unwrap();
        assert!(g.is_complete_run(&run));
        assert!(ans.cap >= 2);
    }

    #[test]
    fn depth2_interplay() {
        // Reach a(p(b)) then delete b to satisfy a[p[¬b]] ∧ s, where s is
        // only addable once a/p/b existed (positive chain), forcing a real
        // add-then-delete schedule.
        let g = form(
            "a(p(b)), s",
            &[
                ("a", "true", "false"),
                ("a/p", "true", "false"),
                ("a/p/b", "true", "true"),
                ("s", "a/p[b]", "false"),
            ],
            "",
            "s & a[p] & !a/p[b]",
        );
        let ans = completability_np(&g, &ExploreLimits::small()).unwrap();
        assert_eq!(ans.verdict, Verdict::Holds);
        let run = ans.run.unwrap();
        assert!(g.is_complete_run(&run));
        // The run must contain at least one deletion.
        assert!(run.iter().any(|u| matches!(u, Update::Del { .. })));
    }

    #[test]
    fn propositionally_unsat_completion_short_circuits() {
        // φ = a ∧ ¬a: no tree satisfies it, so the SAT pre-check answers
        // Fails without exploring (states == 0, closed).
        let g = form("a, b", &[("a", "true", "true")], "", "a & !a");
        for engine in [
            idar_logic::Engine::Cdcl,
            idar_logic::Engine::Dpll,
            idar_logic::Engine::BruteForce,
        ] {
            let ans = completability_np_with_engine(&g, &ExploreLimits::small(), engine).unwrap();
            assert_eq!(ans.verdict, Verdict::Fails, "{engine}");
            assert_eq!(ans.stats.states, 0, "{engine}");
            assert!(ans.stats.closed, "{engine}");
        }
    }

    #[test]
    fn rejects_negative_rules() {
        let g = form("a", &[("a", "!a", "false")], "", "a");
        assert!(completability_np(&g, &ExploreLimits::small()).is_err());
    }

    #[test]
    fn agrees_with_positive_solver_on_positive_forms() {
        // When φ is also positive both exact solvers must agree.
        for (completion, _expected) in [("a & b", true), ("a & zz", false)] {
            let g = form(
                "a, b",
                &[("a", "true", "false"), ("b", "a", "false")],
                "",
                completion,
            );
            let np = completability_np(&g, &ExploreLimits::small()).unwrap();
            let pos = crate::positive::completability_positive(&g).unwrap();
            assert_eq!(np.verdict, pos.verdict, "{completion}");
        }
    }
}
