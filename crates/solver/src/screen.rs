//! The **static screener**: sound pre-exploration analysis of guarded
//! forms, in polynomial time and with zero state expansion.
//!
//! Table 1 shows large fragments decidable by reasoning over the rules
//! alone; even outside them, a sound over/under-approximation can refute
//! or confirm completability before any state is built. The screener
//! combines three ingredients:
//!
//! 1. **Rule enablement graph** ([`idar_core::deps`]): which schema nodes
//!    each guard depends on, inverted into a worklist relation — when a
//!    label becomes addable, only the rules depending on it are
//!    re-examined.
//! 2. **May/must abstract interpretation**: a fixpoint over schema nodes.
//!    `may` over-approximates the nodes that can appear in *some*
//!    reachable instance (upper bound); `must` under-approximates the
//!    root children present in *every* reachable instance (lower bound:
//!    initially present and with a statically unfireable `del` guard).
//!    Whether a guard can fire is decided by the CDCL engine on a
//!    propositional **guard abstraction** (below), so propositionally
//!    contradictory guards like `a ∧ ¬a` are recognised as unfireable —
//!    a three-valued evaluation would miss them.
//! 3. **A greedy chase**: a deterministic concrete witness search that
//!    only ever *adds* edges (one sibling per schema edge, exactly the
//!    bound of Thm 5.5's saturation) and checks the completion formula
//!    after every addition. Any run it finds is a real run, so `Holds`
//!    verdicts are sound for *every* fragment — including `A−` forms
//!    whose guards mention negation, as long as a monotone witness
//!    exists.
//!
//! ## The guard abstraction
//!
//! A guard `A(right, e)` is evaluated at the schema parent of `e`
//! (Sec. 3.4). Its step normal form (Lemma 4.4) is translated to a
//! propositional formula with one variable per distinct
//! *(evaluation node, atom)* pair, folding in the may/must sets:
//!
//! * `l` resolving outside the may-set → constant **false** (no reachable
//!   instance has such a child);
//! * `l` at the root with `l` in the must-set → constant **true**;
//! * `..` → **false** at the root, **true** elsewhere (structural);
//! * `..[ψ]` → `ψ` re-anchored at the unique schema parent (sound and
//!   precise: the parent is one concrete node);
//! * `l[ψ]` → an opaque variable (decomposing through a child would
//!   conflate *different* siblings — unsound), plus the implication
//!   `l[ψ] → l` for precision.
//!
//! Every valuation realised at a node of a reachable instance is a model
//! of the abstraction (induction over run length, using the may/must
//! invariants), so **UNSAT ⇒ the guard can never fire**. The same
//! translation applied to the completion formula at the root gives the
//! `StaticNo` verdict: if no valuation satisfies the abstraction, no
//! reachable instance is complete — completability `Fails` for the form,
//! and (the initial instance being reachable and incompletable)
//! semi-soundness `Fails` too.
//!
//! ## Dead rules
//!
//! After the fixpoint, a rule is **dead** when it can never fire: its
//! evaluation node is outside the may-set, the deleted node can never
//! exist, or its guard abstraction is UNSAT. A dead rule's guard is false
//! at every node of every reachable instance, so rewriting it to the
//! constant `false` ([`prune`]) changes *no* allowed update anywhere:
//! pruned exploration visits the same states in the same order and
//! returns bit-identical verdicts and statistics. Inconclusive screens
//! still hand the explorer this smaller rule table.

use crate::satengine::solve_abstraction_budgeted;
use crate::verdict::Verdict;
use idar_core::deps::{EnablementGraph, RuleId};
use idar_core::formula::StepFormula;
use idar_core::{Formula, GuardedForm, InstNodeId, Right, Schema, SchemaNodeId, Update};
use idar_logic::prop::PropFormula;
use idar_logic::Engine;

/// Counters from one screener pass (polynomial everything).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScreenStats {
    /// Outer may/must alternation rounds until the fixpoint stabilised.
    pub rounds: usize,
    /// CDCL consultations on guard/completion abstractions.
    pub sat_checks: usize,
    /// Schema nodes in the final may-set (including the root).
    pub may_size: usize,
    /// Root children in the final must-set.
    pub must_size: usize,
    /// Additions performed by the greedy chase.
    pub chase_steps: usize,
    /// Rules found dead (guard statically unfireable).
    pub dead_rules: usize,
}

/// The screener's answer for one decision problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScreenOutcome {
    /// A sound verdict, with a witness run where one exists (a complete
    /// run for completability `Holds`; the empty run — the initial
    /// instance is itself incompletable — for semi-soundness `Fails`).
    Decided(Verdict, Option<Vec<Update>>),
    /// The screener could not decide; exploration is still needed.
    Inconclusive,
}

impl ScreenOutcome {
    /// The verdict, when decided.
    pub fn verdict(&self) -> Option<Verdict> {
        match self {
            ScreenOutcome::Decided(v, _) => Some(*v),
            ScreenOutcome::Inconclusive => None,
        }
    }
}

/// Everything one screener pass produces: per-problem outcomes, the dead
/// rules, and counters.
#[derive(Debug, Clone)]
pub struct ScreenReport {
    /// Completability of the form.
    pub completability: ScreenOutcome,
    /// Semi-soundness of the form.
    pub semisoundness: ScreenOutcome,
    /// Rules that can never fire (excluding guards already syntactically
    /// `false`). Feed to [`prune`] to shrink the explorer's work.
    pub dead_rules: Vec<RuleId>,
    /// Counters.
    pub stats: ScreenStats,
}

/// Conflict budget per CDCL consultation. Screener abstractions are tiny
/// (one variable per guard atom), but the budget keeps the workspace's
/// honest-bounded-search contract: exhausting it degrades the answer to
/// "inconclusive"/"live", never to a wrong verdict.
const SCREEN_SAT_BUDGET: u64 = 20_000;

/// Screen `form` statically. Zero states are expanded; the only concrete
/// object ever built is the greedy chase's single growing instance
/// (bounded by one sibling per (node, schema edge), as in Thm 5.5).
pub fn screen(form: &GuardedForm) -> ScreenReport {
    let schema = form.schema().clone();
    let graph = EnablementGraph::build(&schema, form.rules());
    let mut stats = ScreenStats::default();

    // Pre-normalise every guard once (evaluated at the edge's parent).
    let n = schema.node_count();
    let mut add_guards: Vec<Option<StepFormula>> = vec![None; n];
    let mut del_guards: Vec<Option<StepFormula>> = vec![None; n];
    for e in schema.edge_ids() {
        add_guards[e.index()] = Some(StepFormula::from_formula(form.rules().get(Right::Add, e)));
        del_guards[e.index()] = Some(StepFormula::from_formula(form.rules().get(Right::Del, e)));
    }

    // Alternating may/must fixpoint. `must` only grows (more constants
    // fold, more del-guards go UNSAT), `may` only shrinks; both are sound
    // at every round, so the first stable pair is the answer.
    let initial_present = initially_present(form);
    let mut must = vec![false; n];
    let mut may;
    loop {
        stats.rounds += 1;
        may = compute_may(form, &schema, &graph, &add_guards, &must, &mut stats);
        let new_must = compute_must(
            &schema,
            &initial_present,
            &del_guards,
            &may,
            &must,
            &mut stats,
        );
        if new_must == must || stats.rounds > n + 1 {
            must = new_must;
            break;
        }
        must = new_must;
    }
    stats.may_size = may.iter().filter(|&&b| b).count();
    stats.must_size = must.iter().filter(|&&b| b).count();

    // Dead rules: structurally impossible or guard abstraction UNSAT.
    let mut dead_rules = Vec::new();
    for e in schema.edge_ids() {
        let p = schema.parent(e).expect("edges have parents");
        if *form.rules().get(Right::Add, e) != Formula::False {
            let guard = add_guards[e.index()].as_ref().expect("prenormalised");
            if !may[p.index()] || guard_unsat(&schema, p, guard, &may, &must, &mut stats) {
                dead_rules.push(RuleId {
                    right: Right::Add,
                    edge: e,
                });
            }
        }
        if *form.rules().get(Right::Del, e) != Formula::False {
            let guard = del_guards[e.index()].as_ref().expect("prenormalised");
            if !may[e.index()] || guard_unsat(&schema, p, guard, &may, &must, &mut stats) {
                dead_rules.push(RuleId {
                    right: Right::Del,
                    edge: e,
                });
            }
        }
    }
    stats.dead_rules = dead_rules.len();

    // StaticNo: the completion abstraction at the root is UNSAT over the
    // may/must sets ⇒ no reachable instance is complete.
    let completion = StepFormula::from_formula(form.completion());
    let static_no = guard_unsat(
        &schema,
        SchemaNodeId::ROOT,
        &completion,
        &may,
        &must,
        &mut stats,
    );

    // StaticYes: the greedy chase found a concrete complete run.
    let chase = if static_no {
        None
    } else {
        chase(form, &mut stats)
    };

    let completability = if static_no {
        ScreenOutcome::Decided(Verdict::Fails, None)
    } else if let Some(run) = &chase {
        ScreenOutcome::Decided(Verdict::Holds, Some(run.clone()))
    } else {
        ScreenOutcome::Inconclusive
    };

    // Semi-soundness: `Fails` transfers from completability `Fails` (the
    // initial instance is reachable and incompletable — the empty run is
    // the counterexample). `Holds` needs the deletion-free positive
    // fragment: there, guards and the completion formula are monotone
    // under additions, so the chase's witness run stays valid from any
    // reachable instance (which is the initial instance plus additions),
    // making every reachable state completable. Outside that fragment a
    // completable initial instance proves nothing about its successors.
    let semisoundness = if static_no {
        ScreenOutcome::Decided(Verdict::Fails, Some(Vec::new()))
    } else if chase.is_some()
        && form.is_deletion_free()
        && form.rules().all_positive(&schema)
        && form.completion().is_positive()
    {
        ScreenOutcome::Decided(Verdict::Holds, None)
    } else {
        ScreenOutcome::Inconclusive
    };

    ScreenReport {
        completability,
        semisoundness,
        dead_rules,
        stats,
    }
}

/// Rewrite every dead rule's guard to the constant `false`. The returned
/// form has the same schema, initial instance, and completion formula,
/// and — dead rules being unfireable — the same reachable state graph.
pub fn prune(form: &GuardedForm, dead: &[RuleId]) -> GuardedForm {
    if dead.is_empty() {
        return form.clone();
    }
    let mut rules = form.rules().clone();
    rules.map_guards(form.schema(), |right, edge, g| {
        if dead.contains(&RuleId { right, edge }) {
            Formula::False
        } else {
            g.clone()
        }
    });
    GuardedForm::new(
        form.schema().clone(),
        rules,
        form.initial().clone(),
        form.completion().clone(),
    )
}

/// Schema nodes instantiated by the initial instance (plus the root).
fn initially_present(form: &GuardedForm) -> Vec<bool> {
    let mut present = vec![false; form.schema().node_count()];
    let init = form.initial();
    for node in init.live_nodes() {
        present[init.schema_node(node).index()] = true;
    }
    present[SchemaNodeId::ROOT.index()] = true;
    present
}

/// The may-fixpoint: starting from the initially present nodes, add the
/// target of every `add` rule whose parent is reachable and whose guard
/// abstraction is satisfiable, to exhaustion. The enablement graph keeps
/// the worklist sparse: a node joining the may-set only re-queues the
/// rules depending on it and the edges below it.
fn compute_may(
    form: &GuardedForm,
    schema: &Schema,
    graph: &EnablementGraph,
    add_guards: &[Option<StepFormula>],
    must: &[bool],
    stats: &mut ScreenStats,
) -> Vec<bool> {
    let mut may = initially_present(form);
    // Seed: every edge is worth one look.
    let mut pending: Vec<SchemaNodeId> = schema.edge_ids().collect();
    let mut queued = vec![true; schema.node_count()];
    while let Some(e) = pending.pop() {
        queued[e.index()] = false;
        if may[e.index()] {
            continue;
        }
        let p = schema.parent(e).expect("edges have parents");
        if !may[p.index()] {
            continue;
        }
        let guard = add_guards[e.index()].as_ref().expect("prenormalised");
        if guard_unsat(schema, p, guard, &may, must, stats) {
            continue;
        }
        may[e.index()] = true;
        // Re-examine rules whose guards depend on the new node, and the
        // edges whose parent just became reachable.
        let wake = graph
            .rules_affected_by(e)
            .filter(|r| r.right == Right::Add)
            .map(|r| r.edge)
            .chain(schema.children(e).iter().copied());
        for w in wake {
            if !may[w.index()] && !queued[w.index()] {
                queued[w.index()] = true;
                pending.push(w);
            }
        }
    }
    may
}

/// The must-set: root children that are initially present and whose `del`
/// guard can never fire (abstraction UNSAT over the current may/must).
/// Restricted to depth 1 — deeper nodes' permanence would additionally
/// require their ancestors' permanence, which the root trivially has.
fn compute_must(
    schema: &Schema,
    initial_present: &[bool],
    del_guards: &[Option<StepFormula>],
    may: &[bool],
    must: &[bool],
    stats: &mut ScreenStats,
) -> Vec<bool> {
    let mut out = vec![false; schema.node_count()];
    for &c in schema.children(SchemaNodeId::ROOT) {
        if !initial_present[c.index()] {
            continue;
        }
        let guard = del_guards[c.index()].as_ref().expect("prenormalised");
        if guard_unsat(schema, SchemaNodeId::ROOT, guard, may, must, stats) {
            out[c.index()] = true;
        }
    }
    out
}

/// Is the abstraction of `f`, evaluated at schema node `at`, UNSAT?
/// `false` is inconclusive (satisfiable, or the budget ran out).
fn guard_unsat(
    schema: &Schema,
    at: SchemaNodeId,
    f: &StepFormula,
    may: &[bool],
    must: &[bool],
    stats: &mut ScreenStats,
) -> bool {
    let mut tr = Translator {
        schema,
        may,
        must,
        atoms: Vec::new(),
        implications: Vec::new(),
        sat_checks: 0,
    };
    let unsat = tr.unsat(at, f);
    stats.sat_checks += tr.sat_checks;
    unsat
}

/// Eval-point-aware translation of a step formula into a propositional
/// formula over (evaluation node, atom) variables, folding the may/must
/// constants. See the module docs for the rules and their soundness.
struct Translator<'a> {
    schema: &'a Schema,
    may: &'a [bool],
    must: &'a [bool],
    atoms: Vec<(SchemaNodeId, StepFormula)>,
    implications: Vec<PropFormula>,
    sat_checks: usize,
}

impl Translator<'_> {
    /// Translate `f` at `at` in a fresh variable space and decide
    /// satisfiability of the abstraction. `true` means UNSAT (sound);
    /// `false` is inconclusive.
    fn unsat(&mut self, at: SchemaNodeId, f: &StepFormula) -> bool {
        let saved_atoms = std::mem::take(&mut self.atoms);
        let saved_imps = std::mem::take(&mut self.implications);
        let mut prop = self.translate(at, f);
        for imp in std::mem::take(&mut self.implications) {
            prop = prop.and(imp);
        }
        let n_atoms = self.atoms.len();
        self.atoms = saved_atoms;
        self.implications = saved_imps;
        let folded = prop.const_fold();
        if let PropFormula::Const(b) = folded {
            return !b;
        }
        self.sat_checks += 1;
        matches!(
            solve_abstraction_budgeted(&folded, n_atoms, Engine::Cdcl, SCREEN_SAT_BUDGET),
            Some(None)
        )
    }

    fn var_for(&mut self, at: SchemaNodeId, atom: &StepFormula) -> PropFormula {
        let key = (at, atom.clone());
        let i = match self.atoms.iter().position(|a| *a == key) {
            Some(i) => i,
            None => {
                self.atoms.push(key);
                self.atoms.len() - 1
            }
        };
        PropFormula::var(i as u32)
    }

    fn translate(&mut self, at: SchemaNodeId, f: &StepFormula) -> PropFormula {
        match f {
            StepFormula::True => PropFormula::Const(true),
            StepFormula::False => PropFormula::Const(false),
            StepFormula::Parent => PropFormula::Const(at != SchemaNodeId::ROOT),
            StepFormula::ParentSat(inner) => match self.schema.parent(at) {
                // The schema parent is unique, so re-anchoring is sound.
                Some(p) => self.translate(p, inner),
                None => PropFormula::Const(false),
            },
            StepFormula::Child(l) => self.child_atom(at, l),
            StepFormula::ChildSat(l, inner) => match self.schema.child_by_label(at, l) {
                // The residual is checked *separately* at the child (a
                // fresh variable space, so no sibling conflation): if no
                // single node can satisfy it, the atom is false.
                Some(c) if self.may[c.index()] && !self.unsat(c, inner) => {
                    // Otherwise opaque — decomposing in-place would
                    // conflate distinct siblings. Keep `l[ψ] → l`.
                    let v = self.var_for(at, f);
                    let child = self.child_atom(at, l);
                    if !matches!(child, PropFormula::Const(true)) {
                        self.implications.push(v.clone().not().or(child));
                    }
                    v
                }
                _ => PropFormula::Const(false),
            },
            StepFormula::Not(g) => self.translate(at, g).not(),
            StepFormula::And(a, b) => self.translate(at, a).and(self.translate(at, b)),
            StepFormula::Or(a, b) => self.translate(at, a).or(self.translate(at, b)),
        }
    }

    fn child_atom(&mut self, at: SchemaNodeId, l: &str) -> PropFormula {
        match self.schema.child_by_label(at, l) {
            Some(c) if self.may[c.index()] => {
                if at == SchemaNodeId::ROOT && self.must[c.index()] {
                    PropFormula::Const(true)
                } else {
                    self.var_for(at, &StepFormula::Child(l.to_string()))
                }
            }
            _ => PropFormula::Const(false),
        }
    }
}

/// The greedy chase: sweep (node, schema edge) pairs in id order, add
/// whenever the guard concretely holds and no sibling along that edge
/// exists yet, and test the completion formula at the start and after
/// every addition. Stops at the first complete instance (a sound
/// `Holds`, any fragment) or at a no-progress sweep (inconclusive).
/// Terminates within `|I₀| · |M|` additions (one sibling per pair).
fn chase(form: &GuardedForm, stats: &mut ScreenStats) -> Option<Vec<Update>> {
    let schema = form.schema().clone();
    let mut inst = form.initial().clone();
    let mut run: Vec<Update> = Vec::new();
    if form.is_complete(&inst) {
        return Some(run);
    }
    loop {
        let mut progressed = false;
        let nodes: Vec<InstNodeId> = inst.live_nodes().collect();
        for node in nodes {
            let sn = inst.schema_node(node);
            for &edge in schema.children(sn) {
                if inst.children_at(node, edge).next().is_some() {
                    continue;
                }
                if !idar_core::formula::holds(&inst, node, form.rules().get(Right::Add, edge)) {
                    continue;
                }
                let u = Update::Add { parent: node, edge };
                form.apply_unchecked(&mut inst, &u)
                    .expect("guard checked, schema edge valid");
                run.push(u);
                stats.chase_steps += 1;
                progressed = true;
                if form.is_complete(&inst) {
                    debug_assert!(form.is_complete_run(&run));
                    return Some(run);
                }
            }
        }
        if !progressed {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::{AccessRules, Instance};
    use std::sync::Arc;

    fn form(schema: &str, rules: &[(&str, &str)], initial: &str, completion: &str) -> GuardedForm {
        let schema = Arc::new(Schema::parse(schema).unwrap());
        let mut table = AccessRules::new(&schema);
        for (l, add) in rules {
            table.set(
                Right::Add,
                schema.resolve(l).unwrap(),
                Formula::parse(add).unwrap(),
            );
        }
        let init = Instance::parse(schema.clone(), initial).unwrap();
        GuardedForm::new(schema, table, init, Formula::parse(completion).unwrap())
    }

    #[test]
    fn chase_confirms_a_chain() {
        let g = form(
            "a, b, c",
            &[("a", "true"), ("b", "a"), ("c", "b")],
            "",
            "a & b & c",
        );
        let r = screen(&g);
        let ScreenOutcome::Decided(v, Some(run)) = &r.completability else {
            panic!("expected a decided completability with a run");
        };
        assert_eq!(*v, Verdict::Holds);
        assert!(g.is_complete_run(run));
        // Deletion-free, all-positive: semi-soundness transfers.
        assert_eq!(r.semisoundness.verdict(), Some(Verdict::Holds));
    }

    #[test]
    fn may_refutes_unreachable_requirements() {
        // c's guard mentions a label that can never appear.
        let g = form("a, c, zz", &[("a", "true"), ("c", "zz")], "", "c");
        let r = screen(&g);
        assert_eq!(r.completability.verdict(), Some(Verdict::Fails));
        assert_eq!(r.semisoundness.verdict(), Some(Verdict::Fails));
        // Both c's and zz's add rules are dead (c transitively).
        let schema = g.schema();
        let c = schema.resolve("c").unwrap();
        assert!(r.dead_rules.contains(&RuleId {
            right: Right::Add,
            edge: c
        }));
        assert_eq!(r.stats.may_size, 2); // root + a
    }

    #[test]
    fn contradictory_guard_needs_sat_not_three_valued_eval() {
        // b's guard is propositionally unsatisfiable — a three-valued
        // may-evaluation (a "may", ¬a "may") would let it fire.
        let g = form("a, b", &[("a", "true"), ("b", "a & !a")], "", "b");
        let r = screen(&g);
        assert_eq!(r.completability.verdict(), Some(Verdict::Fails));
        assert!(r.dead_rules.contains(&RuleId {
            right: Right::Add,
            edge: g.schema().resolve("b").unwrap()
        }));
    }

    #[test]
    fn chase_handles_negative_guards() {
        // A− form: b requires ¬c; the greedy chase adds a, then b, and
        // completes before ever considering c.
        let g = form(
            "a, b, c",
            &[("a", "true"), ("b", "a & !c"), ("c", "b")],
            "",
            "a & b",
        );
        let r = screen(&g);
        assert_eq!(r.completability.verdict(), Some(Verdict::Holds));
        // But A− blocks the semi-soundness transfer.
        assert_eq!(r.semisoundness, ScreenOutcome::Inconclusive);
    }

    #[test]
    fn must_set_folds_permanent_labels() {
        // `s` is initially present and has no del rule (default false):
        // the completion ¬s is statically refutable.
        let g = form("a, s", &[("a", "true")], "s", "a & !s");
        let r = screen(&g);
        assert_eq!(r.completability.verdict(), Some(Verdict::Fails));
        assert_eq!(r.stats.must_size, 1);
    }

    #[test]
    fn deletable_labels_stay_out_of_must() {
        let schema = Arc::new(Schema::parse("a, s").unwrap());
        let mut table = AccessRules::new(&schema);
        table.set(Right::Add, schema.resolve("a").unwrap(), Formula::True);
        table.set(Right::Del, schema.resolve("s").unwrap(), Formula::True);
        let init = Instance::parse(schema.clone(), "s").unwrap();
        let g = GuardedForm::new(schema, table, init, Formula::parse("a & !s").unwrap());
        let r = screen(&g);
        // s is deletable, so ¬s is satisfiable — and the chase cannot
        // confirm (it never deletes), so the screen is inconclusive.
        assert_eq!(r.completability, ScreenOutcome::Inconclusive);
        assert_eq!(r.stats.must_size, 0);
    }

    #[test]
    fn pruned_forms_keep_the_reachable_graph() {
        let g = form(
            "a, b, zz",
            &[("a", "true"), ("b", "a"), ("zz", "b & !b")],
            "",
            "a & b",
        );
        let r = screen(&g);
        assert_eq!(r.completability.verdict(), Some(Verdict::Holds));
        let pruned = prune(&g, &r.dead_rules);
        assert_eq!(
            *pruned
                .rules()
                .get(Right::Add, g.schema().resolve("zz").unwrap()),
            Formula::False
        );
        // Same allowed updates from the initial instance.
        assert_eq!(
            g.allowed_updates(g.initial()),
            pruned.allowed_updates(pruned.initial())
        );
    }

    #[test]
    fn parent_anchored_guards_reanchor() {
        // a/x's guard looks up at the root through `..[b]`; b never
        // appears, so x is unreachable and the completion fails.
        let g = form("a(x), b", &[("a", "true"), ("a/x", "..[b]")], "", "a[x]");
        let r = screen(&g);
        assert_eq!(r.completability.verdict(), Some(Verdict::Fails));
    }

    #[test]
    fn screen_expands_zero_states() {
        // The decided outcomes above never touch an Explorer; the only
        // concrete instance is the chase's. Spot-check the stats shape.
        let g = form("a", &[("a", "true")], "", "a");
        let r = screen(&g);
        assert_eq!(r.completability.verdict(), Some(Verdict::Holds));
        assert_eq!(r.stats.chase_steps, 1);
        assert!(r.stats.rounds >= 1);
    }
}
