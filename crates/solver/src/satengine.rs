//! Bridge from path formulas to the propositional SAT engines: a sound
//! **atom abstraction** that lets [`crate::satisfiability`] and
//! [`crate::np`] consult a [`idar_logic::SatEngine`] before (or instead
//! of) running their exponential searches.
//!
//! Every rooted tree induces a truth value for each *root-evaluated atom*
//! of a [`StepFormula`] — a child step `l[ψ]`, a parent step, or a bare
//! label. Treating those atoms as free propositional variables therefore
//! **over-approximates** the set of realisable valuations:
//!
//! * if the abstraction is UNSAT, no tree satisfies the formula — an
//!   exact negative answer (used by both callers as a pre-check);
//! * if additionally every atom is a bare child label and no schema
//!   constrains the tree, the abstraction is **exact**: any subset of
//!   labels is realised by a root with exactly those children, so a SAT
//!   model converts directly into a witness tree. This is precisely the
//!   shape of the Cor. 4.5 NP-hardness encodings, which turns the
//!   hottest fuzz/benchmark path into a single CDCL call.
//!
//! Parent atoms are root-evaluated too, so `..`-shaped atoms fold to
//! constant false rather than fresh variables.

use idar_core::formula::StepFormula;
use idar_logic::prop::{PropFormula, Var};

/// The propositional abstraction of a root-evaluated step formula.
pub struct Abstraction {
    /// The abstracted formula over atom variables `0..atoms.len()`.
    pub prop: PropFormula,
    /// Atom `i` is variable `i` in [`Abstraction::prop`].
    pub atoms: Vec<StepFormula>,
    /// True when every atom is a bare child label (`Child`), making the
    /// abstraction exact over unconstrained trees.
    pub labels_only: bool,
}

impl Abstraction {
    /// Abstract `f`, mapping each distinct root-evaluated atom to one
    /// propositional variable.
    pub fn of(f: &StepFormula) -> Abstraction {
        let mut abs = Abstraction {
            prop: PropFormula::Const(true),
            atoms: Vec::new(),
            labels_only: true,
        };
        abs.prop = abs.translate(f);
        abs
    }

    /// The label of atom variable `v`, when that atom is a bare child
    /// label.
    pub fn label_of(&self, v: Var) -> Option<&str> {
        match &self.atoms[v.index()] {
            StepFormula::Child(l) => Some(l),
            _ => None,
        }
    }

    fn var_for(&mut self, atom: &StepFormula) -> PropFormula {
        let i = match self.atoms.iter().position(|a| a == atom) {
            Some(i) => i,
            None => {
                self.atoms.push(atom.clone());
                self.atoms.len() - 1
            }
        };
        if !matches!(atom, StepFormula::Child(_)) {
            self.labels_only = false;
        }
        PropFormula::var(i as u32)
    }

    fn translate(&mut self, f: &StepFormula) -> PropFormula {
        match f {
            StepFormula::True => PropFormula::Const(true),
            StepFormula::False => PropFormula::Const(false),
            // `..` evaluated at the root is false, always.
            StepFormula::Parent | StepFormula::ParentSat(_) => PropFormula::Const(false),
            StepFormula::Child(_) | StepFormula::ChildSat(..) => self.var_for(f),
            StepFormula::Not(g) => self.translate(g).not(),
            StepFormula::And(a, b) => self.translate(a).and(self.translate(b)),
            StepFormula::Or(a, b) => self.translate(a).or(self.translate(b)),
        }
    }
}

use idar_logic::prop::BRUTE_FORCE_MAX_VARS;

/// Conflict (CDCL) / decision (DPLL) budget for engine consultations.
/// Generous for the abstraction sizes the solvers produce — the Cor. 4.5
/// encodings decide in a handful of conflicts — but it keeps the
/// workspace's honest-bounded-search contract: an adversarially hard
/// abstraction exhausts the budget and the caller falls back to its own
/// (bounded) search instead of hanging in an unbudgeted SAT call.
const ENGINE_CONSULT_BUDGET: u64 = 100_000;

/// Tseitin-encode an abstraction and solve it with `engine`, under the
/// consultation budget above.
///
/// `None` means the engine could not be consulted (brute force on a CNF
/// beyond its variable cap, or the budget ran out); `Some(model)` is the
/// engine's verdict on the abstraction (remember it over-approximates
/// tree satisfiability).
pub fn solve_abstraction(
    abs: &Abstraction,
    engine: idar_logic::Engine,
) -> Option<Option<idar_logic::Assignment>> {
    solve_abstraction_budgeted(&abs.prop, abs.atoms.len(), engine, ENGINE_CONSULT_BUDGET)
}

/// [`solve_abstraction`] generalised to any propositional formula over
/// `min_vars` atom variables and an explicit budget — the static
/// screener's guard abstractions route through here with their own
/// (smaller) budget.
pub fn solve_abstraction_budgeted(
    prop: &PropFormula,
    min_vars: usize,
    engine: idar_logic::Engine,
    budget: u64,
) -> Option<Option<idar_logic::Assignment>> {
    let cnf = prop.to_cnf_tseitin(min_vars);
    if engine == idar_logic::Engine::BruteForce && cnf.vars > BRUTE_FORCE_MAX_VARS {
        return None;
    }
    engine.solve_limited(&cnf, budget)
}

/// Sound UNSAT pre-check: `true` means **no** rooted tree satisfies `f`
/// at its root (with or without a schema). `false` is inconclusive.
pub fn surely_unsatisfiable(f: &StepFormula, engine: idar_logic::Engine) -> bool {
    matches!(solve_abstraction(&Abstraction::of(f), engine), Some(None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::Formula;
    use idar_logic::Engine;

    fn step(s: &str) -> StepFormula {
        StepFormula::from_formula(&Formula::parse(s).unwrap())
    }

    #[test]
    fn label_formulas_are_labels_only() {
        let abs = Abstraction::of(&step("(a | b) & !c"));
        assert!(abs.labels_only);
        assert_eq!(abs.atoms.len(), 3);
        assert_eq!(abs.label_of(Var(0)), Some("a"));
    }

    #[test]
    fn nested_atoms_disable_exactness() {
        assert!(!Abstraction::of(&step("a[b]")).labels_only);
        assert!(!Abstraction::of(&step("a & b[../c]")).labels_only);
        // Parent steps fold to constant false (root evaluation), so they
        // do not cost exactness.
        assert!(Abstraction::of(&step("a & !..")).labels_only);
    }

    #[test]
    fn shared_atoms_share_variables() {
        let abs = Abstraction::of(&step("a & (a | b)"));
        assert_eq!(abs.atoms.len(), 2);
    }

    #[test]
    fn unsat_precheck_is_sound() {
        for engine in [Engine::Cdcl, Engine::Dpll] {
            assert!(surely_unsatisfiable(&step("a & !a"), engine));
            assert!(surely_unsatisfiable(&step("(a | b) & !a & !b"), engine));
            assert!(surely_unsatisfiable(&step("a[b] & !a[b]"), engine));
            // `..` at the root is constant false.
            assert!(surely_unsatisfiable(&step(".."), engine));
            assert!(!surely_unsatisfiable(&step("a | b"), engine));
            // Inconclusive ≠ satisfiable: the abstraction misses the
            // dependency between a[b] and a, and that is fine.
            assert!(!surely_unsatisfiable(&step("a[b] & !a"), engine));
        }
    }
}
