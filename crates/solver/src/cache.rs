//! The cross-analysis **verdict cache**: amortising identical sub-problems
//! across analyses, batches, and manager sessions.
//!
//! Both the batch analyzer and the online form manager keep re-posing the
//! same question: *is this guarded form (rules + completion + some
//! reachable instance) completable / semi-sound / satisfiable under these
//! limits?* The manager's `safe_updates` is the worst offender — it
//! re-solved the completability oracle once per candidate update, even
//! when two candidates lead to **isomorphic** successor instances.
//!
//! The cache key quotients exactly as far as soundness allows:
//!
//! * the **rule signature** — a 128-bit (two independent 64-bit FNV
//!   streams) hash over the canonical text of the schema, the
//!   access-rule table, and the completion formula (the parts of a
//!   [`GuardedForm`] other than the initial instance);
//! * the **canonical fingerprint** of the initial instance
//!   ([`Instance::canon_key`](idar_core::Instance::canon_key)) — so all
//!   iso-value renamings of an instance share one entry (verdicts are
//!   invariant under renaming; the property suite pins this). Entries
//!   additionally store the canonical *word encoding* and compare it on
//!   every hit, so — like the interners and the `StateStore` — a 64-bit
//!   fingerprint collision is **detected** (counted, treated as a miss),
//!   never silently served. Satisfiability reads only the completion
//!   formula and schema, so its entries ignore the initial instance
//!   entirely (no spurious misses across manager states);
//! * the [`AnalysisKind`] and the [`Budget`] — verdict-affecting limits
//!   are part of the key, so a tighter budget can never serve a stale
//!   `Unknown` for a looser one (thread count is *not* keyed: engines
//!   are verdict-identical by contract).
//!
//! Cached entries carry the verdict, method, and stats — **not** witness
//! runs: a witness's update node-ids are only meaningful against the
//! instance the original analysis ran on, and a hit may come from a
//! merely-isomorphic sibling. Callers that need a fresh witness run
//! uncached (the [`analyze`](crate::analysis::analyze) report says which
//! happened via its [`CacheProvenance`](crate::analysis::CacheProvenance)).
//!
//! Key construction serializes the rule table, so the pipeline computes
//! a [`CacheKey`] **once** per request ([`VerdictCache::key_for`]) and
//! probes/stores through it.
//!
//! The table is sharded over mutexes so batch workers and manager threads
//! share one cache without contending.

use crate::analysis::{AnalysisKind, Budget};
use crate::verdict::{Method, SearchStats, Verdict};
use idar_core::fragment::Fragment;
use idar_core::{GuardedForm, Right};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A cached verdict: everything an [`AnalysisReport`] carries except
/// witnesses (see the module docs for why those never cross the cache).
///
/// [`AnalysisReport`]: crate::analysis::AnalysisReport
#[derive(Debug, Clone)]
pub struct CachedVerdict {
    /// The three-valued answer.
    pub verdict: Verdict,
    /// The algorithm that produced it.
    pub method: Method,
    /// The form's fragment, stored so hits skip re-classification.
    pub fragment: Fragment,
    /// Statistics of the original (cold) run.
    pub stats: SearchStats,
}

/// The memoised 128-bit rule signature of one form's non-instance parts.
/// Compute it once per form ([`rules_signature_of`]) when many requests
/// share the same rules — e.g. a manager vetting successors — and build
/// keys through [`VerdictCache::key_with`].
#[derive(Debug, Clone)]
pub struct RulesSignature((u64, u64));

/// Memoisable form of [`rules_signature`]: both independent streams.
pub fn rules_signature_of(form: &GuardedForm) -> RulesSignature {
    RulesSignature(rules_signatures(form))
}

/// The hashed part of the key; see the module docs for the quotient it
/// implements.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    rules_sig: u64,
    initial_fp: u64,
    kind: AnalysisKind,
    budget: Budget,
}

/// The confirmation payload compared on every probe, making fingerprint
/// collisions detectable (the analogue of the word `memcmp` in the
/// interners).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Check {
    rules_sig2: u64,
    initial_words: Box<[u32]>,
}

/// A fully-computed cache key for one `(form, kind, budget)` request.
/// Build it once with [`VerdictCache::key_for`] (it serializes the rule
/// table) and reuse it for the probe and the store.
#[derive(Debug, Clone)]
pub struct CacheKey {
    key: Key,
    check: Check,
}

/// Number of mutex-protected shards. A power of two well above typical
/// thread counts keeps contention negligible.
const SHARDS: usize = 16;

/// Aggregate cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that fell through to a cold analysis.
    pub misses: u64,
    /// Probes whose hashed key matched but whose confirmation payload did
    /// not — detected fingerprint collisions, treated as misses.
    /// Expected to stay 0 in practice.
    pub collisions: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The sharded verdict cache shared by [`BatchAnalyzer`] and the workflow
/// `FormManager`. Cheap to share behind an `Arc`.
///
/// [`BatchAnalyzer`]: crate::batch::BatchAnalyzer
#[derive(Debug, Default)]
pub struct VerdictCache {
    shards: [Mutex<HashMap<Key, (Check, CachedVerdict)>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    collisions: AtomicU64,
}

impl VerdictCache {
    /// An empty cache.
    pub fn new() -> VerdictCache {
        VerdictCache::default()
    }

    /// Compute the cache key for `(form, kind, budget)`. This serializes
    /// the rule table — call it once per request and reuse the key for
    /// [`VerdictCache::get_keyed`] and [`VerdictCache::put_keyed`].
    pub fn key_for(form: &GuardedForm, kind: AnalysisKind, budget: &Budget) -> CacheKey {
        Self::key_with(&rules_signature_of(form), form, kind, budget)
    }

    /// [`VerdictCache::key_for`] with the rule signature precomputed
    /// ([`rules_signature_of`]) — the fast path for callers whose rules
    /// are fixed across many requests (only the initial instance is
    /// hashed per call).
    pub fn key_with(
        rules: &RulesSignature,
        form: &GuardedForm,
        kind: AnalysisKind,
        budget: &Budget,
    ) -> CacheKey {
        let (rules_sig, rules_sig2) = rules.0;
        // Satisfiability depends only on the completion formula and the
        // schema — never on the initial instance (no spurious misses
        // across manager states of one form).
        let (initial_fp, initial_words) = if kind == AnalysisKind::Satisfiability {
            (0, Box::from(&[][..]))
        } else {
            form.initial().canon_key().into_parts()
        };
        CacheKey {
            key: Key {
                rules_sig,
                initial_fp,
                kind,
                budget: budget.clone(),
            },
            check: Check {
                rules_sig2,
                initial_words,
            },
        }
    }

    fn shard_of(key: &Key) -> usize {
        // Mix the two 64-bit halves; the low bits of either alone may
        // correlate with HashMap buckets inside the shard.
        ((key.rules_sig ^ key.initial_fp.rotate_left(32)) >> 59) as usize % SHARDS
    }

    /// Probe with a precomputed key, counting the hit, miss, or detected
    /// collision (a collision counts as a miss).
    pub fn get_keyed(&self, key: &CacheKey) -> Option<CachedVerdict> {
        let shard = &self.shards[Self::shard_of(&key.key)];
        let found = {
            let map = shard.lock().expect("cache shard poisoned");
            map.get(&key.key).map(|(check, v)| {
                if *check == key.check {
                    Some(v.clone())
                } else {
                    None
                }
            })
        };
        match found {
            Some(Some(v)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            Some(None) => {
                // Hashed key matched, confirmation payload did not: a
                // genuine 64-bit collision, detected rather than served.
                self.collisions.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Store a verdict under a precomputed key.
    pub fn put_keyed(&self, key: &CacheKey, v: CachedVerdict) {
        let shard = &self.shards[Self::shard_of(&key.key)];
        shard
            .lock()
            .expect("cache shard poisoned")
            .insert(key.key.clone(), (key.check.clone(), v));
    }

    /// Convenience probe: [`VerdictCache::key_for`] + [`VerdictCache::get_keyed`].
    pub fn get(
        &self,
        form: &GuardedForm,
        kind: AnalysisKind,
        budget: &Budget,
    ) -> Option<CachedVerdict> {
        self.get_keyed(&Self::key_for(form, kind, budget))
    }

    /// Convenience store: [`VerdictCache::key_for`] + [`VerdictCache::put_keyed`].
    pub fn put(&self, form: &GuardedForm, kind: AnalysisKind, budget: &Budget, v: CachedVerdict) {
        self.put_keyed(&Self::key_for(form, kind, budget), v);
    }

    /// Current hit/miss/collision/entry counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache shard poisoned").len())
                .sum(),
        }
    }

    /// Remove the entry stored under `key`, if present. The retraction
    /// primitive behind [`SessionDelta`]: published session verdicts can
    /// be withdrawn without clearing the whole cache.
    pub fn remove_keyed(&self, key: &CacheKey) -> bool {
        let shard = &self.shards[Self::shard_of(&key.key)];
        shard
            .lock()
            .expect("cache shard poisoned")
            .remove(&key.key)
            .is_some()
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock().expect("cache shard poisoned").clear();
        }
    }
}

/// The verdict-delta layer of incremental re-analysis: the set of cache
/// entries one retained session graph has published on its own behalf.
///
/// A session that answers vets from its retained graph still shares
/// those verdicts with the process-wide cache — but unlike a cold
/// analysis, the published entries are *tied to the graph's lifetime*:
/// if the graph is evicted (memory budget) the delta retracts exactly
/// the entries whose keyed initial state left the retained subgraph,
/// leaving every entry other sessions or cold analyses produced intact.
///
/// Publication deduplicates per canonical initial fingerprint, so a
/// state's verdict enters the cache once no matter how many vets hit it.
#[derive(Debug, Clone, Default)]
pub struct SessionDelta {
    /// `initial_fp → key` of every entry this session published.
    published: HashMap<u64, CacheKey>,
}

impl SessionDelta {
    /// An empty delta.
    pub fn new() -> SessionDelta {
        SessionDelta::default()
    }

    /// Publish a session-derived verdict to `cache` under `key`, unless
    /// this session already published an entry for the same canonical
    /// initial state.
    pub fn publish(&mut self, cache: &VerdictCache, key: CacheKey, v: CachedVerdict) {
        if let std::collections::hash_map::Entry::Vacant(e) =
            self.published.entry(key.key.initial_fp)
        {
            cache.put_keyed(&key, v);
            e.insert(key);
        }
    }

    /// Retract every published entry whose keyed initial state is no
    /// longer retained (per `retained`, judged on the canonical initial
    /// fingerprint). Full eviction passes `|_| false`. Returns how many
    /// entries were removed from the cache.
    pub fn retract_departed(
        &mut self,
        cache: &VerdictCache,
        retained: impl Fn(u64) -> bool,
    ) -> usize {
        let mut removed = 0;
        self.published.retain(|&fp, key| {
            if retained(fp) {
                true
            } else {
                if cache.remove_keyed(key) {
                    removed += 1;
                }
                false
            }
        });
        removed
    }

    /// Number of live published entries.
    pub fn len(&self) -> usize {
        self.published.len()
    }

    /// Is the delta empty?
    pub fn is_empty(&self) -> bool {
        self.published.is_empty()
    }
}

/// The 64-bit FNV-1a signature of everything in a guarded form *except*
/// the initial instance: schema text, default guard, per-edge rules, and
/// the completion formula — the same canonical ordering
/// `idar_core::serialize::to_ron` uses, minus the instance line.
pub fn rules_signature(form: &GuardedForm) -> u64 {
    rules_signatures(form).0
}

/// Both independent rule-signature streams in one serialization pass.
fn rules_signatures(form: &GuardedForm) -> (u64, u64) {
    let mut h = Fnv2::new();
    h.write(form.schema().to_text().as_bytes());
    h.write(form.rules().default_guard().to_string().as_bytes());
    for e in form.schema().edge_ids() {
        for right in [Right::Add, Right::Del] {
            let guard = form.rules().get(right, e);
            if guard != form.rules().default_guard() {
                h.write(form.schema().path_of(e).as_bytes());
                h.write(&[right as u8 + 1]);
                h.write(guard.to_string().as_bytes());
            }
        }
    }
    h.write(form.completion().to_string().as_bytes());
    h.finish()
}

/// Two incremental FNV-1a streams with distinct offset bases (and a
/// byte-rotated second stream), length-prefixed per field. The pair acts
/// as a 128-bit checksum: the first half keys the map, the second rides
/// in the confirmation payload.
struct Fnv2(u64, u64);

impl Fnv2 {
    fn new() -> Fnv2 {
        Fnv2(0xcbf29ce484222325, 0x84222325cbf29ce4)
    }

    fn write(&mut self, bytes: &[u8]) {
        // Length prefix keeps field boundaries unambiguous.
        for b in (bytes.len() as u32).to_le_bytes() {
            self.push(b);
        }
        for &b in bytes {
            self.push(b);
        }
    }

    #[inline]
    fn push(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100000001b3);
        self.1 = (self.1 ^ u64::from(b.rotate_left(3))).wrapping_mul(0x100000001b3);
    }

    fn finish(&self) -> (u64, u64) {
        (self.0, self.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::AnalysisKind;
    use idar_core::{AccessRules, Formula, Instance, Schema};
    use std::sync::Arc;

    fn form(initial: &str) -> GuardedForm {
        let schema = Arc::new(Schema::parse("a(b, c), s").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set(
            idar_core::Right::Add,
            schema.resolve("a").unwrap(),
            Formula::parse("!a").unwrap(),
        );
        let init = Instance::parse(schema.clone(), initial).unwrap();
        GuardedForm::new(schema, rules, init, Formula::parse("a").unwrap())
    }

    fn holds() -> CachedVerdict {
        CachedVerdict {
            verdict: Verdict::Holds,
            method: Method::BoundedExploration,
            fragment: idar_core::fragment::classify(&form("a(b)")),
            stats: SearchStats::default(),
        }
    }

    #[test]
    fn hits_quotient_by_isomorphism() {
        let cache = VerdictCache::new();
        let budget = Budget::default();
        let f1 = form("a(b, c), s");
        assert!(cache
            .get(&f1, AnalysisKind::Completability, &budget)
            .is_none());
        cache.put(&f1, AnalysisKind::Completability, &budget, holds());
        // An isomorphic initial instance (permuted siblings) hits.
        let f2 = form("s, a(c, b)");
        let hit = cache.get(&f2, AnalysisKind::Completability, &budget);
        assert_eq!(hit.unwrap().verdict, Verdict::Holds);
        // A different kind misses; a different instance misses.
        assert!(cache
            .get(&f2, AnalysisKind::Semisoundness, &budget)
            .is_none());
        assert!(cache
            .get(&form("a(b)"), AnalysisKind::Completability, &budget)
            .is_none());
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 3);
        assert_eq!(s.collisions, 0);
        assert_eq!(s.entries, 1);
        assert!(s.hit_rate() > 0.2 && s.hit_rate() < 0.3);
    }

    #[test]
    fn budget_is_part_of_the_key() {
        let cache = VerdictCache::new();
        let f = form("a(b)");
        let tight = Budget::with_limits(crate::ExploreLimits {
            max_states: 10,
            ..crate::ExploreLimits::small()
        });
        cache.put(
            &f,
            AnalysisKind::Completability,
            &tight,
            CachedVerdict {
                verdict: Verdict::Unknown,
                method: Method::BoundedExploration,
                fragment: idar_core::fragment::classify(&f),
                stats: SearchStats::default(),
            },
        );
        // A different budget must not see the tight-budget Unknown.
        assert!(cache
            .get(&f, AnalysisKind::Completability, &Budget::default())
            .is_none());
        assert!(cache
            .get(&f, AnalysisKind::Completability, &tight)
            .is_some());
    }

    #[test]
    fn satisfiability_entries_ignore_the_initial_instance() {
        let cache = VerdictCache::new();
        let budget = Budget::default();
        cache.put(
            &form("a(b)"),
            AnalysisKind::Satisfiability,
            &budget,
            holds(),
        );
        // Any other initial instance of the same rules hits (the tableau
        // never reads it)…
        assert!(cache
            .get(&form("s"), AnalysisKind::Satisfiability, &budget)
            .is_some());
        // …but the instance still separates the stateful kinds.
        assert!(cache
            .get(&form("s"), AnalysisKind::Completability, &budget)
            .is_none());
    }

    #[test]
    fn mismatched_confirmation_counts_as_collision() {
        let cache = VerdictCache::new();
        let budget = Budget::default();
        let f1 = form("a(b)");
        // Forge a key whose hashed half matches f1's entry but whose
        // confirmation payload differs (simulating a 64-bit collision).
        let real = VerdictCache::key_for(&f1, AnalysisKind::Completability, &budget);
        cache.put_keyed(&real, holds());
        let mut forged = real.clone();
        forged.check.initial_words = Box::from(&[42u32][..]);
        assert!(cache.get_keyed(&forged).is_none());
        let s = cache.stats();
        assert_eq!(s.collisions, 1);
        assert_eq!(s.misses, 1);
        // The genuine key still hits.
        assert!(cache.get_keyed(&real).is_some());
    }

    #[test]
    fn session_delta_publishes_once_and_retracts_departed() {
        let cache = VerdictCache::new();
        let budget = Budget::default();
        let mut delta = SessionDelta::new();
        let k1 = VerdictCache::key_for(&form("a(b)"), AnalysisKind::Completability, &budget);
        let k2 = VerdictCache::key_for(&form("a(b), s"), AnalysisKind::Completability, &budget);
        delta.publish(&cache, k1.clone(), holds());
        delta.publish(&cache, k1.clone(), holds()); // dedup: same initial state
        delta.publish(&cache, k2.clone(), holds());
        assert_eq!(delta.len(), 2);
        assert_eq!(cache.stats().entries, 2);

        // A foreign entry (cold analysis, other session) must survive
        // this session's retraction.
        let foreign = VerdictCache::key_for(&form("s"), AnalysisKind::Completability, &budget);
        cache.put_keyed(&foreign, holds());

        // Evict: nothing retained.
        let removed = delta.retract_departed(&cache, |_| false);
        assert_eq!(removed, 2);
        assert!(delta.is_empty());
        assert!(cache.get_keyed(&k1).is_none());
        assert!(cache.get_keyed(&k2).is_none());
        assert!(cache.get_keyed(&foreign).is_some());
    }

    #[test]
    fn remove_keyed_reports_presence() {
        let cache = VerdictCache::new();
        let budget = Budget::default();
        let key = VerdictCache::key_for(&form("a(b)"), AnalysisKind::Completability, &budget);
        assert!(!cache.remove_keyed(&key));
        cache.put_keyed(&key, holds());
        assert!(cache.remove_keyed(&key));
        assert!(cache.get_keyed(&key).is_none());
    }

    #[test]
    fn rules_signature_separates_rule_tables() {
        let f1 = form("a(b)");
        let schema = f1.schema().clone();
        let mut rules = AccessRules::new(&schema);
        rules.set(
            idar_core::Right::Del,
            schema.resolve("a").unwrap(),
            Formula::parse("!a").unwrap(),
        );
        let f2 = GuardedForm::new(
            schema.clone(),
            rules,
            Instance::parse(schema, "a(b)").unwrap(),
            Formula::parse("a").unwrap(),
        );
        assert_ne!(rules_signature(&f1), rules_signature(&f2));
        assert_eq!(rules_signature(&f1), rules_signature(&f1.clone()));
    }
}
