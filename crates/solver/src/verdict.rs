//! Three-valued verdicts with provenance.
//!
//! Table 1 contains undecidable cells and cells with open upper bounds, so
//! a production solver must be able to say "I don't know — and here is the
//! resource bound I hit". A verdict of `Holds`/`Fails` is only ever
//! produced by a code path whose exactness a theorem licenses, or by an
//! exhaustive search that provably closed the reachable state space.

use std::fmt;

/// The answer to a decision problem instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// The property holds (completable / semi-sound).
    Holds,
    /// The property fails; a witness/counterexample may accompany it.
    Fails,
    /// Search exhausted its resource budget before deciding.
    Unknown,
}

impl Verdict {
    /// `Holds` ⇒ `true`, `Fails` ⇒ `false`, `Unknown` ⇒ panic. For tests
    /// on inputs that are known to be decidable within bounds.
    pub fn expect_decided(self, context: &str) -> bool {
        match self {
            Verdict::Holds => true,
            Verdict::Fails => false,
            Verdict::Unknown => panic!("verdict unexpectedly Unknown: {context}"),
        }
    }

    /// Three-valued negation (`Holds` ⇄ `Fails`).
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Verdict {
        match self {
            Verdict::Holds => Verdict::Fails,
            Verdict::Fails => Verdict::Holds,
            Verdict::Unknown => Verdict::Unknown,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Holds => write!(f, "holds"),
            Verdict::Fails => write!(f, "fails"),
            Verdict::Unknown => write!(f, "unknown"),
        }
    }
}

/// Which algorithm produced a result, and with what exactness guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Thm 5.5 saturation — exact for `F(A+, φ+, ∞)`, polynomial time.
    PositiveSaturation,
    /// Thm 5.2 two-phase search — exact for `F(A+, φ−, k)` (NP).
    NpTwoPhase,
    /// Lemma 4.3 canonical-state search — exact for depth-1 forms.
    Depth1Canonical,
    /// Bounded isomorphism-deduplicated exploration — semi-decision. Exact
    /// only when the exploration *closed* (every reachable state visited,
    /// no limit hit), which the accompanying stats report.
    BoundedExploration,
    /// Semi-soundness by reachable-state enumeration with a per-state
    /// completability oracle.
    ReachableEnumeration,
    /// The Cor. 4.5 obligation tableau deciding completion-formula
    /// satisfiability over the schema (exact within its branch budget).
    SatTableau,
    /// The pre-exploration static screener ([`mod@crate::screen`]): may/must
    /// abstract interpretation plus a greedy chase, zero states expanded.
    /// Only sound (conclusive) screen verdicts are ever reported.
    StaticScreen,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::PositiveSaturation => "positive-saturation (Thm 5.5)",
            Method::NpTwoPhase => "np-two-phase (Thm 5.2)",
            Method::Depth1Canonical => "depth1-canonical (Lemma 4.3)",
            Method::BoundedExploration => "bounded-exploration",
            Method::ReachableEnumeration => "reachable-enumeration",
            Method::SatTableau => "sat-tableau (Cor 4.5)",
            Method::StaticScreen => "static-screen",
        };
        write!(f, "{s}")
    }
}

/// Search statistics shared by the solvers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Distinct states visited (after deduplication).
    pub states: usize,
    /// Updates expanded (edges of the state graph traversed).
    pub transitions: usize,
    /// Did the search exhaust the whole reachable space within limits?
    /// When `true`, negative answers are exact even in bounded mode.
    pub closed: bool,
    /// Which limit stopped the search, if any.
    pub limit_hit: Option<LimitKind>,
}

/// The resource limit that terminated a bounded search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitKind {
    /// The cap on distinct states.
    States,
    /// The cap on total instance size (nodes per state).
    StateSize,
    /// The cap on run depth (steps from the initial instance).
    Depth,
    /// The per-label sibling multiplicity cap.
    Multiplicity,
}

impl fmt::Display for LimitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LimitKind::States => "state-count limit",
            LimitKind::StateSize => "state-size limit",
            LimitKind::Depth => "depth limit",
            LimitKind::Multiplicity => "multiplicity cap",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negation() {
        assert_eq!(Verdict::Holds.not(), Verdict::Fails);
        assert_eq!(Verdict::Fails.not(), Verdict::Holds);
        assert_eq!(Verdict::Unknown.not(), Verdict::Unknown);
    }

    #[test]
    fn display() {
        assert_eq!(Verdict::Holds.to_string(), "holds");
        assert!(Method::PositiveSaturation.to_string().contains("5.5"));
        assert_eq!(LimitKind::States.to_string(), "state-count limit");
    }

    #[test]
    #[should_panic(expected = "unexpectedly Unknown")]
    fn expect_decided_panics_on_unknown() {
        Verdict::Unknown.expect_decided("test");
    }
}
