//! Witness-tree extraction — the constructive content of **Lemma 4.4**.
//!
//! Given an instance `I` whose root satisfies φ, extract an embedded
//! subtree `T' ⊆ I` that still satisfies φ and whose branching factor is
//! linear in `|φ|`. The construction walks φ's step normal form in
//! negation normal form and keeps exactly the nodes the Lemma's *selection*
//! rules demand:
//!
//! * positive child obligations keep one witnessing child each (preferring
//!   already-kept children, which is what yields the linear bound);
//! * negative child obligations `¬l[ξ]` push `nnf(¬ξ)` into every kept
//!   `l`-child, present and future;
//! * parent obligations keep/annotate the parent (subtree-closure keeps
//!   ancestors automatically).
//!
//! Used by the solvers to shrink counterexample instances to something a
//! form designer can read.

use idar_core::formula::StepFormula;
use idar_core::{Formula, InstNodeId, Instance};
use std::collections::{HashMap, HashSet, VecDeque};

/// Extract a small sub-instance of `inst` whose root still satisfies `f`.
///
/// Precondition: `f` holds at the root of `inst` (returns `None`
/// otherwise). The result keeps the root and is transitively
/// parent-closed; its branching factor is at most linear in `f.size()`
/// (Lemma 4.4).
pub fn extract_witness(inst: &Instance, f: &Formula) -> Option<Instance> {
    if !idar_core::formula::holds_at_root(inst, f) {
        return None;
    }
    let step = StepFormula::from_formula(f).nnf();

    let mut keep: HashSet<InstNodeId> = HashSet::new();
    keep.insert(InstNodeId::ROOT);
    // (label → pushed constraint) per node, applied to kept l-children.
    let mut constraints: HashMap<InstNodeId, Vec<(String, StepFormula)>> = HashMap::new();
    let mut done: HashSet<(InstNodeId, StepFormula)> = HashSet::new();
    let mut queue: VecDeque<(InstNodeId, StepFormula)> = VecDeque::new();
    queue.push_back((InstNodeId::ROOT, step));

    while let Some((n, ob)) = queue.pop_front() {
        if !done.insert((n, ob.clone())) {
            continue;
        }
        debug_assert!(ob.holds(inst, n), "invariant: queued obligations hold in I");
        match ob {
            StepFormula::True => {}
            StepFormula::False => unreachable!("False cannot hold in I"),
            StepFormula::And(a, b) => {
                queue.push_back((n, *a));
                queue.push_back((n, *b));
            }
            StepFormula::Or(a, b) => {
                // Select a satisfied disjunct (Lemma 4.4's selection rule 6).
                if a.holds(inst, n) {
                    queue.push_back((n, *a));
                } else {
                    queue.push_back((n, *b));
                }
            }
            StepFormula::Child(l) => {
                let c =
                    pick_child(inst, &keep, n, &l, &StepFormula::True).expect("child exists in I");
                keep_node(inst, &mut keep, &constraints, &mut queue, c);
            }
            StepFormula::ChildSat(l, psi) => {
                let c = pick_child(inst, &keep, n, &l, &psi).expect("witness child exists");
                keep_node(inst, &mut keep, &constraints, &mut queue, c);
                queue.push_back((c, *psi));
            }
            StepFormula::Parent => {
                // Ancestors are always kept (subtree closure).
            }
            StepFormula::ParentSat(psi) => {
                let p = inst.parent(n).expect("ParentSat holds, so parent exists");
                queue.push_back((p, *psi));
            }
            StepFormula::Not(inner) => match *inner {
                // ¬l: I has no such children, so neither does T'.
                StepFormula::Child(_) => {}
                StepFormula::ChildSat(l, xi) => {
                    let neg = StepFormula::Not(xi).nnf();
                    // Push to kept l-children, present…
                    for c in inst.children_with_label(n, &l) {
                        if keep.contains(&c) {
                            queue.push_back((c, neg.clone()));
                        }
                    }
                    // …and future.
                    constraints.entry(n).or_default().push((l, neg));
                }
                StepFormula::Parent => {}
                StepFormula::ParentSat(psi) => {
                    if let Some(p) = inst.parent(n) {
                        queue.push_back((p, StepFormula::Not(psi).nnf()));
                    }
                }
                StepFormula::True => unreachable!("¬true cannot hold"),
                StepFormula::False => {}
                other => queue.push_back((n, StepFormula::Not(Box::new(other)).nnf())),
            },
        }
        // Late-arriving constraints: nothing to do here because
        // `constraints` is consulted when a node is kept, and pushing a
        // constraint walks existing kept children immediately.
    }

    // Materialise the kept subtree.
    let mut out = Instance::empty(inst.schema().clone());
    let mut map: HashMap<InstNodeId, InstNodeId> = HashMap::new();
    map.insert(InstNodeId::ROOT, InstNodeId::ROOT);
    for n in inst.live_nodes() {
        if n == InstNodeId::ROOT || !keep.contains(&n) {
            continue;
        }
        let p = inst.parent(n).expect("non-root");
        let np = map[&p];
        let nn = out
            .add_child(np, inst.schema_node(n))
            .expect("kept subtree preserves schema");
        map.insert(n, nn);
    }
    debug_assert!(
        idar_core::formula::holds_at_root(&out, f),
        "Lemma 4.4 witness must satisfy the formula"
    );
    Some(out)
}

/// Prefer an already-kept child satisfying `psi`; otherwise any child.
fn pick_child(
    inst: &Instance,
    keep: &HashSet<InstNodeId>,
    n: InstNodeId,
    label: &str,
    psi: &StepFormula,
) -> Option<InstNodeId> {
    let mut fallback = None;
    for c in inst.children_with_label(n, label) {
        if psi.holds(inst, c) {
            if keep.contains(&c) {
                return Some(c);
            }
            fallback.get_or_insert(c);
        }
    }
    fallback
}

/// Keep `c` (ancestors are kept already — we only descend from kept nodes)
/// and apply any recorded per-label constraints of its parent.
fn keep_node(
    inst: &Instance,
    keep: &mut HashSet<InstNodeId>,
    constraints: &HashMap<InstNodeId, Vec<(String, StepFormula)>>,
    queue: &mut VecDeque<(InstNodeId, StepFormula)>,
    c: InstNodeId,
) {
    if !keep.insert(c) {
        return;
    }
    let p = inst.parent(c).expect("kept nodes are non-root here");
    if let Some(cs) = constraints.get(&p) {
        let label = inst.label(c);
        for (l, g) in cs {
            if l == label {
                queue.push_back((c, g.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::Schema;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::parse("a(b, c, d), s, t").unwrap())
    }

    fn check(inst_text: &str, formula: &str) -> Instance {
        let inst = Instance::parse(schema(), inst_text).unwrap();
        let f = Formula::parse(formula).unwrap();
        let w = extract_witness(&inst, &f).expect("formula holds");
        assert!(
            idar_core::formula::holds_at_root(&w, &f),
            "witness must satisfy {formula}"
        );
        assert!(w.live_count() <= inst.live_count());
        w
    }

    #[test]
    fn drops_irrelevant_branches() {
        let w = check("a(b), a(c), a(d), s, t", "a[b] & s");
        // Only the a(b) branch and s are needed: root + a + b + s = 4.
        assert_eq!(w.live_count(), 4);
    }

    #[test]
    fn duplicate_witnesses_collapse_to_one() {
        let w = check("a(b), a(b), a(b), a(b)", "a[b]");
        assert_eq!(w.live_count(), 3); // root + one a + its b
    }

    #[test]
    fn universal_constraints_propagate() {
        // ¬a[¬b]: all a's have b. Keeping any a forces keeping (or
        // verifying) its b under the pushed constraint.
        let w = check("a(b), a(b, c)", "a & !a[!b]");
        let f = Formula::parse("a & !a[!b]").unwrap();
        assert!(idar_core::formula::holds_at_root(&w, &f));
        // The kept a must still have its b (else the universal would
        // become vacuous *but the positive a obligation keeps one a*, and
        // the constraint re-checks b under it).
        assert!(w.live_count() >= 3);
    }

    #[test]
    fn branching_bound() {
        // Lots of duplicate children in I; witness branching stays ≤ |φ|.
        let mut text = String::new();
        for _ in 0..50 {
            text.push_str("a(b), ");
        }
        text.push_str("s, t");
        let f_text = "a[b] & a[c | b] & s & (t | zz)";
        let inst = Instance::parse(schema(), &text).unwrap();
        let f = Formula::parse(f_text).unwrap();
        let w = extract_witness(&inst, &f).unwrap();
        let max_children = w.live_nodes().map(|n| w.children(n).len()).max().unwrap();
        assert!(
            max_children <= f.size(),
            "branching {max_children} exceeds |φ| = {}",
            f.size()
        );
    }

    #[test]
    fn returns_none_when_formula_fails() {
        let inst = Instance::parse(schema(), "a(b)").unwrap();
        let f = Formula::parse("s").unwrap();
        assert!(extract_witness(&inst, &f).is_none());
    }

    #[test]
    fn parent_obligations() {
        // a[../s]: the witness must keep s (a's sibling) for the upward
        // reference.
        let w = check("a(b), s, t", "a[../s]");
        let labels: Vec<&str> = w
            .children(InstNodeId::ROOT)
            .iter()
            .map(|&c| w.label(c))
            .collect();
        assert!(labels.contains(&"a"));
        assert!(labels.contains(&"s"));
        assert!(!labels.contains(&"t"));
    }

    #[test]
    fn nested_negative_obligations() {
        let w = check("a(b, c), a(c, d), s", "!a[!c] & a[b]");
        let f = Formula::parse("!a[!c] & a[b]").unwrap();
        assert!(idar_core::formula::holds_at_root(&w, &f));
    }
}
