//! **Exact polynomial-time** completability for `F(A+, φ+, ∞)` — Thm 5.5.
//!
//! With positive (negation-free) access rules, guards are *monotone* under
//! edge additions: adding an edge can only turn guards from false to true.
//! With a positive completion formula, deletions can never help either
//! (they only falsify positive formulas and never enable anything). The
//! paper's argument then shows a guarded form is completable iff the
//! *saturation* — obtained by adding as many edges as possible while never
//! duplicating a sibling label — satisfies φ. Positive formulas are
//! multiplicity-blind, so one copy per (node, schema-edge) suffices, which
//! bounds the saturated instance by `|I₀| · |M|` nodes and yields the
//! polynomial bound.

use crate::verdict::{SearchStats, Verdict};
use idar_core::{GuardedForm, Instance, Right, Update};

/// Why the positive solver refused a form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPositive {
    /// Human-readable description of the offending formula.
    pub offender: String,
}

impl std::fmt::Display for NotPositive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "form is outside F(A+, phi+, inf): {} contains negation",
            self.offender
        )
    }
}

impl std::error::Error for NotPositive {}

/// The saturation result.
#[derive(Debug, Clone)]
pub struct PositiveAnswer {
    /// `Holds` iff the saturated instance satisfies the completion formula
    /// (exact, Thm 5.5).
    pub verdict: Verdict,
    /// The saturated instance.
    pub saturated: Instance,
    /// The additions performed, in order — a valid run from the initial
    /// instance to the saturated instance. When the verdict is `Holds`
    /// this is a complete run.
    pub run: Vec<Update>,
    /// Saturation statistics (states = saturation steps + 1).
    pub stats: SearchStats,
}

/// Check the `F(A+, φ+, ·)` preconditions.
pub fn check_positive(form: &GuardedForm) -> Result<(), NotPositive> {
    if !form.completion().is_positive() {
        return Err(NotPositive {
            offender: format!("completion formula `{}`", form.completion()),
        });
    }
    for e in form.schema().edge_ids() {
        for right in [Right::Add, Right::Del] {
            let g = form.rules().get(right, e);
            if !g.is_positive() {
                return Err(NotPositive {
                    offender: format!("A({right}, {}) = `{g}`", form.schema().path_of(e)),
                });
            }
        }
    }
    Ok(())
}

/// Decide completability of a form in `F(A+, φ+, ∞)` (Thm 5.5). Exact.
pub fn completability_positive(form: &GuardedForm) -> Result<PositiveAnswer, NotPositive> {
    check_positive(form)?;
    let (saturated, run, stats) = saturate(form);
    let verdict = if form.is_complete(&saturated) {
        Verdict::Holds
    } else {
        Verdict::Fails
    };
    Ok(PositiveAnswer {
        verdict,
        saturated,
        run,
        stats,
    })
}

/// Monotone saturation: repeatedly add any allowed edge whose parent does
/// not already have a child along the same schema edge, to fixpoint.
///
/// The run returned is valid (each addition's guard held when applied).
/// Exposed separately because the semi-soundness checker uses it as a
/// per-state completability oracle.
pub fn saturate(form: &GuardedForm) -> (Instance, Vec<Update>, SearchStats) {
    let schema = form.schema().clone();
    let mut inst = form.initial().clone();
    let mut run = Vec::new();
    let mut stats = SearchStats {
        closed: true,
        ..Default::default()
    };
    loop {
        let mut progressed = false;
        // Snapshot node list: newly added nodes are picked up on the next
        // sweep (they are leaves; their own children need a fresh guard
        // evaluation anyway).
        let nodes: Vec<_> = inst.live_nodes().collect();
        for n in nodes {
            let sn = inst.schema_node(n);
            for &edge in schema.children(sn) {
                if inst.children_at(n, edge).next().is_some() {
                    continue; // never duplicate a sibling label
                }
                stats.transitions += 1;
                let guard = form.rules().get(Right::Add, edge);
                if idar_core::formula::holds(&inst, n, guard) {
                    let u = Update::Add { parent: n, edge };
                    form.apply_unchecked(&mut inst, &u)
                        .expect("guard checked, schema edge valid");
                    run.push(u);
                    progressed = true;
                }
            }
        }
        stats.states += 1; // one sweep
        if !progressed {
            return (inst, run, stats);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::{AccessRules, Formula, Schema};
    use std::sync::Arc;

    fn form(schema: &str, rules: &[(&str, &str)], initial: &str, completion: &str) -> GuardedForm {
        let schema = Arc::new(Schema::parse(schema).unwrap());
        let mut table = AccessRules::new(&schema);
        for (l, add) in rules {
            table.set(
                Right::Add,
                schema.resolve(l).unwrap(),
                Formula::parse(add).unwrap(),
            );
        }
        let init = Instance::parse(schema.clone(), initial).unwrap();
        GuardedForm::new(schema, table, init, Formula::parse(completion).unwrap())
    }

    #[test]
    fn chain_completes() {
        // b needs a, c needs b — saturation threads the chain.
        let g = form(
            "a, b, c",
            &[("a", "true"), ("b", "a"), ("c", "b")],
            "",
            "a & b & c",
        );
        let ans = completability_positive(&g).unwrap();
        assert_eq!(ans.verdict, Verdict::Holds);
        assert!(g.is_complete_run(&ans.run));
        assert_eq!(ans.run.len(), 3);
    }

    #[test]
    fn unreachable_guard_fails() {
        // c's guard mentions a label that can never appear.
        let g = form("a, c", &[("a", "true"), ("c", "zz")], "", "c");
        let ans = completability_positive(&g).unwrap();
        assert_eq!(ans.verdict, Verdict::Fails);
    }

    #[test]
    fn deep_saturation() {
        // Each level requires the previous one; depth 4.
        let g = form(
            "a(b(c(d)))",
            &[
                ("a", "true"),
                ("a/b", "true"),
                ("a/b/c", "..[..[a[b]]]"),
                ("a/b/c/d", "true"),
            ],
            "",
            "a/b/c/d",
        );
        let ans = completability_positive(&g).unwrap();
        assert_eq!(ans.verdict, Verdict::Holds);
        assert!(g.is_complete_run(&ans.run));
    }

    #[test]
    fn initial_duplicates_preserved_but_not_extended() {
        // The initial instance has duplicate `p` siblings; saturation must
        // not add more, but must extend each with children.
        let g = form(
            "a(p(b)), s",
            &[
                ("a", "true"),
                ("a/p", "true"),
                ("a/p/b", "true"),
                ("s", "a/p[b]"),
            ],
            "a(p, p)",
            "s",
        );
        let ans = completability_positive(&g).unwrap();
        assert_eq!(ans.verdict, Verdict::Holds);
        // Both existing p's got their b (guards are per-parent), no third p.
        let a = ans
            .saturated
            .children_with_label(idar_core::InstNodeId::ROOT, "a")
            .next()
            .unwrap();
        assert_eq!(ans.saturated.children_with_label(a, "p").count(), 2);
    }

    #[test]
    fn rejects_negative_rules() {
        let g = form("a", &[("a", "!a")], "", "a");
        let err = completability_positive(&g).unwrap_err();
        assert!(err.offender.contains("A(add, a)"));
    }

    #[test]
    fn rejects_negative_completion() {
        let g = form("a", &[("a", "true")], "", "!a");
        let err = completability_positive(&g).unwrap_err();
        assert!(err.offender.contains("completion"));
    }

    #[test]
    fn saturation_is_a_valid_run() {
        let g = form(
            "x, y, z",
            &[("x", "true"), ("y", "x"), ("z", "x & y")],
            "",
            "z",
        );
        let (sat, run, _) = saturate(&g);
        let replayed = g.replay(&run).unwrap();
        assert!(replayed.last().isomorphic(&sat));
    }

    #[test]
    fn true_default_guards() {
        let schema = Arc::new(Schema::parse("x1, x2, x3").unwrap());
        let table = AccessRules::with_default(&schema, Formula::True);
        let init = Instance::empty(schema.clone());
        let g = GuardedForm::new(schema, table, init, Formula::parse("x1 & x2 & x3").unwrap());
        let ans = completability_positive(&g).unwrap();
        assert_eq!(ans.verdict, Verdict::Holds);
        assert_eq!(ans.saturated.live_count(), 4);
    }
}
