//! Bounded explicit-state exploration of a guarded form's run space.
//!
//! States live in the shared hash-consed [`StateStore`]: deduplicated
//! — under the default [`SymmetryMode::Reduced`] — *up to isomorphism*
//! via interned canonical encodings, which preserve sibling multiplicity.
//! This is deliberately **not** the bisimulation quotient: Lemma 4.3
//! makes the canonical-instance abstraction sound for depth-1 forms only,
//! and Thm 4.1 shows that at depth ≥ 2 multiplicities carry real
//! information (they encode counter values!). The depth-1 fast path lives
//! in [`crate::depth1`]; this explorer is the general-purpose engine.
//! [`SymmetryMode::Plain`] turns the symmetry reduction off (states are
//! ordered trees) — the ablation baseline the differential fuzzer and the
//! `reproduce` harness compare against.
//!
//! Because completability is undecidable in general (Thm 4.1), the
//! exploration is bounded, and the outcome records whether the search
//! *closed* — i.e. exhausted every reachable state without hitting a limit.
//! When it closed, negative answers are exact; otherwise they are reported
//! as [`Verdict::Unknown`](crate::Verdict) by the callers.
//!
//! # Execution modes
//!
//! The explorer has two interchangeable engines:
//!
//! * **Sequential BFS** — one FIFO queue, one [`StateStore`]. Always
//!   available; state indices follow discovery order.
//! * **Parallel layered BFS** (cargo feature `parallel`, on by default) —
//!   each BFS layer's frontier is split across worker threads; successors
//!   are deduplicated through a lock-striped [`SharedInterner`] and merged
//!   into the store sequentially (worker-chunk order, then discovery
//!   order within a worker). See `docs/ARCHITECTURE.md` for the
//!   shard/merge diagram.
//!
//! Both engines visit exactly the same state set, report the same
//! [`SearchStats::closed`] flag and the same `states` count, and find
//! goals at the same BFS depth; these invariants are independent of
//! thread scheduling. What *may* vary — between the engines and, for the
//! parallel engine, between runs (when two workers race to intern the
//! same state, the OS scheduler picks the discoverer that supplies its
//! parent pointer and merge position) — is state numbering, which
//! same-depth goal state is returned first, and the `transitions` count
//! of searches that stop early (the parallel engine finishes its layer).
//! Use `.with_threads(1)` when bit-identical graphs across runs matter.
//! The differential tests in this module and in
//! `tests/parallel_differential.rs` pin these guarantees down.
//!
//! [`SharedInterner`]: idar_core::SharedInterner

use crate::store::{StateId, StateStore, SuccessorTable, SymmetryMode};
use crate::verdict::{LimitKind, SearchStats};
use idar_core::{GuardedForm, Instance, Update};

/// Resource limits for bounded exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExploreLimits {
    /// Maximum number of distinct states to visit.
    pub max_states: usize,
    /// Maximum live-node count per instance; additions beyond it are pruned.
    pub max_state_size: usize,
    /// Maximum run length (steps from the initial instance).
    pub max_depth: usize,
    /// If set, prune additions that would give a parent more than this many
    /// children along one schema edge. Sound completeness bounds for this
    /// cap exist in fragment `F(A+, φ−, k)` (Thm 5.2 / Lemma 4.4); the
    /// [`crate::np`] solver computes one. Elsewhere it is a heuristic and
    /// de-closes the search.
    pub multiplicity_cap: Option<usize>,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_states: 200_000,
            max_state_size: 160,
            max_depth: usize::MAX,
            multiplicity_cap: None,
        }
    }
}

impl ExploreLimits {
    /// Limits suitable for small exhaustive checks in tests.
    pub fn small() -> Self {
        ExploreLimits {
            max_states: 20_000,
            max_state_size: 64,
            max_depth: usize::MAX,
            multiplicity_cap: None,
        }
    }
}

/// The result of an exploration.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// A run (update sequence from the initial instance) reaching the first
    /// goal state found, if any.
    pub goal_run: Option<Vec<Update>>,
    /// Search statistics; `stats.closed` reports exhaustiveness.
    pub stats: SearchStats,
}

/// The reachable state graph produced by [`Explorer::graph`]: the
/// hash-consed [`StateStore`] (states, provenance) plus the compact CSR
/// successor table.
#[derive(Debug, Clone)]
pub struct StateGraph {
    /// The interned states with BFS provenance; index 0 is the initial
    /// instance.
    pub store: StateStore,
    /// CSR successor adjacency (empty for goal searches, which skip edge
    /// collection).
    pub succ: SuccessorTable,
    /// Search statistics.
    pub stats: SearchStats,
}

impl StateGraph {
    /// Number of explored states.
    pub fn state_count(&self) -> usize {
        self.store.len()
    }

    /// The state instances, indexed by state id (index 0 = initial).
    pub fn states(&self) -> &[Instance] {
        self.store.states()
    }

    /// The instance of state `i`.
    pub fn state(&self, i: usize) -> &Instance {
        self.store.get(StateId(i as u32))
    }

    /// BFS depth of state `i`.
    pub fn depth_of(&self, i: usize) -> usize {
        self.store.depth(StateId(i as u32))
    }

    /// Outgoing `(update, successor)` edges of state `i`.
    pub fn successors(&self, i: usize) -> &[(Update, StateId)] {
        self.succ.successors(StateId(i as u32))
    }

    /// Total number of explored edges.
    pub fn edge_count(&self) -> usize {
        self.succ.edge_count()
    }

    /// Reconstruct the update sequence leading from the initial instance to
    /// state `i` (replayable via [`GuardedForm::replay`]).
    pub fn run_to(&self, i: usize) -> Vec<Update> {
        self.store.run_to(StateId(i as u32))
    }
}

/// Number of worker threads the explorer uses by default: all available
/// cores with the `parallel` feature, 1 without.
pub fn default_threads() -> usize {
    if cfg!(feature = "parallel") {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        1
    }
}

/// Bounded breadth-first explorer over a guarded form's instances.
///
/// ```
/// use idar_core::leave;
/// use idar_solver::{ExploreLimits, Explorer};
///
/// let form = leave::example_3_12();
/// let explorer = Explorer::new(&form, ExploreLimits::small()).with_threads(2);
/// let out = explorer.find(|i| form.is_complete(i));
/// let run = out.goal_run.expect("the leave form is completable");
/// assert!(form.is_complete_run(&run));
/// ```
#[derive(Debug, Clone)]
pub struct Explorer<'a> {
    form: &'a GuardedForm,
    limits: ExploreLimits,
    threads: usize,
    symmetry: SymmetryMode,
}

impl<'a> Explorer<'a> {
    /// An explorer over `form` with the given limits, the default
    /// thread count ([`default_threads`]), and symmetry reduction on.
    pub fn new(form: &'a GuardedForm, limits: ExploreLimits) -> Self {
        Explorer {
            form,
            limits,
            threads: default_threads(),
            symmetry: SymmetryMode::Reduced,
        }
    }

    /// Set the worker-thread count. `1` forces the sequential engine;
    /// values above 1 use the parallel layered engine when the `parallel`
    /// feature is enabled (and fall back to sequential otherwise).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Select the state-space quotient: [`SymmetryMode::Reduced`]
    /// (default, isomorphism classes) or [`SymmetryMode::Plain`] (ordered
    /// trees — no symmetry reduction, for ablations and differential
    /// testing).
    pub fn with_symmetry(mut self, symmetry: SymmetryMode) -> Self {
        self.symmetry = symmetry;
        self
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured symmetry mode.
    pub fn symmetry(&self) -> SymmetryMode {
        self.symmetry
    }

    /// BFS from the initial instance until `goal` holds for some state (or
    /// the space/limits are exhausted). Returns the shortest-in-BFS run to
    /// the goal, if found.
    pub fn find(&self, goal: impl Fn(&Instance) -> bool + Sync) -> ExploreOutcome {
        #[cfg(feature = "parallel")]
        if self.threads > 1 {
            let g = self.run_parallel(Some(&goal), false);
            return ExploreOutcome {
                goal_run: g.goal.map(|i| g.graph.store.run_to(i)),
                stats: g.graph.stats,
            };
        }
        let mut goal = goal;
        let g = self.run(Some(&mut goal), false);
        ExploreOutcome {
            goal_run: g.goal.map(|i| g.graph.store.run_to(i)),
            stats: g.graph.stats,
        }
    }

    /// Exhaustively (within limits) build the reachable state graph.
    pub fn graph(&self) -> StateGraph {
        #[cfg(feature = "parallel")]
        if self.threads > 1 {
            return self.run_parallel(None, true).graph;
        }
        self.run(None, true).graph
    }

    /// The sequential engine: FIFO BFS over a [`StateStore`].
    ///
    /// Dense [`StateId`]s are assigned in discovery order, so an id
    /// doubles as the state's index — no side table.
    fn run(
        &self,
        mut goal: Option<&mut dyn FnMut(&Instance) -> bool>,
        want_edges: bool,
    ) -> RunResult {
        let mut stats = SearchStats::default();
        let mut store = StateStore::new(self.symmetry);
        let mut triples: Vec<(StateId, Update, StateId)> = Vec::new();
        let finish =
            |store, triples, stats, goal| finish_run(store, triples, stats, goal, want_edges);

        let initial = self.form.initial().clone();
        let (root, _) = store.intern(initial, None);
        debug_assert_eq!(root, StateId(0));
        stats.states = 1;

        if let Some(goal) = goal.as_deref_mut() {
            if goal(store.get(root)) {
                stats.closed = true;
                return finish(store, triples, stats, Some(root));
            }
        }

        let mut queue: std::collections::VecDeque<StateId> = std::collections::VecDeque::new();
        queue.push_back(root);
        let mut pruned = false;

        while let Some(i) = queue.pop_front() {
            if store.depth(i) >= self.limits.max_depth {
                // Unexpanded frontier state: search no longer exhaustive
                // (unless the state has no successors at all, checked below).
                if !self.form.allowed_updates(store.get(i)).is_empty() {
                    pruned = true;
                    stats.limit_hit = Some(LimitKind::Depth);
                }
                continue;
            }
            let updates = self.form.allowed_updates(store.get(i));
            for u in updates {
                stats.transitions += 1;
                if let Update::Add { parent, edge } = u {
                    if store.get(i).live_count() >= self.limits.max_state_size {
                        pruned = true;
                        stats.limit_hit = Some(LimitKind::StateSize);
                        continue;
                    }
                    if let Some(cap) = self.limits.multiplicity_cap {
                        if store.get(i).children_at(parent, edge).count() >= cap {
                            pruned = true;
                            stats.limit_hit = Some(LimitKind::Multiplicity);
                            continue;
                        }
                    }
                }
                let mut next = store.get(i).clone();
                self.form
                    .apply_unchecked(&mut next, &u)
                    .expect("allowed updates apply");
                let (j, is_new) = store.intern(next, Some((i, u)));
                if want_edges {
                    triples.push((i, u, j));
                }
                if !is_new {
                    continue;
                }
                stats.states += 1;

                if let Some(goal) = goal.as_deref_mut() {
                    if goal(store.get(j)) {
                        return finish(store, triples, stats, Some(j));
                    }
                }

                if stats.states >= self.limits.max_states {
                    stats.limit_hit = Some(LimitKind::States);
                    return finish(store, triples, stats, None);
                }
                queue.push_back(j);
            }
        }

        stats.closed = !pruned;
        finish(store, triples, stats, None)
    }

    /// The parallel engine: layered BFS. Each layer's frontier is split
    /// into contiguous chunks, one per worker; workers expand their chunk
    /// against a [`SharedInterner`](idar_core::SharedInterner) and the
    /// single merge step (sequential, in chunk order) interns states into
    /// the [`StateStore`]. Narrow frontiers are expanded inline —
    /// per-layer thread spawns only pay off once a layer offers real work
    /// per worker.
    #[cfg(feature = "parallel")]
    fn run_parallel(
        &self,
        goal: Option<&(dyn Fn(&Instance) -> bool + Sync)>,
        want_edges: bool,
    ) -> RunResult {
        use idar_core::{CanonKey, IsoCode, SharedInterner};

        /// A state discovered (won the intern race) by one worker.
        struct NewState {
            inst: Instance,
            key: CanonKey,
            code: IsoCode,
            parent: StateId,
            update: Update,
            is_goal: bool,
        }

        /// One worker's layer output, merged in chunk order.
        #[derive(Default)]
        struct WorkerOut {
            new_states: Vec<NewState>,
            pend_edges: Vec<(StateId, Update, IsoCode)>,
            transitions: usize,
            pruned: Option<LimitKind>,
        }

        let form = self.form;
        let limits = self.limits;
        let symmetry = self.symmetry;

        // Expand the frontier slice `chunk`, mirroring the sequential
        // inner loop exactly (same prune checks, same goal policy: goal is
        // evaluated only on newly discovered states).
        let expand = |chunk: &[StateId], states: &[Instance], interner: &SharedInterner| {
            let mut out = WorkerOut::default();
            for &i in chunk {
                let state = &states[i.index()];
                for u in form.allowed_updates(state) {
                    out.transitions += 1;
                    if let Update::Add { parent, edge } = u {
                        if state.live_count() >= limits.max_state_size {
                            out.pruned = Some(LimitKind::StateSize);
                            continue;
                        }
                        if let Some(cap) = limits.multiplicity_cap {
                            if state.children_at(parent, edge).count() >= cap {
                                out.pruned = Some(LimitKind::Multiplicity);
                                continue;
                            }
                        }
                    }
                    let mut next = state.clone();
                    form.apply_unchecked(&mut next, &u)
                        .expect("allowed updates apply");
                    let key = match symmetry {
                        SymmetryMode::Reduced => next.canon_key(),
                        SymmetryMode::Plain => next.ordered_key(),
                    };
                    let (code, is_new) = interner.intern_ref(&key);
                    if want_edges {
                        out.pend_edges.push((i, u, code));
                    }
                    if is_new {
                        let is_goal = goal.is_some_and(|g| g(&next));
                        out.new_states.push(NewState {
                            inst: next,
                            key,
                            code,
                            parent: i,
                            update: u,
                            is_goal,
                        });
                    }
                }
            }
            out
        };

        let mut stats = SearchStats::default();
        let mut store = StateStore::new(self.symmetry);
        let mut triples: Vec<(StateId, Update, StateId)> = Vec::new();
        let interner = SharedInterner::new();
        let initial = form.initial().clone();
        let (c0, _) = interner.intern(store.key_of(&initial));
        debug_assert_eq!(c0.index(), 0);
        let (root, _) = store.intern(initial, None);
        stats.states = 1;

        let finish =
            |store, triples, stats, goal| finish_run(store, triples, stats, goal, want_edges);

        if let Some(g) = goal {
            if g(store.get(root)) {
                stats.closed = true;
                return finish(store, triples, stats, Some(root));
            }
        }

        // `code_to_state[c]` is the state id of interned code `c`
        // (u32::MAX while the code's state is still awaiting merge).
        let mut code_to_state: Vec<u32> = vec![0];
        let mut frontier: Vec<StateId> = vec![root];
        let mut cur_depth = 0usize;
        let mut pruned = false;

        loop {
            if frontier.is_empty() {
                stats.closed = !pruned;
                break;
            }
            if cur_depth >= limits.max_depth {
                // Unexpanded frontier: exhaustiveness is lost iff any
                // frontier state still has successors.
                if frontier
                    .iter()
                    .any(|&i| !form.allowed_updates(store.get(i)).is_empty())
                {
                    pruned = true;
                    stats.limit_hit = Some(LimitKind::Depth);
                }
                stats.closed = !pruned;
                break;
            }

            // --- expand: fan the frontier out over the workers ---------
            // Deep, narrow spaces (e.g. the Thm 4.1 machine simulations,
            // whose layers hold a handful of states) would pay a
            // spawn/join round-trip per layer for no parallelism; expand
            // those inline and only spawn once each worker gets a
            // meaningful chunk.
            const MIN_STATES_PER_WORKER: usize = 4;
            let workers = self
                .threads
                .min(frontier.len() / MIN_STATES_PER_WORKER)
                .max(1);
            let chunk_len = frontier.len().div_ceil(workers);
            let outs: Vec<WorkerOut> = if workers == 1 {
                vec![expand(&frontier, store.states(), &interner)]
            } else {
                let states_ref = store.states();
                let interner_ref = &interner;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = frontier
                        .chunks(chunk_len)
                        .map(|chunk| scope.spawn(move || expand(chunk, states_ref, interner_ref)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker panicked"))
                        .collect()
                })
            };

            // --- merge: deterministic (chunk order, then worker order) -
            let mut layer_edges: Vec<Vec<(StateId, Update, IsoCode)>> =
                Vec::with_capacity(outs.len());
            let mut layer_new: Vec<Vec<NewState>> = Vec::with_capacity(outs.len());
            for out in outs {
                stats.transitions += out.transitions;
                if let Some(k) = out.pruned {
                    pruned = true;
                    stats.limit_hit = Some(k);
                }
                layer_edges.push(out.pend_edges);
                layer_new.push(out.new_states);
            }
            code_to_state.resize(interner.len(), u32::MAX);
            let mut next_frontier = Vec::new();
            let mut found_goal = None;
            'merge: for chunk in layer_new {
                for ns in chunk {
                    let is_goal = ns.is_goal;
                    let (j, is_new) =
                        store.intern_keyed(ns.key, ns.inst, Some((ns.parent, ns.update)));
                    debug_assert!(is_new, "SharedInterner already deduplicated the layer");
                    code_to_state[ns.code.index()] = j.0;
                    stats.states += 1;
                    if is_goal {
                        found_goal = Some(j);
                        break 'merge;
                    }
                    if stats.states >= limits.max_states {
                        stats.limit_hit = Some(LimitKind::States);
                        break 'merge;
                    }
                    next_frontier.push(j);
                }
            }

            // Wire up the edges whose targets have been merged. On an
            // early break (goal / state cap) codes still awaiting merge
            // are dropped, matching the sequential engine's truncation.
            if want_edges {
                for chunk in &layer_edges {
                    for &(from, u, code) in chunk {
                        let j = code_to_state[code.index()];
                        if j != u32::MAX {
                            triples.push((from, u, StateId(j)));
                        }
                    }
                }
            }

            if found_goal.is_some() || stats.limit_hit == Some(LimitKind::States) {
                return finish(store, triples, stats, found_goal);
            }

            frontier = next_frontier;
            cur_depth += 1;
        }

        finish(store, triples, stats, None)
    }
}

struct RunResult {
    graph: StateGraph,
    goal: Option<StateId>,
}

/// Shared graph finalization of both engines: build the CSR successor
/// table (or an empty one for goal searches) and package the result.
fn finish_run(
    store: StateStore,
    triples: Vec<(StateId, Update, StateId)>,
    stats: SearchStats,
    goal: Option<StateId>,
    want_edges: bool,
) -> RunResult {
    let succ = if want_edges {
        SuccessorTable::from_triples(store.len(), &triples)
    } else {
        SuccessorTable::empty(store.len())
    };
    RunResult {
        graph: StateGraph { store, succ, stats },
        goal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::{AccessRules, Formula, GuardedForm, Schema};
    use std::sync::Arc;

    /// r with children a, b; free add/del of both but at most one of each
    /// (¬a / ¬b add guards). 4 reachable states.
    fn toggle_form() -> GuardedForm {
        let schema = Arc::new(Schema::parse("a, b").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set_both(
            schema.resolve("a").unwrap(),
            Formula::parse("!a").unwrap(),
            Formula::True,
        );
        rules.set_both(
            schema.resolve("b").unwrap(),
            Formula::parse("!b").unwrap(),
            Formula::True,
        );
        let init = Instance::empty(schema.clone());
        GuardedForm::new(schema, rules, init, Formula::parse("a & b").unwrap())
    }

    #[test]
    fn finds_goal_and_run_replays() {
        let g = toggle_form();
        let ex = Explorer::new(&g, ExploreLimits::small()).with_threads(1);
        let out = ex.find(|i| g.is_complete(i));
        let run = out.goal_run.expect("goal reachable");
        assert_eq!(run.len(), 2);
        assert!(g.is_complete_run(&run));
    }

    #[test]
    fn graph_closes_on_finite_space() {
        let g = toggle_form();
        let graph = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .graph();
        assert_eq!(graph.state_count(), 4); // {}, {a}, {b}, {a,b}
        assert!(graph.stats.closed);
        // Every non-initial state's reconstructed run replays.
        for i in 1..graph.state_count() {
            let run = graph.run_to(i);
            let r = g.replay(&run).unwrap();
            assert!(r.last().isomorphic(graph.state(i)));
        }
    }

    #[test]
    fn edges_cover_all_transitions() {
        let g = toggle_form();
        let graph = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .graph();
        // state {}: 2 adds; {a}: del a + add b; {b}: del b + add a;
        // {a,b}: del a + del b. Total 8 directed edges.
        assert_eq!(graph.edge_count(), 8);
    }

    #[test]
    fn state_limit_reported() {
        let g = toggle_form();
        let lim = ExploreLimits {
            max_states: 2,
            ..ExploreLimits::small()
        };
        let graph = Explorer::new(&g, lim).with_threads(1).graph();
        assert!(!graph.stats.closed);
        assert_eq!(graph.stats.limit_hit, Some(LimitKind::States));
    }

    #[test]
    fn unbounded_growth_hits_size_limit() {
        // A form whose instances grow forever: add `a` always allowed.
        let schema = Arc::new(Schema::parse("a").unwrap());
        let rules = AccessRules::with_default(&schema, Formula::True);
        let init = Instance::empty(schema.clone());
        let g = GuardedForm::new(schema, rules, init, Formula::False);
        let lim = ExploreLimits {
            max_states: 1000,
            max_state_size: 16,
            max_depth: usize::MAX,
            multiplicity_cap: None,
        };
        let graph = Explorer::new(&g, lim).with_threads(1).graph();
        assert!(!graph.stats.closed);
        assert_eq!(graph.stats.limit_hit, Some(LimitKind::StateSize));
        // 16 states: 0..=15 copies of `a` … plus none beyond the cap.
        assert_eq!(graph.state_count(), 16);
    }

    #[test]
    fn multiplicity_cap_prunes() {
        let schema = Arc::new(Schema::parse("a").unwrap());
        let rules = AccessRules::with_default(&schema, Formula::True);
        let init = Instance::empty(schema.clone());
        let g = GuardedForm::new(schema, rules, init, Formula::False);
        let lim = ExploreLimits {
            multiplicity_cap: Some(3),
            ..ExploreLimits::small()
        };
        let graph = Explorer::new(&g, lim).with_threads(1).graph();
        assert_eq!(graph.state_count(), 4); // 0,1,2,3 copies
        assert!(!graph.stats.closed);
        assert_eq!(graph.stats.limit_hit, Some(LimitKind::Multiplicity));
    }

    #[test]
    fn goal_at_initial_state() {
        let g = toggle_form().with_completion(Formula::True);
        let out = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .find(|i| g.is_complete(i));
        assert_eq!(out.goal_run, Some(vec![]));
    }

    #[test]
    fn depth_limit() {
        let g = toggle_form();
        let lim = ExploreLimits {
            max_depth: 1,
            ..ExploreLimits::small()
        };
        let graph = Explorer::new(&g, lim).with_threads(1).graph();
        // initial + {a} + {b}; {a,b} is at depth 2.
        assert_eq!(graph.state_count(), 3);
        assert!(!graph.stats.closed);
    }

    /// With the symmetry reduction off (plain mode), sibling permutations
    /// of the toggle form count separately: {a,b} and {b,a} are distinct
    /// ordered trees, and the verdict-relevant facts still agree.
    #[test]
    fn plain_mode_explores_the_ordered_space() {
        let g = toggle_form();
        let reduced = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .graph();
        let plain = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .with_symmetry(SymmetryMode::Plain)
            .graph();
        assert_eq!(reduced.state_count(), 4);
        assert_eq!(plain.state_count(), 5); // {}, a, b, ab, ba
        assert!(reduced.stats.closed && plain.stats.closed);
        // Goal search agrees on existence and BFS depth.
        let rf = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .find(|i| g.is_complete(i));
        let pf = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .with_symmetry(SymmetryMode::Plain)
            .find(|i| g.is_complete(i));
        assert_eq!(
            rf.goal_run.as_ref().map(Vec::len),
            pf.goal_run.as_ref().map(Vec::len)
        );
        assert!(g.is_complete_run(&pf.goal_run.unwrap()));
    }

    // -- parallel engine ----------------------------------------------------

    /// The canonical state set of a graph, as a sorted list of iso codes.
    #[cfg(feature = "parallel")]
    fn state_set(g: &StateGraph) -> Vec<String> {
        let mut v: Vec<String> = g.states().iter().map(|s| s.iso_code()).collect();
        v.sort_unstable();
        v
    }

    /// Parallel and sequential engines agree on the state set, closedness,
    /// depths, and edge counts of a small closed space.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_graph_matches_sequential() {
        let g = toggle_form();
        let seq = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .graph();
        for threads in [2, 3, 8] {
            let par = Explorer::new(&g, ExploreLimits::small())
                .with_threads(threads)
                .graph();
            assert_eq!(state_set(&par), state_set(&seq), "threads={threads}");
            assert_eq!(par.stats.states, seq.stats.states);
            assert_eq!(par.stats.transitions, seq.stats.transitions);
            assert!(par.stats.closed);
            assert_eq!(par.edge_count(), seq.edge_count());
            // Depth multisets agree (BFS layering is engine-independent).
            let mut sd: Vec<usize> = (0..seq.state_count()).map(|i| seq.depth_of(i)).collect();
            let mut pd: Vec<usize> = (0..par.state_count()).map(|i| par.depth_of(i)).collect();
            sd.sort_unstable();
            pd.sort_unstable();
            assert_eq!(sd, pd);
            // Every parallel parent pointer reconstructs a valid run.
            for i in 0..par.state_count() {
                let run = par.run_to(i);
                assert_eq!(run.len(), par.depth_of(i));
                let r = g.replay(&run).unwrap();
                assert!(r.last().isomorphic(par.state(i)));
            }
        }
    }

    /// Parallel `find` returns a replayable shortest run.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_find_agrees() {
        let g = toggle_form();
        let seq = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .find(|i| g.is_complete(i));
        let par = Explorer::new(&g, ExploreLimits::small())
            .with_threads(4)
            .find(|i| g.is_complete(i));
        let seq_run = seq.goal_run.expect("seq finds goal");
        let par_run = par.goal_run.expect("par finds goal");
        assert_eq!(seq_run.len(), par_run.len(), "same BFS goal depth");
        assert!(g.is_complete_run(&par_run));
    }

    /// Limit behaviours (state cap, depth cap, size cap) are preserved.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_limits_match() {
        let g = toggle_form();
        // Depth cap.
        let lim = ExploreLimits {
            max_depth: 1,
            ..ExploreLimits::small()
        };
        let par = Explorer::new(&g, lim).with_threads(4).graph();
        assert_eq!(par.state_count(), 3);
        assert!(!par.stats.closed);
        assert_eq!(par.stats.limit_hit, Some(LimitKind::Depth));

        // State-size cap on an unbounded form.
        let schema = Arc::new(Schema::parse("a").unwrap());
        let rules = AccessRules::with_default(&schema, Formula::True);
        let init = Instance::empty(schema.clone());
        let grow = GuardedForm::new(schema, rules, init, Formula::False);
        let lim = ExploreLimits {
            max_states: 1000,
            max_state_size: 16,
            max_depth: usize::MAX,
            multiplicity_cap: None,
        };
        let par = Explorer::new(&grow, lim).with_threads(4).graph();
        assert!(!par.stats.closed);
        assert_eq!(par.stats.limit_hit, Some(LimitKind::StateSize));
        assert_eq!(par.state_count(), 16);

        // State-count cap.
        let lim = ExploreLimits {
            max_states: 2,
            ..ExploreLimits::small()
        };
        let par = Explorer::new(&g, lim).with_threads(4).graph();
        assert!(!par.stats.closed);
        assert_eq!(par.stats.limit_hit, Some(LimitKind::States));
    }

    /// Goal on the initial instance short-circuits identically.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_goal_at_initial_state() {
        let g = toggle_form().with_completion(Formula::True);
        let out = Explorer::new(&g, ExploreLimits::small())
            .with_threads(4)
            .find(|i| g.is_complete(i));
        assert_eq!(out.goal_run, Some(vec![]));
        assert!(out.stats.closed);
    }

    /// The parallel engine honours the plain symmetry mode and matches
    /// the sequential plain exploration.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_plain_mode_matches_sequential() {
        let g = toggle_form();
        let seq = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .with_symmetry(SymmetryMode::Plain)
            .graph();
        let par = Explorer::new(&g, ExploreLimits::small())
            .with_threads(4)
            .with_symmetry(SymmetryMode::Plain)
            .graph();
        assert_eq!(par.state_count(), seq.state_count());
        assert_eq!(par.stats.transitions, seq.stats.transitions);
        assert!(par.stats.closed);
    }
}
