//! Bounded explicit-state exploration of a guarded form's run space.
//!
//! States are instances *up to isomorphism* — deduplicated via the
//! interned canonical codes of [`idar_core::intern`], which preserve
//! sibling multiplicity. This is deliberately **not** the bisimulation
//! quotient: Lemma 4.3 makes the canonical-instance abstraction sound for
//! depth-1 forms only, and Thm 4.1 shows that at depth ≥ 2 multiplicities
//! carry real information (they encode counter values!). The depth-1 fast
//! path lives in [`crate::depth1`]; this explorer is the general-purpose
//! engine.
//!
//! Because completability is undecidable in general (Thm 4.1), the
//! exploration is bounded, and the outcome records whether the search
//! *closed* — i.e. exhausted every reachable state without hitting a limit.
//! When it closed, negative answers are exact; otherwise they are reported
//! as [`Verdict::Unknown`](crate::Verdict) by the callers.
//!
//! # Execution modes
//!
//! The explorer has two interchangeable engines:
//!
//! * **Sequential BFS** — one FIFO queue, one [`Interner`]. Always
//!   available; state indices follow discovery order.
//! * **Parallel layered BFS** (cargo feature `parallel`, on by default) —
//!   each BFS layer's frontier is split across worker threads; successors
//!   are deduplicated through a lock-striped [`SharedInterner`] and merged
//!   into the state arrays sequentially (worker-chunk order, then
//!   discovery order within a worker). See `docs/ARCHITECTURE.md` for the
//!   shard/merge diagram.
//!
//! Both engines visit exactly the same state set, report the same
//! [`SearchStats::closed`] flag and the same `states` count, and find
//! goals at the same BFS depth; these invariants are independent of
//! thread scheduling. What *may* vary — between the engines and, for the
//! parallel engine, between runs (when two workers race to intern the
//! same state, the OS scheduler picks the discoverer that supplies its
//! parent pointer and merge position) — is state numbering, which
//! same-depth goal state is returned first, and the `transitions` count
//! of searches that stop early (the parallel engine finishes its layer).
//! Use `.with_threads(1)` when bit-identical graphs across runs matter.
//! The differential tests in this module and in
//! `tests/parallel_differential.rs` pin these guarantees down.
//!
//! [`Interner`]: idar_core::Interner
//! [`SharedInterner`]: idar_core::SharedInterner

use crate::verdict::{LimitKind, SearchStats};
use idar_core::{GuardedForm, Instance, Interner, Update};

/// Resource limits for bounded exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreLimits {
    /// Maximum number of distinct states to visit.
    pub max_states: usize,
    /// Maximum live-node count per instance; additions beyond it are pruned.
    pub max_state_size: usize,
    /// Maximum run length (steps from the initial instance).
    pub max_depth: usize,
    /// If set, prune additions that would give a parent more than this many
    /// children along one schema edge. Sound completeness bounds for this
    /// cap exist in fragment `F(A+, φ−, k)` (Thm 5.2 / Lemma 4.4); the
    /// [`crate::np`] solver computes one. Elsewhere it is a heuristic and
    /// de-closes the search.
    pub multiplicity_cap: Option<usize>,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_states: 200_000,
            max_state_size: 160,
            max_depth: usize::MAX,
            multiplicity_cap: None,
        }
    }
}

impl ExploreLimits {
    /// Limits suitable for small exhaustive checks in tests.
    pub fn small() -> Self {
        ExploreLimits {
            max_states: 20_000,
            max_state_size: 64,
            max_depth: usize::MAX,
            multiplicity_cap: None,
        }
    }
}

/// The result of an exploration.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// A run (update sequence from the initial instance) reaching the first
    /// goal state found, if any.
    pub goal_run: Option<Vec<Update>>,
    /// Search statistics; `stats.closed` reports exhaustiveness.
    pub stats: SearchStats,
}

/// The full reachable state graph produced by [`Explorer::graph`].
#[derive(Debug, Clone)]
pub struct StateGraph {
    /// Distinct reachable states; index 0 is the initial instance.
    pub states: Vec<Instance>,
    /// BFS tree pointers: `parents[i] = (j, u)` means state `i` was first
    /// reached from state `j` by update `u` (`None` for the initial state).
    pub parents: Vec<Option<(usize, Update)>>,
    /// All state-graph edges: `edges[i]` lists `(update, successor index)`.
    pub edges: Vec<Vec<(Update, usize)>>,
    /// BFS depth of each state.
    pub depth: Vec<usize>,
    /// Search statistics.
    pub stats: SearchStats,
}

impl StateGraph {
    /// Reconstruct the update sequence leading from the initial instance to
    /// state `i` (replayable via [`GuardedForm::replay`]).
    pub fn run_to(&self, mut i: usize) -> Vec<Update> {
        let mut rev = Vec::new();
        while let Some((p, u)) = self.parents[i] {
            rev.push(u);
            i = p;
        }
        rev.reverse();
        rev
    }
}

/// Number of worker threads the explorer uses by default: all available
/// cores with the `parallel` feature, 1 without.
pub fn default_threads() -> usize {
    if cfg!(feature = "parallel") {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        1
    }
}

/// Bounded breadth-first explorer over a guarded form's instances.
///
/// ```
/// use idar_core::leave;
/// use idar_solver::{ExploreLimits, Explorer};
///
/// let form = leave::example_3_12();
/// let explorer = Explorer::new(&form, ExploreLimits::small()).with_threads(2);
/// let out = explorer.find(|i| form.is_complete(i));
/// let run = out.goal_run.expect("the leave form is completable");
/// assert!(form.is_complete_run(&run));
/// ```
#[derive(Debug, Clone)]
pub struct Explorer<'a> {
    form: &'a GuardedForm,
    limits: ExploreLimits,
    threads: usize,
}

impl<'a> Explorer<'a> {
    /// An explorer over `form` with the given limits and the default
    /// thread count ([`default_threads`]).
    pub fn new(form: &'a GuardedForm, limits: ExploreLimits) -> Self {
        Explorer {
            form,
            limits,
            threads: default_threads(),
        }
    }

    /// Set the worker-thread count. `1` forces the sequential engine;
    /// values above 1 use the parallel layered engine when the `parallel`
    /// feature is enabled (and fall back to sequential otherwise).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// BFS from the initial instance until `goal` holds for some state (or
    /// the space/limits are exhausted). Returns the shortest-in-BFS run to
    /// the goal, if found.
    pub fn find(&self, goal: impl Fn(&Instance) -> bool + Sync) -> ExploreOutcome {
        #[cfg(feature = "parallel")]
        if self.threads > 1 {
            let g = self.run_parallel(Some(&goal), false);
            return ExploreOutcome {
                goal_run: g.goal.map(|i| g.graph.run_to(i)),
                stats: g.graph.stats,
            };
        }
        let mut goal = goal;
        let g = self.run(Some(&mut goal), false);
        ExploreOutcome {
            goal_run: g.goal.map(|i| g.graph.run_to(i)),
            stats: g.graph.stats,
        }
    }

    /// Exhaustively (within limits) build the reachable state graph.
    pub fn graph(&self) -> StateGraph {
        #[cfg(feature = "parallel")]
        if self.threads > 1 {
            return self.run_parallel(None, true).graph;
        }
        self.run(None, true).graph
    }

    /// The sequential engine: FIFO BFS with interned-code deduplication.
    ///
    /// Dense [`IsoCode`](idar_core::IsoCode)s are assigned in discovery
    /// order here, so a code doubles as the state's index — no side table.
    fn run(
        &self,
        mut goal: Option<&mut dyn FnMut(&Instance) -> bool>,
        want_edges: bool,
    ) -> RunResult {
        let mut stats = SearchStats::default();
        let initial = self.form.initial().clone();

        let mut states: Vec<Instance> = Vec::new();
        let mut parents: Vec<Option<(usize, Update)>> = Vec::new();
        let mut depth: Vec<usize> = Vec::new();
        let mut edges: Vec<Vec<(Update, usize)>> = Vec::new();
        let mut interner = Interner::new();

        let (c0, _) = interner.intern(initial.canon_key());
        debug_assert_eq!(c0.index(), 0);
        states.push(initial);
        parents.push(None);
        depth.push(0);
        edges.push(Vec::new());
        stats.states = 1;

        if let Some(goal) = goal.as_deref_mut() {
            if goal(&states[0]) {
                return RunResult {
                    graph: StateGraph {
                        states,
                        parents,
                        edges,
                        depth,
                        stats: SearchStats {
                            closed: true,
                            ..stats
                        },
                    },
                    goal: Some(0),
                };
            }
        }

        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        queue.push_back(0);
        let mut pruned = false;

        while let Some(i) = queue.pop_front() {
            if depth[i] >= self.limits.max_depth {
                // Unexpanded frontier state: search no longer exhaustive
                // (unless the state has no successors at all, checked below).
                if !self.form.allowed_updates(&states[i]).is_empty() {
                    pruned = true;
                    stats.limit_hit = Some(LimitKind::Depth);
                }
                continue;
            }
            let updates = self.form.allowed_updates(&states[i]);
            for u in updates {
                stats.transitions += 1;
                if let Update::Add { parent, edge } = u {
                    if states[i].live_count() >= self.limits.max_state_size {
                        pruned = true;
                        stats.limit_hit = Some(LimitKind::StateSize);
                        continue;
                    }
                    if let Some(cap) = self.limits.multiplicity_cap {
                        if states[i].children_at(parent, edge).count() >= cap {
                            pruned = true;
                            stats.limit_hit = Some(LimitKind::Multiplicity);
                            continue;
                        }
                    }
                }
                let mut next = states[i].clone();
                self.form
                    .apply_unchecked(&mut next, &u)
                    .expect("allowed updates apply");
                let (code, is_new) = interner.intern(next.canon_key());
                if !is_new {
                    if want_edges {
                        edges[i].push((u, code.index()));
                    }
                    continue;
                }
                let j = code.index();
                debug_assert_eq!(j, states.len());
                states.push(next);
                parents.push(Some((i, u)));
                depth.push(depth[i] + 1);
                edges.push(Vec::new());
                if want_edges {
                    edges[i].push((u, j));
                }
                stats.states += 1;

                if let Some(goal) = goal.as_deref_mut() {
                    if goal(&states[j]) {
                        return RunResult {
                            graph: StateGraph {
                                states,
                                parents,
                                edges,
                                depth,
                                stats,
                            },
                            goal: Some(j),
                        };
                    }
                }

                if stats.states >= self.limits.max_states {
                    stats.limit_hit = Some(LimitKind::States);
                    return RunResult {
                        graph: StateGraph {
                            states,
                            parents,
                            edges,
                            depth,
                            stats,
                        },
                        goal: None,
                    };
                }
                queue.push_back(j);
            }
        }

        stats.closed = !pruned;
        RunResult {
            graph: StateGraph {
                states,
                parents,
                edges,
                depth,
                stats,
            },
            goal: None,
        }
    }

    /// The parallel engine: layered BFS. Each layer's frontier is split
    /// into contiguous chunks, one per worker; workers expand their chunk
    /// against a [`SharedInterner`](idar_core::SharedInterner) and the
    /// single merge step (sequential, in chunk order) assigns state
    /// indices. Narrow frontiers are expanded inline — per-layer thread
    /// spawns only pay off once a layer offers real work per worker.
    #[cfg(feature = "parallel")]
    fn run_parallel(
        &self,
        goal: Option<&(dyn Fn(&Instance) -> bool + Sync)>,
        want_edges: bool,
    ) -> RunResult {
        use idar_core::{IsoCode, SharedInterner};

        /// A state discovered (won the intern race) by one worker.
        struct NewState {
            inst: Instance,
            code: IsoCode,
            parent: u32,
            update: Update,
            is_goal: bool,
        }

        /// One worker's layer output, merged in chunk order.
        #[derive(Default)]
        struct WorkerOut {
            new_states: Vec<NewState>,
            pend_edges: Vec<(u32, Update, IsoCode)>,
            transitions: usize,
            pruned: Option<LimitKind>,
        }

        let form = self.form;
        let limits = self.limits;

        // Expand the frontier slice `chunk`, mirroring the sequential
        // inner loop exactly (same prune checks, same goal policy: goal is
        // evaluated only on newly discovered states).
        let expand = |chunk: &[usize], states: &[Instance], interner: &SharedInterner| {
            let mut out = WorkerOut::default();
            for &i in chunk {
                let state = &states[i];
                for u in form.allowed_updates(state) {
                    out.transitions += 1;
                    if let Update::Add { parent, edge } = u {
                        if state.live_count() >= limits.max_state_size {
                            out.pruned = Some(LimitKind::StateSize);
                            continue;
                        }
                        if let Some(cap) = limits.multiplicity_cap {
                            if state.children_at(parent, edge).count() >= cap {
                                out.pruned = Some(LimitKind::Multiplicity);
                                continue;
                            }
                        }
                    }
                    let mut next = state.clone();
                    form.apply_unchecked(&mut next, &u)
                        .expect("allowed updates apply");
                    let (code, is_new) = interner.intern(next.canon_key());
                    if want_edges {
                        out.pend_edges.push((i as u32, u, code));
                    }
                    if is_new {
                        let is_goal = goal.is_some_and(|g| g(&next));
                        out.new_states.push(NewState {
                            inst: next,
                            code,
                            parent: i as u32,
                            update: u,
                            is_goal,
                        });
                    }
                }
            }
            out
        };

        let mut stats = SearchStats::default();
        let initial = form.initial().clone();
        let interner = SharedInterner::new();
        let (c0, _) = interner.intern(initial.canon_key());
        debug_assert_eq!(c0.index(), 0);

        // `code_to_state[c]` is the state index of interned code `c`
        // (u32::MAX while the code's state is still awaiting merge).
        let mut code_to_state: Vec<u32> = vec![0];
        let mut states = vec![initial];
        let mut parents: Vec<Option<(usize, Update)>> = vec![None];
        let mut depth = vec![0usize];
        let mut edges: Vec<Vec<(Update, usize)>> = vec![Vec::new()];
        stats.states = 1;

        if let Some(g) = goal {
            if g(&states[0]) {
                stats.closed = true;
                return RunResult {
                    graph: StateGraph {
                        states,
                        parents,
                        edges,
                        depth,
                        stats,
                    },
                    goal: Some(0),
                };
            }
        }

        let mut frontier: Vec<usize> = vec![0];
        let mut cur_depth = 0usize;
        let mut pruned = false;

        loop {
            if frontier.is_empty() {
                stats.closed = !pruned;
                break;
            }
            if cur_depth >= limits.max_depth {
                // Unexpanded frontier: exhaustiveness is lost iff any
                // frontier state still has successors.
                if frontier
                    .iter()
                    .any(|&i| !form.allowed_updates(&states[i]).is_empty())
                {
                    pruned = true;
                    stats.limit_hit = Some(LimitKind::Depth);
                }
                stats.closed = !pruned;
                break;
            }

            // --- expand: fan the frontier out over the workers ---------
            // Deep, narrow spaces (e.g. the Thm 4.1 machine simulations,
            // whose layers hold a handful of states) would pay a
            // spawn/join round-trip per layer for no parallelism; expand
            // those inline and only spawn once each worker gets a
            // meaningful chunk.
            const MIN_STATES_PER_WORKER: usize = 4;
            let workers = self
                .threads
                .min(frontier.len() / MIN_STATES_PER_WORKER)
                .max(1);
            let chunk_len = frontier.len().div_ceil(workers);
            let outs: Vec<WorkerOut> = if workers == 1 {
                vec![expand(&frontier, &states, &interner)]
            } else {
                let states_ref = &states;
                let interner_ref = &interner;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = frontier
                        .chunks(chunk_len)
                        .map(|chunk| scope.spawn(move || expand(chunk, states_ref, interner_ref)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("worker panicked"))
                        .collect()
                })
            };

            // --- merge: deterministic (chunk order, then worker order) -
            let mut layer_edges: Vec<Vec<(u32, Update, IsoCode)>> = Vec::with_capacity(outs.len());
            let mut layer_new: Vec<Vec<NewState>> = Vec::with_capacity(outs.len());
            for out in outs {
                stats.transitions += out.transitions;
                if let Some(k) = out.pruned {
                    pruned = true;
                    stats.limit_hit = Some(k);
                }
                layer_edges.push(out.pend_edges);
                layer_new.push(out.new_states);
            }
            code_to_state.resize(interner.len(), u32::MAX);
            let mut next_frontier = Vec::new();
            let mut found_goal = None;
            'merge: for chunk in layer_new {
                for ns in chunk {
                    let j = states.len();
                    let is_goal = ns.is_goal;
                    states.push(ns.inst);
                    parents.push(Some((ns.parent as usize, ns.update)));
                    depth.push(cur_depth + 1);
                    edges.push(Vec::new());
                    code_to_state[ns.code.index()] = j as u32;
                    stats.states += 1;
                    if is_goal {
                        found_goal = Some(j);
                        break 'merge;
                    }
                    if stats.states >= limits.max_states {
                        stats.limit_hit = Some(LimitKind::States);
                        break 'merge;
                    }
                    next_frontier.push(j);
                }
            }

            // Wire up the edges whose targets have been merged. On an
            // early break (goal / state cap) codes still awaiting merge
            // are dropped, matching the sequential engine's truncation.
            if want_edges {
                for chunk in &layer_edges {
                    for &(from, u, code) in chunk {
                        let j = code_to_state[code.index()];
                        if j != u32::MAX {
                            edges[from as usize].push((u, j as usize));
                        }
                    }
                }
            }

            if found_goal.is_some() || stats.limit_hit == Some(LimitKind::States) {
                return RunResult {
                    graph: StateGraph {
                        states,
                        parents,
                        edges,
                        depth,
                        stats,
                    },
                    goal: found_goal,
                };
            }

            frontier = next_frontier;
            cur_depth += 1;
        }

        RunResult {
            graph: StateGraph {
                states,
                parents,
                edges,
                depth,
                stats,
            },
            goal: None,
        }
    }
}

struct RunResult {
    graph: StateGraph,
    goal: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::{AccessRules, Formula, GuardedForm, Schema};
    use std::sync::Arc;

    /// r with children a, b; free add/del of both but at most one of each
    /// (¬a / ¬b add guards). 4 reachable states.
    fn toggle_form() -> GuardedForm {
        let schema = Arc::new(Schema::parse("a, b").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set_both(
            schema.resolve("a").unwrap(),
            Formula::parse("!a").unwrap(),
            Formula::True,
        );
        rules.set_both(
            schema.resolve("b").unwrap(),
            Formula::parse("!b").unwrap(),
            Formula::True,
        );
        let init = Instance::empty(schema.clone());
        GuardedForm::new(schema, rules, init, Formula::parse("a & b").unwrap())
    }

    #[test]
    fn finds_goal_and_run_replays() {
        let g = toggle_form();
        let ex = Explorer::new(&g, ExploreLimits::small()).with_threads(1);
        let out = ex.find(|i| g.is_complete(i));
        let run = out.goal_run.expect("goal reachable");
        assert_eq!(run.len(), 2);
        assert!(g.is_complete_run(&run));
    }

    #[test]
    fn graph_closes_on_finite_space() {
        let g = toggle_form();
        let graph = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .graph();
        assert_eq!(graph.states.len(), 4); // {}, {a}, {b}, {a,b}
        assert!(graph.stats.closed);
        // Every non-initial state's reconstructed run replays.
        for i in 1..graph.states.len() {
            let run = graph.run_to(i);
            let r = g.replay(&run).unwrap();
            assert!(r.last().isomorphic(&graph.states[i]));
        }
    }

    #[test]
    fn edges_cover_all_transitions() {
        let g = toggle_form();
        let graph = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .graph();
        // state {}: 2 adds; {a}: del a + add b; {b}: del b + add a;
        // {a,b}: del a + del b. Total 8 directed edges.
        let total: usize = graph.edges.iter().map(|e| e.len()).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn state_limit_reported() {
        let g = toggle_form();
        let lim = ExploreLimits {
            max_states: 2,
            ..ExploreLimits::small()
        };
        let graph = Explorer::new(&g, lim).with_threads(1).graph();
        assert!(!graph.stats.closed);
        assert_eq!(graph.stats.limit_hit, Some(LimitKind::States));
    }

    #[test]
    fn unbounded_growth_hits_size_limit() {
        // A form whose instances grow forever: add `a` always allowed.
        let schema = Arc::new(Schema::parse("a").unwrap());
        let rules = AccessRules::with_default(&schema, Formula::True);
        let init = Instance::empty(schema.clone());
        let g = GuardedForm::new(schema, rules, init, Formula::False);
        let lim = ExploreLimits {
            max_states: 1000,
            max_state_size: 16,
            max_depth: usize::MAX,
            multiplicity_cap: None,
        };
        let graph = Explorer::new(&g, lim).with_threads(1).graph();
        assert!(!graph.stats.closed);
        assert_eq!(graph.stats.limit_hit, Some(LimitKind::StateSize));
        // 16 states: 0..=15 copies of `a` … plus none beyond the cap.
        assert_eq!(graph.states.len(), 16);
    }

    #[test]
    fn multiplicity_cap_prunes() {
        let schema = Arc::new(Schema::parse("a").unwrap());
        let rules = AccessRules::with_default(&schema, Formula::True);
        let init = Instance::empty(schema.clone());
        let g = GuardedForm::new(schema, rules, init, Formula::False);
        let lim = ExploreLimits {
            multiplicity_cap: Some(3),
            ..ExploreLimits::small()
        };
        let graph = Explorer::new(&g, lim).with_threads(1).graph();
        assert_eq!(graph.states.len(), 4); // 0,1,2,3 copies
        assert!(!graph.stats.closed);
        assert_eq!(graph.stats.limit_hit, Some(LimitKind::Multiplicity));
    }

    #[test]
    fn goal_at_initial_state() {
        let g = toggle_form().with_completion(Formula::True);
        let out = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .find(|i| g.is_complete(i));
        assert_eq!(out.goal_run, Some(vec![]));
    }

    #[test]
    fn depth_limit() {
        let g = toggle_form();
        let lim = ExploreLimits {
            max_depth: 1,
            ..ExploreLimits::small()
        };
        let graph = Explorer::new(&g, lim).with_threads(1).graph();
        // initial + {a} + {b}; {a,b} is at depth 2.
        assert_eq!(graph.states.len(), 3);
        assert!(!graph.stats.closed);
    }

    // -- parallel engine ----------------------------------------------------

    /// The canonical state set of a graph, as a sorted list of iso codes.
    #[cfg(feature = "parallel")]
    fn state_set(g: &StateGraph) -> Vec<String> {
        let mut v: Vec<String> = g.states.iter().map(|s| s.iso_code()).collect();
        v.sort_unstable();
        v
    }

    /// Parallel and sequential engines agree on the state set, closedness,
    /// depths, and edge counts of a small closed space.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_graph_matches_sequential() {
        let g = toggle_form();
        let seq = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .graph();
        for threads in [2, 3, 8] {
            let par = Explorer::new(&g, ExploreLimits::small())
                .with_threads(threads)
                .graph();
            assert_eq!(state_set(&par), state_set(&seq), "threads={threads}");
            assert_eq!(par.stats.states, seq.stats.states);
            assert_eq!(par.stats.transitions, seq.stats.transitions);
            assert!(par.stats.closed);
            let seq_edges: usize = seq.edges.iter().map(|e| e.len()).sum();
            let par_edges: usize = par.edges.iter().map(|e| e.len()).sum();
            assert_eq!(par_edges, seq_edges);
            // Depth multisets agree (BFS layering is engine-independent).
            let mut sd = seq.depth.clone();
            let mut pd = par.depth.clone();
            sd.sort_unstable();
            pd.sort_unstable();
            assert_eq!(sd, pd);
            // Every parallel parent pointer reconstructs a valid run.
            for i in 0..par.states.len() {
                let run = par.run_to(i);
                assert_eq!(run.len(), par.depth[i]);
                let r = g.replay(&run).unwrap();
                assert!(r.last().isomorphic(&par.states[i]));
            }
        }
    }

    /// Parallel `find` returns a replayable shortest run.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_find_agrees() {
        let g = toggle_form();
        let seq = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .find(|i| g.is_complete(i));
        let par = Explorer::new(&g, ExploreLimits::small())
            .with_threads(4)
            .find(|i| g.is_complete(i));
        let seq_run = seq.goal_run.expect("seq finds goal");
        let par_run = par.goal_run.expect("par finds goal");
        assert_eq!(seq_run.len(), par_run.len(), "same BFS goal depth");
        assert!(g.is_complete_run(&par_run));
    }

    /// Limit behaviours (state cap, depth cap, size cap) are preserved.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_limits_match() {
        let g = toggle_form();
        // Depth cap.
        let lim = ExploreLimits {
            max_depth: 1,
            ..ExploreLimits::small()
        };
        let par = Explorer::new(&g, lim).with_threads(4).graph();
        assert_eq!(par.states.len(), 3);
        assert!(!par.stats.closed);
        assert_eq!(par.stats.limit_hit, Some(LimitKind::Depth));

        // State-size cap on an unbounded form.
        let schema = Arc::new(Schema::parse("a").unwrap());
        let rules = AccessRules::with_default(&schema, Formula::True);
        let init = Instance::empty(schema.clone());
        let grow = GuardedForm::new(schema, rules, init, Formula::False);
        let lim = ExploreLimits {
            max_states: 1000,
            max_state_size: 16,
            max_depth: usize::MAX,
            multiplicity_cap: None,
        };
        let par = Explorer::new(&grow, lim).with_threads(4).graph();
        assert!(!par.stats.closed);
        assert_eq!(par.stats.limit_hit, Some(LimitKind::StateSize));
        assert_eq!(par.states.len(), 16);

        // State-count cap.
        let lim = ExploreLimits {
            max_states: 2,
            ..ExploreLimits::small()
        };
        let par = Explorer::new(&g, lim).with_threads(4).graph();
        assert!(!par.stats.closed);
        assert_eq!(par.stats.limit_hit, Some(LimitKind::States));
    }

    /// Goal on the initial instance short-circuits identically.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_goal_at_initial_state() {
        let g = toggle_form().with_completion(Formula::True);
        let out = Explorer::new(&g, ExploreLimits::small())
            .with_threads(4)
            .find(|i| g.is_complete(i));
        assert_eq!(out.goal_run, Some(vec![]));
        assert!(out.stats.closed);
    }
}
