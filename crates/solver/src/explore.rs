//! Bounded explicit-state exploration of a guarded form's run space.
//!
//! States live in the shared hash-consed [`StateStore`]: deduplicated
//! — under the default [`SymmetryMode::Reduced`] — *up to isomorphism*
//! via interned canonical encodings, which preserve sibling multiplicity.
//! This is deliberately **not** the bisimulation quotient: Lemma 4.3
//! makes the canonical-instance abstraction sound for depth-1 forms only,
//! and Thm 4.1 shows that at depth ≥ 2 multiplicities carry real
//! information (they encode counter values!). The depth-1 fast path lives
//! in [`crate::depth1`]; this explorer is the general-purpose engine.
//! [`SymmetryMode::Plain`] turns the symmetry reduction off (states are
//! ordered trees) — the ablation baseline the differential fuzzer and the
//! `reproduce` harness compare against.
//!
//! Because completability is undecidable in general (Thm 4.1), the
//! exploration is bounded, and the outcome records whether the search
//! *closed* — i.e. exhausted every reachable state without hitting a limit.
//! When it closed, negative answers are exact; otherwise they are reported
//! as [`Verdict::Unknown`](crate::Verdict) by the callers.
//!
//! # Execution modes
//!
//! The explorer has two interchangeable engines:
//!
//! * **Sequential BFS** — one FIFO queue, one [`StateStore`]. Always
//!   available; state indices follow discovery order.
//! * **Pooled parallel BFS** (cargo feature `parallel`, on by default) —
//!   a **persistent worker pool** over a fingerprint-sharded
//!   [`ShardedStateStore`](crate::store::ShardedStateStore). Workers are
//!   spawned lazily once per run and live until it ends (no per-layer
//!   spawn/join); within a layer they claim frontier chunks from a
//!   shared atomic cursor and intern successors *directly* into the
//!   store shard that owns the successor's key fingerprint — dedup,
//!   storage and BFS provenance in one lock acquisition, with no second
//!   sequential merge pass. The layer barrier only assigns dense
//!   [`StateId`]s (plain vector pushes, no hashing); the CSR successor
//!   table is assembled from the per-worker edge logs at finish time.
//!   See `docs/ARCHITECTURE.md` for the pool/shard diagram.
//!
//! Both engines visit exactly the same state set, report the same
//! [`SearchStats::closed`] flag and the same `states` count, and find
//! goals at the same BFS depth; these invariants are independent of
//! thread scheduling. What *may* vary — between the engines and, for the
//! parallel engine, between runs (chunk claiming is racy, so the OS
//! scheduler picks which discoverer supplies a state's parent pointer
//! and barrier position) — is state numbering, which same-depth goal
//! state is returned first, and the `transitions` count of searches that
//! stop early (workers abandon their remaining chunks as soon as the
//! terminal condition is flagged). Use `.with_threads(1)` when
//! bit-identical graphs across runs matter. The differential tests in
//! this module and in `tests/parallel_differential.rs` pin these
//! guarantees down.

use crate::session::{ExpandEvent, ExpansionLog, SessionGraph};
use crate::spill::{MemoryBudget, SpillReport, SpillStore};
use crate::store::{StateId, StateStore, SuccessorTable, SymmetryMode};
use crate::verdict::{LimitKind, SearchStats};
use idar_core::{GuardedForm, Instance, Update};

/// Resource limits for bounded exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExploreLimits {
    /// Maximum number of distinct states to visit.
    pub max_states: usize,
    /// Maximum live-node count per instance; additions beyond it are pruned.
    pub max_state_size: usize,
    /// Maximum run length (steps from the initial instance).
    pub max_depth: usize,
    /// If set, prune additions that would give a parent more than this many
    /// children along one schema edge. Sound completeness bounds for this
    /// cap exist in fragment `F(A+, φ−, k)` (Thm 5.2 / Lemma 4.4); the
    /// [`crate::np`] solver computes one. Elsewhere it is a heuristic and
    /// de-closes the search.
    pub multiplicity_cap: Option<usize>,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_states: 200_000,
            max_state_size: 160,
            max_depth: usize::MAX,
            multiplicity_cap: None,
        }
    }
}

impl ExploreLimits {
    /// Limits suitable for small exhaustive checks in tests.
    pub fn small() -> Self {
        ExploreLimits {
            max_states: 20_000,
            max_state_size: 64,
            max_depth: usize::MAX,
            multiplicity_cap: None,
        }
    }
}

/// The result of an exploration.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// A run (update sequence from the initial instance) reaching the first
    /// goal state found, if any.
    pub goal_run: Option<Vec<Update>>,
    /// Search statistics; `stats.closed` reports exhaustiveness.
    pub stats: SearchStats,
}

/// The reachable state graph produced by [`Explorer::graph`]: the
/// hash-consed [`StateStore`] (states, provenance) plus the compact CSR
/// successor table.
#[derive(Debug, Clone)]
pub struct StateGraph {
    /// The interned states with BFS provenance; index 0 is the initial
    /// instance.
    pub store: StateStore,
    /// CSR successor adjacency (empty for goal searches, which skip edge
    /// collection).
    pub succ: SuccessorTable,
    /// Search statistics.
    pub stats: SearchStats,
}

impl StateGraph {
    /// Number of explored states.
    pub fn state_count(&self) -> usize {
        self.store.len()
    }

    /// The state instances, indexed by state id (index 0 = initial).
    pub fn states(&self) -> &[Instance] {
        self.store.states()
    }

    /// The instance of state `i`.
    pub fn state(&self, i: usize) -> &Instance {
        self.store.get(StateId(i as u32))
    }

    /// BFS depth of state `i`.
    pub fn depth_of(&self, i: usize) -> usize {
        self.store.depth(StateId(i as u32))
    }

    /// Outgoing `(update, successor)` edges of state `i`.
    pub fn successors(&self, i: usize) -> &[(Update, StateId)] {
        self.succ.successors(StateId(i as u32))
    }

    /// Total number of explored edges.
    pub fn edge_count(&self) -> usize {
        self.succ.edge_count()
    }

    /// Reconstruct the update sequence leading from the initial instance to
    /// state `i` (replayable via [`GuardedForm::replay`]).
    pub fn run_to(&self, i: usize) -> Vec<Update> {
        self.store.run_to(StateId(i as u32))
    }
}

/// Number of worker threads the explorer uses by default: all available
/// cores with the `parallel` feature, 1 without.
pub fn default_threads() -> usize {
    if cfg!(feature = "parallel") {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        1
    }
}

/// Bounded breadth-first explorer over a guarded form's instances.
///
/// ```
/// use idar_core::leave;
/// use idar_solver::{ExploreLimits, Explorer};
///
/// let form = leave::example_3_12();
/// let explorer = Explorer::new(&form, ExploreLimits::small()).with_threads(2);
/// let out = explorer.find(|i| form.is_complete(i));
/// let run = out.goal_run.expect("the leave form is completable");
/// assert!(form.is_complete_run(&run));
/// ```
#[derive(Debug, Clone)]
pub struct Explorer<'a> {
    form: &'a GuardedForm,
    limits: ExploreLimits,
    threads: usize,
    symmetry: SymmetryMode,
    memory: MemoryBudget,
}

impl<'a> Explorer<'a> {
    /// An explorer over `form` with the given limits, the default
    /// thread count ([`default_threads`]), and symmetry reduction on.
    pub fn new(form: &'a GuardedForm, limits: ExploreLimits) -> Self {
        Explorer {
            form,
            limits,
            threads: default_threads(),
            symmetry: SymmetryMode::Reduced,
            memory: MemoryBudget::unbounded(),
        }
    }

    /// Set the worker-thread count. `1` forces the sequential engine;
    /// values above 1 use the parallel layered engine when the `parallel`
    /// feature is enabled (and fall back to sequential otherwise).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Select the state-space quotient: [`SymmetryMode::Reduced`]
    /// (default, isomorphism classes) or [`SymmetryMode::Plain`] (ordered
    /// trees — no symmetry reduction, for ablations and differential
    /// testing).
    pub fn with_symmetry(mut self, symmetry: SymmetryMode) -> Self {
        self.symmetry = symmetry;
        self
    }

    /// Set the memory budget for goal searches. A bounded budget makes
    /// [`Explorer::find`] run the out-of-core **capacity engine** (see
    /// [`crate::spill`]): delta-compressed state records that spill cold
    /// pages to a temp file so the arena-resident encoded bytes stay
    /// under the budget. The engine is sequential (the thread setting is
    /// ignored while a budget is set) and visits exactly the same states
    /// with the same [`SearchStats`] as the sequential in-RAM engine.
    ///
    /// [`Explorer::graph`] and [`Explorer::build_session`] ignore the
    /// budget: retained graphs hand out `&Instance`/run-to views that
    /// require the flat store, and their retention is bounded separately
    /// by the session manager's eviction budget.
    pub fn with_memory_budget(mut self, memory: MemoryBudget) -> Self {
        self.memory = memory;
        self
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured memory budget.
    pub fn memory(&self) -> MemoryBudget {
        self.memory
    }

    /// The configured symmetry mode.
    pub fn symmetry(&self) -> SymmetryMode {
        self.symmetry
    }

    /// BFS from the initial instance until `goal` holds for some state (or
    /// the space/limits are exhausted). Returns the shortest-in-BFS run to
    /// the goal, if found.
    pub fn find(&self, goal: impl Fn(&Instance) -> bool + Sync) -> ExploreOutcome {
        if self.memory.is_bounded() {
            let mut goal = goal;
            return self.run_capacity(Some(&mut goal), false).0;
        }
        #[cfg(feature = "parallel")]
        if self.threads > 1 {
            let g = self.run_parallel(Some(&goal), false);
            return ExploreOutcome {
                goal_run: g.goal.map(|i| g.graph.store.run_to(i)),
                stats: g.graph.stats,
            };
        }
        let mut goal = goal;
        let g = self.run(Some(&mut goal), false, None);
        ExploreOutcome {
            goal_run: g.goal.map(|i| g.graph.store.run_to(i)),
            stats: g.graph.stats,
        }
    }

    /// [`Explorer::find`] on the capacity engine regardless of whether
    /// the budget is bounded (an unbounded budget keeps every arena page
    /// hot but still delta-encodes), returning the run's
    /// [`SpillReport`] alongside the outcome. This is the entry point
    /// the bench harness and the equivalence tests measure through.
    pub fn find_spilled(
        &self,
        goal: impl FnMut(&Instance) -> bool,
    ) -> (ExploreOutcome, SpillReport) {
        let mut goal = goal;
        self.run_capacity(Some(&mut goal), false)
    }

    /// The capacity engine in **frontier-only** mode: closed-layer
    /// words, records, and provenance are dropped entirely, so memory
    /// scales with the widest BFS layer instead of the explored total.
    ///
    /// Sound only for deletion-free forms
    /// ([`GuardedForm::is_deletion_free`]) — node counts then grow
    /// monotonically along every run, so states at different BFS depths
    /// are never isomorphic and per-layer dedup is exact. The outcome's
    /// `goal_run` is always `None` (no provenance is retained); use it
    /// for verdict kinds that only need existence/closure.
    ///
    /// # Panics
    /// If the form has a deletion rule that is not syntactically `false`.
    pub fn find_frontier_only(
        &self,
        goal: impl FnMut(&Instance) -> bool,
    ) -> (ExploreOutcome, SpillReport) {
        assert!(
            self.form.is_deletion_free(),
            "frontier-only exploration requires a deletion-free form"
        );
        let mut goal = goal;
        self.run_capacity(Some(&mut goal), true)
    }

    /// Exhaustively (within limits) build the reachable state graph.
    pub fn graph(&self) -> StateGraph {
        #[cfg(feature = "parallel")]
        if self.threads > 1 {
            return self.run_parallel(None, true).graph;
        }
        self.run(None, true, None).graph
    }

    /// The **build phase** of the incremental split: explore exhaustively
    /// (within limits) and retain everything — states, edges, and the
    /// per-state [`ExpansionLog`] — as a [`SessionGraph`] that later
    /// queries [`resume`](Explorer::resume) from.
    ///
    /// Always runs the sequential engine regardless of the configured
    /// thread count: the expansion journal requires the deterministic
    /// enumeration order only the FIFO BFS guarantees.
    pub fn build_session(&self) -> SessionGraph {
        let mut log = ExpansionLog::default();
        let r = self.run(None, true, Some(&mut log));
        SessionGraph::from_build(r.graph, log, self.limits)
    }

    /// The **query phase**: re-seed the BFS at a state already interned
    /// in `session` and search for `goal` under *this* explorer's
    /// limits, reusing every retained state, provenance pointer, and
    /// logged expansion. Equivalent — in verdict, goal depth, and
    /// [`SearchStats`] — to a cold sequential [`Explorer::find`] on the
    /// form re-rooted at that state's instance; see the
    /// [`crate::session`] docs for the exact contract. New states
    /// discovered past the retained frontier are interned into the
    /// session, growing it for subsequent queries.
    pub fn resume(
        &self,
        session: &mut SessionGraph,
        from: StateId,
        goal: impl FnMut(&Instance) -> bool,
    ) -> ExploreOutcome {
        session.resume_with(self.form, self.limits, from, goal)
    }

    /// The sequential engine: FIFO BFS over a [`StateStore`].
    ///
    /// Dense [`StateId`]s are assigned in discovery order, so an id
    /// doubles as the state's index — no side table.
    fn run(
        &self,
        mut goal: Option<&mut dyn FnMut(&Instance) -> bool>,
        want_edges: bool,
        mut log: Option<&mut ExpansionLog>,
    ) -> RunResult {
        let mut stats = SearchStats::default();
        let mut store = StateStore::new(self.symmetry);
        let mut triples: Vec<(StateId, Update, StateId)> = Vec::new();
        let finish =
            |store, triples, stats, goal| finish_run(store, triples, stats, goal, want_edges);

        let initial = self.form.initial().clone();
        let (root, _) = store.intern(initial, None);
        debug_assert_eq!(root, StateId(0));
        stats.states = 1;

        if let Some(goal) = goal.as_deref_mut() {
            if goal(store.get(root)) {
                stats.closed = true;
                return finish(store, triples, stats, Some(root));
            }
        }

        let mut queue: std::collections::VecDeque<StateId> = std::collections::VecDeque::new();
        queue.push_back(root);
        let mut pruned = false;

        while let Some(i) = queue.pop_front() {
            if store.depth(i) >= self.limits.max_depth {
                // Queue depths are non-decreasing, so every state still
                // queued is also at the depth limit: the search is
                // exhaustive iff none of them has a successor. `any`
                // short-circuits on the first successor found — the old
                // probe re-ran `allowed_updates` over the entire
                // unexpanded frontier unconditionally.
                if std::iter::once(i)
                    .chain(queue.drain(..))
                    .any(|j| has_successor(self.form, store.get(j)))
                {
                    pruned = true;
                    stats.limit_hit = Some(LimitKind::Depth);
                }
                break;
            }
            if let Some(log) = log.as_deref_mut() {
                log.begin(i);
            }
            let updates = self.form.allowed_updates(store.get(i));
            for u in updates {
                stats.transitions += 1;
                if let Update::Add { parent, edge } = u {
                    if store.get(i).live_count() >= self.limits.max_state_size {
                        pruned = true;
                        stats.limit_hit = Some(LimitKind::StateSize);
                        if let Some(log) = log.as_deref_mut() {
                            log.push(i, ExpandEvent::Pruned(LimitKind::StateSize));
                        }
                        continue;
                    }
                    if let Some(cap) = self.limits.multiplicity_cap {
                        if store.get(i).children_at(parent, edge).count() >= cap {
                            pruned = true;
                            stats.limit_hit = Some(LimitKind::Multiplicity);
                            if let Some(log) = log.as_deref_mut() {
                                log.push(i, ExpandEvent::Pruned(LimitKind::Multiplicity));
                            }
                            continue;
                        }
                    }
                }
                let mut next = store.get(i).clone();
                self.form
                    .apply_unchecked(&mut next, &u)
                    .expect("allowed updates apply");
                let (j, is_new) = store.intern(next, Some((i, u)));
                if want_edges {
                    triples.push((i, u, j));
                }
                if let Some(log) = log.as_deref_mut() {
                    log.push(i, ExpandEvent::Edge(u, j));
                }
                if !is_new {
                    continue;
                }
                stats.states += 1;

                if let Some(goal) = goal.as_deref_mut() {
                    if goal(store.get(j)) {
                        return finish(store, triples, stats, Some(j));
                    }
                }

                if stats.states >= self.limits.max_states {
                    stats.limit_hit = Some(LimitKind::States);
                    return finish(store, triples, stats, None);
                }
                queue.push_back(j);
            }
            if let Some(log) = log.as_deref_mut() {
                log.seal(i);
            }
        }

        stats.closed = !pruned;
        finish(store, triples, stats, None)
    }

    /// The **capacity engine**: sequential FIFO BFS over the
    /// out-of-core [`SpillStore`] instead of the flat [`StateStore`].
    ///
    /// The traversal mirrors [`Explorer::run`] step for step — same
    /// expansion order, same prune checks in the same order, same
    /// goal-before-state-cap sequencing, same depth-probe
    /// short-circuit — so it produces an identical [`SearchStats`] and
    /// finds the same goal state. What differs is residency: decoded
    /// instances live only in the BFS queue (the pinned frontier — a
    /// popped state's instance is dropped once expanded), canonical
    /// words of closed layers live as delta records in the paged arena,
    /// and cold pages spill to disk under the [`MemoryBudget`].
    fn run_capacity(
        &self,
        mut goal: Option<&mut dyn FnMut(&Instance) -> bool>,
        frontier_only: bool,
    ) -> (ExploreOutcome, SpillReport) {
        let mut stats = SearchStats::default();
        let mut store = SpillStore::new(self.symmetry, self.memory, frontier_only);

        let initial = self.form.initial().clone();
        let key = store.key_of(&initial);
        let (root, _) = store.intern(key, None, 0);
        debug_assert_eq!(root, 0);
        stats.states = 1;

        if let Some(goal) = goal.as_deref_mut() {
            if goal(&initial) {
                stats.closed = true;
                let goal_run = if frontier_only {
                    None
                } else {
                    Some(Vec::new())
                };
                return (ExploreOutcome { goal_run, stats }, store.report());
            }
        }

        let mut queue: std::collections::VecDeque<(u32, usize, Instance)> =
            std::collections::VecDeque::new();
        queue.push_back((root, 0, initial));
        let mut cur_depth = 0usize;
        let mut pruned = false;

        while let Some((i, d, inst)) = queue.pop_front() {
            if d > cur_depth {
                cur_depth = d;
                store.begin_layer(d as u32);
            }
            if d >= self.limits.max_depth {
                if std::iter::once(inst)
                    .chain(queue.drain(..).map(|(_, _, s)| s))
                    .any(|s| has_successor(self.form, &s))
                {
                    pruned = true;
                    stats.limit_hit = Some(LimitKind::Depth);
                }
                break;
            }
            let updates = self.form.allowed_updates(&inst);
            for u in updates {
                stats.transitions += 1;
                if let Update::Add { parent, edge } = u {
                    if inst.live_count() >= self.limits.max_state_size {
                        pruned = true;
                        stats.limit_hit = Some(LimitKind::StateSize);
                        continue;
                    }
                    if let Some(cap) = self.limits.multiplicity_cap {
                        if inst.children_at(parent, edge).count() >= cap {
                            pruned = true;
                            stats.limit_hit = Some(LimitKind::Multiplicity);
                            continue;
                        }
                    }
                }
                let mut next = inst.clone();
                self.form
                    .apply_unchecked(&mut next, &u)
                    .expect("allowed updates apply");
                let key = store.key_of(&next);
                let (j, is_new) = store.intern(key, Some((i, u)), (d + 1) as u32);
                if !is_new {
                    continue;
                }
                stats.states += 1;

                if let Some(goal) = goal.as_deref_mut() {
                    if goal(&next) {
                        let goal_run = store.run_to(j);
                        return (ExploreOutcome { goal_run, stats }, store.report());
                    }
                }

                if stats.states >= self.limits.max_states {
                    stats.limit_hit = Some(LimitKind::States);
                    return (
                        ExploreOutcome {
                            goal_run: None,
                            stats,
                        },
                        store.report(),
                    );
                }
                queue.push_back((j, d + 1, next));
            }
        }

        stats.closed = !pruned;
        (
            ExploreOutcome {
                goal_run: None,
                stats,
            },
            store.report(),
        )
    }

    /// The parallel engine: a persistent worker pool over the
    /// fingerprint-sharded [`ShardedStateStore`].
    ///
    /// Workers are spawned lazily (the first time a layer is wide enough
    /// to dispatch) and then live for the whole run, blocking on their
    /// job channel between layers. Within a layer every pool member —
    /// the coordinating thread included — claims frontier chunks from a
    /// shared atomic cursor and interns successors straight into the
    /// store shard owning the successor's fingerprint: dedup, storage
    /// and parent provenance happen under one shard lock, so there is no
    /// second sequential intern pass at the barrier. The barrier itself
    /// only assigns dense [`StateId`]s in pool order (vector pushes),
    /// mirroring the sequential engine's goal/state-cap truncation
    /// exactly; states interned past a terminal condition are trimmed at
    /// finish time, which keeps `stats.states` equal to the sequential
    /// count at every limit boundary. Narrow layers (deep, thin spaces
    /// like the Thm 4.1 machine simulations) are expanded inline by the
    /// coordinator without waking the pool.
    #[cfg(feature = "parallel")]
    fn run_parallel(
        &self,
        goal: Option<&(dyn Fn(&Instance) -> bool + Sync)>,
        want_edges: bool,
    ) -> RunResult {
        use crate::store::{PackedStateId, ShardedStateStore};
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        use std::sync::{mpsc, Arc};

        /// One `(from, update, successor)` record; the successor is
        /// still a packed id until finish-time remapping.
        type PendEdge = (StateId, Update, PackedStateId);

        /// A layer's shared work description: the frontier snapshot plus
        /// the cursor workers claim chunks from.
        struct LayerWork {
            items: Vec<(StateId, Arc<Instance>)>,
            cursor: AtomicUsize,
            chunk: usize,
            depth: u32,
        }

        /// What the pool is asked to do with a layer.
        enum Job {
            /// Expand every frontier state.
            Expand(Arc<LayerWork>),
            /// Depth-limit exhaustiveness probe: does *any* frontier
            /// state still have a successor? Short-circuits pool-wide.
            Probe(Arc<LayerWork>),
        }

        /// A state discovered (intern race won) by one pool member.
        struct NewState {
            id: PackedStateId,
            inst: Arc<Instance>,
            is_goal: bool,
        }

        /// One pool member's output for one job.
        #[derive(Default)]
        struct LayerOut {
            new: Vec<NewState>,
            transitions: usize,
            pruned: Option<LimitKind>,
            probe_found: bool,
        }

        /// The shared read-only context of every pool member.
        #[derive(Clone, Copy)]
        struct Ctx<'a> {
            form: &'a GuardedForm,
            limits: ExploreLimits,
            store: &'a ShardedStateStore,
            /// Terminal condition (goal found / state cap reached / probe
            /// succeeded): abandon remaining chunks.
            stop: &'a AtomicBool,
            /// Running count of interned states (the workers' state-cap
            /// heuristic; the barrier's dense assignment is the truth).
            states_total: &'a AtomicUsize,
            goal: Option<&'a (dyn Fn(&Instance) -> bool + Sync)>,
            want_edges: bool,
        }

        /// The chunk-claiming protocol shared by [`expand`] and
        /// [`probe`]: claim chunks off the layer's shared cursor and feed
        /// items to `handle` until the layer drains or `handle` breaks
        /// (the pool-wide terminal flag).
        fn for_each_claimed(
            work: &LayerWork,
            mut handle: impl FnMut(&(StateId, Arc<Instance>)) -> std::ops::ControlFlow<()>,
        ) {
            let n = work.items.len();
            'claim: loop {
                let start = work.cursor.fetch_add(work.chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                for item in &work.items[start..(start + work.chunk).min(n)] {
                    if handle(item).is_break() {
                        break 'claim;
                    }
                }
            }
        }

        /// The expansion loop every pool member runs, mirroring the
        /// sequential inner loop exactly (same prune checks, goal
        /// evaluated only on newly discovered states).
        fn expand(ctx: &Ctx, work: &LayerWork, edges: &mut Vec<PendEdge>) -> LayerOut {
            use std::ops::ControlFlow;
            let mut out = LayerOut::default();
            for_each_claimed(work, |(from, inst)| {
                if ctx.stop.load(Ordering::Relaxed) {
                    return ControlFlow::Break(());
                }
                for u in ctx.form.allowed_updates(inst) {
                    if ctx.stop.load(Ordering::Relaxed) {
                        return ControlFlow::Break(());
                    }
                    out.transitions += 1;
                    if let Update::Add { parent, edge } = u {
                        if inst.live_count() >= ctx.limits.max_state_size {
                            out.pruned = Some(LimitKind::StateSize);
                            continue;
                        }
                        if let Some(cap) = ctx.limits.multiplicity_cap {
                            if inst.children_at(parent, edge).count() >= cap {
                                out.pruned = Some(LimitKind::Multiplicity);
                                continue;
                            }
                        }
                    }
                    let mut next = (**inst).clone();
                    ctx.form
                        .apply_unchecked(&mut next, &u)
                        .expect("allowed updates apply");
                    let key = ctx.store.key_of(&next);
                    let (id, created) =
                        ctx.store
                            .intern(key, next, Some((*from, u)), work.depth + 1);
                    if ctx.want_edges {
                        edges.push((*from, u, id));
                    }
                    if let Some(arc) = created {
                        let count = ctx.states_total.fetch_add(1, Ordering::Relaxed) + 1;
                        let is_goal = ctx.goal.is_some_and(|g| g(&arc));
                        if is_goal || count >= ctx.limits.max_states {
                            ctx.stop.store(true, Ordering::Relaxed);
                        }
                        out.new.push(NewState {
                            id,
                            inst: arc,
                            is_goal,
                        });
                    }
                }
                ControlFlow::Continue(())
            });
            out
        }

        /// The depth-limit probe every pool member runs: short-circuit
        /// pool-wide on the first frontier state with a successor.
        fn probe(ctx: &Ctx, work: &LayerWork) -> LayerOut {
            use std::ops::ControlFlow;
            let mut out = LayerOut::default();
            for_each_claimed(work, |(_, inst)| {
                if ctx.stop.load(Ordering::Relaxed) {
                    return ControlFlow::Break(());
                }
                if has_successor(ctx.form, inst) {
                    out.probe_found = true;
                    ctx.stop.store(true, Ordering::Relaxed);
                    return ControlFlow::Break(());
                }
                ControlFlow::Continue(())
            });
            out
        }

        let form = self.form;
        let limits = self.limits;
        let threads = self.threads;
        let mut stats = SearchStats::default();

        // Goal at the initial instance short-circuits before any pool
        // machinery exists (and closes, per the sequential contract).
        let initial = form.initial().clone();
        if let Some(g) = goal {
            if g(&initial) {
                let mut store = StateStore::new(self.symmetry);
                let (root, _) = store.intern(initial, None);
                stats.states = 1;
                stats.closed = true;
                return finish_run(store, Vec::new(), stats, Some(root), want_edges);
            }
        }

        let store = ShardedStateStore::new(self.symmetry);
        let stop = AtomicBool::new(false);
        let states_total = AtomicUsize::new(1); // the root
        let root_key = store.key_of(&initial);
        let (root_packed, root_arc) = store.intern(root_key, initial, None, 0);
        let root_arc = root_arc.expect("the root interns into the empty store as new");
        stats.states = 1;

        // Dense-id assignment state: `locs[g]` is the packed id of dense
        // state `g`; `global_of[shard][local]` inverts it (missing /
        // `u32::MAX` ⇒ trimmed, never assigned).
        let mut locs: Vec<PackedStateId> = vec![root_packed];
        let mut global_of: Vec<Vec<u32>> = vec![Vec::new(); ShardedStateStore::SHARD_COUNT];
        fn assign(global_of: &mut [Vec<u32>], p: PackedStateId, g: u32) {
            let col = &mut global_of[p.shard()];
            if col.len() <= p.local() {
                col.resize(p.local() + 1, u32::MAX);
            }
            col[p.local()] = g;
        }
        assign(&mut global_of, root_packed, 0);

        let ctx = Ctx {
            form,
            limits,
            store: &store,
            stop: &stop,
            states_total: &states_total,
            goal,
            want_edges,
        };

        let (goal_state, coord_edges, worker_edges) = std::thread::scope(|scope| {
            let (res_tx, res_rx) = mpsc::channel::<LayerOut>();
            let mut job_txs: Vec<mpsc::Sender<Job>> = Vec::new();
            let mut handles = Vec::new();
            let mut coord_edges: Vec<PendEdge> = Vec::new();

            // Spawn the pool on first use; each worker loops over its job
            // channel until the coordinator drops the senders, returning
            // its accumulated edge log on join.
            let mut dispatch = |work: &Arc<LayerWork>,
                                probe_job: bool,
                                job_txs: &mut Vec<mpsc::Sender<Job>>|
             -> usize {
                if job_txs.is_empty() {
                    for _ in 0..threads - 1 {
                        let (jtx, jrx) = mpsc::channel::<Job>();
                        job_txs.push(jtx);
                        let res = res_tx.clone();
                        let wctx = ctx;
                        handles.push(scope.spawn(move || {
                            let mut edges: Vec<PendEdge> = Vec::new();
                            while let Ok(job) = jrx.recv() {
                                let out = match job {
                                    Job::Expand(w) => expand(&wctx, &w, &mut edges),
                                    Job::Probe(w) => probe(&wctx, &w),
                                };
                                if res.send(out).is_err() {
                                    break;
                                }
                            }
                            edges
                        }));
                    }
                }
                for tx in job_txs.iter() {
                    let j = if probe_job {
                        Job::Probe(work.clone())
                    } else {
                        Job::Expand(work.clone())
                    };
                    tx.send(j).expect("pool worker exited early");
                }
                job_txs.len()
            };

            let mut frontier: Vec<(StateId, Arc<Instance>)> = vec![(StateId(0), root_arc)];
            let mut cur_depth = 0usize;
            let mut pruned = false;
            let mut goal_state: Option<StateId> = None;

            // A layer is dispatched to the pool only when it offers every
            // member a meaningful chunk; narrow layers are expanded
            // inline by the coordinator without waking anyone.
            const MIN_ITEMS_PER_WORKER: usize = 4;

            'search: loop {
                if frontier.is_empty() {
                    stats.closed = !pruned;
                    break;
                }
                let wide = threads > 1 && frontier.len() >= MIN_ITEMS_PER_WORKER * threads;
                let chunk = (frontier.len() / (threads * 8)).clamp(1, 1024);
                let work = Arc::new(LayerWork {
                    items: std::mem::take(&mut frontier),
                    cursor: AtomicUsize::new(0),
                    chunk,
                    depth: cur_depth as u32,
                });

                if cur_depth >= limits.max_depth {
                    // Unexpanded frontier: exhaustiveness is lost iff any
                    // frontier state still has a successor. One probe hit
                    // short-circuits the whole pool.
                    let sent = if wide {
                        dispatch(&work, true, &mut job_txs)
                    } else {
                        0
                    };
                    let mut found = probe(&ctx, &work).probe_found;
                    for _ in 0..sent {
                        found |= res_rx.recv().expect("pool worker died").probe_found;
                    }
                    if found {
                        pruned = true;
                        stats.limit_hit = Some(LimitKind::Depth);
                    }
                    stats.closed = !pruned;
                    break;
                }

                // --- expand: the pool (and this thread) drain the layer
                let sent = if wide {
                    dispatch(&work, false, &mut job_txs)
                } else {
                    0
                };
                let mut outs = Vec::with_capacity(sent + 1);
                outs.push(expand(&ctx, &work, &mut coord_edges));
                for _ in 0..sent {
                    outs.push(res_rx.recv().expect("pool worker died"));
                }

                // --- barrier: merge stats, assign dense ids ------------
                for out in &outs {
                    stats.transitions += out.transitions;
                    if let Some(k) = out.pruned {
                        pruned = true;
                        stats.limit_hit = Some(k);
                    }
                }
                let mut next: Vec<(StateId, Arc<Instance>)> = Vec::new();
                'merge: for out in outs {
                    for ns in out.new {
                        let g = StateId(locs.len() as u32);
                        locs.push(ns.id);
                        assign(&mut global_of, ns.id, g.0);
                        stats.states += 1;
                        if ns.is_goal {
                            goal_state = Some(g);
                            break 'merge;
                        }
                        if stats.states >= limits.max_states {
                            stats.limit_hit = Some(LimitKind::States);
                            break 'merge;
                        }
                        next.push((g, ns.inst));
                    }
                }
                if goal_state.is_some() || stats.limit_hit == Some(LimitKind::States) {
                    break 'search;
                }
                frontier = next;
                cur_depth += 1;
            }

            drop(job_txs); // workers drain and exit
            let worker_edges: Vec<Vec<PendEdge>> = handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect();
            (goal_state, coord_edges, worker_edges)
        });

        // --- finish: remap edges, flatten the shards -------------------
        // Edges whose target was trimmed (interned past a terminal
        // condition, never assigned a dense id) are dropped, matching the
        // sequential engine's truncation. All frontier handles died with
        // the scope, so the flatten unwraps instances without cloning.
        let triples: Vec<(StateId, Update, StateId)> = if want_edges {
            coord_edges
                .into_iter()
                .chain(worker_edges.into_iter().flatten())
                .filter_map(|(from, u, p)| {
                    let g = global_of[p.shard()].get(p.local()).copied();
                    match g {
                        Some(g) if g != u32::MAX => Some((from, u, StateId(g))),
                        _ => None,
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        debug_assert_eq!(stats.states, locs.len());
        let store = store.into_store(&locs);
        finish_run(store, triples, stats, goal_state, want_edges)
    }
}

/// The depth-limit exhaustiveness probe shared by both engines (and by
/// [`SessionGraph`] resumes): does this unexpanded frontier state still
/// have any successor?
pub(crate) fn has_successor(form: &GuardedForm, inst: &Instance) -> bool {
    !form.allowed_updates(inst).is_empty()
}

struct RunResult {
    graph: StateGraph,
    goal: Option<StateId>,
}

/// Shared graph finalization of both engines: build the CSR successor
/// table (or an empty one for goal searches) and package the result.
fn finish_run(
    store: StateStore,
    triples: Vec<(StateId, Update, StateId)>,
    stats: SearchStats,
    goal: Option<StateId>,
    want_edges: bool,
) -> RunResult {
    let succ = if want_edges {
        SuccessorTable::from_triples(store.len(), &triples)
    } else {
        SuccessorTable::empty(store.len())
    };
    RunResult {
        graph: StateGraph { store, succ, stats },
        goal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::{AccessRules, Formula, GuardedForm, Schema};
    use std::sync::Arc;

    /// r with children a, b; free add/del of both but at most one of each
    /// (¬a / ¬b add guards). 4 reachable states.
    fn toggle_form() -> GuardedForm {
        let schema = Arc::new(Schema::parse("a, b").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set_both(
            schema.resolve("a").unwrap(),
            Formula::parse("!a").unwrap(),
            Formula::True,
        );
        rules.set_both(
            schema.resolve("b").unwrap(),
            Formula::parse("!b").unwrap(),
            Formula::True,
        );
        let init = Instance::empty(schema.clone());
        GuardedForm::new(schema, rules, init, Formula::parse("a & b").unwrap())
    }

    #[test]
    fn finds_goal_and_run_replays() {
        let g = toggle_form();
        let ex = Explorer::new(&g, ExploreLimits::small()).with_threads(1);
        let out = ex.find(|i| g.is_complete(i));
        let run = out.goal_run.expect("goal reachable");
        assert_eq!(run.len(), 2);
        assert!(g.is_complete_run(&run));
    }

    #[test]
    fn graph_closes_on_finite_space() {
        let g = toggle_form();
        let graph = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .graph();
        assert_eq!(graph.state_count(), 4); // {}, {a}, {b}, {a,b}
        assert!(graph.stats.closed);
        // Every non-initial state's reconstructed run replays.
        for i in 1..graph.state_count() {
            let run = graph.run_to(i);
            let r = g.replay(&run).unwrap();
            assert!(r.last().isomorphic(graph.state(i)));
        }
    }

    #[test]
    fn edges_cover_all_transitions() {
        let g = toggle_form();
        let graph = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .graph();
        // state {}: 2 adds; {a}: del a + add b; {b}: del b + add a;
        // {a,b}: del a + del b. Total 8 directed edges.
        assert_eq!(graph.edge_count(), 8);
    }

    #[test]
    fn state_limit_reported() {
        let g = toggle_form();
        let lim = ExploreLimits {
            max_states: 2,
            ..ExploreLimits::small()
        };
        let graph = Explorer::new(&g, lim).with_threads(1).graph();
        assert!(!graph.stats.closed);
        assert_eq!(graph.stats.limit_hit, Some(LimitKind::States));
    }

    /// The capacity engine (tiny spill budget) is verdict-, depth- and
    /// stats-identical to the sequential in-RAM engine, and its witness
    /// run replays.
    #[test]
    fn capacity_engine_matches_sequential_on_leave() {
        let g = idar_core::leave::example_3_12();
        let seq = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .find(|i| g.is_complete(i));
        let (cap, report) = Explorer::new(&g, ExploreLimits::small())
            .with_memory_budget(MemoryBudget::bytes(4 * 1024))
            .find_spilled(|i| g.is_complete(i));
        assert_eq!(cap.stats, seq.stats);
        let seq_run = seq.goal_run.expect("completable");
        let cap_run = cap.goal_run.expect("completable");
        assert_eq!(cap_run.len(), seq_run.len(), "same BFS goal depth");
        assert!(g.is_complete_run(&cap_run), "spilled witness replays");
        assert!(report.encoded_bytes > 0);
        assert!(
            report.encoded_bytes < report.word_bytes,
            "delta encoding compresses"
        );
    }

    /// A bounded memory budget routes `find` through the capacity
    /// engine with unchanged exhaustive-search semantics.
    #[test]
    fn budgeted_find_closes_finite_space() {
        let g = toggle_form();
        let seq = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .find(|_| false);
        let cap = Explorer::new(&g, ExploreLimits::small())
            .with_memory_budget(MemoryBudget::bytes(0))
            .find(|_| false);
        assert_eq!(cap.stats, seq.stats);
        assert!(cap.stats.closed);
        assert_eq!(cap.stats.states, 4);
    }

    /// Frontier-only mode on a deletion-free form: same stats and goal
    /// depth as the sequential engine, no retained records.
    #[test]
    fn frontier_only_matches_on_deletion_free_form() {
        let schema = Arc::new(Schema::parse("a, b").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set_both(
            schema.resolve("a").unwrap(),
            Formula::parse("!a").unwrap(),
            Formula::False,
        );
        rules.set_both(
            schema.resolve("b").unwrap(),
            Formula::parse("!b").unwrap(),
            Formula::False,
        );
        let init = Instance::empty(schema.clone());
        let g = GuardedForm::new(schema, rules, init, Formula::parse("a & b").unwrap());
        assert!(g.is_deletion_free());
        let seq = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .find(|i| g.is_complete(i));
        let (fo, report) =
            Explorer::new(&g, ExploreLimits::small()).find_frontier_only(|i| g.is_complete(i));
        assert_eq!(fo.stats, seq.stats);
        assert!(fo.goal_run.is_none(), "frontier-only keeps no provenance");
        assert!(report.frontier_only);
        assert_eq!(report.encoded_bytes, 0);
    }

    #[test]
    fn unbounded_growth_hits_size_limit() {
        // A form whose instances grow forever: add `a` always allowed.
        let schema = Arc::new(Schema::parse("a").unwrap());
        let rules = AccessRules::with_default(&schema, Formula::True);
        let init = Instance::empty(schema.clone());
        let g = GuardedForm::new(schema, rules, init, Formula::False);
        let lim = ExploreLimits {
            max_states: 1000,
            max_state_size: 16,
            max_depth: usize::MAX,
            multiplicity_cap: None,
        };
        let graph = Explorer::new(&g, lim).with_threads(1).graph();
        assert!(!graph.stats.closed);
        assert_eq!(graph.stats.limit_hit, Some(LimitKind::StateSize));
        // 16 states: 0..=15 copies of `a` … plus none beyond the cap.
        assert_eq!(graph.state_count(), 16);
    }

    #[test]
    fn multiplicity_cap_prunes() {
        let schema = Arc::new(Schema::parse("a").unwrap());
        let rules = AccessRules::with_default(&schema, Formula::True);
        let init = Instance::empty(schema.clone());
        let g = GuardedForm::new(schema, rules, init, Formula::False);
        let lim = ExploreLimits {
            multiplicity_cap: Some(3),
            ..ExploreLimits::small()
        };
        let graph = Explorer::new(&g, lim).with_threads(1).graph();
        assert_eq!(graph.state_count(), 4); // 0,1,2,3 copies
        assert!(!graph.stats.closed);
        assert_eq!(graph.stats.limit_hit, Some(LimitKind::Multiplicity));
    }

    #[test]
    fn goal_at_initial_state() {
        let g = toggle_form().with_completion(Formula::True);
        let out = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .find(|i| g.is_complete(i));
        assert_eq!(out.goal_run, Some(vec![]));
    }

    #[test]
    fn depth_limit() {
        let g = toggle_form();
        let lim = ExploreLimits {
            max_depth: 1,
            ..ExploreLimits::small()
        };
        let graph = Explorer::new(&g, lim).with_threads(1).graph();
        // initial + {a} + {b}; {a,b} is at depth 2.
        assert_eq!(graph.state_count(), 3);
        assert!(!graph.stats.closed);
    }

    /// With the symmetry reduction off (plain mode), sibling permutations
    /// of the toggle form count separately: {a,b} and {b,a} are distinct
    /// ordered trees, and the verdict-relevant facts still agree.
    #[test]
    fn plain_mode_explores_the_ordered_space() {
        let g = toggle_form();
        let reduced = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .graph();
        let plain = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .with_symmetry(SymmetryMode::Plain)
            .graph();
        assert_eq!(reduced.state_count(), 4);
        assert_eq!(plain.state_count(), 5); // {}, a, b, ab, ba
        assert!(reduced.stats.closed && plain.stats.closed);
        // Goal search agrees on existence and BFS depth.
        let rf = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .find(|i| g.is_complete(i));
        let pf = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .with_symmetry(SymmetryMode::Plain)
            .find(|i| g.is_complete(i));
        assert_eq!(
            rf.goal_run.as_ref().map(Vec::len),
            pf.goal_run.as_ref().map(Vec::len)
        );
        assert!(g.is_complete_run(&pf.goal_run.unwrap()));
    }

    // -- parallel engine ----------------------------------------------------

    /// The canonical state set of a graph, as a sorted list of iso codes.
    #[cfg(feature = "parallel")]
    fn state_set(g: &StateGraph) -> Vec<String> {
        let mut v: Vec<String> = g.states().iter().map(|s| s.iso_code()).collect();
        v.sort_unstable();
        v
    }

    /// Parallel and sequential engines agree on the state set, closedness,
    /// depths, and edge counts of a small closed space.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_graph_matches_sequential() {
        let g = toggle_form();
        let seq = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .graph();
        for threads in [2, 3, 8] {
            let par = Explorer::new(&g, ExploreLimits::small())
                .with_threads(threads)
                .graph();
            assert_eq!(state_set(&par), state_set(&seq), "threads={threads}");
            assert_eq!(par.stats.states, seq.stats.states);
            assert_eq!(par.stats.transitions, seq.stats.transitions);
            assert!(par.stats.closed);
            assert_eq!(par.edge_count(), seq.edge_count());
            // Depth multisets agree (BFS layering is engine-independent).
            let mut sd: Vec<usize> = (0..seq.state_count()).map(|i| seq.depth_of(i)).collect();
            let mut pd: Vec<usize> = (0..par.state_count()).map(|i| par.depth_of(i)).collect();
            sd.sort_unstable();
            pd.sort_unstable();
            assert_eq!(sd, pd);
            // Every parallel parent pointer reconstructs a valid run.
            for i in 0..par.state_count() {
                let run = par.run_to(i);
                assert_eq!(run.len(), par.depth_of(i));
                let r = g.replay(&run).unwrap();
                assert!(r.last().isomorphic(par.state(i)));
            }
        }
    }

    /// Parallel `find` returns a replayable shortest run.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_find_agrees() {
        let g = toggle_form();
        let seq = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .find(|i| g.is_complete(i));
        let par = Explorer::new(&g, ExploreLimits::small())
            .with_threads(4)
            .find(|i| g.is_complete(i));
        let seq_run = seq.goal_run.expect("seq finds goal");
        let par_run = par.goal_run.expect("par finds goal");
        assert_eq!(seq_run.len(), par_run.len(), "same BFS goal depth");
        assert!(g.is_complete_run(&par_run));
    }

    /// Limit behaviours (state cap, depth cap, size cap) are preserved.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_limits_match() {
        let g = toggle_form();
        // Depth cap.
        let lim = ExploreLimits {
            max_depth: 1,
            ..ExploreLimits::small()
        };
        let par = Explorer::new(&g, lim).with_threads(4).graph();
        assert_eq!(par.state_count(), 3);
        assert!(!par.stats.closed);
        assert_eq!(par.stats.limit_hit, Some(LimitKind::Depth));

        // State-size cap on an unbounded form.
        let schema = Arc::new(Schema::parse("a").unwrap());
        let rules = AccessRules::with_default(&schema, Formula::True);
        let init = Instance::empty(schema.clone());
        let grow = GuardedForm::new(schema, rules, init, Formula::False);
        let lim = ExploreLimits {
            max_states: 1000,
            max_state_size: 16,
            max_depth: usize::MAX,
            multiplicity_cap: None,
        };
        let par = Explorer::new(&grow, lim).with_threads(4).graph();
        assert!(!par.stats.closed);
        assert_eq!(par.stats.limit_hit, Some(LimitKind::StateSize));
        assert_eq!(par.state_count(), 16);

        // State-count cap.
        let lim = ExploreLimits {
            max_states: 2,
            ..ExploreLimits::small()
        };
        let par = Explorer::new(&g, lim).with_threads(4).graph();
        assert!(!par.stats.closed);
        assert_eq!(par.stats.limit_hit, Some(LimitKind::States));
    }

    /// Goal on the initial instance short-circuits identically.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_goal_at_initial_state() {
        let g = toggle_form().with_completion(Formula::True);
        let out = Explorer::new(&g, ExploreLimits::small())
            .with_threads(4)
            .find(|i| g.is_complete(i));
        assert_eq!(out.goal_run, Some(vec![]));
        assert!(out.stats.closed);
    }

    /// The parallel engine honours the plain symmetry mode and matches
    /// the sequential plain exploration.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_plain_mode_matches_sequential() {
        let g = toggle_form();
        let seq = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .with_symmetry(SymmetryMode::Plain)
            .graph();
        let par = Explorer::new(&g, ExploreLimits::small())
            .with_threads(4)
            .with_symmetry(SymmetryMode::Plain)
            .graph();
        assert_eq!(par.state_count(), seq.state_count());
        assert_eq!(par.stats.transitions, seq.stats.transitions);
        assert!(par.stats.closed);
    }
}
