//! Bounded explicit-state exploration of a guarded form's run space.
//!
//! States are instances *up to isomorphism* — deduplicated via
//! [`Instance::iso_code`], which preserves sibling multiplicity. This is
//! deliberately **not** the bisimulation quotient: Lemma 4.3 makes the
//! canonical-instance abstraction sound for depth-1 forms only, and Thm 4.1
//! shows that at depth ≥ 2 multiplicities carry real information (they
//! encode counter values!). The depth-1 fast path lives in
//! [`crate::depth1`]; this explorer is the general-purpose engine.
//!
//! Because completability is undecidable in general (Thm 4.1), the
//! exploration is bounded, and the outcome records whether the search
//! *closed* — i.e. exhausted every reachable state without hitting a limit.
//! When it closed, negative answers are exact; otherwise they are reported
//! as [`Verdict::Unknown`](crate::Verdict) by the callers.

use crate::verdict::{LimitKind, SearchStats};
use idar_core::{GuardedForm, Instance, Update};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// Resource limits for bounded exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreLimits {
    /// Maximum number of distinct states to visit.
    pub max_states: usize,
    /// Maximum live-node count per instance; additions beyond it are pruned.
    pub max_state_size: usize,
    /// Maximum run length (steps from the initial instance).
    pub max_depth: usize,
    /// If set, prune additions that would give a parent more than this many
    /// children along one schema edge. Sound completeness bounds for this
    /// cap exist in fragment `F(A+, φ−, k)` (Thm 5.2 / Lemma 4.4); the
    /// [`crate::np`] solver computes one. Elsewhere it is a heuristic and
    /// de-closes the search.
    pub multiplicity_cap: Option<usize>,
}

impl Default for ExploreLimits {
    fn default() -> Self {
        ExploreLimits {
            max_states: 200_000,
            max_state_size: 160,
            max_depth: usize::MAX,
            multiplicity_cap: None,
        }
    }
}

impl ExploreLimits {
    /// Limits suitable for small exhaustive checks in tests.
    pub fn small() -> Self {
        ExploreLimits {
            max_states: 20_000,
            max_state_size: 64,
            max_depth: usize::MAX,
            multiplicity_cap: None,
        }
    }
}

/// The result of an exploration.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// A run (update sequence from the initial instance) reaching the first
    /// goal state found, if any.
    pub goal_run: Option<Vec<Update>>,
    /// Search statistics; `stats.closed` reports exhaustiveness.
    pub stats: SearchStats,
}

/// The full reachable state graph produced by [`Explorer::graph`].
#[derive(Debug, Clone)]
pub struct StateGraph {
    /// Distinct reachable states; index 0 is the initial instance.
    pub states: Vec<Instance>,
    /// BFS tree pointers: `parents[i] = (j, u)` means state `i` was first
    /// reached from state `j` by update `u` (`None` for the initial state).
    pub parents: Vec<Option<(usize, Update)>>,
    /// All state-graph edges: `edges[i]` lists `(update, successor index)`.
    pub edges: Vec<Vec<(Update, usize)>>,
    /// BFS depth of each state.
    pub depth: Vec<usize>,
    /// Search statistics.
    pub stats: SearchStats,
}

impl StateGraph {
    /// Reconstruct the update sequence leading from the initial instance to
    /// state `i` (replayable via [`GuardedForm::replay`]).
    pub fn run_to(&self, mut i: usize) -> Vec<Update> {
        let mut rev = Vec::new();
        while let Some((p, u)) = self.parents[i] {
            rev.push(u);
            i = p;
        }
        rev.reverse();
        rev
    }
}

/// Bounded breadth-first explorer over a guarded form's instances.
#[derive(Debug, Clone)]
pub struct Explorer<'a> {
    form: &'a GuardedForm,
    limits: ExploreLimits,
}

impl<'a> Explorer<'a> {
    pub fn new(form: &'a GuardedForm, limits: ExploreLimits) -> Self {
        Explorer { form, limits }
    }

    /// BFS from the initial instance until `goal` holds for some state (or
    /// the space/limits are exhausted). Returns the shortest-in-BFS run to
    /// the goal, if found.
    pub fn find(&self, mut goal: impl FnMut(&Instance) -> bool) -> ExploreOutcome {
        let g = self.run(Some(&mut goal), false);
        ExploreOutcome {
            goal_run: g.goal.map(|i| g.graph.run_to(i)),
            stats: g.graph.stats,
        }
    }

    /// Exhaustively (within limits) build the reachable state graph.
    pub fn graph(&self) -> StateGraph {
        self.run(None, true).graph
    }

    fn run(
        &self,
        mut goal: Option<&mut dyn FnMut(&Instance) -> bool>,
        want_edges: bool,
    ) -> RunResult {
        let mut stats = SearchStats::default();
        let initial = self.form.initial().clone();

        let mut states: Vec<Instance> = Vec::new();
        let mut parents: Vec<Option<(usize, Update)>> = Vec::new();
        let mut depth: Vec<usize> = Vec::new();
        let mut edges: Vec<Vec<(Update, usize)>> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();

        index.insert(initial.iso_code(), 0);
        states.push(initial);
        parents.push(None);
        depth.push(0);
        edges.push(Vec::new());
        stats.states = 1;

        if let Some(goal) = goal.as_deref_mut() {
            if goal(&states[0]) {
                return RunResult {
                    graph: StateGraph {
                        states,
                        parents,
                        edges,
                        depth,
                        stats: SearchStats {
                            closed: true,
                            ..stats
                        },
                    },
                    goal: Some(0),
                };
            }
        }

        let mut queue: VecDeque<usize> = VecDeque::new();
        queue.push_back(0);
        let mut pruned = false;

        while let Some(i) = queue.pop_front() {
            if depth[i] >= self.limits.max_depth {
                // Unexpanded frontier state: search no longer exhaustive
                // (unless the state has no successors at all, checked below).
                if !self.form.allowed_updates(&states[i]).is_empty() {
                    pruned = true;
                    stats.limit_hit = Some(LimitKind::Depth);
                }
                continue;
            }
            let updates = self.form.allowed_updates(&states[i]);
            for u in updates {
                stats.transitions += 1;
                if let Update::Add { parent, edge } = u {
                    if states[i].live_count() >= self.limits.max_state_size {
                        pruned = true;
                        stats.limit_hit = Some(LimitKind::StateSize);
                        continue;
                    }
                    if let Some(cap) = self.limits.multiplicity_cap {
                        if states[i].children_at(parent, edge).count() >= cap {
                            pruned = true;
                            stats.limit_hit = Some(LimitKind::Multiplicity);
                            continue;
                        }
                    }
                }
                let mut next = states[i].clone();
                self.form
                    .apply_unchecked(&mut next, &u)
                    .expect("allowed updates apply");
                let code = next.iso_code();
                let j = match index.entry(code) {
                    Entry::Occupied(e) => {
                        let j = *e.get();
                        if want_edges {
                            edges[i].push((u, j));
                        }
                        continue;
                    }
                    Entry::Vacant(e) => {
                        let j = states.len();
                        e.insert(j);
                        j
                    }
                };
                states.push(next);
                parents.push(Some((i, u)));
                depth.push(depth[i] + 1);
                edges.push(Vec::new());
                if want_edges {
                    edges[i].push((u, j));
                }
                stats.states += 1;

                if let Some(goal) = goal.as_deref_mut() {
                    if goal(&states[j]) {
                        return RunResult {
                            graph: StateGraph {
                                states,
                                parents,
                                edges,
                                depth,
                                stats,
                            },
                            goal: Some(j),
                        };
                    }
                }

                if stats.states >= self.limits.max_states {
                    stats.limit_hit = Some(LimitKind::States);
                    return RunResult {
                        graph: StateGraph {
                            states,
                            parents,
                            edges,
                            depth,
                            stats,
                        },
                        goal: None,
                    };
                }
                queue.push_back(j);
            }
        }

        stats.closed = !pruned;
        RunResult {
            graph: StateGraph {
                states,
                parents,
                edges,
                depth,
                stats,
            },
            goal: None,
        }
    }
}

struct RunResult {
    graph: StateGraph,
    goal: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::{AccessRules, Formula, GuardedForm, Schema};
    use std::sync::Arc;

    /// r with children a, b; free add/del of both but at most one of each
    /// (¬a / ¬b add guards). 4 reachable states.
    fn toggle_form() -> GuardedForm {
        let schema = Arc::new(Schema::parse("a, b").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set_both(
            schema.resolve("a").unwrap(),
            Formula::parse("!a").unwrap(),
            Formula::True,
        );
        rules.set_both(
            schema.resolve("b").unwrap(),
            Formula::parse("!b").unwrap(),
            Formula::True,
        );
        let init = Instance::empty(schema.clone());
        GuardedForm::new(schema, rules, init, Formula::parse("a & b").unwrap())
    }

    #[test]
    fn finds_goal_and_run_replays() {
        let g = toggle_form();
        let ex = Explorer::new(&g, ExploreLimits::small());
        let out = ex.find(|i| g.is_complete(i));
        let run = out.goal_run.expect("goal reachable");
        assert_eq!(run.len(), 2);
        assert!(g.is_complete_run(&run));
    }

    #[test]
    fn graph_closes_on_finite_space() {
        let g = toggle_form();
        let graph = Explorer::new(&g, ExploreLimits::small()).graph();
        assert_eq!(graph.states.len(), 4); // {}, {a}, {b}, {a,b}
        assert!(graph.stats.closed);
        // Every non-initial state's reconstructed run replays.
        for i in 1..graph.states.len() {
            let run = graph.run_to(i);
            let r = g.replay(&run).unwrap();
            assert!(r.last().isomorphic(&graph.states[i]));
        }
    }

    #[test]
    fn edges_cover_all_transitions() {
        let g = toggle_form();
        let graph = Explorer::new(&g, ExploreLimits::small()).graph();
        // state {}: 2 adds; {a}: del a + add b; {b}: del b + add a;
        // {a,b}: del a + del b. Total 8 directed edges.
        let total: usize = graph.edges.iter().map(|e| e.len()).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn state_limit_reported() {
        let g = toggle_form();
        let lim = ExploreLimits {
            max_states: 2,
            ..ExploreLimits::small()
        };
        let graph = Explorer::new(&g, lim).graph();
        assert!(!graph.stats.closed);
        assert_eq!(graph.stats.limit_hit, Some(LimitKind::States));
    }

    #[test]
    fn unbounded_growth_hits_size_limit() {
        // A form whose instances grow forever: add `a` always allowed.
        let schema = Arc::new(Schema::parse("a").unwrap());
        let rules = AccessRules::with_default(&schema, Formula::True);
        let init = Instance::empty(schema.clone());
        let g = GuardedForm::new(schema, rules, init, Formula::False);
        let lim = ExploreLimits {
            max_states: 1000,
            max_state_size: 16,
            max_depth: usize::MAX,
            multiplicity_cap: None,
        };
        let graph = Explorer::new(&g, lim).graph();
        assert!(!graph.stats.closed);
        assert_eq!(graph.stats.limit_hit, Some(LimitKind::StateSize));
        // 16 states: 0..=15 copies of `a` … plus none beyond the cap.
        assert_eq!(graph.states.len(), 16);
    }

    #[test]
    fn multiplicity_cap_prunes() {
        let schema = Arc::new(Schema::parse("a").unwrap());
        let rules = AccessRules::with_default(&schema, Formula::True);
        let init = Instance::empty(schema.clone());
        let g = GuardedForm::new(schema, rules, init, Formula::False);
        let lim = ExploreLimits {
            multiplicity_cap: Some(3),
            ..ExploreLimits::small()
        };
        let graph = Explorer::new(&g, lim).graph();
        assert_eq!(graph.states.len(), 4); // 0,1,2,3 copies
        assert!(!graph.stats.closed);
        assert_eq!(graph.stats.limit_hit, Some(LimitKind::Multiplicity));
    }

    #[test]
    fn goal_at_initial_state() {
        let g = toggle_form().with_completion(Formula::True);
        let out = Explorer::new(&g, ExploreLimits::small()).find(|i| g.is_complete(i));
        assert_eq!(out.goal_run, Some(vec![]));
    }

    #[test]
    fn depth_limit() {
        let g = toggle_form();
        let lim = ExploreLimits {
            max_depth: 1,
            ..ExploreLimits::small()
        };
        let graph = Explorer::new(&g, lim).graph();
        // initial + {a} + {b}; {a,b} is at depth 2.
        assert_eq!(graph.states.len(), 3);
        assert!(!graph.stats.closed);
    }
}
