//! The hash-consed **state store**: the one substrate every explicit-state
//! analysis shares.
//!
//! Before this layer existed, each solver call re-materialised its own
//! `HashSet<Instance>`-shaped dedup structures. The store centralises
//! that:
//!
//! * **Hash-consing** — each isomorphism class of instances is interned
//!   once, keyed by its canonical word encoding
//!   ([`Instance::canon_key`]), and receives a dense [`StateId`] (`u32`)
//!   that indexes flat side tables. The interned canonical words and the
//!   64-bit class fingerprint are kept per state, so dedup is a hash
//!   probe plus (within a fingerprint bucket) a word `memcmp` — 64-bit
//!   collisions are detected, never silently merged.
//! * **Symmetry reduction** — the store's [`SymmetryMode`] selects the
//!   quotient: [`SymmetryMode::Reduced`] (the default) interns by the
//!   canonical sorted encoding, collapsing all iso-value renamings of a
//!   state into one id; [`SymmetryMode::Plain`] interns by the
//!   order-preserving encoding ([`Instance::ordered_key`]), the ablation
//!   baseline that counts every sibling permutation separately. Verdicts
//!   are invariant between the two (formulas cannot observe sibling
//!   order); state counts are not — the `reproduce` harness measures the
//!   gap.
//! * **BFS provenance** — parent pointers and depths live in the store,
//!   so [`StateStore::run_to`] reconstructs a replayable update sequence
//!   for any state.
//!
//! The stored [`Instance`] per class is the *as-discovered*
//! representative, not the [`canonicalize`](Instance::canonicalize)d
//! form: parent-pointer updates reference node ids of the stored parent
//! instance, and replay (`GuardedForm::replay`) must see exactly those
//! ids. The canonical encoding (what makes the consing sound) is interned
//! alongside; callers needing the canonical *instance* can call
//! `canonicalize()` on the representative.
//!
//! Successor adjacency is kept out of the store proper and finalised into
//! a compact CSR table ([`SuccessorTable`]) once exploration ends — flat
//! `(offset, data)` arrays instead of a `Vec<Vec<_>>` of tiny
//! allocations.

use idar_core::{CanonKey, Instance, Update};
use std::collections::HashMap;

/// Dense identifier of an interned state. Id 0 is always the initial
/// instance of the exploration that filled the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// This id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for StateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Which quotient of the instance space the store (and the explorers on
/// top of it) deduplicate states by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SymmetryMode {
    /// Quotient by iso-value renaming (canonical sorted encoding): one
    /// state per isomorphism class. Sound for every analysis in this
    /// workspace — formulas are invariant under sibling permutation — and
    /// the default.
    #[default]
    Reduced,
    /// No symmetry reduction: states are ordered labelled trees
    /// (order-preserving encoding). The ablation baseline; explores the
    /// same verdicts over a strictly larger state space.
    Plain,
}

impl std::fmt::Display for SymmetryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymmetryMode::Reduced => write!(f, "reduced"),
            SymmetryMode::Plain => write!(f, "plain"),
        }
    }
}

/// One fingerprint bucket: ids of the (rarely > 1) distinct encodings
/// sharing a 64-bit fingerprint.
type Bucket = Vec<StateId>;

/// A hash-consed store of explored states (single-writer; the parallel
/// engine dedups through the lock-striped `SharedInterner` and merges
/// here sequentially). See the module docs.
#[derive(Debug, Clone, Default)]
pub struct StateStore {
    symmetry: SymmetryMode,
    buckets: HashMap<u64, Bucket>,
    /// Interned key words per state (canonical or ordered per `symmetry`).
    keys: Vec<Box<[u32]>>,
    /// The 64-bit key fingerprint per state. In `Reduced` mode this is
    /// the canonical class fingerprint ([`Instance::canonicalize`]).
    fingerprints: Vec<u64>,
    states: Vec<Instance>,
    parents: Vec<Option<(StateId, Update)>>,
    depths: Vec<u32>,
    collisions: u64,
}

impl StateStore {
    /// An empty store deduplicating under the given symmetry mode.
    pub fn new(symmetry: SymmetryMode) -> StateStore {
        StateStore {
            symmetry,
            ..StateStore::default()
        }
    }

    /// The store's symmetry mode.
    pub fn symmetry(&self) -> SymmetryMode {
        self.symmetry
    }

    /// The dedup key of an instance under this store's symmetry mode.
    pub fn key_of(&self, inst: &Instance) -> CanonKey {
        match self.symmetry {
            SymmetryMode::Reduced => inst.canon_key(),
            SymmetryMode::Plain => inst.ordered_key(),
        }
    }

    /// Intern `inst`: return its dense id and whether it was new. On a
    /// new state, `parent` records the BFS tree edge that discovered it
    /// (`None` for the initial state) and the depth is derived from it.
    pub fn intern(&mut self, inst: Instance, parent: Option<(StateId, Update)>) -> (StateId, bool) {
        let key = self.key_of(&inst);
        self.intern_keyed(key, inst, parent)
    }

    /// [`StateStore::intern`] with the dedup key already computed (the
    /// explorers compute it once per successor and reuse it).
    pub fn intern_keyed(
        &mut self,
        key: CanonKey,
        inst: Instance,
        parent: Option<(StateId, Update)>,
    ) -> (StateId, bool) {
        let bucket = self.buckets.entry(key.fingerprint()).or_default();
        for &id in bucket.iter() {
            if *self.keys[id.index()] == *key.words() {
                return (id, false);
            }
        }
        if !bucket.is_empty() {
            self.collisions += 1;
        }
        let id = StateId(self.states.len() as u32);
        bucket.push(id);
        let depth = match parent {
            Some((p, _)) => self.depths[p.index()] + 1,
            None => 0,
        };
        let (fingerprint, words) = key.into_parts();
        self.fingerprints.push(fingerprint);
        self.keys.push(words);
        self.states.push(inst);
        self.parents.push(parent);
        self.depths.push(depth);
        (id, true)
    }

    /// Look up the state id of an instance without inserting. The
    /// intern/lookup fixpoint: after `intern(i, ..)`, `lookup(j)` returns
    /// the same id for every `j` the symmetry mode identifies with `i`.
    pub fn lookup(&self, inst: &Instance) -> Option<StateId> {
        let key = self.key_of(inst);
        self.buckets
            .get(&key.fingerprint())?
            .iter()
            .copied()
            .find(|id| *self.keys[id.index()] == *key.words())
    }

    /// The stored representative of state `id`.
    pub fn get(&self, id: StateId) -> &Instance {
        &self.states[id.index()]
    }

    /// The stored representatives, indexed by `StateId`.
    pub fn states(&self) -> &[Instance] {
        &self.states
    }

    /// The dedup-key fingerprint of state `id` (the canonical class
    /// fingerprint in `Reduced` mode).
    pub fn fingerprint(&self, id: StateId) -> u64 {
        self.fingerprints[id.index()]
    }

    /// The BFS tree edge that discovered `id` (`None` for the initial
    /// state).
    pub fn parent(&self, id: StateId) -> Option<(StateId, Update)> {
        self.parents[id.index()]
    }

    /// BFS depth of state `id` (steps from the initial instance).
    pub fn depth(&self, id: StateId) -> usize {
        self.depths[id.index()] as usize
    }

    /// Number of interned states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Detected 64-bit fingerprint collisions (distinct encodings sharing
    /// a fingerprint). Expected to stay 0 in practice.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Reconstruct the update sequence from the initial state to `id`
    /// along the BFS tree (replayable via `GuardedForm::replay`).
    pub fn run_to(&self, id: StateId) -> Vec<Update> {
        let mut rev = Vec::new();
        let mut i = id;
        while let Some((p, u)) = self.parents[i.index()] {
            rev.push(u);
            i = p;
        }
        rev.reverse();
        rev
    }
}

/// Compact successor adjacency in CSR form: one flat data array plus one
/// offset array, replacing a `Vec<Vec<(Update, StateId)>>` of per-state
/// allocations.
#[derive(Debug, Clone, Default)]
pub struct SuccessorTable {
    off: Vec<u32>,
    dat: Vec<(Update, StateId)>,
}

impl SuccessorTable {
    /// An empty table over `n` states (every state has no successors) —
    /// what goal searches that skip edge collection produce.
    pub fn empty(n: usize) -> SuccessorTable {
        SuccessorTable {
            off: vec![0; n + 1],
            dat: Vec::new(),
        }
    }

    /// Build the CSR arrays from unordered `(from, update, to)` triples
    /// (counting sort by source; within a source, triple order is kept).
    pub fn from_triples(n: usize, triples: &[(StateId, Update, StateId)]) -> SuccessorTable {
        let mut counts = vec![0u32; n + 1];
        for &(from, _, _) in triples {
            counts[from.index() + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let off = counts.clone();
        let mut cursor = counts;
        let mut dat = vec![
            (
                Update::Del {
                    node: idar_core::InstNodeId::ROOT
                },
                StateId(0)
            );
            triples.len()
        ];
        for &(from, u, to) in triples {
            let slot = cursor[from.index()] as usize;
            dat[slot] = (u, to);
            cursor[from.index()] += 1;
        }
        SuccessorTable { off, dat }
    }

    /// Outgoing `(update, successor)` edges of state `i`.
    pub fn successors(&self, i: StateId) -> &[(Update, StateId)] {
        &self.dat[self.off[i.index()] as usize..self.off[i.index() + 1] as usize]
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.dat.len()
    }

    /// Number of states the table was built over.
    pub fn state_count(&self) -> usize {
        self.off.len().saturating_sub(1)
    }

    /// Iterate over all `(from, update, to)` edges.
    pub fn iter(&self) -> impl Iterator<Item = (StateId, Update, StateId)> + '_ {
        (0..self.state_count()).flat_map(move |i| {
            let from = StateId(i as u32);
            self.successors(from)
                .iter()
                .map(move |&(u, to)| (from, u, to))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::{InstNodeId, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::parse("a(b, c), s").unwrap())
    }

    #[test]
    fn intern_lookup_fixpoint() {
        let s = schema();
        let mut store = StateStore::new(SymmetryMode::Reduced);
        let i1 = Instance::parse(s.clone(), "a(b, c), s").unwrap();
        let (id, new) = store.intern(i1.clone(), None);
        assert!(new);
        // Lookup of any isomorphic variant returns the same id…
        for t in ["a(b, c), s", "s, a(c, b)", "a(c, b), s"] {
            let j = Instance::parse(s.clone(), t).unwrap();
            assert_eq!(store.lookup(&j), Some(id), "{t}");
            // …and re-interning is not-new with the same id.
            assert_eq!(store.intern(j, None), (id, false), "{t}");
        }
        assert_eq!(store.len(), 1);
        // A non-isomorphic instance is absent.
        let other = Instance::parse(s, "a(b)").unwrap();
        assert_eq!(store.lookup(&other), None);
    }

    #[test]
    fn plain_mode_distinguishes_sibling_order() {
        let s = schema();
        let mut store = StateStore::new(SymmetryMode::Plain);
        let i1 = Instance::parse(s.clone(), "a(b, c), s").unwrap();
        let i2 = Instance::parse(s.clone(), "s, a(c, b)").unwrap();
        let (a, new_a) = store.intern(i1, None);
        let (b, new_b) = store.intern(i2, None);
        assert!(new_a && new_b);
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
        // Exact ordered repeat still dedups.
        let i3 = Instance::parse(s, "a(b, c), s").unwrap();
        assert_eq!(store.lookup(&i3), Some(a));
    }

    #[test]
    fn provenance_and_runs() {
        let s = schema();
        let mut store = StateStore::new(SymmetryMode::Reduced);
        let i0 = Instance::empty(s.clone());
        let (root, _) = store.intern(i0.clone(), None);
        let mut i1 = i0.clone();
        let a_edge = s.resolve("a").unwrap();
        let an = i1.add_child(InstNodeId::ROOT, a_edge).unwrap();
        let u1 = Update::Add {
            parent: InstNodeId::ROOT,
            edge: a_edge,
        };
        let (one, _) = store.intern(i1.clone(), Some((root, u1)));
        let b_edge = s.resolve("a/b").unwrap();
        let mut i2 = i1.clone();
        i2.add_child(an, b_edge).unwrap();
        let u2 = Update::Add {
            parent: an,
            edge: b_edge,
        };
        let (two, _) = store.intern(i2, Some((one, u2)));
        assert_eq!(store.depth(root), 0);
        assert_eq!(store.depth(one), 1);
        assert_eq!(store.depth(two), 2);
        assert_eq!(store.run_to(two), vec![u1, u2]);
        assert_eq!(store.fingerprint(one), i1.canon_key().fingerprint());
    }

    #[test]
    fn csr_from_triples() {
        let u = Update::Del {
            node: InstNodeId(1),
        };
        let triples = vec![
            (StateId(1), u, StateId(0)),
            (StateId(0), u, StateId(1)),
            (StateId(0), u, StateId(2)),
            (StateId(2), u, StateId(0)),
        ];
        let t = SuccessorTable::from_triples(3, &triples);
        assert_eq!(t.edge_count(), 4);
        assert_eq!(t.successors(StateId(0)).len(), 2);
        assert_eq!(t.successors(StateId(1)), &[(u, StateId(0))]);
        assert_eq!(t.successors(StateId(2)), &[(u, StateId(0))]);
        assert_eq!(t.iter().count(), 4);
        let empty = SuccessorTable::empty(3);
        assert_eq!(empty.edge_count(), 0);
        assert_eq!(empty.successors(StateId(2)), &[]);
    }
}
