//! The hash-consed **state store**: the one substrate every explicit-state
//! analysis shares.
//!
//! Before this layer existed, each solver call re-materialised its own
//! `HashSet<Instance>`-shaped dedup structures. The store centralises
//! that:
//!
//! * **Hash-consing** — each isomorphism class of instances is interned
//!   once, keyed by its canonical word encoding
//!   ([`Instance::canon_key`]), and receives a dense [`StateId`] (`u32`)
//!   that indexes flat side tables. The interned canonical words and the
//!   64-bit class fingerprint are kept per state, so dedup is a hash
//!   probe plus (within a fingerprint bucket) a word `memcmp` — 64-bit
//!   collisions are detected, never silently merged.
//! * **Symmetry reduction** — the store's [`SymmetryMode`] selects the
//!   quotient: [`SymmetryMode::Reduced`] (the default) interns by the
//!   canonical sorted encoding, collapsing all iso-value renamings of a
//!   state into one id; [`SymmetryMode::Plain`] interns by the
//!   order-preserving encoding ([`Instance::ordered_key`]), the ablation
//!   baseline that counts every sibling permutation separately. Verdicts
//!   are invariant between the two (formulas cannot observe sibling
//!   order); state counts are not — the `reproduce` harness measures the
//!   gap.
//! * **BFS provenance** — parent pointers and depths live in the store,
//!   so [`StateStore::run_to`] reconstructs a replayable update sequence
//!   for any state.
//!
//! The stored [`Instance`] per class is the *as-discovered*
//! representative, not the [`canonicalize`](Instance::canonicalize)d
//! form: parent-pointer updates reference node ids of the stored parent
//! instance, and replay (`GuardedForm::replay`) must see exactly those
//! ids. The canonical encoding (what makes the consing sound) is interned
//! alongside; callers needing the canonical *instance* can call
//! `canonicalize()` on the representative.
//!
//! Successor adjacency is kept out of the store proper and finalised into
//! a compact CSR table ([`SuccessorTable`]) once exploration ends — flat
//! `(offset, data)` arrays instead of a `Vec<Vec<_>>` of tiny
//! allocations.

use idar_core::{CanonKey, Instance, Update};
use std::collections::HashMap;

/// Dense identifier of an interned state. Id 0 is always the initial
/// instance of the exploration that filled the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// This id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for StateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Which quotient of the instance space the store (and the explorers on
/// top of it) deduplicate states by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SymmetryMode {
    /// Quotient by iso-value renaming (canonical sorted encoding): one
    /// state per isomorphism class. Sound for every analysis in this
    /// workspace — formulas are invariant under sibling permutation — and
    /// the default.
    #[default]
    Reduced,
    /// No symmetry reduction: states are ordered labelled trees
    /// (order-preserving encoding). The ablation baseline; explores the
    /// same verdicts over a strictly larger state space.
    Plain,
}

impl std::fmt::Display for SymmetryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymmetryMode::Reduced => write!(f, "reduced"),
            SymmetryMode::Plain => write!(f, "plain"),
        }
    }
}

/// One fingerprint bucket: ids of the (rarely > 1) distinct encodings
/// sharing a 64-bit fingerprint. The singleton case — in practice all
/// but a vanishing fraction of buckets — is stored inline: the dedup
/// probe compares the 64-bit fingerprint (the map key) first and only
/// touches interned words on a full match, and interning a fresh state
/// allocates nothing beyond the map slot.
#[derive(Debug, Clone)]
enum Bucket {
    One(StateId),
    Many(Vec<StateId>),
}

impl Bucket {
    #[inline]
    fn ids(&self) -> &[StateId] {
        match self {
            Bucket::One(id) => std::slice::from_ref(id),
            Bucket::Many(ids) => ids,
        }
    }

    fn push(&mut self, id: StateId) {
        match self {
            Bucket::One(a) => *self = Bucket::Many(vec![*a, id]),
            Bucket::Many(ids) => ids.push(id),
        }
    }
}

/// A hash-consed store of explored states (single-writer; the pooled
/// parallel engine interns concurrently into a [`ShardedStateStore`] and
/// finalizes into this type once the run ends). See the module docs.
#[derive(Debug, Clone, Default)]
pub struct StateStore {
    symmetry: SymmetryMode,
    buckets: HashMap<u64, Bucket>,
    /// Interned key words per state (canonical or ordered per `symmetry`).
    keys: Vec<Box<[u32]>>,
    /// The 64-bit key fingerprint per state. In `Reduced` mode this is
    /// the canonical class fingerprint ([`Instance::canonicalize`]).
    fingerprints: Vec<u64>,
    states: Vec<Instance>,
    parents: Vec<Option<(StateId, Update)>>,
    depths: Vec<u32>,
    collisions: u64,
}

impl StateStore {
    /// An empty store deduplicating under the given symmetry mode.
    pub fn new(symmetry: SymmetryMode) -> StateStore {
        StateStore {
            symmetry,
            ..StateStore::default()
        }
    }

    /// Assemble a store from already-interned per-state columns (the
    /// pooled parallel engine's finalization path). The caller guarantees
    /// the columns are parallel, deduplicated under `symmetry`, and in
    /// the dense-id order it wants; only the fingerprint index is rebuilt
    /// here (one hash insert per state — no re-encoding, no `memcmp`s).
    #[cfg(feature = "parallel")]
    pub(crate) fn from_parts(
        symmetry: SymmetryMode,
        keys: Vec<Box<[u32]>>,
        fingerprints: Vec<u64>,
        states: Vec<Instance>,
        parents: Vec<Option<(StateId, Update)>>,
        depths: Vec<u32>,
        collisions: u64,
    ) -> StateStore {
        let mut buckets: HashMap<u64, Bucket> = HashMap::with_capacity(fingerprints.len());
        for (i, &fp) in fingerprints.iter().enumerate() {
            match buckets.entry(fp) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().push(StateId(i as u32))
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(Bucket::One(StateId(i as u32)));
                }
            }
        }
        StateStore {
            symmetry,
            buckets,
            keys,
            fingerprints,
            states,
            parents,
            depths,
            collisions,
        }
    }

    /// The store's symmetry mode.
    pub fn symmetry(&self) -> SymmetryMode {
        self.symmetry
    }

    /// The dedup key of an instance under this store's symmetry mode.
    pub fn key_of(&self, inst: &Instance) -> CanonKey {
        match self.symmetry {
            SymmetryMode::Reduced => inst.canon_key(),
            SymmetryMode::Plain => inst.ordered_key(),
        }
    }

    /// Intern `inst`: return its dense id and whether it was new. On a
    /// new state, `parent` records the BFS tree edge that discovered it
    /// (`None` for the initial state) and the depth is derived from it.
    pub fn intern(&mut self, inst: Instance, parent: Option<(StateId, Update)>) -> (StateId, bool) {
        let key = self.key_of(&inst);
        self.intern_keyed(key, inst, parent)
    }

    /// [`StateStore::intern`] with the dedup key already computed (the
    /// explorers compute it once per successor and reuse it).
    pub fn intern_keyed(
        &mut self,
        key: CanonKey,
        inst: Instance,
        parent: Option<(StateId, Update)>,
    ) -> (StateId, bool) {
        let id = StateId(self.states.len() as u32);
        match self.buckets.entry(key.fingerprint()) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                for &cand in e.get().ids() {
                    if *self.keys[cand.index()] == *key.words() {
                        return (cand, false);
                    }
                }
                self.collisions += 1;
                e.get_mut().push(id);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Bucket::One(id));
            }
        }
        let depth = match parent {
            Some((p, _)) => self.depths[p.index()] + 1,
            None => 0,
        };
        let (fingerprint, words) = key.into_parts();
        self.fingerprints.push(fingerprint);
        self.keys.push(words);
        self.states.push(inst);
        self.parents.push(parent);
        self.depths.push(depth);
        (id, true)
    }

    /// Look up the state id of an instance without inserting. The
    /// intern/lookup fixpoint: after `intern(i, ..)`, `lookup(j)` returns
    /// the same id for every `j` the symmetry mode identifies with `i`.
    pub fn lookup(&self, inst: &Instance) -> Option<StateId> {
        let key = self.key_of(inst);
        self.buckets
            .get(&key.fingerprint())?
            .ids()
            .iter()
            .copied()
            .find(|id| *self.keys[id.index()] == *key.words())
    }

    /// The stored representative of state `id`.
    pub fn get(&self, id: StateId) -> &Instance {
        &self.states[id.index()]
    }

    /// The stored representatives, indexed by `StateId`.
    pub fn states(&self) -> &[Instance] {
        &self.states
    }

    /// The dedup-key fingerprint of state `id` (the canonical class
    /// fingerprint in `Reduced` mode).
    pub fn fingerprint(&self, id: StateId) -> u64 {
        self.fingerprints[id.index()]
    }

    /// The BFS tree edge that discovered `id` (`None` for the initial
    /// state).
    pub fn parent(&self, id: StateId) -> Option<(StateId, Update)> {
        self.parents[id.index()]
    }

    /// BFS depth of state `id` (steps from the initial instance).
    pub fn depth(&self, id: StateId) -> usize {
        self.depths[id.index()] as usize
    }

    /// Number of interned states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Detected 64-bit fingerprint collisions (distinct encodings sharing
    /// a fingerprint). Expected to stay 0 in practice.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Approximate resident bytes of the store: state instances, interned
    /// key words, the fingerprint index, and provenance columns. An
    /// estimate (allocator slack and hash-map control bytes are
    /// approximated), used for byte-denominated retention budgets.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut total = size_of::<StateStore>();
        // Hash map: key + value + ~1 control byte per capacity slot
        // (capacity() underestimates the real table, but so does any
        // external count).
        total += self.buckets.capacity() * (size_of::<u64>() + size_of::<Bucket>() + 1);
        for b in self.buckets.values() {
            if let Bucket::Many(ids) = b {
                total += ids.capacity() * size_of::<StateId>();
            }
        }
        total += self.keys.capacity() * size_of::<Box<[u32]>>();
        total += self
            .keys
            .iter()
            .map(|k| k.len() * size_of::<u32>())
            .sum::<usize>();
        total += self.fingerprints.capacity() * size_of::<u64>();
        total += self
            .states
            .iter()
            .map(Instance::approx_bytes)
            .sum::<usize>();
        total += self.parents.capacity() * size_of::<Option<(StateId, Update)>>();
        total += self.depths.capacity() * size_of::<u32>();
        total
    }

    /// Reconstruct the update sequence from the initial state to `id`
    /// along the BFS tree (replayable via `GuardedForm::replay`).
    pub fn run_to(&self, id: StateId) -> Vec<Update> {
        let mut rev = Vec::new();
        let mut i = id;
        while let Some((p, u)) = self.parents[i.index()] {
            rev.push(u);
            i = p;
        }
        rev.reverse();
        rev
    }
}

/// Compact successor adjacency in CSR form: one flat data array plus one
/// offset array, replacing a `Vec<Vec<(Update, StateId)>>` of per-state
/// allocations.
#[derive(Debug, Clone, Default)]
pub struct SuccessorTable {
    off: Vec<u32>,
    dat: Vec<(Update, StateId)>,
}

impl SuccessorTable {
    /// An empty table over `n` states (every state has no successors) —
    /// what goal searches that skip edge collection produce.
    pub fn empty(n: usize) -> SuccessorTable {
        SuccessorTable {
            off: vec![0; n + 1],
            dat: Vec::new(),
        }
    }

    /// Build the CSR arrays from unordered `(from, update, to)` triples
    /// (counting sort by source; within a source, triple order is kept).
    pub fn from_triples(n: usize, triples: &[(StateId, Update, StateId)]) -> SuccessorTable {
        let mut counts = vec![0u32; n + 1];
        for &(from, _, _) in triples {
            counts[from.index() + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let off = counts.clone();
        let mut cursor = counts;
        let mut dat = vec![
            (
                Update::Del {
                    node: idar_core::InstNodeId::ROOT
                },
                StateId(0)
            );
            triples.len()
        ];
        for &(from, u, to) in triples {
            let slot = cursor[from.index()] as usize;
            dat[slot] = (u, to);
            cursor[from.index()] += 1;
        }
        SuccessorTable { off, dat }
    }

    /// Outgoing `(update, successor)` edges of state `i`.
    pub fn successors(&self, i: StateId) -> &[(Update, StateId)] {
        &self.dat[self.off[i.index()] as usize..self.off[i.index() + 1] as usize]
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.dat.len()
    }

    /// Approximate resident bytes of the CSR arrays.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<SuccessorTable>()
            + self.off.capacity() * size_of::<u32>()
            + self.dat.capacity() * size_of::<(Update, StateId)>()
    }

    /// Number of states the table was built over.
    pub fn state_count(&self) -> usize {
        self.off.len().saturating_sub(1)
    }

    /// Iterate over all `(from, update, to)` edges.
    pub fn iter(&self) -> impl Iterator<Item = (StateId, Update, StateId)> + '_ {
        (0..self.state_count()).flat_map(move |i| {
            let from = StateId(i as u32);
            self.successors(from)
                .iter()
                .map(move |&(u, to)| (from, u, to))
        })
    }
}

#[cfg(feature = "parallel")]
pub use sharded::{PackedStateId, ShardedStateStore};

/// The concurrent intern substrate of the pooled parallel engine:
/// the fingerprint space is partitioned over mutex-protected shards that
/// *own* their states outright — a successor is deduplicated, stored,
/// and given provenance in one lock acquisition, with no second merge
/// pass (the double intern the layered engine used to pay).
#[cfg(feature = "parallel")]
mod sharded {
    use super::{StateId, StateStore, SymmetryMode};
    use idar_core::{CanonKey, Instance, Update};
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex};

    /// Number of fingerprint-owned shards. A power of two well above
    /// typical worker counts keeps lock contention negligible.
    const SHARDS: usize = 64;
    /// Bits of a [`PackedStateId`] holding the within-shard index.
    const LOCAL_BITS: u32 = 26;
    const LOCAL_MASK: u32 = (1 << LOCAL_BITS) - 1;

    /// A provisional state id handed out during a pooled exploration:
    /// the owning shard in the high bits, the within-shard index in the
    /// low bits. Dense [`StateId`]s are assigned at the layer barrier
    /// (root = 0, then assignment order); packed ids only bridge the gap
    /// between concurrent interning and that assignment.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct PackedStateId(u32);

    impl PackedStateId {
        fn new(shard: usize, local: usize) -> PackedStateId {
            assert!(
                local < (1 << LOCAL_BITS) as usize,
                "sharded store shard overflow ({local} states in one shard)"
            );
            PackedStateId(((shard as u32) << LOCAL_BITS) | local as u32)
        }

        /// The owning shard's index.
        #[inline]
        pub fn shard(self) -> usize {
            (self.0 >> LOCAL_BITS) as usize
        }

        /// The index within the owning shard.
        #[inline]
        pub fn local(self) -> usize {
            (self.0 & LOCAL_MASK) as usize
        }
    }

    /// One fingerprint bucket of a shard: within-shard indices of the
    /// (rarely > 1) distinct encodings sharing a fingerprint, singleton
    /// inline — same fingerprint-first probe layout as the sequential
    /// store's `Bucket`.
    #[derive(Debug)]
    enum LocalBucket {
        One(u32),
        Many(Vec<u32>),
    }

    impl LocalBucket {
        #[inline]
        fn ids(&self) -> &[u32] {
            match self {
                LocalBucket::One(id) => std::slice::from_ref(id),
                LocalBucket::Many(ids) => ids,
            }
        }

        fn push(&mut self, id: u32) {
            match self {
                LocalBucket::One(a) => *self = LocalBucket::Many(vec![*a, id]),
                LocalBucket::Many(ids) => ids.push(id),
            }
        }
    }

    /// One shard: a self-contained mini-store for the fingerprints it
    /// owns (dedup index + state columns + BFS provenance).
    #[derive(Debug, Default)]
    struct Shard {
        /// fingerprint → within-shard indices of the (rarely > 1)
        /// distinct encodings sharing it.
        buckets: HashMap<u64, LocalBucket>,
        keys: Vec<Box<[u32]>>,
        fingerprints: Vec<u64>,
        states: Vec<Arc<Instance>>,
        parents: Vec<Option<(StateId, Update)>>,
        depths: Vec<u32>,
        collisions: u64,
    }

    /// A [`StateStore`] sharded by key fingerprint for concurrent
    /// interning. Worker threads call [`ShardedStateStore::intern`]
    /// directly from the expansion loop; [`ShardedStateStore::into_store`]
    /// flattens the shards into a dense sequential store at finish time.
    ///
    /// The symmetry mode keys shard ownership: in
    /// [`SymmetryMode::Reduced`] the fingerprint (and therefore the
    /// owning shard) is that of the canonical sorted encoding, in
    /// [`SymmetryMode::Plain`] that of the ordered-tree encoding — so
    /// symmetry reduction and parallel exploration compose without any
    /// engine-side special-casing.
    #[derive(Debug)]
    pub struct ShardedStateStore {
        symmetry: SymmetryMode,
        shards: Box<[Mutex<Shard>]>,
    }

    impl ShardedStateStore {
        /// Number of shards (the valid range of [`PackedStateId::shard`]).
        pub const SHARD_COUNT: usize = SHARDS;

        /// An empty sharded store deduplicating under `symmetry`.
        pub fn new(symmetry: SymmetryMode) -> ShardedStateStore {
            ShardedStateStore {
                symmetry,
                shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            }
        }

        /// The store's symmetry mode.
        pub fn symmetry(&self) -> SymmetryMode {
            self.symmetry
        }

        /// The dedup key of an instance under this store's symmetry mode.
        pub fn key_of(&self, inst: &Instance) -> CanonKey {
            match self.symmetry {
                SymmetryMode::Reduced => inst.canon_key(),
                SymmetryMode::Plain => inst.ordered_key(),
            }
        }

        #[inline]
        fn shard_of(&self, fingerprint: u64) -> usize {
            // High bits: the low fingerprint bits also pick hash-map
            // buckets inside the shard; disjoint bits keep the two
            // uncorrelated.
            (fingerprint >> 58) as usize % SHARDS
        }

        /// Intern a state under its precomputed dedup key: returns its
        /// packed id and, iff this call created the state, a shared
        /// handle to the stored instance (what the discovering worker
        /// puts on the next frontier). Exactly one concurrent caller
        /// wins the discovery for each distinct class; losers get the
        /// winner's id and `None`.
        pub fn intern(
            &self,
            key: CanonKey,
            inst: Instance,
            parent: Option<(StateId, Update)>,
            depth: u32,
        ) -> (PackedStateId, Option<Arc<Instance>>) {
            let fp = key.fingerprint();
            let shard_ix = self.shard_of(fp);
            let mut shard = self.shards[shard_ix].lock().expect("store shard poisoned");
            let shard = &mut *shard;
            let local = shard.states.len();
            match shard.buckets.entry(fp) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for &cand in e.get().ids() {
                        if *shard.keys[cand as usize] == *key.words() {
                            return (PackedStateId::new(shard_ix, cand as usize), None);
                        }
                    }
                    shard.collisions += 1;
                    e.get_mut().push(local as u32);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(LocalBucket::One(local as u32));
                }
            }
            let id = PackedStateId::new(shard_ix, local);
            let (fingerprint, words) = key.into_parts();
            let arc = Arc::new(inst);
            shard.fingerprints.push(fingerprint);
            shard.keys.push(words);
            shard.states.push(arc.clone());
            shard.parents.push(parent);
            shard.depths.push(depth);
            (id, Some(arc))
        }

        /// Total states interned so far (locks every shard; diagnostics
        /// only — the engines track counts with an atomic instead).
        pub fn len(&self) -> usize {
            self.shards
                .iter()
                .map(|s| s.lock().expect("store shard poisoned").states.len())
                .sum()
        }

        /// Is the store empty?
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Flatten into a dense sequential [`StateStore`], assigning
        /// `StateId(g)` to the state `order[g]`. Packed ids absent from
        /// `order` are dropped (states interned past a state-count cap or
        /// after an early goal, mirroring the sequential truncation).
        /// Instances are unwrapped without cloning when the exploration
        /// has released its frontier handles.
        pub fn into_store(self, order: &[PackedStateId]) -> StateStore {
            let shards: Vec<Shard> = self
                .shards
                .into_vec()
                .into_iter()
                .map(|m| m.into_inner().expect("store shard poisoned"))
                .collect();
            let collisions = shards.iter().map(|s| s.collisions).sum();
            // Wrap the move-only columns so states can be extracted in
            // `order` without cloning.
            let mut col_states: Vec<Vec<Option<Arc<Instance>>>> = Vec::with_capacity(SHARDS);
            let mut col_keys: Vec<Vec<Option<Box<[u32]>>>> = Vec::with_capacity(SHARDS);
            let mut col_fps: Vec<Vec<u64>> = Vec::with_capacity(SHARDS);
            let mut col_parents: Vec<Vec<Option<(StateId, Update)>>> = Vec::with_capacity(SHARDS);
            let mut col_depths: Vec<Vec<u32>> = Vec::with_capacity(SHARDS);
            for s in shards {
                col_states.push(s.states.into_iter().map(Some).collect());
                col_keys.push(s.keys.into_iter().map(Some).collect());
                col_fps.push(s.fingerprints);
                col_parents.push(s.parents);
                col_depths.push(s.depths);
            }
            let n = order.len();
            let mut keys = Vec::with_capacity(n);
            let mut fingerprints = Vec::with_capacity(n);
            let mut states = Vec::with_capacity(n);
            let mut parents = Vec::with_capacity(n);
            let mut depths = Vec::with_capacity(n);
            for &p in order {
                let (s, l) = (p.shard(), p.local());
                keys.push(col_keys[s][l].take().expect("duplicate id in order"));
                fingerprints.push(col_fps[s][l]);
                let arc = col_states[s][l].take().expect("duplicate id in order");
                states.push(Arc::try_unwrap(arc).unwrap_or_else(|a| (*a).clone()));
                parents.push(col_parents[s][l]);
                depths.push(col_depths[s][l]);
            }
            StateStore::from_parts(
                self.symmetry,
                keys,
                fingerprints,
                states,
                parents,
                depths,
                collisions,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::{InstNodeId, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::parse("a(b, c), s").unwrap())
    }

    #[test]
    fn intern_lookup_fixpoint() {
        let s = schema();
        let mut store = StateStore::new(SymmetryMode::Reduced);
        let i1 = Instance::parse(s.clone(), "a(b, c), s").unwrap();
        let (id, new) = store.intern(i1.clone(), None);
        assert!(new);
        // Lookup of any isomorphic variant returns the same id…
        for t in ["a(b, c), s", "s, a(c, b)", "a(c, b), s"] {
            let j = Instance::parse(s.clone(), t).unwrap();
            assert_eq!(store.lookup(&j), Some(id), "{t}");
            // …and re-interning is not-new with the same id.
            assert_eq!(store.intern(j, None), (id, false), "{t}");
        }
        assert_eq!(store.len(), 1);
        // A non-isomorphic instance is absent.
        let other = Instance::parse(s, "a(b)").unwrap();
        assert_eq!(store.lookup(&other), None);
    }

    #[test]
    fn plain_mode_distinguishes_sibling_order() {
        let s = schema();
        let mut store = StateStore::new(SymmetryMode::Plain);
        let i1 = Instance::parse(s.clone(), "a(b, c), s").unwrap();
        let i2 = Instance::parse(s.clone(), "s, a(c, b)").unwrap();
        let (a, new_a) = store.intern(i1, None);
        let (b, new_b) = store.intern(i2, None);
        assert!(new_a && new_b);
        assert_ne!(a, b);
        assert_eq!(store.len(), 2);
        // Exact ordered repeat still dedups.
        let i3 = Instance::parse(s, "a(b, c), s").unwrap();
        assert_eq!(store.lookup(&i3), Some(a));
    }

    #[test]
    fn provenance_and_runs() {
        let s = schema();
        let mut store = StateStore::new(SymmetryMode::Reduced);
        let i0 = Instance::empty(s.clone());
        let (root, _) = store.intern(i0.clone(), None);
        let mut i1 = i0.clone();
        let a_edge = s.resolve("a").unwrap();
        let an = i1.add_child(InstNodeId::ROOT, a_edge).unwrap();
        let u1 = Update::Add {
            parent: InstNodeId::ROOT,
            edge: a_edge,
        };
        let (one, _) = store.intern(i1.clone(), Some((root, u1)));
        let b_edge = s.resolve("a/b").unwrap();
        let mut i2 = i1.clone();
        i2.add_child(an, b_edge).unwrap();
        let u2 = Update::Add {
            parent: an,
            edge: b_edge,
        };
        let (two, _) = store.intern(i2, Some((one, u2)));
        assert_eq!(store.depth(root), 0);
        assert_eq!(store.depth(one), 1);
        assert_eq!(store.depth(two), 2);
        assert_eq!(store.run_to(two), vec![u1, u2]);
        assert_eq!(store.fingerprint(one), i1.canon_key().fingerprint());
    }

    /// Concurrent interning into the sharded store: every thread sees
    /// the same packed id per class, exactly one wins each discovery,
    /// and the flattened sequential store preserves states, provenance,
    /// and the intern/lookup fixpoint.
    #[cfg(feature = "parallel")]
    #[test]
    fn sharded_store_concurrent_intern_and_flatten() {
        let s = schema();
        let store = ShardedStateStore::new(SymmetryMode::Reduced);
        let texts = ["a", "a(b)", "a(b, c)", "s", "a(c), s", "a(b, c), s"];
        let insts: Vec<Instance> = texts
            .iter()
            .map(|t| Instance::parse(s.clone(), t).unwrap())
            .collect();
        let root = Instance::empty(s.clone());
        let (root_id, created) = store.intern(store.key_of(&root), root, None, 0);
        assert!(created.is_some());

        let results: Vec<(Vec<PackedStateId>, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let insts = &insts;
                    let store = &store;
                    scope.spawn(move || {
                        let mut wins = 0;
                        let ids = insts
                            .iter()
                            .map(|i| {
                                let (id, new) = store.intern(
                                    store.key_of(i),
                                    i.clone(),
                                    Some((
                                        StateId(0),
                                        Update::Del {
                                            node: InstNodeId(1),
                                        },
                                    )),
                                    1,
                                );
                                wins += usize::from(new.is_some());
                                id
                            })
                            .collect();
                        (ids, wins)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // Every thread sees the same id for the same class…
        for (ids, _) in &results[1..] {
            assert_eq!(ids, &results[0].0);
        }
        // …and each discovery is won exactly once across the pool.
        let wins: usize = results.iter().map(|(_, w)| w).sum();
        assert_eq!(wins, texts.len());
        assert_eq!(store.len(), texts.len() + 1);

        // Flatten with the root first, then the texts in results order.
        let mut order = vec![root_id];
        order.extend(results[0].0.iter().copied());
        let flat = store.into_store(&order);
        assert_eq!(flat.len(), texts.len() + 1);
        assert_eq!(flat.depth(StateId(0)), 0);
        for (k, t) in texts.iter().enumerate() {
            let id = StateId(k as u32 + 1);
            let inst = Instance::parse(s.clone(), t).unwrap();
            assert!(flat.get(id).isomorphic(&inst), "{t}");
            assert_eq!(flat.lookup(&inst), Some(id), "{t}");
            assert_eq!(flat.depth(id), 1);
            assert_eq!(flat.parent(id).unwrap().0, StateId(0));
            assert_eq!(flat.fingerprint(id), inst.canon_key().fingerprint());
        }
        assert_eq!(flat.collisions(), 0);
    }

    /// Trimming: packed ids absent from the flatten order are dropped,
    /// mirroring the engines' state-cap / early-goal truncation.
    #[cfg(feature = "parallel")]
    #[test]
    fn sharded_store_flatten_trims_unordered_states() {
        let s = schema();
        let store = ShardedStateStore::new(SymmetryMode::Plain);
        let a = Instance::parse(s.clone(), "a(b, c), s").unwrap();
        let b = Instance::parse(s.clone(), "s, a(c, b)").unwrap();
        let (ia, na) = store.intern(store.key_of(&a), a.clone(), None, 0);
        let (_, nb) = store.intern(store.key_of(&b), b.clone(), None, 0);
        assert!(na.is_some() && nb.is_some(), "plain mode keeps both orders");
        let flat = store.into_store(&[ia]);
        assert_eq!(flat.len(), 1);
        assert_eq!(flat.lookup(&a), Some(StateId(0)));
        assert_eq!(flat.lookup(&b), None, "trimmed state is absent");
    }

    #[test]
    fn csr_from_triples() {
        let u = Update::Del {
            node: InstNodeId(1),
        };
        let triples = vec![
            (StateId(1), u, StateId(0)),
            (StateId(0), u, StateId(1)),
            (StateId(0), u, StateId(2)),
            (StateId(2), u, StateId(0)),
        ];
        let t = SuccessorTable::from_triples(3, &triples);
        assert_eq!(t.edge_count(), 4);
        assert_eq!(t.successors(StateId(0)).len(), 2);
        assert_eq!(t.successors(StateId(1)), &[(u, StateId(0))]);
        assert_eq!(t.successors(StateId(2)), &[(u, StateId(0))]);
        assert_eq!(t.iter().count(), 4);
        let empty = SuccessorTable::empty(3);
        assert_eq!(empty.edge_count(), 0);
        assert_eq!(empty.successors(StateId(2)), &[]);
    }
}
