//! **Exact** decision procedures for depth-1 guarded forms.
//!
//! Lemma 4.3: for a guarded form of depth 1, an instance `J` with
//! `can(J) = C` is reachable from `I` iff `C` is reachable from `can(I)`
//! in the canonical-instance space, and `I` is completable iff `can(I)`
//! is. A canonical depth-1 instance is determined by *which* root-child
//! labels are present (duplicate siblings are leaves with equal labels and
//! collapse under Def. 3.7), so the state space is the powerset of the
//! root's schema children — at most `2^n` states, explored explicitly.
//! This realises the PSPACE upper bounds of Thm 4.6 / Cor. 4.7 (with the
//! usual explicit-state time/space trade-off) and is exact for *all* four
//! depth-1 rows of Table 1.
//!
//! Guards and the completion formula are compiled once into Boolean
//! expressions over the state bitset ([`Compiled`]): in a canonical depth-1
//! instance, a formula's value at any node is a function of the label set
//! alone, so each guard evaluation during search is a handful of bit tests
//! instead of a tree walk.

use crate::verdict::{SearchStats, Verdict};
use idar_core::{
    Formula, GuardedForm, InstNodeId, Instance, PathExpr, Right, SchemaNodeId, Update,
};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Why a guarded form cannot be handled by the depth-1 solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Depth1Error {
    /// The schema has depth ≥ 2.
    NotDepthOne {
        /// The schema's actual depth.
        depth: u32,
    },
    /// More root labels than the bitset representation supports.
    TooManyLabels {
        /// The schema's actual root-label count.
        labels: usize,
    },
}

impl fmt::Display for Depth1Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Depth1Error::NotDepthOne { depth } => {
                write!(f, "schema has depth {depth}, depth-1 solver requires <= 1")
            }
            Depth1Error::TooManyLabels { labels } => {
                write!(f, "{labels} root labels exceed the 64-bit state encoding")
            }
        }
    }
}

impl std::error::Error for Depth1Error {}

/// A move in the canonical depth-1 state space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Depth1Move {
    /// Set label bit `i` (an edge addition when the label was absent).
    Add(u8),
    /// Clear label bit `i` (deleting the last copy of the label).
    Del(u8),
}

/// The exact canonical-state system of a depth-1 guarded form.
#[derive(Debug, Clone)]
pub struct Depth1System {
    /// Root-child schema nodes; bit `i` of a state ⇔ label `i` present.
    label_edges: Vec<SchemaNodeId>,
    label_names: Vec<String>,
    add_guards: Vec<Compiled>,
    del_guards: Vec<Compiled>,
    completion: Compiled,
    initial: u64,
}

impl Depth1System {
    /// Compile a depth-1 guarded form. Fails on deeper schemas or > 64
    /// root labels.
    pub fn new(form: &GuardedForm) -> Result<Depth1System, Depth1Error> {
        let schema = form.schema();
        let depth = schema.depth();
        if depth > 1 {
            return Err(Depth1Error::NotDepthOne { depth });
        }
        let label_edges: Vec<SchemaNodeId> = schema.children(SchemaNodeId::ROOT).to_vec();
        if label_edges.len() > 64 {
            return Err(Depth1Error::TooManyLabels {
                labels: label_edges.len(),
            });
        }
        let bit_of: HashMap<&str, u8> = label_edges
            .iter()
            .enumerate()
            .map(|(i, &e)| (schema.label(e), i as u8))
            .collect();
        let compile_at_root = |f: &Formula| Compiled::compile(f, Ctx::Root, &bit_of);
        let add_guards = label_edges
            .iter()
            .map(|&e| compile_at_root(form.rules().get(Right::Add, e)))
            .collect();
        let del_guards = label_edges
            .iter()
            .map(|&e| compile_at_root(form.rules().get(Right::Del, e)))
            .collect();
        let completion = compile_at_root(form.completion());

        let mut sys = Depth1System {
            label_names: label_edges
                .iter()
                .map(|&e| schema.label(e).to_string())
                .collect(),
            label_edges,
            add_guards,
            del_guards,
            completion,
            initial: 0,
        };
        sys.initial = sys.state_of(form.initial());
        Ok(sys)
    }

    /// Number of root labels (= state bits).
    pub fn n(&self) -> usize {
        self.label_edges.len()
    }

    /// The canonical state of the form's initial instance.
    pub fn initial_state(&self) -> u64 {
        self.initial
    }

    /// The canonical state of an arbitrary instance of the same schema.
    pub fn state_of(&self, inst: &Instance) -> u64 {
        let mut s = 0u64;
        for (i, &e) in self.label_edges.iter().enumerate() {
            if inst.children_at(InstNodeId::ROOT, e).next().is_some() {
                s |= 1 << i;
            }
        }
        s
    }

    /// The label names, bit-indexed.
    pub fn label_names(&self) -> &[String] {
        &self.label_names
    }

    /// Render a state as its label set.
    pub fn render_state(&self, s: u64) -> String {
        let labels: Vec<&str> = (0..self.n())
            .filter(|&i| s >> i & 1 == 1)
            .map(|i| self.label_names[i].as_str())
            .collect();
        format!("{{{}}}", labels.join(","))
    }

    /// Does the completion formula hold in state `s`?
    pub fn is_complete_state(&self, s: u64) -> bool {
        self.completion.eval(s)
    }

    /// The allowed canonical moves from `s` that change the state.
    ///
    /// Additions of an already-present label and deletions of one of
    /// several copies are canonical self-loops and deliberately omitted —
    /// they cannot affect reachability (Lemma 4.3).
    pub fn successors(&self, s: u64) -> Vec<(Depth1Move, u64)> {
        let mut out = Vec::new();
        for i in 0..self.n() {
            let bit = 1u64 << i;
            if s & bit == 0 {
                if self.add_guards[i].eval(s) {
                    out.push((Depth1Move::Add(i as u8), s | bit));
                }
            } else if self.del_guards[i].eval(s) {
                out.push((Depth1Move::Del(i as u8), s & !bit));
            }
        }
        out
    }

    /// All states reachable from `from`, with BFS tree pointers for run
    /// reconstruction.
    pub fn reachable_from(&self, from: u64) -> Reachability {
        let mut parent: HashMap<u64, Option<(u64, Depth1Move)>> = HashMap::new();
        parent.insert(from, None);
        let mut queue = VecDeque::new();
        queue.push_back(from);
        let mut transitions = 0usize;
        while let Some(s) = queue.pop_front() {
            for (m, t) in self.successors(s) {
                transitions += 1;
                if let Entry::Vacant(e) = parent.entry(t) {
                    e.insert(Some((s, m)));
                    queue.push_back(t);
                }
            }
        }
        Reachability {
            parent,
            stats: SearchStats {
                states: 0,
                transitions,
                closed: true,
                limit_hit: None,
            },
        }
        .with_state_count()
    }

    /// **Exact** completability (Def. 3.13) via Lemma 4.3.
    pub fn completability(&self) -> Depth1Answer {
        let reach = self.reachable_from(self.initial);
        let goal = reach.states().find(|&s| self.is_complete_state(s));
        match goal {
            Some(s) => Depth1Answer {
                verdict: Verdict::Holds,
                witness_state: Some(s),
                moves: Some(reach.path_to(s)),
                stats: reach.stats,
            },
            None => Depth1Answer {
                verdict: Verdict::Fails,
                witness_state: None,
                moves: None,
                stats: reach.stats,
            },
        }
    }

    /// **Exact** semi-soundness (Def. 3.14): every reachable state can
    /// reach a complete state. On failure the witness is a run to an
    /// incompletable reachable state.
    ///
    /// Implementation note: for any reachable `s`, `Reach(s) ⊆ Reach(I₀)`,
    /// so completability of all reachable states is a backward reachability
    /// problem *inside* the forward-reachable set — no need to touch the
    /// full `2^n` space.
    pub fn semisoundness(&self) -> Depth1Answer {
        let reach = self.reachable_from(self.initial);
        // Backward reachability from complete states within `reach`.
        let states: Vec<u64> = reach.states().collect();
        let index: HashMap<u64, usize> = states.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        // Reverse adjacency.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); states.len()];
        for (&s, &i) in &index {
            for (_, t) in self.successors(s) {
                let j = index[&t];
                rev[j].push(i);
            }
        }
        let mut completable = vec![false; states.len()];
        let mut queue = VecDeque::new();
        for (i, &s) in states.iter().enumerate() {
            if self.is_complete_state(s) {
                completable[i] = true;
                queue.push_back(i);
            }
        }
        while let Some(j) = queue.pop_front() {
            for &i in &rev[j] {
                if !completable[i] {
                    completable[i] = true;
                    queue.push_back(i);
                }
            }
        }
        match (0..states.len()).find(|&i| !completable[i]) {
            None => Depth1Answer {
                verdict: Verdict::Holds,
                witness_state: None,
                moves: None,
                stats: reach.stats,
            },
            Some(i) => Depth1Answer {
                verdict: Verdict::Fails,
                witness_state: Some(states[i]),
                moves: Some(reach.path_to(states[i])),
                stats: reach.stats,
            },
        }
    }

    /// Translate a canonical move sequence into concrete updates on the
    /// form's initial instance (Lemma 4.3's faithfulness, constructively).
    ///
    /// A canonical `Del` deletes *every* copy of the label — the guard is
    /// multiplicity-blind, so each copy's deletion stays allowed until the
    /// state finally flips.
    pub fn concretize(&self, form: &GuardedForm, moves: &[Depth1Move]) -> Vec<Update> {
        let mut inst = form.initial().clone();
        let mut out = Vec::new();
        for m in moves {
            match *m {
                Depth1Move::Add(i) => {
                    let edge = self.label_edges[i as usize];
                    let u = Update::Add {
                        parent: InstNodeId::ROOT,
                        edge,
                    };
                    form.apply(&mut inst, &u).expect("canonical add is allowed");
                    out.push(u);
                }
                Depth1Move::Del(i) => {
                    let edge = self.label_edges[i as usize];
                    let copies: Vec<InstNodeId> =
                        inst.children_at(InstNodeId::ROOT, edge).collect();
                    for node in copies {
                        let u = Update::Del { node };
                        form.apply(&mut inst, &u).expect("canonical del is allowed");
                        out.push(u);
                    }
                }
            }
        }
        out
    }
}

/// Result of a depth-1 decision, with canonical witness.
#[derive(Debug, Clone)]
pub struct Depth1Answer {
    /// Always `Holds` or `Fails` — this solver is exact.
    pub verdict: Verdict,
    /// For completability-`Holds`: a complete state. For
    /// semi-soundness-`Fails`: an incompletable reachable state.
    pub witness_state: Option<u64>,
    /// Canonical run to the witness state.
    pub moves: Option<Vec<Depth1Move>>,
    /// Canonical-state search statistics.
    pub stats: SearchStats,
}

/// Forward-reachable set with BFS tree.
#[derive(Debug, Clone)]
pub struct Reachability {
    parent: HashMap<u64, Option<(u64, Depth1Move)>>,
    /// `closed` is always true: the depth-1 space is finite and explored
    /// exhaustively.
    pub stats: SearchStats,
}

impl Reachability {
    fn with_state_count(mut self) -> Self {
        self.stats.states = self.parent.len();
        self
    }

    /// Iterate over the reachable states.
    pub fn states(&self) -> impl Iterator<Item = u64> + '_ {
        self.parent.keys().copied()
    }

    /// Is `s` reachable?
    pub fn contains(&self, s: u64) -> bool {
        self.parent.contains_key(&s)
    }

    /// The BFS move sequence from the origin to `s`.
    pub fn path_to(&self, mut s: u64) -> Vec<Depth1Move> {
        let mut rev = Vec::new();
        while let Some(&Some((p, m))) = self.parent.get(&s) {
            rev.push(m);
            s = p;
        }
        rev.reverse();
        rev
    }
}

// ---------------------------------------------------------------------------
// Formula compilation to bitset expressions
// ---------------------------------------------------------------------------

/// Evaluation context within a canonical depth-1 instance: the root or the
/// (unique) child carrying label bit `i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctx {
    Root,
    Child(u8),
}

/// A compiled Boolean expression over the state bitset.
#[derive(Debug, Clone)]
pub struct Compiled {
    expr: Bx,
}

#[derive(Debug, Clone)]
enum Bx {
    Const(bool),
    Bit(u8),
    Not(Box<Bx>),
    And(Box<Bx>, Box<Bx>),
    Or(Box<Bx>, Box<Bx>),
}

impl Compiled {
    fn compile(f: &Formula, ctx: Ctx, bits: &HashMap<&str, u8>) -> Compiled {
        Compiled {
            expr: compile_formula(f, ctx, bits),
        }
    }

    /// Evaluate against a state bitset.
    pub fn eval(&self, s: u64) -> bool {
        eval_bx(&self.expr, s)
    }
}

fn eval_bx(b: &Bx, s: u64) -> bool {
    match b {
        Bx::Const(c) => *c,
        Bx::Bit(i) => s >> i & 1 == 1,
        Bx::Not(x) => !eval_bx(x, s),
        Bx::And(x, y) => eval_bx(x, s) && eval_bx(y, s),
        Bx::Or(x, y) => eval_bx(x, s) || eval_bx(y, s),
    }
}

fn compile_formula(f: &Formula, ctx: Ctx, bits: &HashMap<&str, u8>) -> Bx {
    match f {
        Formula::True => Bx::Const(true),
        Formula::False => Bx::Const(false),
        Formula::Not(g) => Bx::Not(Box::new(compile_formula(g, ctx, bits))),
        Formula::And(a, b) => Bx::And(
            Box::new(compile_formula(a, ctx, bits)),
            Box::new(compile_formula(b, ctx, bits)),
        ),
        Formula::Or(a, b) => Bx::Or(
            Box::new(compile_formula(a, ctx, bits)),
            Box::new(compile_formula(b, ctx, bits)),
        ),
        Formula::Path(p) => {
            // `n ⊨ p` ⇔ some target reachable: OR of target guards.
            let ts = compile_path(p, ctx, bits);
            disj(ts.into_iter().map(|(_, g)| g))
        }
    }
}

/// Targets of a path from `ctx`, each with the condition under which it is
/// reached. Contexts are merged (OR) to keep the expression small.
fn compile_path(p: &PathExpr, ctx: Ctx, bits: &HashMap<&str, u8>) -> Vec<(Ctx, Bx)> {
    let merged = |v: Vec<(Ctx, Bx)>| -> Vec<(Ctx, Bx)> {
        let mut out: Vec<(Ctx, Bx)> = Vec::new();
        for (c, g) in v {
            if let Some(slot) = out.iter_mut().find(|(c2, _)| *c2 == c) {
                let prev = std::mem::replace(&mut slot.1, Bx::Const(false));
                slot.1 = Bx::Or(Box::new(prev), Box::new(g));
            } else {
                out.push((c, g));
            }
        }
        out
    };
    match p {
        PathExpr::Parent => match ctx {
            Ctx::Root => Vec::new(), // the root has no parent
            Ctx::Child(_) => vec![(Ctx::Root, Bx::Const(true))],
        },
        PathExpr::Label(l) => match ctx {
            Ctx::Root => match bits.get(l.as_str()) {
                // The l-child exists iff its bit is set.
                Some(&i) => vec![(Ctx::Child(i), Bx::Bit(i))],
                None => Vec::new(), // label not in schema: never matches
            },
            Ctx::Child(_) => Vec::new(), // depth-1 children are leaves
        },
        PathExpr::Seq(p1, p2) => {
            let mut out = Vec::new();
            for (c1, g1) in compile_path(p1, ctx, bits) {
                for (c2, g2) in compile_path(p2, c1, bits) {
                    out.push((c2, Bx::And(Box::new(g1.clone()), Box::new(g2))));
                }
            }
            merged(out)
        }
        PathExpr::Filter(p1, f) => compile_path(p1, ctx, bits)
            .into_iter()
            .map(|(c, g)| {
                let cond = compile_formula(f, c, bits);
                (c, Bx::And(Box::new(g), Box::new(cond)))
            })
            .collect(),
    }
}

fn disj(items: impl Iterator<Item = Bx>) -> Bx {
    let mut acc: Option<Bx> = None;
    for x in items {
        acc = Some(match acc {
            None => x,
            Some(a) => Bx::Or(Box::new(a), Box::new(x)),
        });
    }
    acc.unwrap_or(Bx::Const(false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idar_core::{AccessRules, Schema};
    use std::sync::Arc;

    fn form(
        schema: &str,
        rules: &[(&str, &str, &str)], // (label, add, del)
        initial: &str,
        completion: &str,
    ) -> GuardedForm {
        let schema = Arc::new(Schema::parse(schema).unwrap());
        let mut table = AccessRules::new(&schema);
        for (l, add, del) in rules {
            table.set_both(
                schema.resolve(l).unwrap(),
                Formula::parse(add).unwrap(),
                Formula::parse(del).unwrap(),
            );
        }
        let init = Instance::parse(schema.clone(), initial).unwrap();
        GuardedForm::new(schema, table, init, Formula::parse(completion).unwrap())
    }

    #[test]
    fn sequencing_chain() {
        // a then b then c; each freezes the previous.
        let g = form(
            "a, b, c",
            &[
                ("a", "!a & !b", "!b"),
                ("b", "a & !b & !c", "!c"),
                ("c", "b & !c", "false"),
            ],
            "",
            "a & b & c",
        );
        let sys = Depth1System::new(&g).unwrap();
        assert_eq!(sys.n(), 3);
        let ans = sys.completability();
        assert_eq!(ans.verdict, Verdict::Holds);
        let moves = ans.moves.unwrap();
        assert_eq!(moves.len(), 3);
        // Concretised run replays on the real form.
        let run = sys.concretize(&g, &moves);
        assert!(g.is_complete_run(&run));
        // And the form is semi-sound: any state can still finish.
        assert_eq!(sys.semisoundness().verdict, Verdict::Holds);
    }

    #[test]
    fn incompletable_form() {
        // c requires b, b requires a, but a requires c: deadlock.
        let g = form(
            "a, b, c",
            &[("a", "c", "true"), ("b", "a", "true"), ("c", "b", "true")],
            "",
            "c",
        );
        let sys = Depth1System::new(&g).unwrap();
        assert_eq!(sys.completability().verdict, Verdict::Fails);
        // Not semi-sound either (the initial state itself is incompletable).
        let ss = sys.semisoundness();
        assert_eq!(ss.verdict, Verdict::Fails);
        assert_eq!(ss.moves.as_deref(), Some(&[][..]));
    }

    #[test]
    fn trap_state_breaks_semisoundness() {
        // `t` can be added at any time and blocks everything; completion
        // needs `g` which requires ¬t.
        let g = form(
            "g, t",
            &[("g", "!t & !g", "false"), ("t", "!t", "false")],
            "",
            "g",
        );
        let sys = Depth1System::new(&g).unwrap();
        assert_eq!(sys.completability().verdict, Verdict::Holds);
        let ss = sys.semisoundness();
        assert_eq!(ss.verdict, Verdict::Fails);
        // The counterexample is the state {t} (or {g,t} — any with t).
        let s = ss.witness_state.unwrap();
        let t_bit = sys.label_names().iter().position(|l| l == "t").unwrap();
        assert_eq!(s >> t_bit & 1, 1);
        // Concretised counterexample run replays and its end state is stuck.
        let run = sys.concretize(&g, ss.moves.as_ref().unwrap());
        let r = g.replay(&run).unwrap();
        assert!(!g.is_complete(r.last()));
    }

    #[test]
    fn deletion_transitions() {
        // Completion = ¬a with a initially present and deletable only
        // after b arrives.
        let g = form(
            "a, b",
            &[("a", "false", "b"), ("b", "!b", "false")],
            "a",
            "!a & b",
        );
        let sys = Depth1System::new(&g).unwrap();
        let ans = sys.completability();
        assert_eq!(ans.verdict, Verdict::Holds);
        let run = sys.concretize(&g, &ans.moves.unwrap());
        assert!(g.is_complete_run(&run));
    }

    #[test]
    fn multiplicities_collapse_in_initial_state() {
        let g = form("a, b", &[("a", "false", "true")], "a, a, a", "!a");
        let sys = Depth1System::new(&g).unwrap();
        // Canonical initial state has a single `a` bit…
        assert_eq!(sys.initial_state().count_ones(), 1);
        // …and deletion reaches ¬a by deleting all three copies.
        let ans = sys.completability();
        assert_eq!(ans.verdict, Verdict::Holds);
        let run = sys.concretize(&g, &ans.moves.unwrap());
        assert_eq!(run.len(), 3); // one concrete delete per copy
        assert!(g.is_complete_run(&run));
    }

    #[test]
    fn rejects_deep_schemas() {
        let g = {
            let schema = Arc::new(Schema::parse("a(b)").unwrap());
            let table = AccessRules::new(&schema);
            let init = Instance::empty(schema.clone());
            GuardedForm::new(schema, table, init, Formula::True)
        };
        assert!(matches!(
            Depth1System::new(&g),
            Err(Depth1Error::NotDepthOne { depth: 2 })
        ));
    }

    #[test]
    fn compiled_guards_match_interpreter() {
        // Differential check: compiled bitset evaluation agrees with the
        // tree-walking evaluator on every state of a 5-label schema.
        let schema = Arc::new(Schema::parse("a, b, c, d, e").unwrap());
        let formulas = [
            "a & !b | c[..[d]]",
            "!(a | b) & (c | d[..[e & a]])",
            "a[.. [b & c]] | !d",
            "e & !e | a",
            "..",
            "a/..",
            "zz | a", // unknown label
        ];
        let bit_of: HashMap<&str, u8> = ["a", "b", "c", "d", "e"]
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, i as u8))
            .collect();
        for ft in formulas {
            let f = Formula::parse(ft).unwrap();
            let compiled = Compiled::compile(&f, Ctx::Root, &bit_of);
            for s in 0u64..32 {
                // Materialise the canonical instance for state s.
                let mut inst = Instance::empty(schema.clone());
                for (i, l) in ["a", "b", "c", "d", "e"].iter().enumerate() {
                    if s >> i & 1 == 1 {
                        inst.add_child_by_label(InstNodeId::ROOT, l).unwrap();
                    }
                }
                assert_eq!(
                    compiled.eval(s),
                    idar_core::formula::holds_at_root(&inst, &f),
                    "mismatch for `{ft}` at state {s:b}"
                );
            }
        }
    }

    #[test]
    fn empty_schema_trivial() {
        let schema = Arc::new(idar_core::SchemaBuilder::new().build());
        let g = GuardedForm::new(
            schema.clone(),
            AccessRules::new(&schema),
            Instance::empty(schema.clone()),
            Formula::True,
        );
        let sys = Depth1System::new(&g).unwrap();
        assert_eq!(sys.n(), 0);
        assert_eq!(sys.completability().verdict, Verdict::Holds);
        assert_eq!(sys.semisoundness().verdict, Verdict::Holds);
    }
}
