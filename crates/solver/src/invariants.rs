//! Invariant checking through completability.
//!
//! Sec. 3.5: "completability is not only interesting as a correctness
//! requirement but also important for deciding invariants. For example, by
//! checking completability for φ = d[a ∧ r] we can check if at any stage
//! there can be a decision field that contains both accept and reject."
//!
//! An *invariant* is a formula that must hold at the root of **every**
//! reachable instance. It holds iff its negation is never reachable — i.e.
//! iff the guarded form with completion formula `¬invariant` is *not*
//! completable. The three-valued solver verdicts invert accordingly.

use crate::completability::{completability, CompletabilityOptions};
use crate::verdict::{SearchStats, Verdict};
use idar_core::{Formula, GuardedForm, Update};

/// The result of an invariant check.
#[derive(Debug, Clone)]
pub struct InvariantResult {
    /// `Holds`: no reachable instance violates the invariant (exact only
    /// when the underlying completability answer was exact). `Fails`: a
    /// violating instance is reachable — see `violation`.
    pub verdict: Verdict,
    /// A run from the initial instance to a violating instance, when one
    /// was found.
    pub violation: Option<Vec<Update>>,
    /// Statistics of the underlying reachability search.
    pub stats: SearchStats,
}

/// Check whether `invariant` holds at the root of every reachable instance
/// of `form`.
pub fn check_invariant(
    form: &GuardedForm,
    invariant: &Formula,
    options: &CompletabilityOptions,
) -> InvariantResult {
    let probe = form.with_completion(invariant.clone().not());
    let r = completability(&probe, options);
    InvariantResult {
        verdict: r.verdict.not(),
        violation: r.witness_run,
        stats: r.stats,
    }
}

/// Check several invariants at once, returning the per-invariant results
/// in order. (Each probe is independent; a production fb-wis would run
/// this when a form definition is saved.)
pub fn check_invariants(
    form: &GuardedForm,
    invariants: &[Formula],
    options: &CompletabilityOptions,
) -> Vec<InvariantResult> {
    invariants
        .iter()
        .map(|inv| check_invariant(form, inv, options))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ExploreLimits;
    use idar_core::leave;

    fn capped() -> CompletabilityOptions {
        CompletabilityOptions::with_limits(ExploreLimits {
            multiplicity_cap: Some(2),
            ..ExploreLimits::small()
        })
    }

    #[test]
    fn paper_invariant_no_double_decision() {
        // Sec. 3.5's example: a decision can never hold accept AND reject.
        let g = leave::example_3_12();
        let inv = Formula::parse("!d[a & r]").unwrap();
        let r = check_invariant(&g, &inv, &capped());
        assert_ne!(r.verdict, Verdict::Fails);
        assert!(r.violation.is_none());
    }

    #[test]
    fn violated_invariant_yields_a_run() {
        // "no final without submit" is violated by… nothing in Ex 3.12 —
        // use "never a decision" which plainly breaks.
        let g = leave::example_3_12();
        let inv = Formula::parse("!d").unwrap();
        let r = check_invariant(&g, &inv, &capped());
        assert_eq!(r.verdict, Verdict::Fails);
        let run = r.violation.unwrap();
        let replay = g.replay(&run).unwrap();
        assert!(idar_core::formula::holds_at_root(
            replay.last(),
            &Formula::parse("d").unwrap()
        ));
    }

    #[test]
    fn structural_invariants_of_the_leave_form() {
        // A bundle of workflow facts implied by Ex. 3.12's rules.
        let g = leave::example_3_12();
        let invariants: Vec<Formula> = [
            "!d[a & r]", // decisions exclusive
            "!(f & !d)", // final only after a decision field exists
            "!(d & !s)", // decision only after submission
            "!(s & !a)", // submission only with an application
        ]
        .iter()
        .map(|s| Formula::parse(s).unwrap())
        .collect();
        for (i, r) in check_invariants(&g, &invariants, &capped())
            .into_iter()
            .enumerate()
        {
            assert_ne!(r.verdict, Verdict::Fails, "invariant {i} violated");
        }
    }

    #[test]
    fn depth1_invariants_are_exact() {
        use idar_core::{AccessRules, GuardedForm, Instance, Right, Schema};
        use std::sync::Arc;
        let schema = Arc::new(Schema::parse("a, b").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set(
            Right::Add,
            schema.resolve("a").unwrap(),
            Formula::parse("!a").unwrap(),
        );
        rules.set(
            Right::Add,
            schema.resolve("b").unwrap(),
            Formula::parse("a & !b").unwrap(),
        );
        let g = GuardedForm::new(
            schema.clone(),
            rules,
            Instance::empty(schema),
            Formula::True,
        );
        // b implies a — exact on the canonical space.
        let r = check_invariant(&g, &Formula::parse("!b | a").unwrap(), &Default::default());
        assert_eq!(r.verdict, Verdict::Holds);
        // a implies b — false (a can exist alone).
        let r = check_invariant(&g, &Formula::parse("!a | b").unwrap(), &Default::default());
        assert_eq!(r.verdict, Verdict::Fails);
    }
}
