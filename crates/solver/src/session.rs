//! The explored state graph as a **persistent session artifact**: the
//! build/query split behind incremental re-analysis.
//!
//! The bounded explorer historically treated every analysis as a cold
//! start: build a [`StateStore`], answer one question, drop everything.
//! The online form manager (Sec. 3.5) pays for that discard on every
//! vet — the successor it asks about is usually *already interned*, with
//! its reachable subgraph intact, in the store the previous call just
//! threw away.
//!
//! A [`SessionGraph`] keeps that work. It retains
//!
//! * the hash-consed [`StateStore`] (states, provenance, depths),
//! * the CSR [`SuccessorTable`],
//! * an [`ExpansionLog`] — for every *expanded* state, the exact ordered
//!   outcome of enumerating its allowed updates ([`ExpandEvent`]s), which
//!   is what makes warm queries **bit-compatible** with cold runs, and
//! * per-state completability verdict annotations when the build
//!   *closed* (explored the entire reachable space).
//!
//! # Resume semantics contract
//!
//! [`Explorer::resume`](crate::Explorer::resume) re-runs the sequential BFS **as if** it had been
//! started cold from an already-interned state: same goal-check order,
//! same prune bookkeeping, same truncation behaviour, and therefore the
//! same [`SearchStats`] and verdict a cold `Explorer::find` from that
//! instance would report. States whose expansion is fully logged are
//! *replayed* from the log (no `allowed_updates` calls, no instance
//! clones); frontier states — never expanded, or cut short by the build's
//! state cap — are expanded directly, interned into the retained store,
//! and their spans completed, so the session graph *grows monotonically*
//! under query traffic.
//!
//! Replaying a logged span is only valid when the per-expansion limits
//! (`max_state_size`, `multiplicity_cap`) match the ones the span was
//! recorded under; a resume under different limits falls back to direct
//! expansion without touching the log.
//!
//! # Exactness
//!
//! `exact()` is `stats.closed` of the build: the sequential engine sets
//! `closed` only when no prune event fired, and its depth-limit probe
//! verifies the unexpanded frontier has no successors — so a closed
//! build, even a depth-limited one, covers the *entire* reachable space.
//! On an exact graph the per-state annotations are definitive
//! ([`Verdict::Holds`]/[`Verdict::Fails`], never
//! [`Verdict::Unknown`]), and a lookup replaces the whole solve.

use crate::explore::{has_successor, ExploreLimits, ExploreOutcome, StateGraph};
use crate::store::{StateId, StateStore, SuccessorTable};
use crate::verdict::{LimitKind, SearchStats, Verdict};
use idar_core::{GuardedForm, Instance, Update};
use std::collections::{HashMap, VecDeque};

/// One logged outcome of enumerating a single allowed update while
/// expanding a state: either an edge to the (possibly pre-existing)
/// successor, or a prune by a per-expansion resource limit.
///
/// Every update `allowed_updates` yields produces exactly one event, in
/// enumeration order — which is why replaying a span reproduces a cold
/// run's `transitions` count and truncation points bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpandEvent {
    /// The update applied; its successor interned as the given state.
    Edge(Update, StateId),
    /// The update was pruned before application by a resource limit.
    Pruned(LimitKind),
}

/// The recorded expansion of one state.
#[derive(Debug, Clone, Default)]
struct Span {
    events: Vec<ExpandEvent>,
    /// `false` while the build/extension was cut short mid-enumeration
    /// (state cap, goal found): the events are a valid prefix but the
    /// state must be re-expanded before its span can be replayed.
    complete: bool,
}

/// Per-state expansion journal of a session build: `spans[i]` records
/// how state `i` expanded, `None` if it never did (frontier states).
///
/// The log is both the replay source for [`Explorer::resume`](crate::Explorer::resume) and the
/// authoritative edge set — the CSR [`SuccessorTable`] is rebuilt from
/// it after the graph grows.
#[derive(Debug, Clone, Default)]
pub struct ExpansionLog {
    spans: Vec<Option<Span>>,
}

impl ExpansionLog {
    fn slot(&mut self, i: StateId) -> &mut Option<Span> {
        if self.spans.len() <= i.index() {
            self.spans.resize(i.index() + 1, None);
        }
        &mut self.spans[i.index()]
    }

    /// Open (or replace) the span of `i`: its expansion is starting.
    pub(crate) fn begin(&mut self, i: StateId) {
        *self.slot(i) = Some(Span::default());
    }

    /// Record one enumeration outcome for the open span of `i`.
    pub(crate) fn push(&mut self, i: StateId, ev: ExpandEvent) {
        self.slot(i)
            .as_mut()
            .expect("expansion span opened before events")
            .events
            .push(ev);
    }

    /// Mark the span of `i` complete: enumeration ran to the end.
    pub(crate) fn seal(&mut self, i: StateId) {
        self.slot(i)
            .as_mut()
            .expect("expansion span opened before sealing")
            .complete = true;
    }

    fn get(&self, i: StateId) -> Option<&Span> {
        self.spans.get(i.index()).and_then(|s| s.as_ref())
    }

    /// Number of states with a *complete* span.
    pub fn expanded_states(&self) -> usize {
        self.spans
            .iter()
            .filter(|s| s.as_ref().is_some_and(|sp| sp.complete))
            .count()
    }

    /// Approximate resident bytes of the journal.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<ExpansionLog>()
            + self.spans.capacity() * size_of::<Option<Span>>()
            + self
                .spans
                .iter()
                .flatten()
                .map(|sp| sp.events.capacity() * size_of::<ExpandEvent>())
                .sum::<usize>()
    }

    fn triples(&self) -> Vec<(StateId, Update, StateId)> {
        let mut out = Vec::new();
        for (i, span) in self.spans.iter().enumerate() {
            let Some(span) = span else { continue };
            for ev in &span.events {
                if let ExpandEvent::Edge(u, j) = *ev {
                    out.push((StateId(i as u32), u, j));
                }
            }
        }
        out
    }
}

/// The retained build artifact of one exploration: states, edges,
/// expansion journal, bookkeeping — everything a later query needs to
/// continue where the build stopped. See the module docs for the
/// build/query contract.
#[derive(Debug, Clone)]
pub struct SessionGraph {
    store: StateStore,
    succ: SuccessorTable,
    log: ExpansionLog,
    /// Stats of the original build (not mutated by queries).
    stats: SearchStats,
    /// The limits the build ran under; spans replay only against
    /// matching per-expansion limits.
    limits: ExploreLimits,
    /// Exact completability verdict per build state; populated by
    /// [`SessionGraph::annotate`] on closed builds only.
    verdicts: Option<Vec<Verdict>>,
    /// Set when resume grew the graph since `succ` was last rebuilt.
    succ_stale: bool,
}

impl SessionGraph {
    pub(crate) fn from_build(graph: StateGraph, log: ExpansionLog, limits: ExploreLimits) -> Self {
        SessionGraph {
            store: graph.store,
            succ: graph.succ,
            log,
            stats: graph.stats,
            limits,
            verdicts: None,
            succ_stale: false,
        }
    }

    /// The build's root state (the initial instance), always id 0.
    pub fn root(&self) -> StateId {
        StateId(0)
    }

    /// The retained state store: states, provenance, depths.
    pub fn store(&self) -> &StateStore {
        &self.store
    }

    /// Number of retained states (the session's memory-budget metric).
    pub fn retained_states(&self) -> usize {
        self.store.len()
    }

    /// Approximate resident bytes of the whole session artifact: store,
    /// CSR successor table, expansion journal, and verdict column. The
    /// byte-denominated retention budgets (workflow manager, server) are
    /// enforced against this figure.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<SessionGraph>()
            + self.store.approx_bytes()
            + self.succ.approx_bytes()
            + self.log.approx_bytes()
            + self
                .verdicts
                .as_ref()
                .map_or(0, |v| v.capacity() * size_of::<Verdict>())
    }

    /// Statistics of the original build.
    pub fn build_stats(&self) -> SearchStats {
        self.stats
    }

    /// The limits the build ran under.
    pub fn build_limits(&self) -> ExploreLimits {
        self.limits
    }

    /// Did the build cover the entire reachable space? When true, the
    /// graph is successor-closed and [`SessionGraph::verdict_of`]
    /// answers completability without any search.
    pub fn exact(&self) -> bool {
        self.stats.closed
    }

    /// Find the retained state isomorphic to `inst` (under the store's
    /// symmetry mode), if any.
    pub fn lookup(&self, inst: &Instance) -> Option<StateId> {
        self.store.lookup(inst)
    }

    /// States that were never fully expanded — the frontier a resume
    /// continues from. Empty exactly when the build closed.
    pub fn frontier(&self) -> Vec<StateId> {
        (0..self.store.len())
            .map(|i| StateId(i as u32))
            .filter(|&i| !self.log.get(i).is_some_and(|s| s.complete))
            .collect()
    }

    /// The CSR successor table, rebuilt from the expansion log if
    /// queries have grown the graph since the last rebuild.
    pub fn successor_table(&mut self) -> &SuccessorTable {
        if self.succ_stale {
            self.succ = SuccessorTable::from_triples(self.store.len(), &self.log.triples());
            self.succ_stale = false;
        }
        &self.succ
    }

    /// Annotate every build state with its exact completability verdict
    /// (goal = `form.is_complete`). No-op unless the build closed: on a
    /// truncated graph "no complete state reached" is not a `Fails`.
    pub fn annotate(&mut self, form: &GuardedForm) {
        if !self.exact() {
            return;
        }
        let n = self.store.len();
        let goal: Vec<bool> = (0..n)
            .map(|i| form.is_complete(self.store.get(StateId(i as u32))))
            .collect();
        // Backward reachability from complete states over logged edges.
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, u_j) in self.log.spans.iter().enumerate() {
            let Some(span) = u_j else { continue };
            for ev in &span.events {
                if let ExpandEvent::Edge(_, j) = *ev {
                    rev[j.index()].push(i as u32);
                }
            }
        }
        let mut reach = goal.clone();
        let mut queue: VecDeque<u32> = goal
            .iter()
            .enumerate()
            .filter(|(_, &g)| g)
            .map(|(i, _)| i as u32)
            .collect();
        while let Some(j) = queue.pop_front() {
            for &i in &rev[j as usize] {
                if !reach[i as usize] {
                    reach[i as usize] = true;
                    queue.push_back(i);
                }
            }
        }
        self.verdicts = Some(
            reach
                .iter()
                .map(|&r| if r { Verdict::Holds } else { Verdict::Fails })
                .collect(),
        );
    }

    /// The annotated completability verdict of a build state: `Some` only
    /// after [`SessionGraph::annotate`] on an exact graph, and only for
    /// states that existed at annotation time.
    pub fn verdict_of(&self, id: StateId) -> Option<Verdict> {
        self.verdicts.as_ref()?.get(id.index()).copied()
    }

    /// The query phase: continue the BFS from an already-interned state,
    /// mirroring a cold sequential run from that instance event for
    /// event. Called through [`Explorer::resume`](crate::Explorer::resume).
    pub(crate) fn resume_with(
        &mut self,
        form: &GuardedForm,
        limits: ExploreLimits,
        from: StateId,
        mut goal: impl FnMut(&Instance) -> bool,
    ) -> ExploreOutcome {
        let mut stats = SearchStats {
            states: 1,
            ..SearchStats::default()
        };

        // Mirror of the cold root check: goal at the seed closes.
        if goal(self.store.get(from)) {
            stats.closed = true;
            return ExploreOutcome {
                goal_run: Some(Vec::new()),
                stats,
            };
        }

        // Spans replay only under the per-expansion limits they were
        // recorded with; otherwise expand directly (and leave the log
        // untouched — it stays valid for the build limits).
        let replay_ok = limits.max_state_size == self.limits.max_state_size
            && limits.multiplicity_cap == self.limits.multiplicity_cap;

        // Local BFS bookkeeping: "locally new" is exactly what a cold
        // run's intern `is_new` would report, and the local depth of a
        // state equals its cold BFS depth from the seed.
        let mut depth: HashMap<StateId, usize> = HashMap::new();
        let mut parent: HashMap<StateId, (StateId, Update)> = HashMap::new();
        depth.insert(from, 0);
        let mut queue: VecDeque<StateId> = VecDeque::new();
        queue.push_back(from);
        let mut pruned = false;

        while let Some(i) = queue.pop_front() {
            let d = depth[&i];
            if d >= limits.max_depth {
                // Cold-run depth probe: exhaustiveness is lost iff any
                // frontier state still has a successor.
                if std::iter::once(i)
                    .chain(queue.drain(..))
                    .any(|j| has_successor(form, self.store.get(j)))
                {
                    pruned = true;
                    stats.limit_hit = Some(LimitKind::Depth);
                }
                break;
            }
            let events = self.expansion_of(form, i, limits, replay_ok);
            for ev in events {
                stats.transitions += 1;
                match ev {
                    ExpandEvent::Pruned(k) => {
                        pruned = true;
                        stats.limit_hit = Some(k);
                    }
                    ExpandEvent::Edge(u, j) => {
                        if depth.contains_key(&j) {
                            continue;
                        }
                        depth.insert(j, d + 1);
                        parent.insert(j, (i, u));
                        stats.states += 1;
                        if goal(self.store.get(j)) {
                            // Cold contract: goal mid-search returns
                            // without setting `closed`.
                            return ExploreOutcome {
                                goal_run: Some(reconstruct(&parent, from, j)),
                                stats,
                            };
                        }
                        if stats.states >= limits.max_states {
                            stats.limit_hit = Some(LimitKind::States);
                            return ExploreOutcome {
                                goal_run: None,
                                stats,
                            };
                        }
                        queue.push_back(j);
                    }
                }
            }
        }

        stats.closed = !pruned;
        ExploreOutcome {
            goal_run: None,
            stats,
        }
    }

    /// The expansion events of `i`: replayed from a complete logged span
    /// when valid, otherwise produced by direct expansion — mirroring
    /// the sequential engine's inner loop (same prune order) — which
    /// interns any new successors into the retained store and, when the
    /// limits match the build's, records the completed span.
    fn expansion_of(
        &mut self,
        form: &GuardedForm,
        i: StateId,
        limits: ExploreLimits,
        replay_ok: bool,
    ) -> Vec<ExpandEvent> {
        if replay_ok {
            if let Some(span) = self.log.get(i) {
                if span.complete {
                    return span.events.clone();
                }
            }
        }
        let mut events = Vec::new();
        for u in form.allowed_updates(self.store.get(i)) {
            if let Update::Add { parent, edge } = u {
                if self.store.get(i).live_count() >= limits.max_state_size {
                    events.push(ExpandEvent::Pruned(LimitKind::StateSize));
                    continue;
                }
                if let Some(cap) = limits.multiplicity_cap {
                    if self.store.get(i).children_at(parent, edge).count() >= cap {
                        events.push(ExpandEvent::Pruned(LimitKind::Multiplicity));
                        continue;
                    }
                }
            }
            let mut next = self.store.get(i).clone();
            form.apply_unchecked(&mut next, &u)
                .expect("allowed updates apply");
            let (j, _is_new) = self.store.intern(next, Some((i, u)));
            events.push(ExpandEvent::Edge(u, j));
        }
        if replay_ok {
            self.log.begin(i);
            for ev in &events {
                self.log.push(i, *ev);
            }
            self.log.seal(i);
            self.succ_stale = true;
        }
        events
    }
}

/// Rebuild the update sequence `from → j` out of the resume's local
/// parent chain.
fn reconstruct(
    parent: &HashMap<StateId, (StateId, Update)>,
    from: StateId,
    mut j: StateId,
) -> Vec<Update> {
    let mut run = Vec::new();
    while j != from {
        let (i, u) = parent[&j];
        run.push(u);
        j = i;
    }
    run.reverse();
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use idar_core::{AccessRules, Formula, Schema};
    use std::sync::Arc;

    /// Free add/del of a and b, at most one of each: 4 states, closed.
    fn toggle_form() -> GuardedForm {
        let schema = Arc::new(Schema::parse("a, b").unwrap());
        let mut rules = AccessRules::new(&schema);
        rules.set_both(
            schema.resolve("a").unwrap(),
            Formula::parse("!a").unwrap(),
            Formula::True,
        );
        rules.set_both(
            schema.resolve("b").unwrap(),
            Formula::parse("!b").unwrap(),
            Formula::True,
        );
        let init = Instance::empty(schema.clone());
        GuardedForm::new(schema, rules, init, Formula::parse("a & b").unwrap())
    }

    #[test]
    fn closed_build_is_exact_and_annotates() {
        let g = toggle_form();
        let mut s = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .build_session();
        assert!(s.exact());
        assert_eq!(s.retained_states(), 4);
        assert!(s.frontier().is_empty());
        s.annotate(&g);
        // Every toggle state can still reach {a,b}: all Holds.
        for i in 0..4 {
            assert_eq!(s.verdict_of(StateId(i)), Some(Verdict::Holds));
        }
        assert_eq!(s.successor_table().edge_count(), 8);
    }

    #[test]
    fn resume_matches_cold_run_per_state() {
        let g = toggle_form();
        let mut s = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .build_session();
        for i in 0..s.retained_states() {
            let id = StateId(i as u32);
            let warm = Explorer::new(&g, ExploreLimits::small())
                .with_threads(1)
                .resume(&mut s, id, |x| g.is_complete(x));
            let cold_form = g.with_initial(s.store().get(id).clone());
            let cold = Explorer::new(&cold_form, ExploreLimits::small())
                .with_threads(1)
                .find(|x| cold_form.is_complete(x));
            assert_eq!(warm.stats, cold.stats, "state {i}");
            assert_eq!(
                warm.goal_run.as_ref().map(Vec::len),
                cold.goal_run.as_ref().map(Vec::len),
                "state {i}"
            );
        }
    }

    #[test]
    fn truncated_build_grows_on_resume() {
        let g = toggle_form();
        // Cap the build at 2 states: {} and {a}; resume completes the
        // space through direct expansion of the logged frontier.
        let lim = ExploreLimits {
            max_states: 2,
            ..ExploreLimits::small()
        };
        let mut s = Explorer::new(&g, lim).with_threads(1).build_session();
        assert!(!s.exact());
        assert_eq!(s.retained_states(), 2);
        let out = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .resume(&mut s, StateId(0), |x| g.is_complete(x));
        let run = out.goal_run.expect("goal reachable");
        assert_eq!(run.len(), 2);
        assert!(g.is_complete_run(&run));
        assert!(s.retained_states() > 2, "resume interned new states");
    }

    #[test]
    fn resume_respects_its_own_limits() {
        let g = toggle_form();
        let mut s = Explorer::new(&g, ExploreLimits::small())
            .with_threads(1)
            .build_session();
        // A depth-0 resume from the root mirrors a cold depth-0 run:
        // the probe sees successors, so the search is not closed.
        let lim = ExploreLimits {
            max_depth: 0,
            ..ExploreLimits::small()
        };
        let out = Explorer::new(&g, lim)
            .with_threads(1)
            .resume(&mut s, StateId(0), |x| g.is_complete(x));
        assert!(out.goal_run.is_none());
        assert!(!out.stats.closed);
        assert_eq!(out.stats.limit_hit, Some(LimitKind::Depth));
    }
}
