//! Formula satisfiability (Cor. 4.5): is there a rooted node-labelled tree
//! whose **root** satisfies φ?
//!
//! Cor. 4.5: NP-complete when tree depth is bounded by a constant,
//! PSPACE-complete unbounded. The procedure here is an obligation-driven
//! tableau built directly on the Lemma 4.4 machinery:
//!
//! * φ is normalised to [`StepFormula`] (every path is a single child- or
//!   parent-step with a residual filter) and negation normal form, so every
//!   obligation speaks about the current node, one child, or the parent.
//! * A witness tree is grown from the root. Positive child obligations
//!   `l[ψ]` spawn a fresh `l`-child carrying `ψ` — sound *and* complete
//!   because formulas are multiplicity-blind (Ex. 3.2): if one child could
//!   serve two obligations, two children each serving one work as well.
//! * Negative child obligations `¬l[ξ]` are recorded and pushed (as
//!   `nnf(¬ξ)`) into every existing and future `l`-child.
//! * Parent obligations `..[ψ]` travel up to the (already-materialised)
//!   parent, whose obligation set grows and is re-processed — this is the
//!   fixpoint the paper's PSPACE walk performs with guessed `Φ(n)` sets.
//! * `∨` creates a backtracking choice point (the tableau state is cloned).
//!
//! Obligations are deduplicated per node and drawn from the finite closure
//! of φ's subformulas under negation, so each branch terminates; the number
//! of branches is exponential, as the complexity results demand.

use idar_core::formula::StepFormula;
use idar_core::{Formula, Schema, SchemaNodeId};
use std::collections::HashSet;
use std::collections::VecDeque;
use std::sync::Arc;

/// Options for the satisfiability search.
#[derive(Debug, Clone, Default)]
pub struct SatOptions {
    /// Constrain witnesses to be instances of this schema (labels and
    /// parent/child relations must follow it; the root is the schema root).
    pub schema: Option<Arc<Schema>>,
    /// Cap on witness-tree depth. `None`: the child-nesting depth of φ
    /// (sufficient — deeper nodes can never be referenced from the root),
    /// additionally clamped by the schema's depth when one is given.
    pub max_depth: Option<usize>,
    /// Safety cap on tableau branches explored (default 1 << 22).
    pub max_branches: Option<usize>,
    /// SAT engine consulted by the propositional fast path and the UNSAT
    /// pre-check (default: CDCL).
    pub engine: idar_logic::Engine,
}

/// The result of a satisfiability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witness tree.
    Sat(WitnessTree),
    /// No witness within the (complete, see module docs) bounds.
    Unsat,
    /// The branch budget ran out (pathological inputs only).
    BudgetExhausted,
}

impl SatResult {
    /// Was a witness found?
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// A rooted labelled tree produced as a satisfiability witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessTree {
    /// `(label, parent index)`; entry 0 is the root (parent = usize::MAX).
    pub nodes: Vec<(String, usize)>,
}

impl WitnessTree {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the tree empty (degenerate, never produced by the solver)?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Evaluate a formula at node `at` of this tree (used for the
    /// verification pass and tests; same semantics as Def. 3.5).
    pub fn holds(&self, at: usize, f: &Formula) -> bool {
        let n = StepFormula::from_formula(f);
        self.holds_step(at, &n)
    }

    fn children(&self, at: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.nodes.len()).filter(move |&i| i != 0 && self.nodes[i].1 == at)
    }

    fn holds_step(&self, at: usize, f: &StepFormula) -> bool {
        match f {
            StepFormula::True => true,
            StepFormula::False => false,
            StepFormula::Child(l) => self.children(at).any(|c| self.nodes[c].0 == *l),
            StepFormula::Parent => at != 0,
            StepFormula::ChildSat(l, g) => self
                .children(at)
                .any(|c| self.nodes[c].0 == *l && self.holds_step(c, g)),
            StepFormula::ParentSat(g) => at != 0 && self.holds_step(self.nodes[at].1, g),
            StepFormula::Not(g) => !self.holds_step(at, g),
            StepFormula::And(a, b) => self.holds_step(at, a) && self.holds_step(at, b),
            StepFormula::Or(a, b) => self.holds_step(at, a) || self.holds_step(at, b),
        }
    }

    /// Maximum branching factor (for the Lemma 4.4 bound checks).
    pub fn max_branching(&self) -> usize {
        (0..self.nodes.len())
            .map(|i| self.children(i).count())
            .max()
            .unwrap_or(0)
    }

    /// Depth of the tree.
    pub fn depth(&self) -> usize {
        let mut d = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for i in 1..self.nodes.len() {
            d[i] = d[self.nodes[i].1] + 1;
            max = max.max(d[i]);
        }
        max
    }
}

/// Decide whether some tree's root satisfies `f`.
///
/// Before the tableau runs, the formula's propositional **atom
/// abstraction** (see [`crate::satengine`]) is handed to the configured
/// SAT engine: an UNSAT abstraction decides `Unsat` outright (sound for
/// any formula, schema or not), and for unconstrained purely-label
/// formulas — the Cor. 4.5 SAT encodings — a model converts directly
/// into a witness tree, bypassing the exponential tableau entirely.
pub fn satisfiable(f: &Formula, opts: &SatOptions) -> SatResult {
    let step = StepFormula::from_formula(f).nnf();
    let default_depth = child_nesting(&step);
    let mut max_depth = opts.max_depth.unwrap_or(default_depth);
    if let Some(schema) = &opts.schema {
        max_depth = max_depth.min(schema.depth() as usize);
    }
    match sat_fast_path(&step, opts, max_depth) {
        FastPath::Decided(r) => {
            if let SatResult::Sat(t) = &r {
                debug_assert!(t.holds(0, f), "fast path produced a non-model for {f}");
            }
            return r;
        }
        FastPath::Inconclusive => {}
    }
    let budget = opts.max_branches.unwrap_or(1 << 22);
    let mut searcher = Searcher {
        schema: opts.schema.clone(),
        max_depth,
        branches: 0,
        budget,
    };
    let mut state = Tableau::root(opts.schema.as_deref());
    state.push(0, step);
    match searcher.solve(state) {
        Some(t) => {
            let tree = t.into_witness();
            debug_assert!(tree.holds(0, f), "tableau produced a non-model for {f}");
            SatResult::Sat(tree)
        }
        None => {
            if searcher.branches >= searcher.budget {
                SatResult::BudgetExhausted
            } else {
                SatResult::Unsat
            }
        }
    }
}

/// Outcome of the SAT-engine consultation.
enum FastPath {
    Decided(SatResult),
    Inconclusive,
}

/// Consult the configured [`idar_logic::SatEngine`] on the propositional
/// atom abstraction of `step`.
fn sat_fast_path(step: &StepFormula, opts: &SatOptions, max_depth: usize) -> FastPath {
    // An explicit branch budget is a promise of bounded work with a
    // `BudgetExhausted` escape; the SAT engines have no such budget, so
    // honour the cap by staying on the tableau.
    if opts.max_branches.is_some() {
        return FastPath::Inconclusive;
    }
    let abs = crate::satengine::Abstraction::of(step);
    let Some(outcome) = crate::satengine::solve_abstraction(&abs, opts.engine) else {
        return FastPath::Inconclusive; // engine not consultable (brute cap)
    };
    let Some(model) = outcome else {
        // No atom valuation at all satisfies φ, so no tree does.
        return FastPath::Decided(SatResult::Unsat);
    };
    // Exactness needs: bare-label atoms only (any label subset is
    // realisable as root children), no schema to respect, and room for
    // one level of children.
    if abs.labels_only && opts.schema.is_none() && max_depth >= 1 {
        let mut nodes = vec![(idar_core::ROOT_LABEL.to_string(), usize::MAX)];
        for (i, atom) in abs.atoms.iter().enumerate() {
            if model.get(idar_logic::Var(i as u32)) {
                if let StepFormula::Child(l) = atom {
                    nodes.push((l.clone(), 0));
                }
            }
        }
        return FastPath::Decided(SatResult::Sat(WitnessTree { nodes }));
    }
    FastPath::Inconclusive
}

/// Maximum nesting of child steps — a sufficient witness depth for
/// root-evaluated formulas (parent steps never descend).
fn child_nesting(f: &StepFormula) -> usize {
    match f {
        StepFormula::True | StepFormula::False | StepFormula::Child(_) | StepFormula::Parent => 1,
        StepFormula::ChildSat(_, g) => 1 + child_nesting(g),
        StepFormula::ParentSat(g) => child_nesting(g), // does not descend
        StepFormula::Not(g) => child_nesting(g),
        StepFormula::And(a, b) | StepFormula::Or(a, b) => child_nesting(a).max(child_nesting(b)),
    }
}

#[derive(Debug, Clone)]
struct TabNode {
    label: String,
    parent: usize, // usize::MAX for root
    depth: usize,
    schema_node: Option<SchemaNodeId>,
    /// Per-label constraints every child must satisfy: (label, pushed ψ).
    child_constraints: Vec<(String, StepFormula)>,
    /// Labels that must not occur among children.
    forbidden: HashSet<String>,
    /// Obligations already processed (dedup to guarantee termination).
    done: HashSet<StepFormula>,
}

#[derive(Debug, Clone)]
struct Tableau {
    nodes: Vec<TabNode>,
    /// Deterministic obligations (no choice involved).
    pending: VecDeque<(usize, StepFormula)>,
    /// Disjunctions, deferred until the deterministic queue drains — the
    /// tableau analogue of unit propagation: contradictions surface before
    /// we commit to a branch, pruning the search massively on CNF-shaped
    /// inputs (the Cor 4.5 SAT encodings).
    choices: VecDeque<(usize, StepFormula)>,
}

impl Tableau {
    fn root(schema: Option<&Schema>) -> Tableau {
        Tableau {
            nodes: vec![TabNode {
                label: idar_core::ROOT_LABEL.to_string(),
                parent: usize::MAX,
                depth: 0,
                schema_node: schema.map(|_| SchemaNodeId::ROOT),
                child_constraints: Vec::new(),
                forbidden: HashSet::new(),
                done: HashSet::new(),
            }],
            pending: VecDeque::new(),
            choices: VecDeque::new(),
        }
    }

    fn push(&mut self, node: usize, f: StepFormula) {
        if matches!(f, StepFormula::Or(..)) {
            self.choices.push_back((node, f));
        } else {
            self.pending.push_back((node, f));
        }
    }

    fn pop(&mut self) -> Option<(usize, StepFormula)> {
        self.pending
            .pop_front()
            .or_else(|| self.choices.pop_front())
    }

    fn children_of(&self, node: usize) -> Vec<usize> {
        (1..self.nodes.len())
            .filter(|&i| self.nodes[i].parent == node)
            .collect()
    }

    /// Cheap monotone truth check: `true` only if `f` is *guaranteed* to
    /// hold in every extension of the current tableau (children are only
    /// ever added, never removed, so positive child facts are stable; the
    /// `done` set records obligations already enforced).
    fn surely_true(&self, node: usize, f: &StepFormula) -> bool {
        if self.nodes[node].done.contains(f) {
            return true;
        }
        match f {
            StepFormula::True => true,
            StepFormula::Child(l) => self
                .children_of(node)
                .iter()
                .any(|&c| self.nodes[c].label == *l),
            StepFormula::Not(inner) => match &**inner {
                StepFormula::Child(l) => self.nodes[node].forbidden.contains(l),
                StepFormula::ChildSat(l, _) => self.nodes[node].forbidden.contains(l),
                StepFormula::False => true,
                _ => false,
            },
            _ => false,
        }
    }

    /// Cheap certain-failure check (the dual).
    fn surely_false(&self, node: usize, f: &StepFormula) -> bool {
        match f {
            StepFormula::False => true,
            StepFormula::Child(l) | StepFormula::ChildSat(l, _) => {
                self.nodes[node].forbidden.contains(l)
            }
            StepFormula::Not(inner) => match &**inner {
                StepFormula::Child(l) => self
                    .children_of(node)
                    .iter()
                    .any(|&c| self.nodes[c].label == *l),
                StepFormula::True => true,
                _ => false,
            },
            _ => false,
        }
    }

    fn into_witness(self) -> WitnessTree {
        WitnessTree {
            nodes: self
                .nodes
                .into_iter()
                .map(|n| (n.label, n.parent))
                .collect(),
        }
    }
}

struct Searcher {
    schema: Option<Arc<Schema>>,
    max_depth: usize,
    branches: usize,
    budget: usize,
}

impl Searcher {
    /// Process pending obligations to a fixpoint; `None` on contradiction.
    fn solve(&mut self, mut state: Tableau) -> Option<Tableau> {
        while let Some((node, f)) = state.pop() {
            if !state.nodes[node].done.insert(f.clone()) {
                continue; // already handled at this node
            }
            match f {
                StepFormula::True => {}
                StepFormula::False => return None,
                StepFormula::And(a, b) => {
                    state.push(node, *a);
                    state.push(node, *b);
                }
                StepFormula::Or(a, b) => {
                    // Propagation-style shortcuts before committing to a
                    // branch: a surely-true disjunct discharges the
                    // obligation, a surely-false one forces the other side.
                    if state.surely_true(node, &a) || state.surely_true(node, &b) {
                        continue;
                    }
                    if state.surely_false(node, &a) {
                        state.push(node, *b);
                        continue;
                    }
                    if state.surely_false(node, &b) {
                        state.push(node, *a);
                        continue;
                    }
                    self.branches += 1;
                    if self.branches >= self.budget {
                        return None;
                    }
                    // Try the left disjunct on a cloned tableau.
                    let mut left = state.clone();
                    left.push(node, *a);
                    if let Some(sol) = self.solve(left) {
                        return Some(sol);
                    }
                    state.push(node, *b);
                }
                StepFormula::Child(l) => {
                    state.push(node, StepFormula::ChildSat(l, Box::new(StepFormula::True)));
                }
                StepFormula::ChildSat(l, psi) => {
                    if state.nodes[node].forbidden.contains(&l) {
                        return None;
                    }
                    let c = self.create_child(&mut state, node, &l)?;
                    state.push(c, *psi);
                    // Existing per-label constraints apply to the new child.
                    let constraints: Vec<StepFormula> = state.nodes[node]
                        .child_constraints
                        .iter()
                        .filter(|(cl, _)| *cl == l)
                        .map(|(_, g)| g.clone())
                        .collect();
                    for g in constraints {
                        state.push(c, g);
                    }
                }
                StepFormula::Parent => {
                    if node == 0 {
                        return None; // the root has no parent
                    }
                }
                StepFormula::ParentSat(psi) => {
                    if node == 0 {
                        return None;
                    }
                    let p = state.nodes[node].parent;
                    state.push(p, *psi);
                }
                StepFormula::Not(inner) => match *inner {
                    StepFormula::Child(l) => {
                        // No l-child may exist, now or later.
                        if state
                            .children_of(node)
                            .iter()
                            .any(|&c| state.nodes[c].label == l)
                        {
                            return None;
                        }
                        state.nodes[node].forbidden.insert(l);
                    }
                    StepFormula::ChildSat(l, xi) => {
                        let neg = StepFormula::Not(Box::new(*xi)).nnf();
                        for c in state.children_of(node) {
                            if state.nodes[c].label == l {
                                state.push(c, neg.clone());
                            }
                        }
                        state.nodes[node].child_constraints.push((l, neg));
                    }
                    StepFormula::Parent => {
                        if node != 0 {
                            return None; // non-root nodes do have parents
                        }
                    }
                    StepFormula::ParentSat(psi) => {
                        if node != 0 {
                            let p = state.nodes[node].parent;
                            let neg = StepFormula::Not(psi).nnf();
                            state.push(p, neg);
                        }
                        // At the root: vacuously true.
                    }
                    StepFormula::True => return None,
                    StepFormula::False => {}
                    other => {
                        // nnf leaves Not only on atoms; be defensive.
                        state.push(node, StepFormula::Not(Box::new(other)).nnf());
                    }
                },
            }
        }
        Some(state)
    }

    fn create_child(&self, state: &mut Tableau, node: usize, label: &str) -> Option<usize> {
        let depth = state.nodes[node].depth;
        if depth >= self.max_depth {
            return None;
        }
        let schema_node = match (&self.schema, state.nodes[node].schema_node) {
            (Some(schema), Some(sn)) => Some(schema.child_by_label(sn, label)?),
            _ => None,
        };
        let c = state.nodes.len();
        state.nodes.push(TabNode {
            label: label.to_string(),
            parent: node,
            depth: depth + 1,
            schema_node,
            child_constraints: Vec::new(),
            forbidden: HashSet::new(),
            done: HashSet::new(),
        });
        Some(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sat(s: &str) -> SatResult {
        satisfiable(&Formula::parse(s).unwrap(), &SatOptions::default())
    }

    #[test]
    fn propositional_cases() {
        // Cor. 4.5's NP-hardness direction: propositional formulas over
        // labels. (x1 ∨ x2) ∧ ¬x3 ↦ (a ∨ b) ∧ ¬c.
        assert!(sat("(a | b) & !c").is_sat());
        assert_eq!(sat("a & !a"), SatResult::Unsat);
        assert!(sat("a & b & c").is_sat());
        assert_eq!(sat("(a | b) & !a & !b"), SatResult::Unsat);
        assert_eq!(sat("false"), SatResult::Unsat);
        assert!(sat("true").is_sat());
    }

    #[test]
    fn nested_paths() {
        assert!(sat("a/b/c").is_sat());
        assert!(sat("a[b & c] & !a[d]").is_sat());
        assert_eq!(sat("a[b] & !a"), SatResult::Unsat);
        assert_eq!(sat("a/b & !a[b]"), SatResult::Unsat);
    }

    #[test]
    fn negated_filters_need_separate_children() {
        // Needs one a-child with b and one without.
        let r = sat("a[b] & a[!b]");
        let SatResult::Sat(t) = r else {
            panic!("expected sat")
        };
        assert!(t.holds(0, &Formula::parse("a[b] & a[!b]").unwrap()));
    }

    #[test]
    fn contradictory_universal() {
        // Every a-child must and must not have b, and an a-child exists.
        assert_eq!(sat("a & !a[b] & !a[!b]"), SatResult::Unsat);
        // Without an a-child, both universals hold vacuously.
        assert!(sat("!a[b] & !a[!b]").is_sat());
    }

    #[test]
    fn parent_references() {
        // A child whose parent must carry `s`: sat (the root gets s).
        assert!(sat("a[../s]").is_sat());
        // …but contradicts a root-level ¬s.
        assert_eq!(sat("a[../s] & !s"), SatResult::Unsat);
        // `..` at the root is unsatisfiable (evaluation starts at a root).
        assert_eq!(sat(".."), SatResult::Unsat);
        assert!(sat("!..").is_sat());
        // Upward reference from two levels down.
        assert!(sat("a/b[../../x]").is_sat());
        assert_eq!(sat("a/b[../../x] & !x"), SatResult::Unsat);
    }

    #[test]
    fn upward_downward_cycle() {
        // Child requires parent to have a `c`-child satisfying d; that `c`
        // child requires the parent to have an `a` child. Consistent.
        assert!(sat("a[..[c[d & ../a]]]").is_sat());
        // Inconsistent variant.
        assert_eq!(sat("a[..[c[d]]] & !c"), SatResult::Unsat);
    }

    #[test]
    fn schema_constrained() {
        let schema = Arc::new(Schema::parse("a(b), s").unwrap());
        let opts = SatOptions {
            schema: Some(schema),
            ..Default::default()
        };
        // `a/b` fits the schema.
        assert!(satisfiable(&Formula::parse("a/b").unwrap(), &opts).is_sat());
        // `a/c` does not (no such schema edge).
        assert_eq!(
            satisfiable(&Formula::parse("a/c").unwrap(), &opts),
            SatResult::Unsat
        );
        // Depth beyond the schema's is unsatisfiable.
        assert_eq!(
            satisfiable(&Formula::parse("a/b/c").unwrap(), &opts),
            SatResult::Unsat
        );
    }

    #[test]
    fn depth_bound_respected() {
        let opts = SatOptions {
            max_depth: Some(1),
            ..Default::default()
        };
        assert_eq!(
            satisfiable(&Formula::parse("a/b").unwrap(), &opts),
            SatResult::Unsat
        );
        assert!(satisfiable(&Formula::parse("a & b").unwrap(), &opts).is_sat());
    }

    #[test]
    fn witness_is_verified_model() {
        for s in [
            "a[b[c] & !d] & (x | y) & !z",
            "a[../b[../c]] | q",
            "!a[!b[!c]] & a",
        ] {
            let f = Formula::parse(s).unwrap();
            if let SatResult::Sat(t) = satisfiable(&f, &SatOptions::default()) {
                assert!(t.holds(0, &f), "witness fails {s}");
                assert!(t.depth() <= f.size());
            }
        }
    }

    #[test]
    fn unknown_on_budget() {
        // Branch budget of 1 forces an early bail-out on a disjunctive
        // formula needing the right branch. An explicit budget also
        // disables the propositional fast path (bounded-work contract),
        // so the purely propositional variant bails out the same way.
        let opts = SatOptions {
            max_branches: Some(1),
            ..Default::default()
        };
        for s in ["(a[c] & !a[c]) | b[d]", "(a & !a) | b"] {
            let f = Formula::parse(s).unwrap();
            assert_eq!(satisfiable(&f, &opts), SatResult::BudgetExhausted, "{s}");
        }
    }

    #[test]
    fn fast_path_agrees_with_tableau_across_engines() {
        // Purely propositional formulas are decided by the SAT engine;
        // forcing a deep-enough formula through both paths must agree.
        for s in ["(a | b) & !c", "a & !a", "(a | b) & (!a | c) & !b"] {
            let f = Formula::parse(s).unwrap();
            let mut verdicts = Vec::new();
            for engine in [idar_logic::Engine::Cdcl, idar_logic::Engine::Dpll] {
                let opts = SatOptions {
                    engine,
                    ..Default::default()
                };
                let r = satisfiable(&f, &opts);
                if let SatResult::Sat(t) = &r {
                    assert!(t.holds(0, &f), "{engine} witness fails {s}");
                }
                verdicts.push(r.is_sat());
            }
            assert_eq!(verdicts[0], verdicts[1], "{s}");
        }
    }
}
