//! # idar-deadlock
//!
//! The **reachable deadlock** problem, exactly as defined in the proof of
//! Theorem 4.6:
//!
//! > The input consists of a list of graphs `G₁ = (V₁,E₁), …, Gₖ =
//! > (Vₖ,Eₖ)` with disjoint sets of vertices, a sequence of vertices
//! > `v₁, …, vₖ` with `vᵢ ∈ Vᵢ`, and a set `T` of pairs of edges
//! > `(eᵢ, eⱼ)` with `eᵢ` and `eⱼ` in different graphs. A configuration is
//! > any set `a₁, …, aₖ` with `aᵢ ∈ Vᵢ`. There is a transition … if there
//! > exist two indices `i < j` such that … `((aᵢ,aⱼ),(bᵢ,bⱼ)) ∈ T`. The
//! > reachable deadlock problem: does there exist a configuration
//! > reachable from `v₁, …, vₖ` that does not have a successor?
//!
//! This PSPACE-complete problem is the source of the paper's depth-1
//! completability hardness; the explicit-state checker here is the
//! baseline the reduction is validated against. A dining-philosophers
//! generator provides scalable benchmark families.

#![forbid(unsafe_code)]

use std::collections::{HashSet, VecDeque};
use std::fmt;

/// A vertex, globally numbered across all component graphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Vertex(pub u32);

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A synchronised transition: components `i` and `j` move along edges
/// `(aᵢ → bᵢ)` and `(aⱼ → bⱼ)` simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyncPair {
    pub i: usize,
    pub j: usize,
    pub from_i: Vertex,
    pub to_i: Vertex,
    pub from_j: Vertex,
    pub to_j: Vertex,
}

/// A reachable-deadlock instance.
#[derive(Debug, Clone)]
pub struct DeadlockInstance {
    /// `component_of[v]` = which graph vertex `v` belongs to.
    pub component_of: Vec<usize>,
    /// Number of component graphs `k`.
    pub components: usize,
    /// Start vertex per component.
    pub start: Vec<Vertex>,
    /// The synchronised transition pairs `T`.
    pub pairs: Vec<SyncPair>,
}

/// A configuration: one vertex per component.
pub type Configuration = Vec<Vertex>;

/// Errors raised by instance validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadlockError {
    /// A pair references the same component twice (`eᵢ` and `eⱼ` must be
    /// in different graphs).
    SameComponent(usize),
    /// A vertex is used in the wrong component.
    WrongComponent { vertex: Vertex, expected: usize },
    /// Component/start-vector shape mismatch.
    Malformed(String),
}

impl fmt::Display for DeadlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeadlockError::SameComponent(i) => {
                write!(f, "sync pair stays within component {i}")
            }
            DeadlockError::WrongComponent { vertex, expected } => {
                write!(f, "{vertex} is not in component {expected}")
            }
            DeadlockError::Malformed(m) => write!(f, "malformed instance: {m}"),
        }
    }
}

impl std::error::Error for DeadlockError {}

/// The answer of the explicit-state checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockAnswer {
    /// A reachable deadlock configuration, if one exists.
    pub deadlock: Option<Configuration>,
    /// Number of configurations explored.
    pub explored: usize,
}

impl DeadlockInstance {
    /// Validate the shape constraints from the problem definition.
    pub fn validate(&self) -> Result<(), DeadlockError> {
        if self.start.len() != self.components {
            return Err(DeadlockError::Malformed(format!(
                "{} start vertices for {} components",
                self.start.len(),
                self.components
            )));
        }
        for (i, v) in self.start.iter().enumerate() {
            if self.component_of.get(v.0 as usize) != Some(&i) {
                return Err(DeadlockError::WrongComponent {
                    vertex: *v,
                    expected: i,
                });
            }
        }
        for p in &self.pairs {
            if p.i == p.j {
                return Err(DeadlockError::SameComponent(p.i));
            }
            if p.i >= self.components || p.j >= self.components {
                return Err(DeadlockError::Malformed("component index".into()));
            }
            for (v, c) in [
                (p.from_i, p.i),
                (p.to_i, p.i),
                (p.from_j, p.j),
                (p.to_j, p.j),
            ] {
                if self.component_of.get(v.0 as usize) != Some(&c) {
                    return Err(DeadlockError::WrongComponent {
                        vertex: v,
                        expected: c,
                    });
                }
            }
        }
        Ok(())
    }

    /// Total number of vertices (across all components).
    pub fn vertex_count(&self) -> usize {
        self.component_of.len()
    }

    /// Successor configurations of `c`.
    pub fn successors(&self, c: &Configuration) -> Vec<Configuration> {
        let mut out = Vec::new();
        for p in &self.pairs {
            if c[p.i] == p.from_i && c[p.j] == p.from_j {
                let mut next = c.clone();
                next[p.i] = p.to_i;
                next[p.j] = p.to_j;
                out.push(next);
            }
        }
        out
    }

    /// Is `c` a deadlock (no successor)?
    pub fn is_deadlock(&self, c: &Configuration) -> bool {
        self.pairs
            .iter()
            .all(|p| !(c[p.i] == p.from_i && c[p.j] == p.from_j))
    }

    /// Explicit-state BFS for a reachable deadlock.
    pub fn find_reachable_deadlock(&self) -> DeadlockAnswer {
        let start: Configuration = self.start.clone();
        let mut seen: HashSet<Configuration> = HashSet::new();
        seen.insert(start.clone());
        let mut queue = VecDeque::new();
        queue.push_back(start);
        let mut explored = 0usize;
        while let Some(c) = queue.pop_front() {
            explored += 1;
            let succ = self.successors(&c);
            if succ.is_empty() {
                return DeadlockAnswer {
                    deadlock: Some(c),
                    explored,
                };
            }
            for s in succ {
                if seen.insert(s.clone()) {
                    queue.push_back(s);
                }
            }
        }
        DeadlockAnswer {
            deadlock: None,
            explored,
        }
    }
}

/// Builder for deadlock instances.
#[derive(Debug, Clone, Default)]
pub struct DeadlockBuilder {
    component_of: Vec<usize>,
    starts: Vec<Vertex>,
    pairs: Vec<SyncPair>,
}

impl DeadlockBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a component with `n` fresh vertices; returns their ids. The
    /// first vertex is the component's start unless overridden with
    /// [`DeadlockBuilder::start`].
    pub fn component(&mut self, n: usize) -> Vec<Vertex> {
        let comp = self.starts.len();
        let base = self.component_of.len() as u32;
        let vs: Vec<Vertex> = (0..n as u32).map(|i| Vertex(base + i)).collect();
        self.component_of.extend(std::iter::repeat_n(comp, n));
        self.starts.push(vs[0]);
        vs
    }

    /// Override a component's start vertex.
    pub fn start(&mut self, component: usize, v: Vertex) {
        self.starts[component] = v;
    }

    /// Add a synchronised pair.
    pub fn pair(
        &mut self,
        i: usize,
        from_i: Vertex,
        to_i: Vertex,
        j: usize,
        from_j: Vertex,
        to_j: Vertex,
    ) {
        self.pairs.push(SyncPair {
            i,
            j,
            from_i,
            to_i,
            from_j,
            to_j,
        });
    }

    pub fn build(self) -> Result<DeadlockInstance, DeadlockError> {
        let inst = DeadlockInstance {
            components: self.starts.len(),
            component_of: self.component_of,
            start: self.starts,
            pairs: self.pairs,
        };
        inst.validate()?;
        Ok(inst)
    }
}

/// Dining philosophers with `n ≥ 2` philosophers, as a reachable-deadlock
/// instance.
///
/// Component `2i` is philosopher `i` (states: thinking, holding-left,
/// eating, releasing); component `2i+1` is fork `i` (states: free, taken).
/// Picking up or putting down a fork synchronises a philosopher edge with
/// a fork edge; every component edge moves to a *different* vertex (the
/// Thm 4.6 reduction relies on `from ≠ to`). The classic left-then-right
/// protocol deadlocks when everyone holds their left fork.
#[allow(clippy::needless_range_loop)] // `i` is the philosopher index, used for left/right arithmetic
pub fn dining_philosophers(n: usize) -> DeadlockInstance {
    assert!(n >= 2);
    let mut b = DeadlockBuilder::new();
    let mut phil = Vec::new();
    let mut fork = Vec::new();
    for _ in 0..n {
        // 0 thinking, 1 holding-left, 2 eating, 3 releasing
        phil.push(b.component(4));
        fork.push(b.component(2)); // 0 free, 1 taken
    }
    let pc = |i: usize| 2 * i; // philosopher component index
    let fc = |i: usize| 2 * i + 1; // fork component index
    for i in 0..n {
        let left = i;
        let right = (i + 1) % n;
        // thinking → holding-left, with left fork free → taken.
        b.pair(
            pc(i),
            phil[i][0],
            phil[i][1],
            fc(left),
            fork[left][0],
            fork[left][1],
        );
        // holding-left → eating, with right fork free → taken.
        b.pair(
            pc(i),
            phil[i][1],
            phil[i][2],
            fc(right),
            fork[right][0],
            fork[right][1],
        );
        // eating → releasing, putting the left fork back.
        b.pair(
            pc(i),
            phil[i][2],
            phil[i][3],
            fc(left),
            fork[left][1],
            fork[left][0],
        );
        // releasing → thinking, putting the right fork back.
        b.pair(
            pc(i),
            phil[i][3],
            phil[i][0],
            fc(right),
            fork[right][1],
            fork[right][0],
        );
    }
    b.build().expect("dining philosophers is well-formed")
}

/// A trivially deadlock-free instance: two components ping-ponging.
pub fn ping_pong_free() -> DeadlockInstance {
    let mut b = DeadlockBuilder::new();
    let a = b.component(2);
    let c = b.component(2);
    b.pair(0, a[0], a[1], 1, c[0], c[1]);
    b.pair(0, a[1], a[0], 1, c[1], c[0]);
    b.build().expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_has_no_deadlock() {
        let inst = ping_pong_free();
        let ans = inst.find_reachable_deadlock();
        assert!(ans.deadlock.is_none());
        assert_eq!(ans.explored, 2);
    }

    #[test]
    fn immediate_deadlock() {
        // No pairs at all: the start configuration is a deadlock.
        let mut b = DeadlockBuilder::new();
        b.component(1);
        b.component(1);
        let inst = b.build().unwrap();
        let ans = inst.find_reachable_deadlock();
        assert_eq!(ans.deadlock, Some(inst.start.clone()));
    }

    #[test]
    fn philosophers_deadlock() {
        for n in 2..=4 {
            let inst = dining_philosophers(n);
            let ans = inst.find_reachable_deadlock();
            let dl = ans.deadlock.expect("left-then-right protocol deadlocks");
            // The deadlock: every philosopher holds their left fork.
            assert!(inst.is_deadlock(&dl));
            for i in 0..n {
                // philosopher component 2i, state index 1 (holding-left)
                let base = inst
                    .start
                    .iter()
                    .enumerate()
                    .find(|(c, _)| *c == 2 * i)
                    .map(|(_, v)| v.0)
                    .unwrap();
                assert_eq!(dl[2 * i].0, base + 1, "philosopher {i} holds left");
            }
        }
    }

    #[test]
    fn validation_rejects_same_component_pairs() {
        let mut b = DeadlockBuilder::new();
        let a = b.component(2);
        b.component(1);
        b.pair(0, a[0], a[1], 0, a[0], a[1]);
        assert_eq!(b.build().unwrap_err(), DeadlockError::SameComponent(0));
    }

    #[test]
    fn validation_rejects_cross_component_vertices() {
        let mut b = DeadlockBuilder::new();
        let a = b.component(2);
        let c = b.component(2);
        b.pair(0, a[0], c[0], 1, c[0], c[1]); // to_i is in component 1
        assert!(matches!(
            b.build(),
            Err(DeadlockError::WrongComponent { .. })
        ));
    }

    #[test]
    fn successor_semantics() {
        let inst = ping_pong_free();
        let succ = inst.successors(&inst.start);
        assert_eq!(succ.len(), 1);
        assert_eq!(inst.successors(&succ[0]).len(), 1);
        assert_eq!(inst.successors(&succ[0])[0], inst.start);
    }

    #[test]
    fn deadlock_detection_matches_successors() {
        let inst = dining_philosophers(3);
        let ans = inst.find_reachable_deadlock();
        let dl = ans.deadlock.unwrap();
        assert!(inst.successors(&dl).is_empty());
    }
}
