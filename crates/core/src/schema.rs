//! Form schemas (Def. 3.1): rooted node-labelled trees in which no two
//! siblings share a label and the root is labelled `r`.
//!
//! Schema **edges** are identified by their end node, exactly as the paper
//! identifies them "by the paths to their end nodes" (Ex. 3.12): every
//! non-root [`SchemaNodeId`] denotes both a node and the edge from its
//! parent.

use crate::error::{CoreError, Result};
use crate::ROOT_LABEL;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a schema node. Id `0` is always the root. Every non-root
/// id simultaneously identifies the schema *edge* ending in that node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SchemaNodeId(pub u32);

impl SchemaNodeId {
    /// The root node id.
    pub const ROOT: SchemaNodeId = SchemaNodeId(0);

    /// Index into the schema's node arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SchemaNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct SchemaNode {
    label: String,
    parent: Option<SchemaNodeId>,
    children: Vec<SchemaNodeId>,
    /// Label -> child id. Well-defined because sibling labels are unique.
    by_label: HashMap<String, SchemaNodeId>,
    /// Distance from the root (root = 0). A schema of "depth d" in the
    /// paper's sense has max node depth d.
    depth: u32,
}

/// A form schema: a rooted node-labelled tree with unique sibling labels
/// and root label `r` (Def. 3.1).
///
/// Immutable once built; construct via [`SchemaBuilder`] or [`Schema::parse`].
#[derive(Debug, Clone)]
pub struct Schema {
    nodes: Vec<SchemaNode>,
}

impl Schema {
    /// The number of nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The number of edges, i.e. non-root nodes.
    pub fn edge_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The depth of the schema: the maximum distance of any node from the
    /// root. A single-root schema has depth 0; the fragments of Sec. 3.5
    /// restrict this quantity (`d ∈ {1, k, ∞}`).
    pub fn depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// The label of a node.
    pub fn label(&self, id: SchemaNodeId) -> &str {
        &self.nodes[id.index()].label
    }

    /// The parent of a node (`None` for the root).
    pub fn parent(&self, id: SchemaNodeId) -> Option<SchemaNodeId> {
        self.nodes[id.index()].parent
    }

    /// The children of a node, in insertion order.
    pub fn children(&self, id: SchemaNodeId) -> &[SchemaNodeId] {
        &self.nodes[id.index()].children
    }

    /// Distance of `id` from the root.
    pub fn node_depth(&self, id: SchemaNodeId) -> u32 {
        self.nodes[id.index()].depth
    }

    /// Resolve a child of `parent` by label, if present.
    pub fn child_by_label(&self, parent: SchemaNodeId, label: &str) -> Option<SchemaNodeId> {
        self.nodes[parent.index()].by_label.get(label).copied()
    }

    /// All node ids in a stable order (root first, then in creation order,
    /// which is a topological order: parents precede children).
    pub fn node_ids(&self) -> impl Iterator<Item = SchemaNodeId> + '_ {
        (0..self.nodes.len() as u32).map(SchemaNodeId)
    }

    /// All edge ids (non-root nodes), parents before children.
    pub fn edge_ids(&self) -> impl Iterator<Item = SchemaNodeId> + '_ {
        (1..self.nodes.len() as u32).map(SchemaNodeId)
    }

    /// Resolve a `/`-separated label path from the root, e.g. `"a/p/b"`.
    /// The empty string resolves to the root.
    ///
    /// This is how Ex. 3.12 names schema edges (`A(add, a/p/b) = …`).
    pub fn resolve(&self, path: &str) -> Result<SchemaNodeId> {
        let mut cur = SchemaNodeId::ROOT;
        if path.is_empty() {
            return Ok(cur);
        }
        for step in path.split('/') {
            cur = self
                .child_by_label(cur, step)
                .ok_or_else(|| CoreError::NoSuchSchemaPath(path.to_string()))?;
        }
        Ok(cur)
    }

    /// The `/`-separated label path of a node from the root (empty for the
    /// root itself). Inverse of [`Schema::resolve`].
    pub fn path_of(&self, id: SchemaNodeId) -> String {
        let mut labels = Vec::new();
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            labels.push(self.label(cur));
            cur = p;
        }
        labels.reverse();
        labels.join("/")
    }

    /// Parse a schema from a compact text notation.
    ///
    /// The notation lists the root's children; each node is a label
    /// optionally followed by its children in parentheses:
    ///
    /// ```
    /// # use idar_core::Schema;
    /// let s = Schema::parse("a(n, d, p(b, e)), s, d(a, r(r)), f").unwrap();
    /// assert_eq!(s.depth(), 3);
    /// assert_eq!(s.resolve("a/p/b").is_ok(), true);
    /// ```
    pub fn parse(text: &str) -> Result<Schema> {
        let mut b = SchemaBuilder::new();
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        parse_children(bytes, &mut pos, SchemaNodeId::ROOT, &mut b)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(CoreError::Parse {
                pos,
                msg: "trailing input after schema".into(),
            });
        }
        Ok(b.build())
    }

    /// Render the schema in the compact [`Schema::parse`] notation
    /// (children in creation order). Inverse of `parse`:
    /// `Schema::parse(&s.to_text())` rebuilds an identical schema.
    pub fn to_text(&self) -> String {
        self.text_of(SchemaNodeId::ROOT)
    }

    fn text_of(&self, id: SchemaNodeId) -> String {
        let kids: Vec<String> = self
            .children(id)
            .iter()
            .map(|&c| {
                let sub = self.text_of(c);
                if sub.is_empty() {
                    self.label(c).to_string()
                } else {
                    format!("{}({})", self.label(c), sub)
                }
            })
            .collect();
        kids.join(", ")
    }

    /// Render the schema as an ASCII tree (root first), mirroring Fig. 1.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(SchemaNodeId::ROOT, "", true, &mut out);
        out
    }

    fn render_node(&self, id: SchemaNodeId, prefix: &str, last: bool, out: &mut String) {
        use std::fmt::Write;
        if id == SchemaNodeId::ROOT {
            let _ = writeln!(out, "{}", self.label(id));
        } else {
            let branch = if last { "`-- " } else { "|-- " };
            let _ = writeln!(out, "{prefix}{branch}{}", self.label(id));
        }
        let kids = self.children(id);
        for (i, &k) in kids.iter().enumerate() {
            let child_prefix = if id == SchemaNodeId::ROOT {
                String::new()
            } else {
                format!("{prefix}{}", if last { "    " } else { "|   " })
            };
            self.render_node(k, &child_prefix, i + 1 == kids.len(), out);
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_label(bytes: &[u8], pos: &mut usize) -> Result<String> {
    skip_ws(bytes, pos);
    let start = *pos;
    while *pos < bytes.len() && is_label_byte(bytes[*pos]) {
        *pos += 1;
    }
    if *pos == start {
        return Err(CoreError::Parse {
            pos: *pos,
            msg: "expected a label".into(),
        });
    }
    Ok(std::str::from_utf8(&bytes[start..*pos])
        .expect("label bytes are ASCII")
        .to_string())
}

pub(crate) fn is_label_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'\'' || b == b'-' || b == b'+'
}

fn parse_children(
    bytes: &[u8],
    pos: &mut usize,
    parent: SchemaNodeId,
    b: &mut SchemaBuilder,
) -> Result<()> {
    loop {
        let label = parse_label(bytes, pos)?;
        let id = b.child(parent, &label)?;
        skip_ws(bytes, pos);
        if *pos < bytes.len() && bytes[*pos] == b'(' {
            *pos += 1;
            parse_children(bytes, pos, id, b)?;
            skip_ws(bytes, pos);
            if *pos < bytes.len() && bytes[*pos] == b')' {
                *pos += 1;
            } else {
                return Err(CoreError::Parse {
                    pos: *pos,
                    msg: "expected `)`".into(),
                });
            }
            skip_ws(bytes, pos);
        }
        if *pos < bytes.len() && bytes[*pos] == b',' {
            *pos += 1;
            continue;
        }
        return Ok(());
    }
}

/// Incremental construction of a [`Schema`].
///
/// ```
/// # use idar_core::{SchemaBuilder, SchemaNodeId};
/// let mut b = SchemaBuilder::new();
/// let a = b.child(SchemaNodeId::ROOT, "a").unwrap();
/// let _n = b.child(a, "n").unwrap();
/// let schema = b.build();
/// assert_eq!(schema.depth(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    nodes: Vec<SchemaNode>,
}

impl SchemaBuilder {
    /// A builder holding just the root (labelled `r`).
    pub fn new() -> Self {
        SchemaBuilder {
            nodes: vec![SchemaNode {
                label: ROOT_LABEL.to_string(),
                parent: None,
                children: Vec::new(),
                by_label: HashMap::new(),
                depth: 0,
            }],
        }
    }

    /// Add a child labelled `label` under `parent`.
    ///
    /// Fails if the parent already has a child with this label (Def. 3.1)
    /// or the label is lexically invalid. The label `r` *is* allowed on
    /// non-root nodes — the paper's own Fig. 1 uses `r` (reject) twice.
    pub fn child(&mut self, parent: SchemaNodeId, label: &str) -> Result<SchemaNodeId> {
        if parent.index() >= self.nodes.len() {
            return Err(CoreError::NoSuchSchemaNode);
        }
        if label.is_empty() || !label.bytes().all(is_label_byte) {
            return Err(CoreError::InvalidLabel(label.to_string()));
        }
        if self.nodes[parent.index()].by_label.contains_key(label) {
            return Err(CoreError::DuplicateSiblingLabel {
                parent: self.nodes[parent.index()].label.clone(),
                label: label.to_string(),
            });
        }
        let id = SchemaNodeId(self.nodes.len() as u32);
        let depth = self.nodes[parent.index()].depth + 1;
        self.nodes.push(SchemaNode {
            label: label.to_string(),
            parent: Some(parent),
            children: Vec::new(),
            by_label: HashMap::new(),
            depth,
        });
        let p = &mut self.nodes[parent.index()];
        p.children.push(id);
        p.by_label.insert(label.to_string(), id);
        Ok(id)
    }

    /// Add a whole `/`-separated path below the root, creating missing
    /// intermediate nodes, and return the final node. Existing prefixes are
    /// reused, so `path("a/p/b")` then `path("a/p/e")` shares `a/p`.
    pub fn path(&mut self, path: &str) -> Result<SchemaNodeId> {
        let mut cur = SchemaNodeId::ROOT;
        for step in path.split('/') {
            cur = match self.nodes[cur.index()].by_label.get(step) {
                Some(&id) => id,
                None => self.child(cur, step)?,
            };
        }
        Ok(cur)
    }

    /// Finish building.
    pub fn build(self) -> Schema {
        Schema { nodes: self.nodes }
    }
}

impl Default for SchemaBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_is_labelled_r() {
        let s = SchemaBuilder::new().build();
        assert_eq!(s.label(SchemaNodeId::ROOT), "r");
        assert_eq!(s.depth(), 0);
        assert_eq!(s.node_count(), 1);
        assert_eq!(s.edge_count(), 0);
    }

    #[test]
    fn duplicate_sibling_rejected() {
        let mut b = SchemaBuilder::new();
        b.child(SchemaNodeId::ROOT, "a").unwrap();
        let err = b.child(SchemaNodeId::ROOT, "a").unwrap_err();
        assert!(matches!(err, CoreError::DuplicateSiblingLabel { .. }));
    }

    #[test]
    fn same_label_at_different_levels_allowed() {
        // Fig. 1 uses the label `r` for `d/r` and `d/r/r`.
        let s = Schema::parse("d(a, r(r))").unwrap();
        assert_eq!(s.resolve("d/r/r").map(|i| s.node_depth(i)), Ok(3));
    }

    #[test]
    fn parse_leave_schema() {
        let s = Schema::parse("a(n, d, p(b, e)), s, d(a, r(r)), f").unwrap();
        assert_eq!(s.depth(), 3);
        assert_eq!(s.node_count(), 13);
        let p = s.resolve("a/p").unwrap();
        assert_eq!(s.label(p), "p");
        assert_eq!(s.path_of(p), "a/p");
        assert_eq!(s.children(p).len(), 2);
        assert!(s.resolve("a/x").is_err());
    }

    #[test]
    fn resolve_empty_is_root() {
        let s = Schema::parse("a").unwrap();
        assert_eq!(s.resolve("").unwrap(), SchemaNodeId::ROOT);
        assert_eq!(s.path_of(SchemaNodeId::ROOT), "");
    }

    #[test]
    fn builder_path_dedups_prefixes() {
        let mut b = SchemaBuilder::new();
        let b1 = b.path("a/p/b").unwrap();
        let e1 = b.path("a/p/e").unwrap();
        let s = b.build();
        assert_ne!(b1, e1);
        assert_eq!(s.node_count(), 5); // r, a, p, b, e
        assert_eq!(s.parent(b1), s.parent(e1));
    }

    #[test]
    fn depth_and_order() {
        let s = Schema::parse("a(b(c(d)))").unwrap();
        assert_eq!(s.depth(), 4);
        // creation order is topological
        let ids: Vec<_> = s.node_ids().collect();
        for &id in &ids {
            if let Some(p) = s.parent(id) {
                assert!(p < id);
            }
        }
    }

    #[test]
    fn invalid_labels_rejected() {
        let mut b = SchemaBuilder::new();
        assert!(b.child(SchemaNodeId::ROOT, "").is_err());
        assert!(b.child(SchemaNodeId::ROOT, "a b").is_err());
        assert!(b.child(SchemaNodeId::ROOT, "ok_label'2").is_ok());
    }

    #[test]
    fn render_contains_all_labels() {
        let s = Schema::parse("a(n, p(b, e)), s").unwrap();
        let r = s.render();
        for l in ["a", "n", "p", "b", "e", "s"] {
            assert!(r.contains(l), "missing {l} in\n{r}");
        }
    }

    #[test]
    fn parse_errors() {
        assert!(Schema::parse("a(").is_err());
        assert!(Schema::parse("a)").is_err());
        assert!(Schema::parse("a,,b").is_err());
        assert!(Schema::parse("a, a").is_err());
    }
}
