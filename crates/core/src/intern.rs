//! Interned isomorphism codes: integer-compare state deduplication.
//!
//! The explicit-state explorers deduplicate instances *up to isomorphism*.
//! The original representation of an isomorphism class was the
//! [`Instance::iso_code`] string — an AHU-style canonical rendering — which
//! makes every dedup a string hash plus a string compare, and every new
//! state a fresh heap string. At production scale (10⁵–10⁷ states per
//! search) the code strings dominate both the allocation profile and the
//! hash-map probe cost.
//!
//! This module replaces strings with a three-level scheme:
//!
//! 1. [`CanonKey`] — a compact canonical encoding of the instance as a
//!    `u32` word sequence (schema-node ids plus tree delimiters, children
//!    sorted), with a 64-bit FNV-1a fingerprint over the words. Building
//!    it never allocates label strings and never formats.
//! 2. An intern table ([`Interner`]) keyed by the fingerprint. Lookups
//!    compare the fingerprint first and fall back to a word-slice
//!    `memcmp` only within a fingerprint bucket — so a true 64-bit
//!    collision is *detected*, never silently merged.
//! 3. [`IsoCode`] — the dense `u32` id the table assigns to each distinct
//!    class. After interning, state dedup is a single integer compare, and
//!    `IsoCode` indexes straight into flat side tables (no re-hashing).
//!
//! The solver's explicit-state engines build the same scheme into their
//! state stores directly (`idar-solver`'s `StateStore` sequentially, and
//! its fingerprint-sharded `ShardedStateStore` for the pooled parallel
//! engine — which retired the `SharedInterner` that used to live here:
//! the sharded store dedups, stores, and records provenance in one lock
//! acquisition, so a separate concurrent code-assignment table had no
//! caller left).
//!
//! # Canonical encoding
//!
//! A node's encoding is `[schema_node, OPEN, …sorted child encodings…,
//! CLOSE]`; the root contributes only its sorted children (the root label
//! is fixed, Def. 3.1). Sibling encodings are sorted lexicographically as
//! word slices. Since sibling labels are unique in a schema, sorting by
//! schema-node id agrees with the label sort that [`Instance::iso_code`]
//! performs, and two instances of the same schema are isomorphic iff their
//! encodings are equal:
//!
//! ```
//! use idar_core::{Instance, Schema};
//! use std::sync::Arc;
//!
//! let schema = Arc::new(Schema::parse("a(p(b, e)), s").unwrap());
//! let i1 = Instance::parse(schema.clone(), "a(p(b), p(e)), s").unwrap();
//! let i2 = Instance::parse(schema.clone(), "s, a(p(e), p(b))").unwrap();
//! let i3 = Instance::parse(schema, "a(p(b), p(b)), s").unwrap();
//! assert_eq!(i1.canon_key(), i2.canon_key()); // isomorphic
//! assert_ne!(i1.canon_key(), i3.canon_key()); // multiplicity differs
//! ```

use crate::instance::{InstNodeId, Instance};
use std::collections::HashMap;

/// Tree-shape delimiters in the canonical word encoding. Schema node ids
/// are `u32` indices far below these sentinels.
const OPEN: u32 = u32::MAX;
const CLOSE: u32 = u32::MAX - 1;

/// A dense identifier for an isomorphism class of instances, assigned by
/// an intern table. Equal ids ⇔ isomorphic instances (same table).
///
/// Ids are assigned contiguously from 0, so they can index flat `Vec`
/// side tables (`code.index()`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IsoCode(pub u32);

impl IsoCode {
    /// This code as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The canonical encoding of an instance: a word sequence plus its 64-bit
/// fingerprint. See the module docs for the encoding scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonKey {
    hash: u64,
    words: Box<[u32]>,
}

impl CanonKey {
    /// The 64-bit FNV-1a fingerprint of the encoding.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.hash
    }

    /// The canonical word sequence (exposed for tests and diagnostics).
    #[inline]
    pub fn words(&self) -> &[u32] {
        &self.words
    }

    /// Decompose into `(fingerprint, owned words)` — lets stores take the
    /// encoding without re-allocating it.
    #[inline]
    pub fn into_parts(self) -> (u64, Box<[u32]>) {
        (self.hash, self.words)
    }
}

fn fnv1a(words: &[u32]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &w in words {
        h ^= u64::from(w);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Recursively encode the subtree under `node`, appending to `out`.
///
/// Children are encoded into scratch buffers, sorted as word slices, then
/// concatenated — the sort is what quotients away sibling order.
fn encode_children(inst: &Instance, node: InstNodeId, out: &mut Vec<u32>) {
    let children = inst.children(node);
    match children.len() {
        0 => {}
        1 => encode_node(inst, children[0], out),
        _ => {
            let mut encs: Vec<Vec<u32>> = children
                .iter()
                .map(|&c| {
                    let mut e = Vec::new();
                    encode_node(inst, c, &mut e);
                    e
                })
                .collect();
            encs.sort_unstable();
            for e in encs {
                out.extend_from_slice(&e);
            }
        }
    }
}

pub(crate) fn encode_node(inst: &Instance, node: InstNodeId, out: &mut Vec<u32>) {
    out.push(inst.schema_node(node).index() as u32);
    if !inst.is_leaf(node) {
        out.push(OPEN);
        encode_children(inst, node, out);
        out.push(CLOSE);
    }
}

/// Like [`encode_node`] but preserving child order (no sibling sort):
/// the *ordered-tree* encoding, which distinguishes sibling permutations.
fn encode_node_ordered(inst: &Instance, node: InstNodeId, out: &mut Vec<u32>) {
    out.push(inst.schema_node(node).index() as u32);
    if !inst.is_leaf(node) {
        out.push(OPEN);
        for &c in inst.children(node) {
            encode_node_ordered(inst, c, out);
        }
        out.push(CLOSE);
    }
}

impl Instance {
    /// Compute this instance's canonical key (fingerprint + word
    /// encoding). Two instances of the same schema are isomorphic iff
    /// their keys are equal; the empty instance has an empty encoding.
    pub fn canon_key(&self) -> CanonKey {
        let mut words = Vec::with_capacity(2 * self.live_count());
        encode_children(self, InstNodeId::ROOT, &mut words);
        let hash = fnv1a(&words);
        CanonKey {
            hash,
            words: words.into_boxed_slice(),
        }
    }

    /// The *ordered-tree* key: like [`Instance::canon_key`] but children
    /// are encoded in child order, so sibling permutations produce
    /// distinct keys. This is the "no symmetry reduction" identity the
    /// solver's plain exploration mode dedups on — two instances share an
    /// ordered key iff they are equal as ordered labelled trees.
    pub fn ordered_key(&self) -> CanonKey {
        let mut words = Vec::with_capacity(2 * self.live_count());
        for &c in self.children(InstNodeId::ROOT) {
            encode_node_ordered(self, c, &mut words);
        }
        let hash = fnv1a(&words);
        CanonKey {
            hash,
            words: words.into_boxed_slice(),
        }
    }
}

/// One fingerprint bucket: the (rarely >1) distinct encodings sharing a
/// 64-bit fingerprint, each with its assigned dense code.
type Bucket = Vec<(Box<[u32]>, IsoCode)>;

fn bucket_intern(
    bucket: &mut Bucket,
    key: CanonKey,
    next: impl FnOnce() -> u32,
) -> (IsoCode, bool) {
    for (words, code) in bucket.iter() {
        if **words == *key.words {
            return (*code, false);
        }
    }
    let code = IsoCode(next());
    bucket.push((key.words, code));
    (code, true)
}

/// A single-threaded intern table mapping canonical keys to dense
/// [`IsoCode`]s.
///
/// ```
/// use idar_core::{Instance, Interner, Schema};
/// use std::sync::Arc;
///
/// let schema = Arc::new(Schema::parse("a(b), c").unwrap());
/// let mut interner = Interner::new();
/// let i1 = Instance::parse(schema.clone(), "a(b), c").unwrap();
/// let i2 = Instance::parse(schema.clone(), "c, a(b)").unwrap();
/// let i3 = Instance::parse(schema, "a, c").unwrap();
///
/// let (c1, new1) = interner.intern(i1.canon_key());
/// let (c2, new2) = interner.intern(i2.canon_key());
/// let (c3, _) = interner.intern(i3.canon_key());
/// assert!(new1 && !new2);
/// assert_eq!(c1, c2);      // dedup is an integer compare
/// assert_ne!(c1, c3);
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct Interner {
    buckets: HashMap<u64, Bucket>,
    count: u32,
    collisions: u64,
}

impl Interner {
    /// An empty table.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Intern a key: returns its dense code and whether it was new.
    pub fn intern(&mut self, key: CanonKey) -> (IsoCode, bool) {
        let bucket = self.buckets.entry(key.hash).or_default();
        if !bucket.is_empty() {
            // A fingerprint hit that is not a word-for-word match is a
            // genuine 64-bit collision; count it (it is collision-*checked*,
            // not collision-blind).
            if bucket.iter().all(|(w, _)| **w != *key.words) {
                self.collisions += 1;
            }
        }
        let count = &mut self.count;
        bucket_intern(bucket, key, || {
            let c = *count;
            *count += 1;
            c
        })
    }

    /// Number of distinct classes interned so far.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Number of 64-bit fingerprint collisions detected (distinct
    /// encodings sharing a fingerprint). Expected to stay 0 in practice.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;
    use std::sync::Arc;

    fn leave_schema() -> Arc<Schema> {
        Arc::new(Schema::parse("a(n, d, p(b, e)), s, d(a, r(r)), f").unwrap())
    }

    /// canon_key equality must coincide with iso_code equality on a spread
    /// of instances (same equivalence relation, different representation).
    #[test]
    fn canon_key_matches_iso_code_equivalence() {
        let s = leave_schema();
        let texts = [
            "",
            "a",
            "a(n)",
            "a(n, p(b))",
            "a(p(b), p(e)), s",
            "a(p(e), p(b)), s",
            "a(p(b, e), p(b, e)), s",
            "a(p(b, e)), s",
            "s, a(p(b), p(e))",
            "d(a), f",
            "d(r), f",
        ];
        let insts: Vec<Instance> = texts
            .iter()
            .map(|t| Instance::parse(s.clone(), t).unwrap())
            .collect();
        for (i, a) in insts.iter().enumerate() {
            for (j, b) in insts.iter().enumerate() {
                assert_eq!(
                    a.canon_key() == b.canon_key(),
                    a.iso_code() == b.iso_code(),
                    "canon_key disagrees with iso_code on {:?} vs {:?}",
                    texts[i],
                    texts[j],
                );
            }
        }
    }

    #[test]
    fn interner_assigns_dense_ids() {
        let s = leave_schema();
        let mut int = Interner::new();
        let mut codes = Vec::new();
        for t in ["", "a", "a(n)", "a", "s"] {
            let i = Instance::parse(s.clone(), t).unwrap();
            codes.push(int.intern(i.canon_key()).0);
        }
        assert_eq!(codes[1], codes[3]); // "a" twice
        assert_eq!(int.len(), 4);
        let mut distinct: Vec<u32> = codes.iter().map(|c| c.0).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct, vec![0, 1, 2, 3]);
        assert_eq!(int.collisions(), 0);
    }
}
