//! Guarded forms (Def. 3.11): schema + access rules + initial instance +
//! completion formula, and their runs.
//!
//! The access-rule function `A : {add, del} × E → F` maps each access right
//! and schema edge to a guard formula. The only updates are leaf-edge
//! additions and deletions (Sec. 3.4); an update on an edge `e = (n, n')`
//! is allowed iff `A(right, ê)` holds *at `n`* — the parent — in the
//! current instance.

use crate::error::{CoreError, Result};
use crate::formula::{holds, Formula};
use crate::instance::{InstNodeId, Instance};
use crate::schema::{Schema, SchemaNodeId};
use std::fmt;
use std::sync::Arc;

/// The access rights `R = {add, del}` of Sec. 3.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Right {
    /// The right to create an edge.
    Add,
    /// The right to delete an edge.
    Del,
}

impl fmt::Display for Right {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Right::Add => write!(f, "add"),
            Right::Del => write!(f, "del"),
        }
    }
}

/// The access-rule function `A` of a guarded form.
///
/// Rules are stored per schema edge (identified by the edge's end node).
/// Edges without an explicit rule fall back to the table default, which is
/// `false` — matching the paper's "There are no other access rights"
/// (Thm 4.6 proof).
#[derive(Debug, Clone)]
pub struct AccessRules {
    add: Vec<Option<Formula>>,
    del: Vec<Option<Formula>>,
    default: Formula,
}

impl AccessRules {
    /// An empty table over `schema` with default guard `false`.
    pub fn new(schema: &Schema) -> AccessRules {
        AccessRules {
            add: vec![None; schema.node_count()],
            del: vec![None; schema.node_count()],
            default: Formula::False,
        }
    }

    /// An empty table whose unspecified guards are `default` instead of
    /// `false` (Thm 5.1 sets *all* rules to `true`).
    pub fn with_default(schema: &Schema, default: Formula) -> AccessRules {
        AccessRules {
            add: vec![None; schema.node_count()],
            del: vec![None; schema.node_count()],
            default,
        }
    }

    /// Set the guard for `(right, edge)`.
    pub fn set(&mut self, right: Right, edge: SchemaNodeId, guard: Formula) {
        let slot = match right {
            Right::Add => &mut self.add[edge.index()],
            Right::Del => &mut self.del[edge.index()],
        };
        *slot = Some(guard);
    }

    /// Set both `add` and `del` guards for an edge at once.
    pub fn set_both(&mut self, edge: SchemaNodeId, add: Formula, del: Formula) {
        self.set(Right::Add, edge, add);
        self.set(Right::Del, edge, del);
    }

    /// OR an extra disjunct onto the existing guard (or the default if
    /// unset). Reduction constructions use this to merge per-transition
    /// clauses into shared edges.
    pub fn add_disjunct(&mut self, right: Right, edge: SchemaNodeId, guard: Formula) {
        let current = self.get(right, edge).clone();
        let merged = if current == Formula::False {
            guard
        } else {
            current.or(guard)
        };
        self.set(right, edge, merged);
    }

    /// The guard for `(right, edge)` (the default if unset).
    pub fn get(&self, right: Right, edge: SchemaNodeId) -> &Formula {
        let slot = match right {
            Right::Add => &self.add[edge.index()],
            Right::Del => &self.del[edge.index()],
        };
        slot.as_ref().unwrap_or(&self.default)
    }

    /// The default guard for unspecified edges.
    pub fn default_guard(&self) -> &Formula {
        &self.default
    }

    /// Are all guards (including the default, if any edge falls through to
    /// it) positive? This is the `A+` condition of Sec. 3.5.
    pub fn all_positive(&self, schema: &Schema) -> bool {
        schema
            .edge_ids()
            .all(|e| self.get(Right::Add, e).is_positive() && self.get(Right::Del, e).is_positive())
    }

    /// Is deletion statically impossible — every `del` guard (including
    /// the default, where an edge falls through to it) syntactically
    /// `false`? In such a form node counts grow monotonically along every
    /// run, so states at different BFS depths can never be isomorphic —
    /// the soundness condition for the explorer's frontier-only capacity
    /// mode (`idar-solver`'s `spill` module).
    pub fn deletion_free(&self, schema: &Schema) -> bool {
        schema
            .edge_ids()
            .all(|e| *self.get(Right::Del, e) == Formula::False)
    }

    /// Apply `f` to every guard, rewriting the table in place (the
    /// Cor. 4.2 / Cor. 4.7 constructions transform whole tables).
    pub fn map_guards(
        &mut self,
        schema: &Schema,
        mut f: impl FnMut(Right, SchemaNodeId, &Formula) -> Formula,
    ) {
        for e in schema.edge_ids() {
            let new_add = f(Right::Add, e, self.get(Right::Add, e));
            self.set(Right::Add, e, new_add);
            let new_del = f(Right::Del, e, self.get(Right::Del, e));
            self.set(Right::Del, e, new_del);
        }
    }
}

/// An update: the addition or deletion of a single leaf edge (Sec. 3.4).
///
/// Node ids refer to the instance the update is applied to; ids are stable
/// across [`Instance::clone`], so updates can be generated on one copy and
/// applied to another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Update {
    /// Add a fresh leaf under `parent` along the schema edge `edge`.
    Add {
        /// The instance node receiving the new child.
        parent: InstNodeId,
        /// The schema node identifying the edge being instantiated.
        edge: SchemaNodeId,
    },
    /// Delete the (leaf) node `node`.
    Del {
        /// The leaf instance node to remove.
        node: InstNodeId,
    },
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Update::Add { parent, edge } => write!(f, "add {edge} under {parent}"),
            Update::Del { node } => write!(f, "del {node}"),
        }
    }
}

/// A guarded form `(M, A, I₀, φ)` (Def. 3.11).
#[derive(Debug, Clone)]
pub struct GuardedForm {
    schema: Arc<Schema>,
    rules: AccessRules,
    initial: Instance,
    completion: Formula,
}

/// A run of a guarded form: the sequence of instances visited, paired with
/// the updates that produced them (Def. 3.11: `I₀, …, Iₙ` with each step a
/// single allowed update).
#[derive(Debug, Clone)]
pub struct Run {
    /// `instances[0]` is the initial instance; `instances[i+1]` results
    /// from applying `updates[i]`.
    pub instances: Vec<Instance>,
    /// The updates, one per step.
    pub updates: Vec<Update>,
}

impl Run {
    /// The final instance of the run.
    pub fn last(&self) -> &Instance {
        self.instances.last().expect("runs are non-empty")
    }

    /// Number of update steps.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Is this the trivial zero-step run?
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }
}

impl GuardedForm {
    /// Assemble a guarded form. The initial instance must be an instance of
    /// `schema` (guaranteed if it was built against the same `Arc`).
    pub fn new(
        schema: Arc<Schema>,
        rules: AccessRules,
        initial: Instance,
        completion: Formula,
    ) -> GuardedForm {
        assert!(
            Arc::ptr_eq(initial.schema(), &schema),
            "initial instance must be built over the same schema"
        );
        GuardedForm {
            schema,
            rules,
            initial,
            completion,
        }
    }

    /// The schema `M`.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The access-rule table `A`.
    pub fn rules(&self) -> &AccessRules {
        &self.rules
    }

    /// The initial instance `I₀`.
    pub fn initial(&self) -> &Instance {
        &self.initial
    }

    /// The completion formula `φ`.
    pub fn completion(&self) -> &Formula {
        &self.completion
    }

    /// Replace the initial instance (Def. 3.14 considers `(M, A, Iₙ, φ)`
    /// for every reachable `Iₙ`).
    pub fn with_initial(&self, initial: Instance) -> GuardedForm {
        GuardedForm {
            schema: self.schema.clone(),
            rules: self.rules.clone(),
            initial,
            completion: self.completion.clone(),
        }
    }

    /// Replace the completion formula (Sec. 3.5 checks invariants by
    /// swapping φ).
    pub fn with_completion(&self, completion: Formula) -> GuardedForm {
        GuardedForm {
            schema: self.schema.clone(),
            rules: self.rules.clone(),
            initial: self.initial.clone(),
            completion,
        }
    }

    /// Does the completion formula hold for `inst` (at the root)?
    pub fn is_complete(&self, inst: &Instance) -> bool {
        crate::formula::holds_at_root(inst, &self.completion)
    }

    /// Is this form deletion-free ([`AccessRules::deletion_free`])?
    /// Deletion-free forms grow monotonically, which licenses the
    /// solver's frontier-only capacity mode.
    pub fn is_deletion_free(&self) -> bool {
        self.rules().deletion_free(self.schema())
    }

    /// Is `update` allowed on `inst` by the access rules (and the Sec. 3.4
    /// structural constraints)?
    pub fn is_allowed(&self, inst: &Instance, update: &Update) -> bool {
        match update {
            Update::Add { parent, edge } => {
                if !inst.is_live(*parent) {
                    return false;
                }
                if self.schema.parent(*edge) != Some(inst.schema_node(*parent)) {
                    return false;
                }
                holds(inst, *parent, self.rules.get(Right::Add, *edge))
            }
            Update::Del { node } => {
                if !inst.is_live(*node) || *node == InstNodeId::ROOT {
                    return false;
                }
                if !inst.is_leaf(*node) {
                    return false;
                }
                let parent = inst.parent(*node).expect("non-root");
                let edge = inst.schema_node(*node);
                holds(inst, parent, self.rules.get(Right::Del, edge))
            }
        }
    }

    /// Enumerate every allowed update on `inst`.
    ///
    /// For additions, one update per `(instance parent, schema edge)` pair
    /// whose guard holds; for deletions, one per deletable leaf.
    pub fn allowed_updates(&self, inst: &Instance) -> Vec<Update> {
        let mut out = Vec::new();
        for n in inst.live_nodes() {
            let sn = inst.schema_node(n);
            for &edge in self.schema.children(sn) {
                if holds(inst, n, self.rules.get(Right::Add, edge)) {
                    out.push(Update::Add { parent: n, edge });
                }
            }
            if n != InstNodeId::ROOT && inst.is_leaf(n) {
                let parent = inst.parent(n).expect("non-root");
                if holds(
                    inst,
                    parent,
                    self.rules.get(Right::Del, inst.schema_node(n)),
                ) {
                    out.push(Update::Del { node: n });
                }
            }
        }
        out
    }

    /// Apply an update, checking it is allowed. Returns the id of the added
    /// node for additions.
    pub fn apply(&self, inst: &mut Instance, update: &Update) -> Result<Option<InstNodeId>> {
        if !self.is_allowed(inst, update) {
            return Err(CoreError::UpdateNotAllowed(update.to_string()));
        }
        self.apply_unchecked(inst, update)
    }

    /// Apply an update without consulting the access rules (structural
    /// validity is still enforced by [`Instance`]). Solvers that have
    /// already checked the guard use this.
    pub fn apply_unchecked(
        &self,
        inst: &mut Instance,
        update: &Update,
    ) -> Result<Option<InstNodeId>> {
        match update {
            Update::Add { parent, edge } => Ok(Some(inst.add_child(*parent, *edge)?)),
            Update::Del { node } => {
                inst.remove_leaf(*node)?;
                Ok(None)
            }
        }
    }

    /// Validate a sequence of updates as a run from the initial instance
    /// (Def. 3.11) and return the full run. Fails with the offending step
    /// if some update is not allowed.
    pub fn replay(&self, updates: &[Update]) -> Result<Run> {
        let mut instances = vec![self.initial.clone()];
        let mut cur = self.initial.clone();
        for (i, u) in updates.iter().enumerate() {
            self.apply(&mut cur, u).map_err(|e| CoreError::InvalidRun {
                step: i,
                msg: e.to_string(),
            })?;
            instances.push(cur.clone());
        }
        Ok(Run {
            instances,
            updates: updates.to_vec(),
        })
    }

    /// Is `updates` a *complete run* (Def. 3.11): a valid run whose final
    /// instance satisfies the completion formula?
    pub fn is_complete_run(&self, updates: &[Update]) -> bool {
        match self.replay(updates) {
            Ok(run) => self.is_complete(run.last()),
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_form() -> GuardedForm {
        // r with children a, b. a can be added freely; b only after a;
        // a can be deleted only while b is absent; b never.
        let schema = Arc::new(Schema::parse("a, b").unwrap());
        let mut rules = AccessRules::new(&schema);
        let a = schema.resolve("a").unwrap();
        let b = schema.resolve("b").unwrap();
        rules.set_both(
            a,
            Formula::parse("!a").unwrap(),
            Formula::parse("!b").unwrap(),
        );
        rules.set(Right::Add, b, Formula::parse("a & !b").unwrap());
        let initial = Instance::empty(schema.clone());
        GuardedForm::new(schema, rules, initial, Formula::parse("a & b").unwrap())
    }

    #[test]
    fn allowed_updates_initial() {
        let g = tiny_form();
        let ups = g.allowed_updates(g.initial());
        // Only `add a` is allowed at the start.
        assert_eq!(ups.len(), 1);
        assert!(matches!(ups[0], Update::Add { .. }));
    }

    #[test]
    fn replay_and_complete_run() {
        let g = tiny_form();
        let a = g.schema().resolve("a").unwrap();
        let b = g.schema().resolve("b").unwrap();
        let run = vec![
            Update::Add {
                parent: InstNodeId::ROOT,
                edge: a,
            },
            Update::Add {
                parent: InstNodeId::ROOT,
                edge: b,
            },
        ];
        assert!(g.is_complete_run(&run));
        let r = g.replay(&run).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.instances.len(), 3);
        assert!(g.is_complete(r.last()));
        assert!(!g.is_complete(&r.instances[1]));
    }

    #[test]
    fn disallowed_update_rejected() {
        let g = tiny_form();
        let b = g.schema().resolve("b").unwrap();
        // b before a is not allowed.
        let run = vec![Update::Add {
            parent: InstNodeId::ROOT,
            edge: b,
        }];
        assert!(!g.is_complete_run(&run));
        let mut inst = g.initial().clone();
        let err = g
            .apply(
                &mut inst,
                &Update::Add {
                    parent: InstNodeId::ROOT,
                    edge: b,
                },
            )
            .unwrap_err();
        assert!(matches!(err, CoreError::UpdateNotAllowed(_)));
    }

    #[test]
    fn deletion_guard_is_evaluated_at_parent() {
        let g = tiny_form();
        let a = g.schema().resolve("a").unwrap();
        let b = g.schema().resolve("b").unwrap();
        let mut inst = g.initial().clone();
        let an = g
            .apply(
                &mut inst,
                &Update::Add {
                    parent: InstNodeId::ROOT,
                    edge: a,
                },
            )
            .unwrap()
            .unwrap();
        // a deletable while b absent…
        assert!(g.is_allowed(&inst, &Update::Del { node: an }));
        g.apply(
            &mut inst,
            &Update::Add {
                parent: InstNodeId::ROOT,
                edge: b,
            },
        )
        .unwrap();
        // …but not once b is present (guard ¬b at the root).
        assert!(!g.is_allowed(&inst, &Update::Del { node: an }));
    }

    #[test]
    fn default_rule_is_false() {
        let schema = Arc::new(Schema::parse("a, b").unwrap());
        let rules = AccessRules::new(&schema);
        let g = GuardedForm::new(
            schema.clone(),
            rules,
            Instance::empty(schema),
            Formula::True,
        );
        assert!(g.allowed_updates(g.initial()).is_empty());
    }

    #[test]
    fn default_rule_true_allows_everything() {
        // The Thm 5.1 construction: "All access rules are set to true."
        let schema = Arc::new(Schema::parse("x1, x2").unwrap());
        let rules = AccessRules::with_default(&schema, Formula::True);
        let g = GuardedForm::new(
            schema.clone(),
            rules,
            Instance::empty(schema),
            Formula::True,
        );
        assert_eq!(g.allowed_updates(g.initial()).len(), 2);
    }

    #[test]
    fn all_positive_detection() {
        let schema = Arc::new(Schema::parse("a, b").unwrap());
        let mut rules = AccessRules::with_default(&schema, Formula::True);
        assert!(rules.all_positive(&schema));
        rules.set(
            Right::Add,
            schema.resolve("a").unwrap(),
            Formula::parse("!b").unwrap(),
        );
        assert!(!rules.all_positive(&schema));
    }

    #[test]
    fn add_disjunct_merges() {
        let schema = Arc::new(Schema::parse("a").unwrap());
        let mut rules = AccessRules::new(&schema);
        let a = schema.resolve("a").unwrap();
        rules.add_disjunct(Right::Add, a, Formula::label("x"));
        assert_eq!(rules.get(Right::Add, a).to_string(), "x");
        rules.add_disjunct(Right::Add, a, Formula::label("y"));
        assert_eq!(rules.get(Right::Add, a).to_string(), "x | y");
    }

    #[test]
    fn deep_guard_contexts() {
        // A(add, a/n) = ¬../s — evaluated at the a node, `..` reaches the
        // root (Ex. 3.12's note about ¬../s vs ¬s).
        let schema = Arc::new(Schema::parse("a(n), s").unwrap());
        let mut rules = AccessRules::new(&schema);
        let a = schema.resolve("a").unwrap();
        let n = schema.resolve("a/n").unwrap();
        rules.set(Right::Add, a, Formula::True);
        rules.set(Right::Add, schema.resolve("s").unwrap(), Formula::True);
        rules.set(Right::Add, n, Formula::parse("!../s & !n").unwrap());
        let g = GuardedForm::new(
            schema.clone(),
            rules,
            Instance::empty(schema),
            Formula::True,
        );
        let mut inst = g.initial().clone();
        let an = g
            .apply(
                &mut inst,
                &Update::Add {
                    parent: InstNodeId::ROOT,
                    edge: a,
                },
            )
            .unwrap()
            .unwrap();
        assert!(g.is_allowed(
            &inst,
            &Update::Add {
                parent: an,
                edge: n
            }
        ));
        g.apply(
            &mut inst,
            &Update::Add {
                parent: InstNodeId::ROOT,
                edge: g.schema().resolve("s").unwrap(),
            },
        )
        .unwrap();
        assert!(!g.is_allowed(
            &inst,
            &Update::Add {
                parent: an,
                edge: n
            }
        ));
    }
}
