//! # idar-core
//!
//! The formalism of *Calders, Dekeyser, Hidders, Paredaens — "Analyzing
//! Workflows implied by Instance-Dependent Access Rules" (PODS 2006)*.
//!
//! A **guarded form** ([`GuardedForm`]) couples
//!
//! * a tree-shaped [`Schema`] (a nested-relation schema, Def. 3.1),
//! * an initial [`Instance`] of that schema,
//! * an access-rule table ([`AccessRules`]) mapping each access right
//!   (`add`/`del`) and schema edge to a guard [`Formula`] in an
//!   XPath-abbreviated path logic (Def. 3.4), and
//! * a *completion formula* that defines when the form is complete.
//!
//! The access rules implicitly define a workflow: the only updates are
//! additions and deletions of leaf edges, and an update is allowed exactly
//! when its guard holds at the parent node of the touched edge (Sec. 3.4).
//!
//! This crate contains the formalism itself: schemas, instances (which carry
//! their — unique, Prop. 3.3 — homomorphism into the schema), formulas with
//! parser/evaluator/normal forms, formula equivalence and canonical
//! instances (bisimulation with bidirectional edges, Defs. 3.7–3.8), guarded
//! forms and runs, the fragment lattice `F(A±, φ±, d)` of Sec. 3.5, and the
//! paper's running example (the leave application, Fig. 1 / Ex. 3.12).
//!
//! Decision procedures for completability and semi-soundness live in
//! `idar-solver`; the paper's hardness reductions live in `idar-reductions`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisim;
pub mod canon;
pub mod delta;
pub mod deps;
pub mod error;
pub mod formula;
pub mod fragment;
pub mod guarded;
pub mod instance;
pub mod intern;
pub mod leave;
pub mod schema;
pub mod serialize;

pub use canon::Canonicalized;
pub use deps::{EnablementGraph, GuardDeps, RuleId};
pub use error::CoreError;
pub use formula::{Formula, PathExpr};
pub use fragment::{DepthClass, Fragment, Polarity};
pub use guarded::{AccessRules, GuardedForm, Right, Run, Update};
pub use instance::{InstNodeId, Instance};
pub use intern::{CanonKey, Interner, IsoCode};
pub use schema::{Schema, SchemaBuilder, SchemaNodeId};

/// The reserved label of every schema (and instance) root, Def. 3.1.
pub const ROOT_LABEL: &str = "r";
