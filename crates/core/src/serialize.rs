//! Canonical text serialization of guarded forms.
//!
//! A [`GuardedForm`] is four parseable pieces — schema, access rules,
//! initial instance, completion formula — and each already has a compact
//! concrete syntax ([`Schema::parse`], [`Formula::parse`],
//! [`Instance::parse`]). This module glues them into one RON-style record
//! so that *generated* forms (the `idar-gen` crate, the differential fuzz
//! harness) can be written to disk as self-contained, human-readable,
//! replayable repro cases:
//!
//! ```text
//! (
//!   schema: "a(n, p(b, e)), s",
//!   default: "false",
//!   rules: [
//!     (add, "a", "true"),
//!     (del, "a", "!s"),
//!   ],
//!   initial: "a(n)",
//!   completion: "a & s",
//! )
//! ```
//!
//! The encoding is **canonical**: rules are listed only where the guard
//! differs from the default, sorted by schema-edge path then right, and
//! formulas are printed via their `Display` round-trip. Two calls to
//! [`to_ron`] on the same form produce byte-identical output, and
//! `to_ron(&from_ron(s)?)` is a fixpoint for any `s` produced by `to_ron`.

use crate::error::{CoreError, Result};
use crate::formula::Formula;
use crate::guarded::{AccessRules, GuardedForm, Right};
use crate::instance::Instance;
use crate::schema::Schema;
use std::fmt::Write as _;
use std::sync::Arc;

/// Serialize a guarded form to the canonical RON-style text format.
pub fn to_ron(form: &GuardedForm) -> String {
    let schema = form.schema();
    let mut out = String::from("(\n");
    let _ = writeln!(out, "  schema: \"{}\",", schema.to_text());
    let _ = writeln!(out, "  default: \"{}\",", form.rules().default_guard());
    out.push_str("  rules: [\n");
    let mut rules: Vec<(String, Right, String)> = Vec::new();
    for e in schema.edge_ids() {
        for right in [Right::Add, Right::Del] {
            let guard = form.rules().get(right, e);
            if guard != form.rules().default_guard() {
                rules.push((schema.path_of(e), right, guard.to_string()));
            }
        }
    }
    rules.sort();
    for (path, right, guard) in rules {
        let _ = writeln!(out, "    ({right}, \"{path}\", \"{guard}\"),");
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  initial: \"{}\",", form.initial().to_text());
    let _ = writeln!(out, "  completion: \"{}\",", form.completion());
    out.push_str(")\n");
    out
}

/// Parse a guarded form from the [`to_ron`] text format.
///
/// The parser is whitespace- and comment-tolerant (lines starting with
/// `//` are skipped), so repro files may carry a provenance header.
pub fn from_ron(text: &str) -> Result<GuardedForm> {
    let mut schema_text: Option<String> = None;
    let mut default_text = "false".to_string();
    let mut rule_lines: Vec<(Right, String, String)> = Vec::new();
    let mut initial_text = String::new();
    let mut completion_text = "true".to_string();

    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with("//") || line == "(" || line == ")" {
            continue;
        }
        if let Some(rest) = line.strip_prefix("schema:") {
            schema_text = Some(unquote(rest)?);
        } else if let Some(rest) = line.strip_prefix("default:") {
            default_text = unquote(rest)?;
        } else if let Some(rest) = line.strip_prefix("initial:") {
            initial_text = unquote(rest)?;
        } else if let Some(rest) = line.strip_prefix("completion:") {
            completion_text = unquote(rest)?;
        } else if line.starts_with("rules:") || line == "]," || line == "]" {
            // Section markers carry no data.
        } else if line.starts_with('(') {
            rule_lines.push(parse_rule_line(line)?);
        } else {
            return Err(CoreError::Parse {
                pos: 0,
                msg: format!("unrecognised line in form record: `{line}`"),
            });
        }
    }

    let schema_text = schema_text.ok_or_else(|| CoreError::Parse {
        pos: 0,
        msg: "form record missing `schema:`".into(),
    })?;
    let schema = Arc::new(if schema_text.trim().is_empty() {
        crate::schema::SchemaBuilder::new().build()
    } else {
        Schema::parse(&schema_text)?
    });
    let mut rules = AccessRules::with_default(&schema, Formula::parse(&default_text)?);
    for (right, path, guard) in rule_lines {
        let edge = schema.resolve(&path)?;
        rules.set(right, edge, Formula::parse(&guard)?);
    }
    let initial = if initial_text.trim().is_empty() {
        Instance::empty(schema.clone())
    } else {
        Instance::parse(schema.clone(), &initial_text)?
    };
    let completion = Formula::parse(&completion_text)?;
    Ok(GuardedForm::new(schema, rules, initial, completion))
}

/// Extract the contents of the first double-quoted string in `s`.
fn unquote(s: &str) -> Result<String> {
    let start = s.find('"').ok_or_else(|| CoreError::Parse {
        pos: 0,
        msg: format!("expected a quoted value in `{s}`"),
    })?;
    let rest = &s[start + 1..];
    let end = rest.find('"').ok_or_else(|| CoreError::Parse {
        pos: start,
        msg: format!("unterminated quoted value in `{s}`"),
    })?;
    Ok(rest[..end].to_string())
}

/// Parse one `(add, "path", "guard"),` rule line.
fn parse_rule_line(line: &str) -> Result<(Right, String, String)> {
    let body = line
        .trim_start_matches('(')
        .trim_end_matches(',')
        .trim_end_matches(')');
    let (right_text, rest) = body.split_once(',').ok_or_else(|| CoreError::Parse {
        pos: 0,
        msg: format!("malformed rule line `{line}`"),
    })?;
    let right = match right_text.trim() {
        "add" => Right::Add,
        "del" => Right::Del,
        other => {
            return Err(CoreError::Parse {
                pos: 0,
                msg: format!("unknown access right `{other}`"),
            })
        }
    };
    let path = unquote(rest)?;
    // The guard is the second quoted string: skip past the first pair.
    let after_path = {
        let first = rest.find('"').expect("unquote succeeded");
        let rest2 = &rest[first + 1..];
        let second = rest2.find('"').expect("unquote succeeded");
        &rest2[second + 1..]
    };
    let guard = unquote(after_path)?;
    Ok((right, path, guard))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::leave;

    #[test]
    fn roundtrip_leave_form() {
        let g = leave::example_3_12();
        let text = to_ron(&g);
        let g2 = from_ron(&text).unwrap();
        assert_eq!(g.schema().to_text(), g2.schema().to_text());
        assert_eq!(g.completion(), g2.completion());
        assert!(g.initial().isomorphic(g2.initial()));
        for e in g.schema().edge_ids() {
            for right in [Right::Add, Right::Del] {
                assert_eq!(
                    g.rules().get(right, e),
                    g2.rules().get(right, e),
                    "guard mismatch on ({right}, {})",
                    g.schema().path_of(e)
                );
            }
        }
    }

    #[test]
    fn to_ron_is_a_fixpoint() {
        let g = leave::example_3_12();
        let once = to_ron(&g);
        let twice = to_ron(&from_ron(&once).unwrap());
        assert_eq!(once, twice);
    }

    #[test]
    fn comments_and_blank_lines_tolerated() {
        let g = leave::example_3_12();
        let text = format!("// repro: seed 42, case 7\n\n{}", to_ron(&g));
        assert!(from_ron(&text).is_ok());
    }

    #[test]
    fn trivial_form_roundtrips() {
        let schema = Arc::new(crate::schema::SchemaBuilder::new().build());
        let rules = AccessRules::new(&schema);
        let g = GuardedForm::new(
            schema.clone(),
            rules,
            Instance::empty(schema),
            Formula::True,
        );
        let g2 = from_ron(&to_ron(&g)).unwrap();
        assert_eq!(g2.schema().node_count(), 1);
        assert_eq!(g2.completion(), &Formula::True);
    }

    #[test]
    fn malformed_records_rejected() {
        assert!(from_ron("nonsense").is_err());
        assert!(from_ron("(\n  completion: \"a\",\n)").is_err()); // no schema
        assert!(
            from_ron("(\n  schema: \"a\",\n  rules: [\n    (mul, \"a\", \"x\"),\n  ],\n)").is_err()
        );
    }
}
