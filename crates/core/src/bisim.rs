//! Formula equivalence and canonical instances (Defs. 3.7–3.8).
//!
//! Formula equivalence is "bisimulation under the assumption that all edges
//! are bidirectional": related nodes must carry the same label, their
//! parents must be related, and their child sets must match up to the
//! relation, in both directions. Lemma 3.9: formula-equivalent nodes
//! satisfy exactly the same formulas, every instance is equivalent to its
//! canonical instance `can(I)`, and `can` is invariant across the
//! equivalence class.
//!
//! The computation is a classic signature-based partition refinement: start
//! from label blocks, refine by `(own block, parent block, set of child
//! blocks)` until stable, then quotient. On trees this terminates in at
//! most `depth + 1` sharpening rounds.
//!
//! ### Two different canonical codes
//!
//! * [`bisim_code`] — quotient by formula equivalence, then take the
//!   isomorphism code. Identifies instances that satisfy the same formulas.
//! * [`Instance::iso_code`] — no quotient; preserves sibling multiplicity.
//!
//! The distinction is load-bearing for the solvers: by Lemma 4.3 the
//! *bisimulation* code is a sound state abstraction for depth-1 guarded
//! forms only. At depth ≥ 2 sibling multiplicity is semantically relevant
//! (Thm 4.1 counts with it!), so explorers there must use `iso_code`.

use crate::formula::Formula;
use crate::instance::{InstNodeId, Instance};
use std::collections::HashMap;

/// The partition of an instance's live nodes into formula-equivalence
/// classes (Def. 3.7 applied between the instance and itself).
#[derive(Debug, Clone)]
pub struct NodePartition {
    /// Block id of each live node, keyed by arena index. Dead slots hold
    /// `u32::MAX`.
    block: Vec<u32>,
    /// Number of blocks.
    blocks: u32,
}

impl NodePartition {
    /// Block id of a node.
    pub fn block_of(&self, n: InstNodeId) -> u32 {
        self.block[n.index()]
    }

    /// Number of equivalence classes.
    pub fn block_count(&self) -> usize {
        self.blocks as usize
    }

    /// Are two nodes formula equivalent (Def. 3.7)?
    pub fn equivalent(&self, a: InstNodeId, b: InstNodeId) -> bool {
        self.block[a.index()] == self.block[b.index()]
    }
}

/// Compute the coarsest auto-bisimulation partition of `inst`'s nodes.
pub fn node_partition(inst: &Instance) -> NodePartition {
    let slots = inst.slot_count();
    let mut block = vec![u32::MAX; slots];

    // Initial partition: by schema node. Nodes with equal labels but
    // different schema nodes can never be formula equivalent (their paths
    // from the root differ, and the parent conditions of Def. 3.7 propagate
    // that difference), so this refines the by-label start without loss —
    // see the `label_start_agrees_with_schema_start` test.
    let mut blocks = 0u32;
    let mut first: HashMap<u32, u32> = HashMap::new();
    for n in inst.live_nodes() {
        let key = inst.schema_node(n).0;
        let id = *first.entry(key).or_insert_with(|| {
            let b = blocks;
            blocks += 1;
            b
        });
        block[n.index()] = id;
    }

    // Refine until stable. Signature: (own, parent, sorted dedup children).
    loop {
        let mut sig_ids: HashMap<(u32, u32, Vec<u32>), u32> = HashMap::new();
        let mut next = vec![u32::MAX; slots];
        let mut next_count = 0u32;
        for n in inst.live_nodes() {
            let own = block[n.index()];
            let parent = inst.parent(n).map(|p| block[p.index()]).unwrap_or(u32::MAX);
            let mut kids: Vec<u32> = inst.children(n).iter().map(|c| block[c.index()]).collect();
            kids.sort_unstable();
            kids.dedup();
            let id = *sig_ids.entry((own, parent, kids)).or_insert_with(|| {
                let b = next_count;
                next_count += 1;
                b
            });
            next[n.index()] = id;
        }
        if next_count == blocks {
            // Same block count with refinement-only steps means stable.
            return NodePartition { block, blocks };
        }
        block = next;
        blocks = next_count;
    }
}

/// Compute the canonical instance `can(I)` (Def. 3.8): the quotient of `I`
/// by formula equivalence. The result is again an instance of the same
/// schema (equivalent nodes share a schema node), and `I ∼ can(I)`
/// (Lemma 3.9).
pub fn canonical(inst: &Instance) -> Instance {
    let part = node_partition(inst);
    let mut out = Instance::empty(inst.schema().clone());
    // Map block id -> node id in the quotient.
    let mut block_node: HashMap<u32, InstNodeId> = HashMap::new();
    block_node.insert(part.block_of(InstNodeId::ROOT), InstNodeId::ROOT);
    // live_nodes is parent-before-child, so a node's parent block is
    // already materialised when we reach it.
    for n in inst.live_nodes() {
        if n == InstNodeId::ROOT {
            continue;
        }
        let b = part.block_of(n);
        if block_node.contains_key(&b) {
            continue;
        }
        let pb = part.block_of(inst.parent(n).expect("non-root"));
        let pq = block_node[&pb];
        let q = out
            .add_child(pq, inst.schema_node(n))
            .expect("quotient preserves schema edges");
        block_node.insert(b, q);
    }
    out
}

/// Are two instances formula equivalent (`I ∼ J`, Def. 3.7)?
///
/// By Lemma 3.9 this holds iff their canonical instances are isomorphic.
pub fn equivalent(a: &Instance, b: &Instance) -> bool {
    bisim_code(a) == bisim_code(b)
}

/// The canonical code of an instance *up to formula equivalence*: the
/// isomorphism code of `can(I)`. Equal codes ⇔ `I ∼ J`.
pub fn bisim_code(inst: &Instance) -> String {
    canonical(inst).iso_code()
}

/// Is an instance canonical, i.e. isomorphic to its own quotient?
pub fn is_canonical(inst: &Instance) -> bool {
    node_partition(inst).block_count() == inst.live_count()
}

/// The characteristic formula `χ(C)` of an instance: a formula such that
/// for every instance `J` of the same schema, `J ⊨ χ(C)` iff `J ∼ C`.
///
/// Exists because formulas cannot count (multiplicity-blind) but can fully
/// pin down structure up to bisimulation. Used by the Cor. 4.7 reset/build
/// construction (`A(del, build)` "tests if the instance is can(I₀)").
///
/// Size: exponential in depth in the worst case (each level conjoins the
/// children's characteristic formulas both positively and under negation),
/// which is fine for the shallow forms it is used on.
pub fn characteristic_formula(inst: &Instance) -> Formula {
    let can = canonical(inst);
    char_at(&can, InstNodeId::ROOT)
}

fn char_at(can: &Instance, n: InstNodeId) -> Formula {
    let schema = can.schema().clone();
    let sn = can.schema_node(n);
    let mut conjuncts: Vec<Formula> = Vec::new();
    // Group the (canonical, hence pairwise non-equivalent) children by
    // schema child.
    for &sc in schema.children(sn) {
        let label = schema.label(sc).to_string();
        let kids: Vec<InstNodeId> = can.children_at(n, sc).collect();
        if kids.is_empty() {
            // No child along this edge at all.
            conjuncts.push(Formula::label(&label).not());
            continue;
        }
        let kid_formulas: Vec<Formula> = kids.iter().map(|&k| char_at(can, k)).collect();
        // (1) every class is inhabited: l[χ_k] for each child class k;
        for kf in &kid_formulas {
            conjuncts.push(Formula::Path(crate::formula::PathExpr::Filter(
                Box::new(crate::formula::PathExpr::Label(label.clone())),
                Box::new(kf.clone()),
            )));
        }
        // (2) every l-child belongs to one of the classes:
        //     ¬ l[¬χ_1 ∧ … ∧ ¬χ_m].
        let none_of = Formula::conj(kid_formulas.iter().map(|kf| kf.clone().not()));
        conjuncts.push(
            Formula::Path(crate::formula::PathExpr::Filter(
                Box::new(crate::formula::PathExpr::Label(label.clone())),
                Box::new(none_of),
            ))
            .not(),
        );
    }
    Formula::conj(conjuncts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::holds_at_root;
    use crate::schema::Schema;
    use std::sync::Arc;

    fn schema(text: &str) -> Arc<Schema> {
        Arc::new(Schema::parse(text).unwrap())
    }

    #[test]
    fn figure3_canonicalisation() {
        // Fig. 3(a): an instance whose quotient is Fig. 3(b).
        let s = schema("a(c(e), d), b(c, d(e))");
        // (a): root with children a, a, a, a, b; see the paper's drawing:
        //   a(c,c(e),d)? — the figure shows:
        //   r( a(c, c(e)), a(c, c(e)), a(c(e), c(e)), a(c(e)), b(c, d(e), d(e)) )
        // and the canonical instance
        //   r( a(c, c(e)), a(c(e)), b(c, d(e)) ).
        let i = Instance::parse(
            s.clone(),
            "a(c, c(e)), a(c, c(e)), a(c(e), c(e)), a(c(e)), b(c, d(e), d(e))",
        )
        .unwrap();
        let can = canonical(&i);
        let expected = Instance::parse(s, "a(c, c(e)), a(c(e)), b(c, d(e))").unwrap();
        assert_eq!(
            can.iso_code(),
            expected.iso_code(),
            "got {} expected {}",
            can.iso_code(),
            expected.iso_code()
        );
        assert!(equivalent(&i, &expected));
        assert!(is_canonical(&expected));
        assert!(!is_canonical(&i));
    }

    #[test]
    fn duplicate_leaves_collapse() {
        let s = schema("a, b");
        let i = Instance::parse(s.clone(), "a, a, a, b").unwrap();
        let can = canonical(&i);
        assert_eq!(can.iso_code(), "a,b");
        assert!(equivalent(&i, &Instance::parse(s, "a, b").unwrap()));
    }

    #[test]
    fn different_subtrees_do_not_collapse() {
        let s = schema("a(x, y)");
        let i = Instance::parse(s, "a(x), a(y), a(x)").unwrap();
        let can = canonical(&i);
        assert_eq!(can.iso_code(), "a(x),a(y)");
    }

    #[test]
    fn empty_and_singleton() {
        let s = schema("a");
        let e = Instance::empty(s.clone());
        assert!(is_canonical(&e));
        assert_eq!(canonical(&e).iso_code(), "");
        let one = Instance::parse(s, "a").unwrap();
        assert!(is_canonical(&one));
    }

    #[test]
    fn equivalence_is_multiplicity_blind_iso_is_not() {
        let s = schema("a(x)");
        let i1 = Instance::parse(s.clone(), "a(x), a(x)").unwrap();
        let i2 = Instance::parse(s, "a(x)").unwrap();
        assert!(equivalent(&i1, &i2));
        assert!(!i1.isomorphic(&i2));
        assert_eq!(bisim_code(&i1), bisim_code(&i2));
        assert_ne!(i1.iso_code(), i2.iso_code());
    }

    #[test]
    fn lemma_3_9_formulas_agree_on_equivalent_instances() {
        let s = schema("a(n, p(b, e)), s, d(a, r(r)), f");
        let i = Instance::parse(s.clone(), "a(n, p(b, e), p(b, e)), s, s, d(r(r), r(r))").unwrap();
        let can = canonical(&i);
        assert!(can.live_count() < i.live_count());
        for ft in [
            "!s & a[n & d & p] & !a/p[!b | !e]",
            "a/p[b & e]",
            "d[a | r]",
            "d[!(a & r)]",
            "!f | d[a | r]",
            "s & a[p[../../d]]",
        ] {
            let f = Formula::parse(ft).unwrap();
            assert_eq!(
                holds_at_root(&i, &f),
                holds_at_root(&can, &f),
                "Lemma 3.9 violated for {ft}"
            );
        }
    }

    #[test]
    fn node_equivalence_requires_equivalent_parents() {
        // The two `x` leaves sit under non-equivalent parents (one `a` has
        // an extra `y` child), so they must not merge.
        let s = schema("a(x, y)");
        let i = Instance::parse(s, "a(x), a(x, y)").unwrap();
        let part = node_partition(&i);
        let roots: Vec<_> = i.children_with_label(InstNodeId::ROOT, "a").collect();
        let x1 = i.children_with_label(roots[0], "x").next().unwrap();
        let x2 = i.children_with_label(roots[1], "x").next().unwrap();
        assert!(!part.equivalent(x1, x2));
        assert!(!part.equivalent(roots[0], roots[1]));
    }

    #[test]
    fn label_start_agrees_with_schema_start() {
        // Nodes with the same label but different schema nodes (label `r`
        // at depths 2 and 3 in the leave schema) must not be equivalent
        // even though their labels coincide; the parent chain forbids it.
        let s = schema("d(a, r(r))");
        let i = Instance::parse(s, "d(r(r))").unwrap();
        let part = node_partition(&i);
        let d = i.children_with_label(InstNodeId::ROOT, "d").next().unwrap();
        let r1 = i.children_with_label(d, "r").next().unwrap();
        let r2 = i.children_with_label(r1, "r").next().unwrap();
        assert!(!part.equivalent(r1, r2));
    }

    #[test]
    fn canonical_is_idempotent() {
        let s = schema("a(c(e), d), b(c, d(e))");
        let i = Instance::parse(s, "a(c, c(e)), a(c, c(e)), b(c, c, d(e), d(e))").unwrap();
        let c1 = canonical(&i);
        let c2 = canonical(&c1);
        assert!(c1.isomorphic(&c2));
    }

    #[test]
    fn characteristic_formula_pins_down_class() {
        let s = schema("a(x, y), b");
        let target = Instance::parse(s.clone(), "a(x), b").unwrap();
        let chi = characteristic_formula(&target);
        // Instances equivalent to the target satisfy χ …
        for t in ["a(x), b", "a(x), a(x), b"] {
            let j = Instance::parse(s.clone(), t).unwrap();
            assert!(holds_at_root(&j, &chi), "χ should hold on {t}");
        }
        // … and non-equivalent ones do not.
        for t in ["", "b", "a(x)", "a(x), a(y), b", "a(x, y), b", "a, b"] {
            let j = Instance::parse(s.clone(), t).unwrap();
            assert!(!holds_at_root(&j, &chi), "χ should fail on {t}");
        }
    }

    #[test]
    fn characteristic_formula_of_empty_instance() {
        let s = schema("a, b");
        let chi = characteristic_formula(&Instance::empty(s.clone()));
        assert!(holds_at_root(&Instance::empty(s.clone()), &chi));
        assert!(!holds_at_root(&Instance::parse(s, "a").unwrap(), &chi));
    }
}
