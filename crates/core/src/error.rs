//! Error types shared across the core formalism.

use std::fmt;

/// Errors raised by schema/instance construction, formula parsing and
/// guarded-form manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A schema node would get two children with the same label,
    /// violating Def. 3.1 ("no two siblings have the same label").
    DuplicateSiblingLabel {
        /// Label of the parent schema node.
        parent: String,
        /// The duplicated child label.
        label: String,
    },
    /// A label failed lexical validation (empty, or contains characters the
    /// concrete syntax cannot express).
    InvalidLabel(String),
    /// The reserved root label `r` was used for a non-root node.
    ReservedRootLabel,
    /// A path did not resolve to a schema node.
    NoSuchSchemaPath(String),
    /// A schema node id was out of range or did not belong to this schema.
    NoSuchSchemaNode,
    /// An instance node id was out of range, deleted, or belonged to a
    /// different instance.
    NoSuchInstanceNode,
    /// An update touched a non-leaf node; Sec. 3.4 restricts updates to
    /// additions and deletions of edges that add/remove leaf nodes.
    NotALeaf,
    /// The root of an instance can never be deleted.
    CannotDeleteRoot,
    /// An edge addition did not correspond to a schema edge below the
    /// parent's schema node (it would break the homomorphism of Def. 3.1).
    SchemaMismatch {
        /// Label of the would-be parent node.
        parent_label: String,
        /// Label of the rejected child.
        child_label: String,
    },
    /// Formula parse error with position and message.
    Parse {
        /// Byte offset of the error in the input.
        pos: usize,
        /// Human-readable description.
        msg: String,
    },
    /// An update was attempted that the access rules forbid.
    UpdateNotAllowed(String),
    /// A run validation failed at the given step.
    InvalidRun {
        /// Zero-based index of the offending update.
        step: usize,
        /// Why the step was rejected.
        msg: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::DuplicateSiblingLabel { parent, label } => write!(
                f,
                "schema node `{parent}` already has a child labelled `{label}` \
                 (siblings must have distinct labels, Def. 3.1)"
            ),
            CoreError::InvalidLabel(l) => write!(f, "invalid label `{l}`"),
            CoreError::ReservedRootLabel => {
                write!(f, "label `r` is reserved for the root (Def. 3.1)")
            }
            CoreError::NoSuchSchemaPath(p) => write!(f, "no schema node at path `{p}`"),
            CoreError::NoSuchSchemaNode => write!(f, "schema node id out of range"),
            CoreError::NoSuchInstanceNode => write!(f, "instance node id invalid or deleted"),
            CoreError::NotALeaf => write!(
                f,
                "only leaf edges may be added or deleted (Sec. 3.4 update model)"
            ),
            CoreError::CannotDeleteRoot => write!(f, "the root cannot be deleted"),
            CoreError::SchemaMismatch {
                parent_label,
                child_label,
            } => write!(f, "schema has no edge `{parent_label}` -> `{child_label}`"),
            CoreError::Parse { pos, msg } => write!(f, "parse error at byte {pos}: {msg}"),
            CoreError::UpdateNotAllowed(u) => write!(f, "update not allowed: {u}"),
            CoreError::InvalidRun { step, msg } => {
                write!(f, "invalid run at step {step}: {msg}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenient result alias for the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;
