//! Form instances (Def. 3.1): rooted node-labelled trees that admit a
//! homomorphism into their schema.
//!
//! Prop. 3.3 shows the homomorphism is *unique*, so instead of checking it
//! we maintain it: every instance node stores the schema node it maps to
//! (`n̂` in the paper's notation), and the only mutations offered are the
//! Sec. 3.4 updates — adding a fresh leaf along a schema edge and removing
//! an existing leaf. "Being an instance of the schema" is therefore an
//! invariant of the representation, not a runtime property.

use crate::error::{CoreError, Result};
use crate::schema::{Schema, SchemaNodeId};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of an instance node. Id `0` is always the root.
///
/// Ids are stable across clones and across deletions of *other* nodes
/// (deleted slots are tomb-stoned, not reused until [`Instance::compact`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstNodeId(pub u32);

impl InstNodeId {
    /// The root node id.
    pub const ROOT: InstNodeId = InstNodeId(0);

    /// This id as a `Vec` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct InstNode {
    /// The image of this node under the (unique) homomorphism to the schema.
    schema_node: SchemaNodeId,
    parent: Option<InstNodeId>,
    children: Vec<InstNodeId>,
    alive: bool,
}

/// An instance of a [`Schema`]: a rooted node-labelled tree together with
/// its homomorphism into the schema (Def. 3.1 / Prop. 3.3).
///
/// ```
/// # use idar_core::{Instance, Schema};
/// # use std::sync::Arc;
/// let schema = Arc::new(Schema::parse("a(n, p(b, e)), s").unwrap());
/// let mut i = Instance::empty(schema.clone());
/// let a = i.add_child_by_label(idar_core::InstNodeId::ROOT, "a").unwrap();
/// let p = i.add_child_by_label(a, "p").unwrap();
/// i.add_child_by_label(p, "b").unwrap();
/// assert_eq!(i.live_count(), 4); // r, a, p, b
/// ```
#[derive(Debug, Clone)]
pub struct Instance {
    schema: Arc<Schema>,
    nodes: Vec<InstNode>,
    live: usize,
}

impl Instance {
    /// The instance consisting of only the root — the typical initial
    /// instance ("we start with an empty form", Ex. 3.12).
    pub fn empty(schema: Arc<Schema>) -> Instance {
        Instance {
            schema,
            nodes: vec![InstNode {
                schema_node: SchemaNodeId::ROOT,
                parent: None,
                children: Vec::new(),
                alive: true,
            }],
            live: 1,
        }
    }

    /// The schema this instance instantiates.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of live nodes (including the root).
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Number of arena slots, live or dead. Node ids are `< slot_count()`.
    pub fn slot_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate heap footprint of this instance in bytes (node arena
    /// plus per-node child vectors; the shared schema `Arc` is excluded).
    /// Byte-denominated retention budgets are accounted in these units.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Instance>()
            + self.nodes.capacity() * std::mem::size_of::<InstNode>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.capacity() * std::mem::size_of::<InstNodeId>())
                .sum::<usize>()
    }

    /// Is `id` a live node of this instance?
    pub fn is_live(&self, id: InstNodeId) -> bool {
        id.index() < self.nodes.len() && self.nodes[id.index()].alive
    }

    fn check(&self, id: InstNodeId) -> Result<()> {
        if self.is_live(id) {
            Ok(())
        } else {
            Err(CoreError::NoSuchInstanceNode)
        }
    }

    /// The schema node (`n̂`) of an instance node.
    pub fn schema_node(&self, id: InstNodeId) -> SchemaNodeId {
        debug_assert!(self.is_live(id));
        self.nodes[id.index()].schema_node
    }

    /// The label of an instance node (= the label of its schema node).
    pub fn label(&self, id: InstNodeId) -> &str {
        self.schema.label(self.schema_node(id))
    }

    /// The parent of a node (`None` for the root).
    pub fn parent(&self, id: InstNodeId) -> Option<InstNodeId> {
        debug_assert!(self.is_live(id));
        self.nodes[id.index()].parent
    }

    /// The live children of a node.
    pub fn children(&self, id: InstNodeId) -> &[InstNodeId] {
        debug_assert!(self.is_live(id));
        &self.nodes[id.index()].children
    }

    /// Is `id` a leaf (no live children)?
    pub fn is_leaf(&self, id: InstNodeId) -> bool {
        self.children(id).is_empty()
    }

    /// Iterate over all live node ids (root first; parents before children).
    pub fn live_nodes(&self) -> impl Iterator<Item = InstNodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| InstNodeId(i as u32))
    }

    /// Live children of `parent` mapped to the given schema node.
    pub fn children_at(
        &self,
        parent: InstNodeId,
        schema_child: SchemaNodeId,
    ) -> impl Iterator<Item = InstNodeId> + '_ {
        self.children(parent)
            .iter()
            .copied()
            .filter(move |&c| self.nodes[c.index()].schema_node == schema_child)
    }

    /// Live children of `parent` whose label is `label`.
    pub fn children_with_label<'a>(
        &'a self,
        parent: InstNodeId,
        label: &str,
    ) -> impl Iterator<Item = InstNodeId> + 'a {
        let sn = self.schema.child_by_label(self.schema_node(parent), label);
        self.children(parent)
            .iter()
            .copied()
            .filter(move |&c| Some(self.nodes[c.index()].schema_node) == sn)
    }

    /// Add a fresh leaf under `parent` along the schema edge ending in
    /// `schema_child` (the Sec. 3.4 *addition* update). Returns the new
    /// node's id.
    pub fn add_child(
        &mut self,
        parent: InstNodeId,
        schema_child: SchemaNodeId,
    ) -> Result<InstNodeId> {
        self.check(parent)?;
        if schema_child.index() >= self.schema.node_count() {
            return Err(CoreError::NoSuchSchemaNode);
        }
        let psn = self.nodes[parent.index()].schema_node;
        if self.schema.parent(schema_child) != Some(psn) {
            return Err(CoreError::SchemaMismatch {
                parent_label: self.schema.label(psn).to_string(),
                child_label: self.schema.label(schema_child).to_string(),
            });
        }
        let id = InstNodeId(self.nodes.len() as u32);
        self.nodes.push(InstNode {
            schema_node: schema_child,
            parent: Some(parent),
            children: Vec::new(),
            alive: true,
        });
        self.nodes[parent.index()].children.push(id);
        self.live += 1;
        Ok(id)
    }

    /// Add a fresh leaf under `parent` with the given label (resolved
    /// through the schema).
    pub fn add_child_by_label(&mut self, parent: InstNodeId, label: &str) -> Result<InstNodeId> {
        self.check(parent)?;
        let psn = self.nodes[parent.index()].schema_node;
        let sc =
            self.schema
                .child_by_label(psn, label)
                .ok_or_else(|| CoreError::SchemaMismatch {
                    parent_label: self.schema.label(psn).to_string(),
                    child_label: label.to_string(),
                })?;
        self.add_child(parent, sc)
    }

    /// Remove a leaf node (the Sec. 3.4 *deletion* update).
    ///
    /// Fails on the root and on internal nodes: "the only updates … are the
    /// additions and deletions of edges that add and remove leaf nodes".
    pub fn remove_leaf(&mut self, id: InstNodeId) -> Result<()> {
        self.check(id)?;
        if id == InstNodeId::ROOT {
            return Err(CoreError::CannotDeleteRoot);
        }
        if !self.nodes[id.index()].children.is_empty() {
            return Err(CoreError::NotALeaf);
        }
        let parent = self.nodes[id.index()].parent.expect("non-root has parent");
        let kids = &mut self.nodes[parent.index()].children;
        let pos = kids
            .iter()
            .position(|&c| c == id)
            .expect("child listed under parent");
        kids.remove(pos);
        self.nodes[id.index()].alive = false;
        self.live -= 1;
        Ok(())
    }

    /// Rebuild the arena without tombstones. Node ids are *not* preserved;
    /// only use when no outside ids are held. Returns the compacted instance.
    pub fn compact(&self) -> Instance {
        let mut out = Instance::empty(self.schema.clone());
        let mut map: HashMap<InstNodeId, InstNodeId> = HashMap::new();
        map.insert(InstNodeId::ROOT, InstNodeId::ROOT);
        // live_nodes is parent-before-child, so parents are mapped first.
        for id in self.live_nodes() {
            if id == InstNodeId::ROOT {
                continue;
            }
            let p = self.parent(id).expect("non-root");
            let np = map[&p];
            let nid = out
                .add_child(np, self.schema_node(id))
                .expect("schema edge preserved");
            map.insert(id, nid);
        }
        out
    }

    /// Build an instance from a compact text notation (same syntax as
    /// [`Schema::parse`], but duplicate sibling labels are allowed):
    /// `"a(n, d, p(b, e), p(b)), s"` is Fig. 2(a).
    pub fn parse(schema: Arc<Schema>, text: &str) -> Result<Instance> {
        let mut inst = Instance::empty(schema);
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        if pos < bytes.len() {
            parse_children(bytes, &mut pos, InstNodeId::ROOT, &mut inst)?;
        }
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(CoreError::Parse {
                pos,
                msg: "trailing input after instance".into(),
            });
        }
        Ok(inst)
    }

    /// Render this instance in the compact [`Instance::parse`] notation,
    /// children in child order (not sorted — contrast
    /// [`Instance::iso_code`]). Inverse of `parse`:
    /// `Instance::parse(schema, &i.to_text())` rebuilds an isomorphic
    /// instance.
    pub fn to_text(&self) -> String {
        self.text_of(InstNodeId::ROOT)
    }

    fn text_of(&self, node: InstNodeId) -> String {
        let kids: Vec<String> = self
            .children(node)
            .iter()
            .map(|&c| {
                let sub = self.text_of(c);
                if sub.is_empty() {
                    self.label(c).to_string()
                } else {
                    format!("{}({})", self.label(c), sub)
                }
            })
            .collect();
        kids.join(", ")
    }

    /// Grow a pseudo-random instance of `schema` with at most `budget`
    /// added nodes, drawing every decision from `chooser` — the
    /// *arbitrary-instance hook* for external generators (`idar-gen`, the
    /// proptest shim): `chooser(n)` must return a value `< n`.
    ///
    /// Each step picks a live node uniformly via the hook; if its schema
    /// node has children, one schema edge is picked the same way and a
    /// fresh leaf added. The construction is total (never fails) and
    /// deterministic in the chooser's choices.
    pub fn arbitrary_with(
        schema: Arc<Schema>,
        budget: usize,
        chooser: &mut dyn FnMut(usize) -> usize,
    ) -> Instance {
        let mut inst = Instance::empty(schema.clone());
        let mut live: Vec<InstNodeId> = vec![InstNodeId::ROOT];
        for _ in 0..budget {
            let p = live[chooser(live.len()).min(live.len() - 1)];
            let sp = inst.schema_node(p);
            let kids = schema.children(sp);
            if kids.is_empty() {
                continue;
            }
            let edge = kids[chooser(kids.len()).min(kids.len() - 1)];
            let c = inst.add_child(p, edge).expect("edge below parent's image");
            live.push(c);
        }
        inst
    }

    /// Render this instance in the [`Instance::parse`] notation, children
    /// sorted canonically so that isomorphic instances render identically.
    ///
    /// This string is the instance's *isomorphism code* (an AHU-style
    /// canonical form of an unordered labelled tree): two instances of the
    /// same schema are isomorphic iff their codes are equal. Multiplicity
    /// of equal siblings is preserved — contrast with
    /// [`crate::bisim::bisim_code`], which quotients by formula equivalence
    /// (Def. 3.7) first.
    pub fn iso_code(&self) -> String {
        self.iso_code_of(InstNodeId::ROOT)
    }

    /// The isomorphism code of the subtree rooted at `node` (the node's own
    /// label is *not* included for the root, matching `parse`).
    fn iso_code_of(&self, node: InstNodeId) -> String {
        let mut kids: Vec<String> = self
            .children(node)
            .iter()
            .map(|&c| {
                let sub = self.iso_code_of(c);
                if sub.is_empty() {
                    self.label(c).to_string()
                } else {
                    format!("{}({})", self.label(c), sub)
                }
            })
            .collect();
        kids.sort_unstable();
        kids.join(",")
    }

    /// Render as an ASCII tree, mirroring Fig. 2.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(InstNodeId::ROOT, "", true, &mut out);
        out
    }

    fn render_node(&self, id: InstNodeId, prefix: &str, last: bool, out: &mut String) {
        use std::fmt::Write;
        if id == InstNodeId::ROOT {
            let _ = writeln!(out, "{}", self.label(id));
        } else {
            let branch = if last { "`-- " } else { "|-- " };
            let _ = writeln!(out, "{prefix}{branch}{}", self.label(id));
        }
        let kids = self.children(id);
        for (i, &k) in kids.iter().enumerate() {
            let child_prefix = if id == InstNodeId::ROOT {
                String::new()
            } else {
                format!("{prefix}{}", if last { "    " } else { "|   " })
            };
            self.render_node(k, &child_prefix, i + 1 == kids.len(), out);
        }
    }

    /// Check that `self` and `other` are isomorphic (same schema pointer not
    /// required; labels and shape must agree).
    pub fn isomorphic(&self, other: &Instance) -> bool {
        self.iso_code() == other.iso_code()
    }

    /// Verify an arbitrary labelled tree (as `(label, parent)` pairs, root
    /// first with parent `usize::MAX`) is an instance of `schema`, i.e. a
    /// homomorphism exists (Def. 3.1). Returns the instance on success.
    ///
    /// This is the *checking* counterpart to the by-construction invariant;
    /// it exists so external trees (e.g. parsed from user input against a
    /// different schema) can be validated.
    pub fn from_labelled_tree(schema: Arc<Schema>, nodes: &[(String, usize)]) -> Result<Instance> {
        let mut inst = Instance::empty(schema);
        let mut map: Vec<InstNodeId> = Vec::with_capacity(nodes.len());
        for (i, (label, parent)) in nodes.iter().enumerate() {
            if i == 0 {
                if label != inst.label(InstNodeId::ROOT) {
                    return Err(CoreError::SchemaMismatch {
                        parent_label: "-".into(),
                        child_label: label.clone(),
                    });
                }
                map.push(InstNodeId::ROOT);
                continue;
            }
            if *parent >= i {
                return Err(CoreError::NoSuchInstanceNode);
            }
            let p = map[*parent];
            let id = inst.add_child_by_label(p, label)?;
            map.push(id);
        }
        Ok(inst)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_children(
    bytes: &[u8],
    pos: &mut usize,
    parent: InstNodeId,
    inst: &mut Instance,
) -> Result<()> {
    loop {
        skip_ws(bytes, pos);
        let start = *pos;
        while *pos < bytes.len() && crate::schema::is_label_byte(bytes[*pos]) {
            *pos += 1;
        }
        if *pos == start {
            return Err(CoreError::Parse {
                pos: *pos,
                msg: "expected a label".into(),
            });
        }
        let label = std::str::from_utf8(&bytes[start..*pos])
            .expect("ascii")
            .to_string();
        let id = inst.add_child_by_label(parent, &label)?;
        skip_ws(bytes, pos);
        if *pos < bytes.len() && bytes[*pos] == b'(' {
            *pos += 1;
            parse_children(bytes, pos, id, inst)?;
            skip_ws(bytes, pos);
            if *pos < bytes.len() && bytes[*pos] == b')' {
                *pos += 1;
            } else {
                return Err(CoreError::Parse {
                    pos: *pos,
                    msg: "expected `)`".into(),
                });
            }
            skip_ws(bytes, pos);
        }
        if *pos < bytes.len() && bytes[*pos] == b',' {
            *pos += 1;
            continue;
        }
        return Ok(());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leave_schema() -> Arc<Schema> {
        Arc::new(Schema::parse("a(n, d, p(b, e)), s, d(a, r(r)), f").unwrap())
    }

    #[test]
    fn empty_instance() {
        let i = Instance::empty(leave_schema());
        assert_eq!(i.live_count(), 1);
        assert!(i.is_leaf(InstNodeId::ROOT));
        assert_eq!(i.label(InstNodeId::ROOT), "r");
        assert_eq!(i.iso_code(), "");
    }

    #[test]
    fn figure2a_parses() {
        // Fig. 2(a): a submitted application with two periods.
        let i = Instance::parse(leave_schema(), "a(n, d, p(b, e), p(b, e)), s").unwrap();
        assert_eq!(i.live_count(), 11);
        assert_eq!(i.iso_code(), "a(d,n,p(b,e),p(b,e)),s");
    }

    #[test]
    fn figure2b_parses() {
        // Fig. 2(b): a rejected application for a single period.
        let i = Instance::parse(leave_schema(), "a(n, d, p(b, e)), s, d(r), f").unwrap();
        assert_eq!(i.live_count(), 11);
        assert!(i.iso_code().contains("d(r)"));
    }

    #[test]
    fn schema_mismatch_rejected() {
        let mut i = Instance::empty(leave_schema());
        assert!(i.add_child_by_label(InstNodeId::ROOT, "n").is_err());
        let a = i.add_child_by_label(InstNodeId::ROOT, "a").unwrap();
        assert!(i.add_child_by_label(a, "s").is_err());
        assert!(i.add_child_by_label(a, "n").is_ok());
    }

    #[test]
    fn duplicate_siblings_allowed_in_instances() {
        // Unlike schemas, instances may repeat sibling labels (Ex. 3.2:
        // "fields in a form can contain zero or more elements").
        let mut i = Instance::empty(leave_schema());
        let a = i.add_child_by_label(InstNodeId::ROOT, "a").unwrap();
        let p1 = i.add_child_by_label(a, "p").unwrap();
        let p2 = i.add_child_by_label(a, "p").unwrap();
        assert_ne!(p1, p2);
        assert_eq!(i.children_with_label(a, "p").count(), 2);
    }

    #[test]
    fn leaf_deletion_only() {
        let mut i = Instance::parse(leave_schema(), "a(n)").unwrap();
        let a = i.children_with_label(InstNodeId::ROOT, "a").next().unwrap();
        let n = i.children_with_label(a, "n").next().unwrap();
        assert!(matches!(i.remove_leaf(a), Err(CoreError::NotALeaf)));
        i.remove_leaf(n).unwrap();
        assert!(i.is_leaf(a));
        i.remove_leaf(a).unwrap();
        assert_eq!(i.live_count(), 1);
        assert!(matches!(
            i.remove_leaf(InstNodeId::ROOT),
            Err(CoreError::CannotDeleteRoot)
        ));
    }

    #[test]
    fn ids_stable_across_deletion() {
        let mut i = Instance::empty(leave_schema());
        let a = i.add_child_by_label(InstNodeId::ROOT, "a").unwrap();
        let s = i.add_child_by_label(InstNodeId::ROOT, "s").unwrap();
        i.remove_leaf(a).unwrap();
        assert!(!i.is_live(a));
        assert!(i.is_live(s));
        assert_eq!(i.label(s), "s");
    }

    #[test]
    fn compact_preserves_iso() {
        let mut i = Instance::parse(leave_schema(), "a(n, p(b), p(e)), s").unwrap();
        let a = i.children_with_label(InstNodeId::ROOT, "a").next().unwrap();
        let n = i.children_with_label(a, "n").next().unwrap();
        i.remove_leaf(n).unwrap();
        let c = i.compact();
        assert_eq!(c.live_count(), c.slot_count());
        assert_eq!(c.iso_code(), i.iso_code());
    }

    #[test]
    fn iso_code_ignores_sibling_order() {
        let s = leave_schema();
        let i1 = Instance::parse(s.clone(), "a(p(b), p(e))").unwrap();
        let i2 = Instance::parse(s, "a(p(e), p(b))").unwrap();
        assert!(i1.isomorphic(&i2));
    }

    #[test]
    fn iso_code_sees_multiplicity() {
        let s = leave_schema();
        let i1 = Instance::parse(s.clone(), "a(p, p)").unwrap();
        let i2 = Instance::parse(s, "a(p)").unwrap();
        assert!(!i1.isomorphic(&i2));
    }

    #[test]
    fn from_labelled_tree_checks_homomorphism() {
        let s = leave_schema();
        let ok = Instance::from_labelled_tree(
            s.clone(),
            &[
                ("r".into(), usize::MAX),
                ("a".into(), 0),
                ("p".into(), 1),
                ("b".into(), 2),
            ],
        );
        assert!(ok.is_ok());
        let bad = Instance::from_labelled_tree(s, &[("r".into(), usize::MAX), ("b".into(), 0)]);
        assert!(bad.is_err());
    }

    #[test]
    fn render_shows_tree() {
        let i = Instance::parse(leave_schema(), "a(n, p(b, e)), s").unwrap();
        let r = i.render();
        assert!(r.starts_with("r\n"));
        assert!(r.contains("|-- a") || r.contains("`-- a"));
    }
}
