//! The path-formula language of Def. 3.4, a fragment of XPath's abbreviated
//! syntax:
//!
//! ```text
//! F ::= P | ¬F | (F ∧ F) | (F ∨ F)
//! P ::= .. | L | (P/P) | P[F]
//! ```
//!
//! Semantics (Def. 3.5): `n ⊨ p` iff some node is reachable from `n` along
//! `p`; `..` steps to the parent, `l` to a child labelled `l`, `p/q`
//! composes, and `p[F]` filters the end node by `F`.
//!
//! Two pragmatic extensions, both documented deviations from the paper's
//! grammar:
//!
//! * Constants [`Formula::True`] / [`Formula::False`]. The paper uses
//!   meta-level "always true" access rules (e.g. Thm 5.3: "The access rules
//!   for addition and deletion of y¹…yⁿ are always true"); the constants
//!   make those rules first-class. Both are *positive* (negation-free).
//! * `↔` (iff) is **parser sugar** that immediately expands to
//!   `(a ∧ b) ∨ (¬a ∧ ¬b)`; it never appears in the AST. The Thm 5.3
//!   construction uses it heavily (`yᵢⱼ ↔ r/yᵏⱼ`).

mod eval;
mod normal;
mod parser;
mod simplify;

pub use eval::{holds, holds_at_root, path_targets};
pub use normal::StepFormula;

use std::fmt;

/// A node formula `F` of Def. 3.4 (plus the two documented extensions).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    /// Always true (extension; see module docs).
    True,
    /// Always false (extension; see module docs).
    False,
    /// A path expression `P`: true iff some end node is reachable.
    Path(PathExpr),
    /// Negation `¬F`.
    Not(Box<Formula>),
    /// Conjunction `F ∧ F`.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction `F ∨ F`.
    Or(Box<Formula>, Box<Formula>),
}

/// A path expression `P` of Def. 3.4.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PathExpr {
    /// `..` — step to the parent node.
    Parent,
    /// `l` — step to a child labelled `l`.
    Label(String),
    /// `p/q` — composition.
    Seq(Box<PathExpr>, Box<PathExpr>),
    /// `p[F]` — filter the end node of `p` by `F`.
    Filter(Box<PathExpr>, Box<Formula>),
}

impl Formula {
    /// Parse the concrete syntax; see [`mod@crate::formula`] docs and the
    /// parser module for the grammar.
    ///
    /// ```
    /// # use idar_core::Formula;
    /// let f = Formula::parse("!s & a[n & d & p] & !a/p[!b | !e]").unwrap();
    /// assert!(!f.is_positive());
    /// ```
    pub fn parse(text: &str) -> crate::error::Result<Formula> {
        parser::parse(text)
    }

    /// The atomic path formula `l` for a single label.
    pub fn label(l: &str) -> Formula {
        Formula::Path(PathExpr::Label(l.to_string()))
    }

    /// The path formula for a `/`-separated label path, e.g. `"a/p/b"`.
    /// Leading `..` steps are supported: `"../../s"`.
    pub fn path(path: &str) -> Formula {
        let mut steps = path.split('/');
        let first = steps.next().expect("non-empty path");
        let mut p = PathExpr::step(first);
        for s in steps {
            p = PathExpr::Seq(Box::new(p), Box::new(PathExpr::step(s)));
        }
        Formula::Path(p)
    }

    /// `¬self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// `self ∧ rhs`.
    pub fn and(self, rhs: Formula) -> Formula {
        Formula::And(Box::new(self), Box::new(rhs))
    }

    /// `self ∨ rhs`.
    pub fn or(self, rhs: Formula) -> Formula {
        Formula::Or(Box::new(self), Box::new(rhs))
    }

    /// `self ↔ rhs`, expanded to `(self ∧ rhs) ∨ (¬self ∧ ¬rhs)`.
    pub fn iff(self, rhs: Formula) -> Formula {
        let a = self.clone();
        let b = rhs.clone();
        (self.and(rhs)).or(a.not().and(b.not()))
    }

    /// Conjunction of an iterator (`True` if empty).
    pub fn conj<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        let mut it = items.into_iter();
        match it.next() {
            None => Formula::True,
            Some(first) => it.fold(first, Formula::and),
        }
    }

    /// Disjunction of an iterator (`False` if empty).
    pub fn disj<I: IntoIterator<Item = Formula>>(items: I) -> Formula {
        let mut it = items.into_iter();
        match it.next() {
            None => Formula::False,
            Some(first) => it.fold(first, Formula::or),
        }
    }

    /// Is this formula *positive* (negation-free)? The `A+` / `φ+`
    /// fragments of Sec. 3.5 require positivity; a positive formula is
    /// monotone under edge additions, which Thm 5.5 exploits.
    ///
    /// Negations anywhere — including inside path filters — count.
    pub fn is_positive(&self) -> bool {
        match self {
            Formula::True | Formula::False => true,
            Formula::Path(p) => p.is_positive(),
            Formula::Not(_) => false,
            Formula::And(a, b) | Formula::Or(a, b) => a.is_positive() && b.is_positive(),
        }
    }

    /// Number of AST nodes (formula and path constructors both count).
    /// Used for the witness bounds of Lemma 4.4 / Thm 5.2.
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False => 1,
            Formula::Path(p) => 1 + p.size(),
            Formula::Not(f) => 1 + f.size(),
            Formula::And(a, b) | Formula::Or(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// All labels mentioned anywhere in the formula (sorted, deduplicated).
    pub fn labels(&self) -> Vec<&str> {
        let mut out = self.label_occurrences();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Every label occurrence (one entry per path step, duplicates kept).
    /// The Thm 5.2 witness bound counts these: each occurrence can demand
    /// at most one fresh sibling.
    pub fn label_occurrences(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_labels(&mut out);
        out
    }

    fn collect_labels<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Path(p) => p.collect_labels(out),
            Formula::Not(f) => f.collect_labels(out),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.collect_labels(out);
                b.collect_labels(out);
            }
        }
    }

    /// Rewrite `self` so that it is evaluated at the *parent* of the node it
    /// was written for, i.e. produce `ψ` with `n ⊨ ψ ⇔ parent(n) ⊨ self`.
    ///
    /// This is `..[self]` — used when moving a rule's evaluation point one
    /// level up (the Cor. 4.2 deletion-elimination construction needs it:
    /// `A(del, e)` is evaluated at the edge's parent, but the replacing
    /// `deleted`-marker addition is evaluated at the edge's end node).
    pub fn at_parent(self) -> Formula {
        Formula::Path(PathExpr::Filter(Box::new(PathExpr::Parent), Box::new(self)))
    }

    /// Substitute every occurrence of label `from` (as a path step) with the
    /// path expression `to`. Used by reduction constructions that re-home a
    /// propositional variable to a path (e.g. Thm 5.3's ψ′).
    pub fn substitute_label(&self, from: &str, to: &PathExpr) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Path(p) => Formula::Path(p.substitute_label(from, to)),
            Formula::Not(f) => Formula::Not(Box::new(f.substitute_label(from, to))),
            Formula::And(a, b) => Formula::And(
                Box::new(a.substitute_label(from, to)),
                Box::new(b.substitute_label(from, to)),
            ),
            Formula::Or(a, b) => Formula::Or(
                Box::new(a.substitute_label(from, to)),
                Box::new(b.substitute_label(from, to)),
            ),
        }
    }
}

impl PathExpr {
    /// A single step: `".."` or a label.
    pub fn step(s: &str) -> PathExpr {
        if s == ".." {
            PathExpr::Parent
        } else {
            PathExpr::Label(s.to_string())
        }
    }

    /// `self/rhs`.
    pub fn then(self, rhs: PathExpr) -> PathExpr {
        PathExpr::Seq(Box::new(self), Box::new(rhs))
    }

    /// `self[f]`.
    pub fn filtered(self, f: Formula) -> PathExpr {
        PathExpr::Filter(Box::new(self), Box::new(f))
    }

    /// A chain of `k` parent steps followed by a label step — the
    /// `../…/../l` shape used throughout Thm 5.3.
    pub fn ancestors_then(k: usize, label: &str) -> PathExpr {
        let mut p = None;
        for _ in 0..k {
            p = Some(match p {
                None => PathExpr::Parent,
                Some(q) => PathExpr::Seq(Box::new(q), Box::new(PathExpr::Parent)),
            });
        }
        match p {
            None => PathExpr::Label(label.to_string()),
            Some(q) => PathExpr::Seq(Box::new(q), Box::new(PathExpr::Label(label.to_string()))),
        }
    }

    fn is_positive(&self) -> bool {
        match self {
            PathExpr::Parent | PathExpr::Label(_) => true,
            PathExpr::Seq(p, q) => p.is_positive() && q.is_positive(),
            PathExpr::Filter(p, f) => p.is_positive() && f.is_positive(),
        }
    }

    fn size(&self) -> usize {
        match self {
            PathExpr::Parent | PathExpr::Label(_) => 1,
            PathExpr::Seq(p, q) => 1 + p.size() + q.size(),
            PathExpr::Filter(p, f) => 1 + p.size() + f.size(),
        }
    }

    fn collect_labels<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            PathExpr::Parent => {}
            PathExpr::Label(l) => out.push(l),
            PathExpr::Seq(p, q) => {
                p.collect_labels(out);
                q.collect_labels(out);
            }
            PathExpr::Filter(p, f) => {
                p.collect_labels(out);
                f.collect_labels(out);
            }
        }
    }

    fn substitute_label(&self, from: &str, to: &PathExpr) -> PathExpr {
        match self {
            PathExpr::Parent => PathExpr::Parent,
            PathExpr::Label(l) if l == from => to.clone(),
            PathExpr::Label(l) => PathExpr::Label(l.clone()),
            PathExpr::Seq(p, q) => PathExpr::Seq(
                Box::new(p.substitute_label(from, to)),
                Box::new(q.substitute_label(from, to)),
            ),
            PathExpr::Filter(p, f) => PathExpr::Filter(
                Box::new(p.substitute_label(from, to)),
                Box::new(f.substitute_label(from, to)),
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Display: minimal-parenthesis pretty printing, re-parseable.
// Precedence: Or(1) < And(2) < Not(3) < atoms. Paths print as step chains.
// ---------------------------------------------------------------------------

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, 0)
    }
}

impl Formula {
    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Path(p) => write!(f, "{p}"),
            Formula::Not(inner) => {
                write!(f, "!")?;
                inner.fmt_prec(f, 3)
            }
            Formula::And(a, b) => {
                let need = prec > 2;
                if need {
                    write!(f, "(")?;
                }
                // The parser is left-associative, so right-nested `And`
                // needs parentheses to round-trip structurally.
                a.fmt_prec(f, 2)?;
                write!(f, " & ")?;
                b.fmt_prec(f, 3)?;
                if need {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Formula::Or(a, b) => {
                let need = prec > 1;
                if need {
                    write!(f, "(")?;
                }
                a.fmt_prec(f, 1)?;
                write!(f, " | ")?;
                b.fmt_prec(f, 2)?;
                if need {
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathExpr::Parent => write!(f, ".."),
            PathExpr::Label(l) => write!(f, "{l}"),
            PathExpr::Seq(p, q) => write!(f, "{p}/{q}"),
            PathExpr::Filter(p, inner) => match **p {
                // Filters on non-atomic paths need parentheses to reparse:
                // `(a/b)[f]` vs `a/b[f]`.
                PathExpr::Parent | PathExpr::Label(_) | PathExpr::Filter(..) => {
                    write!(f, "{p}[{inner}]")
                }
                PathExpr::Seq(..) => write!(f, "({p})[{inner}]"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let f = Formula::label("a").and(Formula::label("b").not());
        assert_eq!(f.to_string(), "a & !b");
        assert!(!f.is_positive());
        assert!(Formula::label("a").or(Formula::label("b")).is_positive());
    }

    #[test]
    fn path_builder() {
        let f = Formula::path("a/p/b");
        assert_eq!(f.to_string(), "a/p/b");
        let g = Formula::path("../../s");
        assert_eq!(g.to_string(), "../../s");
    }

    #[test]
    fn conj_disj_empty() {
        assert_eq!(Formula::conj(std::iter::empty()), Formula::True);
        assert_eq!(Formula::disj(std::iter::empty()), Formula::False);
    }

    #[test]
    fn iff_expands() {
        let f = Formula::label("a").iff(Formula::label("b"));
        assert_eq!(f.to_string(), "a & b | !a & !b");
    }

    #[test]
    fn size_counts_paths() {
        // a/p[b] = Path( Seq(a, Filter(p, b)) ):
        // Path=1 + Seq=1 + Label a=1 + Filter=1 + Label p=1 + (Path b=1+1)
        let f = Formula::parse("a/p[b]").unwrap();
        assert_eq!(f.size(), 7);
    }

    #[test]
    fn labels_collected_sorted_dedup() {
        let f = Formula::parse("b & a[b] | !c/a").unwrap();
        assert_eq!(f.labels(), vec!["a", "b", "c"]);
    }

    #[test]
    fn ancestors_then_shapes() {
        assert_eq!(PathExpr::ancestors_then(0, "x").to_string(), "x");
        assert_eq!(PathExpr::ancestors_then(2, "x").to_string(), "../../x");
    }

    #[test]
    fn substitute_label_rewrites_steps() {
        let f = Formula::parse("x & a[x]").unwrap();
        let to = PathExpr::ancestors_then(1, "y");
        let g = f.substitute_label("x", &to);
        assert_eq!(g.to_string(), "../y & a[../y]");
    }

    #[test]
    fn positivity_looks_inside_filters() {
        assert!(Formula::parse("a[b[c]]").unwrap().is_positive());
        assert!(!Formula::parse("a[!b]").unwrap().is_positive());
        assert!(Formula::parse("true & a").unwrap().is_positive());
    }

    #[test]
    fn display_parens_minimal() {
        let f = Formula::parse("(a | b) & c").unwrap();
        assert_eq!(f.to_string(), "(a | b) & c");
        let g = Formula::parse("a | b & c").unwrap();
        assert_eq!(g.to_string(), "a | b & c");
        let h = Formula::parse("!(a & b)").unwrap();
        assert_eq!(h.to_string(), "!(a & b)");
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "a & b | !c",
            "a/p[b & !e]/..",
            "!a/p[!b | !e]",
            "..[s]/a",
            "true | false",
            "d[!(a & r)]",
        ] {
            let f = Formula::parse(s).unwrap();
            let g = Formula::parse(&f.to_string()).unwrap();
            assert_eq!(f, g, "roundtrip failed for {s}");
        }
    }
}
