//! The *step normal form* of Lemma 4.4.
//!
//! The lemma's proof rewrites any formula — in linear time and to linear
//! size — into the grammar
//!
//! ```text
//! F' ::= P' | ¬F' | F' ∧ F' | F' ∨ F'
//! P' ::= L | .. | L[F'] | ..[F']
//! ```
//!
//! using the equivalences
//!
//! ```text
//! (p1/p2)[ψ]  ≡ p1[p2[ψ]]         (p1[ψ1])[ψ2] ≡ p1[ψ1 ∧ ψ2]
//! (p1/p2)/p3  ≡ p1/(p2/p3)        (p1[ψ])/p2   ≡ p1[ψ ∧ p2]
//! l/p         ≡ l[p]              ../p         ≡ ..[p]
//! ```
//!
//! In step normal form every path expression is a *single* child or parent
//! step with an optional residual filter, which is what makes the witness
//! construction of Lemma 4.4 (and the tableau of Cor. 4.5) possible: each
//! obligation speaks about the current node, one child, or the parent.

use super::{Formula, PathExpr};
use crate::instance::{InstNodeId, Instance};

/// A formula in the Lemma 4.4 step normal form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StepFormula {
    /// `true` (extension constant, carried through normalisation).
    True,
    /// `false`.
    False,
    /// `l` — some child is labelled `l`.
    Child(String),
    /// `..` — the node has a parent.
    Parent,
    /// `l[ψ]` — some child labelled `l` satisfies `ψ`.
    ChildSat(String, Box<StepFormula>),
    /// `..[ψ]` — the node has a parent and it satisfies `ψ`.
    ParentSat(Box<StepFormula>),
    /// `¬ψ`.
    Not(Box<StepFormula>),
    /// `ψ ∧ ψ`.
    And(Box<StepFormula>, Box<StepFormula>),
    /// `ψ ∨ ψ`.
    Or(Box<StepFormula>, Box<StepFormula>),
}

impl StepFormula {
    /// Normalise an arbitrary formula (Lemma 4.4 rewriting, left-to-right).
    /// The result has size linear in the input's size.
    pub fn from_formula(f: &Formula) -> StepFormula {
        match f {
            Formula::True => StepFormula::True,
            Formula::False => StepFormula::False,
            Formula::Path(p) => norm_path(p),
            Formula::Not(g) => StepFormula::Not(Box::new(Self::from_formula(g))),
            Formula::And(a, b) => StepFormula::And(
                Box::new(Self::from_formula(a)),
                Box::new(Self::from_formula(b)),
            ),
            Formula::Or(a, b) => StepFormula::Or(
                Box::new(Self::from_formula(a)),
                Box::new(Self::from_formula(b)),
            ),
        }
    }

    /// Convert back into the surface AST (already in the `F'` grammar).
    pub fn to_formula(&self) -> Formula {
        match self {
            StepFormula::True => Formula::True,
            StepFormula::False => Formula::False,
            StepFormula::Child(l) => Formula::Path(PathExpr::Label(l.clone())),
            StepFormula::Parent => Formula::Path(PathExpr::Parent),
            StepFormula::ChildSat(l, f) => Formula::Path(PathExpr::Filter(
                Box::new(PathExpr::Label(l.clone())),
                Box::new(f.to_formula()),
            )),
            StepFormula::ParentSat(f) => Formula::Path(PathExpr::Filter(
                Box::new(PathExpr::Parent),
                Box::new(f.to_formula()),
            )),
            StepFormula::Not(f) => Formula::Not(Box::new(f.to_formula())),
            StepFormula::And(a, b) => {
                Formula::And(Box::new(a.to_formula()), Box::new(b.to_formula()))
            }
            StepFormula::Or(a, b) => {
                Formula::Or(Box::new(a.to_formula()), Box::new(b.to_formula()))
            }
        }
    }

    /// Push negations down to path atoms (negation normal form). The result
    /// contains `Not` only directly above `Child`, `Parent`, `ChildSat`,
    /// `ParentSat` — the shape the Lemma 4.4 *selection* rules assume.
    pub fn nnf(&self) -> StepFormula {
        self.nnf_inner(false)
    }

    fn nnf_inner(&self, neg: bool) -> StepFormula {
        match self {
            StepFormula::True => {
                if neg {
                    StepFormula::False
                } else {
                    StepFormula::True
                }
            }
            StepFormula::False => {
                if neg {
                    StepFormula::True
                } else {
                    StepFormula::False
                }
            }
            StepFormula::Not(f) => f.nnf_inner(!neg),
            StepFormula::And(a, b) => {
                let (x, y) = (a.nnf_inner(neg), b.nnf_inner(neg));
                if neg {
                    StepFormula::Or(Box::new(x), Box::new(y))
                } else {
                    StepFormula::And(Box::new(x), Box::new(y))
                }
            }
            StepFormula::Or(a, b) => {
                let (x, y) = (a.nnf_inner(neg), b.nnf_inner(neg));
                if neg {
                    StepFormula::And(Box::new(x), Box::new(y))
                } else {
                    StepFormula::Or(Box::new(x), Box::new(y))
                }
            }
            atom => {
                // Path atoms keep their *inner* formulas un-negated: `¬l[ψ]`
                // means "no l-child satisfies ψ", not "some child fails ψ".
                if neg {
                    StepFormula::Not(Box::new(atom.clone()))
                } else {
                    atom.clone()
                }
            }
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            StepFormula::True
            | StepFormula::False
            | StepFormula::Child(_)
            | StepFormula::Parent => 1,
            StepFormula::ChildSat(_, f) | StepFormula::ParentSat(f) | StepFormula::Not(f) => {
                1 + f.size()
            }
            StepFormula::And(a, b) | StepFormula::Or(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Direct evaluation (same semantics as evaluating `to_formula()`).
    pub fn holds(&self, inst: &Instance, n: InstNodeId) -> bool {
        match self {
            StepFormula::True => true,
            StepFormula::False => false,
            StepFormula::Child(l) => inst.children_with_label(n, l).next().is_some(),
            StepFormula::Parent => inst.parent(n).is_some(),
            StepFormula::ChildSat(l, f) => inst.children_with_label(n, l).any(|c| f.holds(inst, c)),
            StepFormula::ParentSat(f) => match inst.parent(n) {
                Some(p) => f.holds(inst, p),
                None => false,
            },
            StepFormula::Not(f) => !f.holds(inst, n),
            StepFormula::And(a, b) => a.holds(inst, n) && b.holds(inst, n),
            StepFormula::Or(a, b) => a.holds(inst, n) || b.holds(inst, n),
        }
    }

    /// The distinct labels appearing as child steps at the *top level* of
    /// this formula (not inside nested `ChildSat` bodies). Used to bound
    /// witness branching per label (Lemma 4.4).
    pub fn top_level_child_labels(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_top_labels(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_top_labels<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            StepFormula::Child(l) | StepFormula::ChildSat(l, _) => out.push(l),
            StepFormula::Not(f) => f.collect_top_labels(out),
            StepFormula::And(a, b) | StepFormula::Or(a, b) => {
                a.collect_top_labels(out);
                b.collect_top_labels(out);
            }
            _ => {}
        }
    }
}

/// Normalise a path expression to one of the four `P'` atoms.
///
/// Implemented in continuation-passing style: `norm_with(p, rest)` produces
/// the normal form of "`p`, whose end node must additionally satisfy
/// `rest`". This realises all six rewrite rules at once — in particular
/// `(p1/p2)/p3 ≡ p1/(p2/p3)` falls out of passing the tail as the
/// continuation rather than conjoining it onto the head's filter.
fn norm_path(p: &PathExpr) -> StepFormula {
    norm_with(p, None)
}

fn norm_with(p: &PathExpr, rest: Option<StepFormula>) -> StepFormula {
    match p {
        PathExpr::Parent => match rest {
            None => StepFormula::Parent,
            Some(r) => StepFormula::ParentSat(Box::new(r)),
        },
        PathExpr::Label(l) => match rest {
            None => StepFormula::Child(l.clone()),
            Some(r) => StepFormula::ChildSat(l.clone(), Box::new(r)),
        },
        // p1/p2 with continuation rest ≡ p1 with continuation (p2 with rest)
        PathExpr::Seq(p1, p2) => {
            let tail = norm_with(p2, rest);
            norm_with(p1, Some(tail))
        }
        // p1[f] with continuation rest ≡ p1 with continuation (f ∧ rest)
        PathExpr::Filter(p1, f) => {
            let cond = StepFormula::from_formula(f);
            let cond = match rest {
                None => cond,
                Some(r) => StepFormula::And(Box::new(cond), Box::new(r)),
            };
            norm_with(p1, Some(cond))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use std::sync::Arc;

    fn norm(s: &str) -> StepFormula {
        StepFormula::from_formula(&Formula::parse(s).unwrap())
    }

    #[test]
    fn seq_becomes_nested_filter() {
        // a/p/b ≡ a[p[b]]
        assert_eq!(norm("a/p/b").to_formula().to_string(), "a[p[b]]");
    }

    #[test]
    fn filter_merging() {
        // a[x][y] ≡ a[x ∧ y]
        assert_eq!(norm("a[x][y]").to_formula().to_string(), "a[x & y]");
        // (a[x])/b ≡ a[x ∧ b]
        assert_eq!(norm("a[x]/b").to_formula().to_string(), "a[x & b]");
    }

    #[test]
    fn parent_steps() {
        assert_eq!(norm("../../s").to_formula().to_string(), "..[..[s]]");
        assert_eq!(norm("..[x]/y").to_formula().to_string(), "..[x & y]");
    }

    #[test]
    fn size_stays_linear() {
        // Repeated normalisation must not blow up.
        let f = Formula::parse("(a/b/c/d)[x & y]/e[..[z]]").unwrap();
        let n = StepFormula::from_formula(&f);
        assert!(n.size() <= 3 * f.size(), "{} vs {}", n.size(), f.size());
    }

    #[test]
    fn nnf_pushes_negation() {
        let f = norm("!(a & !b)").nnf();
        assert_eq!(f.to_formula().to_string(), "!a | b");
        // Negation stops at path atoms.
        let g = norm("!a[b | c]").nnf();
        assert_eq!(g.to_formula().to_string(), "!a[b | c]");
    }

    #[test]
    fn semantics_preserved_on_examples() {
        let schema = Arc::new(Schema::parse("a(n, d, p(b, e)), s, d(a, r(r)), f").unwrap());
        let instances = [
            "",
            "a(n)",
            "a(n, d, p(b, e)), s",
            "a(n, p(b), p(b, e)), s, d(r(r)), f",
            "a(p, p(b, e), p(e)), d(a, r)",
        ];
        let formulas = [
            "!s & a[n & d & p] & !a/p[!b | !e]",
            "d[a | r] & !f",
            "a/p[!b | !e]",
            "!f | d[a | r]",
            "d[!(a & r)]",
            "a[../s]",
            "a/p/../n",
            "a[p[../../f | b]]",
        ];
        for it in &instances {
            let inst = Instance::parse(schema.clone(), it).unwrap();
            for ft in &formulas {
                let f = Formula::parse(ft).unwrap();
                let n = StepFormula::from_formula(&f);
                let direct = crate::formula::holds_at_root(&inst, &f);
                assert_eq!(
                    direct,
                    n.holds(&inst, InstNodeId::ROOT),
                    "normal form diverges for {ft} on {it}"
                );
                assert_eq!(
                    direct,
                    crate::formula::holds_at_root(&inst, &n.to_formula()),
                    "to_formula diverges for {ft} on {it}"
                );
                // nnf preserves semantics too.
                assert_eq!(
                    direct,
                    n.nnf().holds(&inst, InstNodeId::ROOT),
                    "nnf diverges for {ft} on {it}"
                );
            }
        }
    }

    #[test]
    fn top_level_child_labels() {
        let f = norm("a[b] & !c | ..[d]");
        assert_eq!(f.top_level_child_labels(), vec!["a", "c"]);
    }
}
