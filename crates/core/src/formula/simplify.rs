//! Formula simplification.
//!
//! The reduction compilers (Thm 4.1, Thm 4.6, Cor 4.7, …) generate guards
//! mechanically — long conjunction/disjunction chains studded with
//! constants and repeated atoms. Simplification keeps them readable and
//! makes every later evaluation cheaper. The rewrite is semantics-
//! preserving (property-tested in `tests/`) and positivity-preserving
//! (it never *introduces* a negation, so a simplified `A+` rule stays
//! in `A+`).
//!
//! Rules applied bottom-up to a fixpoint in one pass:
//!
//! * constant folding: `¬true → false`, `true ∧ f → f`, `false ∧ f →
//!   false`, `true ∨ f → true`, `false ∨ f → f`;
//! * double negation: `¬¬f → f`;
//! * idempotence: `f ∧ f → f`, `f ∨ f → f` (adjacent in the flattened
//!   chain, by structural equality);
//! * complement: `f ∧ ¬f → false`, `f ∨ ¬f → true` (anywhere in the
//!   flattened chain);
//! * filter folding: `p[true] → p`, `p[false] → false` (as a path the
//!   latter has no targets — the enclosing formula collapses).

use super::{Formula, PathExpr};

impl Formula {
    /// Return a semantics-equivalent, usually smaller formula. Idempotent.
    pub fn simplified(&self) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Path(p) => match simplify_path(p) {
                // `p[false]` anywhere kills the whole path atom.
                None => Formula::False,
                Some(p) => Formula::Path(p),
            },
            Formula::Not(g) => match g.simplified() {
                Formula::True => Formula::False,
                Formula::False => Formula::True,
                Formula::Not(inner) => *inner, // ¬¬f
                other => Formula::Not(Box::new(other)),
            },
            Formula::And(..) => {
                let mut conjuncts = Vec::new();
                flatten_and(self, &mut conjuncts);
                rebuild(conjuncts, /*is_and=*/ true)
            }
            Formula::Or(..) => {
                let mut disjuncts = Vec::new();
                flatten_or(self, &mut disjuncts);
                rebuild(disjuncts, /*is_and=*/ false)
            }
        }
    }
}

fn flatten_and(f: &Formula, out: &mut Vec<Formula>) {
    match f {
        Formula::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other.simplified()),
    }
}

fn flatten_or(f: &Formula, out: &mut Vec<Formula>) {
    match f {
        Formula::Or(a, b) => {
            flatten_or(a, out);
            flatten_or(b, out);
        }
        other => out.push(other.simplified()),
    }
}

/// Rebuild a flattened conjunction/disjunction with constant folding,
/// deduplication and complement detection.
fn rebuild(items: Vec<Formula>, is_and: bool) -> Formula {
    let (absorb, neutral) = if is_and {
        (Formula::False, Formula::True)
    } else {
        (Formula::True, Formula::False)
    };
    let mut kept: Vec<Formula> = Vec::with_capacity(items.len());
    for item in items {
        if item == absorb {
            return absorb;
        }
        if item == neutral {
            continue;
        }
        if kept.contains(&item) {
            continue; // idempotence
        }
        // Complement: f together with ¬f.
        let complement = match &item {
            Formula::Not(inner) => (**inner).clone(),
            other => Formula::Not(Box::new(other.clone())),
        };
        if kept.contains(&complement) {
            return absorb; // f ∧ ¬f = false / f ∨ ¬f = true
        }
        kept.push(item);
    }
    let mut it = kept.into_iter();
    match it.next() {
        None => neutral,
        Some(first) => it.fold(first, |acc, x| if is_and { acc.and(x) } else { acc.or(x) }),
    }
}

/// Simplify a path expression; `None` means the path provably has no
/// targets (a `[false]` filter somewhere).
fn simplify_path(p: &PathExpr) -> Option<PathExpr> {
    match p {
        PathExpr::Parent => Some(PathExpr::Parent),
        PathExpr::Label(l) => Some(PathExpr::Label(l.clone())),
        PathExpr::Seq(a, b) => {
            let a = simplify_path(a)?;
            let b = simplify_path(b)?;
            Some(PathExpr::Seq(Box::new(a), Box::new(b)))
        }
        PathExpr::Filter(base, f) => {
            let base = simplify_path(base)?;
            match f.simplified() {
                Formula::True => Some(base),
                Formula::False => None,
                other => Some(PathExpr::Filter(Box::new(base), Box::new(other))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::schema::Schema;
    use std::sync::Arc;

    fn simp(s: &str) -> String {
        Formula::parse(s).unwrap().simplified().to_string()
    }

    #[test]
    fn constant_folding() {
        assert_eq!(simp("true & a"), "a");
        assert_eq!(simp("a & true"), "a");
        assert_eq!(simp("false & a"), "false");
        assert_eq!(simp("true | a"), "true");
        assert_eq!(simp("false | a"), "a");
        assert_eq!(simp("!true"), "false");
        assert_eq!(simp("!false"), "true");
    }

    #[test]
    fn double_negation() {
        assert_eq!(simp("!!a"), "a");
        assert_eq!(simp("!!!a"), "!a");
        assert_eq!(simp("!!(a & b)"), "a & b");
    }

    #[test]
    fn idempotence_and_complement() {
        assert_eq!(simp("a & a"), "a");
        assert_eq!(simp("a | a | a"), "a");
        assert_eq!(simp("a & !a"), "false");
        assert_eq!(simp("a | !a"), "true");
        assert_eq!(simp("a & b & !a"), "false");
        assert_eq!(simp("(a | b) & (a | b)"), "a | b");
    }

    #[test]
    fn filters_fold() {
        assert_eq!(simp("a[true]"), "a");
        assert_eq!(simp("a[false]"), "false");
        assert_eq!(simp("a[b & true]"), "a[b]");
        assert_eq!(simp("a[b | !b]"), "a");
        assert_eq!(simp("a/b[false]/c"), "false");
        assert_eq!(simp("!a[false]"), "true");
    }

    #[test]
    fn nested_chains() {
        assert_eq!(simp("(a & true) & (b & true)"), "a & b");
        assert_eq!(simp("a & (b & (c & true))"), "a & b & c");
        assert_eq!(simp("false | (a | false) | b"), "a | b");
    }

    #[test]
    fn preserves_positivity() {
        for s in ["a & true", "a[b | false]", "a | a", "x & (y | true)"] {
            let f = Formula::parse(s).unwrap();
            assert!(f.is_positive());
            assert!(f.simplified().is_positive(), "{s}");
        }
    }

    #[test]
    fn idempotent() {
        for s in [
            "!(a & !a) | b[c & true]",
            "a & b & a & !c",
            "x[y[z | false] & true]",
        ] {
            let once = Formula::parse(s).unwrap().simplified();
            assert_eq!(once, once.simplified(), "{s}");
        }
    }

    #[test]
    fn semantics_preserved_on_examples() {
        let schema = Arc::new(Schema::parse("a(b, c), s, d").unwrap());
        let instances = ["", "a", "a(b), s", "a(b, c), s, d", "a(c), d"];
        let formulas = [
            "a[b & true] | false",
            "!(!a) & (s | !s)",
            "a[b | b] & !a[false]",
            "(s & true) | (d & !d)",
            "a & a & s",
        ];
        for it in instances {
            let inst = Instance::parse(schema.clone(), it).unwrap();
            for ft in formulas {
                let f = Formula::parse(ft).unwrap();
                assert_eq!(
                    crate::formula::holds_at_root(&inst, &f),
                    crate::formula::holds_at_root(&inst, &f.simplified()),
                    "{ft} on {it}"
                );
            }
        }
    }

    #[test]
    fn shrinks_generated_guards() {
        // A Thm 4.6-style mechanical guard shrinks substantially.
        let g =
            Formula::parse("!(t0 | t1 | t2) & !(t0 | t1 | t2) & n1 & (true & n2) | false").unwrap();
        let s = g.simplified();
        assert!(s.size() < g.size());
        assert_eq!(s.to_string(), "!(t0 | t1 | t2) & n1 & n2");
    }
}
