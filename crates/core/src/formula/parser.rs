//! Recursive-descent parser for the concrete formula syntax.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! formula  := iff
//! iff      := or ( ("<->" | "↔" | "iff") or )*          -- sugar, expanded
//! or       := and ( ("|" | "||" | "or" | "∨") and )*
//! and      := unary ( ("&" | "&&" | "and" | "∧") unary )*
//! unary    := ("!" | "not" | "¬") unary | atom
//! atom     := "true" | "false" | path | "(" formula ")" [pathtail]
//! path     := step ( "/" step )*
//! step     := (".." | ident) ( "[" formula "]" )*
//! pathtail := ( "[" formula "]" | "/" step )*           -- resumes a path
//! ```
//!
//! A parenthesised group followed by `[` or `/` is re-interpreted as a
//! parenthesised *path* (the group must then be a pure path expression),
//! so `(a/b)[c]` and `(a/b)/c` parse as the paper's `P[F]` / `P/P`.
//!
//! Identifiers may contain ASCII alphanumerics and `_ ' - +` (primes and
//! signs appear in the paper's own labels, e.g. `d'` and `init(q,0,+)`
//! which we render as `init_q_0_+`).

use super::{Formula, PathExpr};
use crate::error::{CoreError, Result};

pub fn parse(text: &str) -> Result<Formula> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let f = p.formula()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(f)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> CoreError {
        CoreError::Parse {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    /// Consume `tok` if present at the cursor (after whitespace).
    fn eat(&mut self, tok: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(tok.as_bytes()) {
            // Word tokens must not run into an identifier: `or` vs `order`.
            let is_word = tok.bytes().all(|b| b.is_ascii_alphabetic());
            if is_word {
                let after = self.pos + tok.len();
                if after < self.bytes.len() && crate::schema::is_label_byte(self.bytes[after]) {
                    return false;
                }
            }
            self.pos += tok.len();
            true
        } else {
            false
        }
    }

    fn eat_any(&mut self, toks: &[&str]) -> bool {
        toks.iter().any(|t| self.eat(t))
    }

    fn formula(&mut self) -> Result<Formula> {
        let lhs = self.or_expr()?;
        if self.eat_any(&["<->", "\u{2194}", "iff"]) {
            let rhs = self.or_expr()?;
            return Ok(lhs.iff(rhs));
        }
        Ok(lhs)
    }

    fn or_expr(&mut self) -> Result<Formula> {
        let mut f = self.and_expr()?;
        while self.eat_any(&["||", "|", "or", "\u{2228}"]) {
            let rhs = self.and_expr()?;
            f = f.or(rhs);
        }
        Ok(f)
    }

    fn and_expr(&mut self) -> Result<Formula> {
        let mut f = self.unary()?;
        while self.eat_any(&["&&", "&", "and", "\u{2227}"]) {
            let rhs = self.unary()?;
            f = f.and(rhs);
        }
        Ok(f)
    }

    fn unary(&mut self) -> Result<Formula> {
        if self.eat_any(&["!", "not", "\u{00ac}"]) {
            return Ok(self.unary()?.not());
        }
        self.atom()
    }

    fn atom(&mut self) -> Result<Formula> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let inner = self.formula()?;
                if !self.eat(")") {
                    return Err(self.err("expected `)`"));
                }
                // `(p)[f]` / `(p)/q`: resume as a path expression.
                if matches!(self.peek(), Some(b'[') | Some(b'/')) {
                    let Formula::Path(p) = inner else {
                        return Err(self.err(
                            "parenthesised group continued as a path, \
                             but it is not a path expression",
                        ));
                    };
                    let p = self.path_tail(p)?;
                    return Ok(Formula::Path(p));
                }
                Ok(inner)
            }
            Some(_) => {
                if self.eat("true") {
                    return Ok(Formula::True);
                }
                if self.eat("false") {
                    return Ok(Formula::False);
                }
                let p = self.path()?;
                Ok(Formula::Path(p))
            }
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn path(&mut self) -> Result<PathExpr> {
        let first = self.step()?;
        self.path_tail(first)
    }

    /// Continue a path: apply any number of `/step` extensions.
    fn path_tail(&mut self, mut p: PathExpr) -> Result<PathExpr> {
        loop {
            // Filters directly on a parenthesised path land here too.
            while self.peek() == Some(b'[') {
                self.pos += 1;
                let f = self.formula()?;
                if !self.eat("]") {
                    return Err(self.err("expected `]`"));
                }
                p = PathExpr::Filter(Box::new(p), Box::new(f));
            }
            if self.peek() == Some(b'/') {
                self.pos += 1;
                let s = self.step()?;
                p = PathExpr::Seq(Box::new(p), Box::new(s));
            } else {
                return Ok(p);
            }
        }
    }

    fn step(&mut self) -> Result<PathExpr> {
        self.skip_ws();
        let mut base = if self.eat("..") {
            PathExpr::Parent
        } else if self.peek() == Some(b'(') {
            self.pos += 1;
            let inner = self.formula()?;
            if !self.eat(")") {
                return Err(self.err("expected `)`"));
            }
            let Formula::Path(p) = inner else {
                return Err(self.err("expected a path expression inside `(…)` step"));
            };
            p
        } else {
            let label = self.ident()?;
            PathExpr::Label(label)
        };
        while self.peek() == Some(b'[') {
            self.pos += 1;
            let f = self.formula()?;
            if !self.eat("]") {
                return Err(self.err("expected `]`"));
            }
            base = PathExpr::Filter(Box::new(base), Box::new(f));
        }
        Ok(base)
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && crate::schema::is_label_byte(self.bytes[self.pos]) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected an identifier"));
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("idents are ascii")
            .to_string();
        // Reserved words cannot be labels in the concrete syntax.
        if matches!(s.as_str(), "true" | "false" | "and" | "or" | "not" | "iff") {
            return Err(self.err("reserved word used as label"));
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Formula, PathExpr};

    fn p(s: &str) -> Formula {
        Formula::parse(s).unwrap_or_else(|e| panic!("parse `{s}`: {e}"))
    }

    #[test]
    fn atoms() {
        assert_eq!(p("a"), Formula::label("a"));
        assert_eq!(p("true"), Formula::True);
        assert_eq!(p("false"), Formula::False);
        assert_eq!(p(".."), Formula::Path(PathExpr::Parent));
    }

    #[test]
    fn precedence() {
        // ¬ binds tighter than ∧ binds tighter than ∨.
        assert_eq!(p("!a & b | c"), p("((!a) & b) | c"));
        assert_eq!(p("a | b & c"), p("a | (b & c)"));
    }

    #[test]
    fn operator_spellings() {
        assert_eq!(p("a & b"), p("a and b"));
        assert_eq!(p("a & b"), p("a && b"));
        assert_eq!(p("a & b"), p("a ∧ b"));
        assert_eq!(p("a | b"), p("a or b"));
        assert_eq!(p("a | b"), p("a ∨ b"));
        assert_eq!(p("!a"), p("not a"));
        assert_eq!(p("!a"), p("¬a"));
    }

    #[test]
    fn word_ops_do_not_eat_idents() {
        // `order` is a label, not `or` + `der`.
        assert_eq!(p("order"), Formula::label("order"));
        assert_eq!(p("nota"), Formula::label("nota"));
        assert!(Formula::parse("a or").is_err());
    }

    #[test]
    fn paths() {
        assert_eq!(p("a/p/b").to_string(), "a/p/b");
        assert_eq!(p("../s").to_string(), "../s");
        assert_eq!(p("../../s").to_string(), "../../s");
        assert_eq!(p("a[n]/p").to_string(), "a[n]/p");
    }

    #[test]
    fn filters() {
        let f = p("a/p[!b | !e]");
        assert_eq!(f.to_string(), "a/p[!b | !e]");
        let g = p("d[!(a & r)]");
        assert_eq!(g.to_string(), "d[!(a & r)]");
        // Stacked filters on one step.
        let h = p("a[b][c]");
        assert_eq!(h.to_string(), "a[b][c]");
    }

    #[test]
    fn parenthesised_paths() {
        let f = p("(a/b)[c]");
        assert_eq!(f.to_string(), "(a/b)[c]");
        let g = p("(a/b)/c");
        assert_eq!(g, p("a/b/c"));
        // A parenthesised non-path cannot continue as a path.
        assert!(Formula::parse("(a & b)/c").is_err());
    }

    #[test]
    fn iff_sugar() {
        assert_eq!(p("a <-> b"), Formula::label("a").iff(Formula::label("b")));
        assert_eq!(p("a iff b"), p("a <-> b"));
        // The paper's η_ij shape (Thm 5.3).
        let f = p("y1 <-> ../yk");
        assert_eq!(f.to_string(), "y1 & ../yk | !y1 & !../yk");
    }

    #[test]
    fn example_3_6_formulas() {
        // The three example formulas from Ex. 3.6 parse.
        p("!a/p[!b | !e]");
        p("!f | d[a | r]");
        p("d[!(a & r)]");
    }

    #[test]
    fn example_3_12_rules_parse() {
        for s in [
            "!a",
            "!../s & !n",
            "!../s",
            "!../../s & !b",
            "!s & a[n & d & p] & !a/p[!b | !e]",
            "s & !d",
            "!(a | r)",
            "!../f",
            "!r",
            "!../../f",
            "d[a | r] & !f",
        ] {
            p(s);
        }
    }

    #[test]
    fn errors() {
        for s in [
            "", "&", "a &", "(a", "a[", "a]", "..[", "a b", "not", "(a|b)[c]",
        ] {
            assert!(Formula::parse(s).is_err(), "should fail: {s}");
        }
    }

    #[test]
    fn primes_in_labels() {
        assert_eq!(p("d'"), Formula::label("d'"));
        assert_eq!(p("c1[!d & !d']").to_string(), "c1[!d & !d']");
    }
}
