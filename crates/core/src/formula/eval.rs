//! Evaluation of formulas on instances — the semantics of Def. 3.5.
//!
//! `n ⊨ p` holds iff there exists an end node `n'` with `n —p→ n'`; the
//! evaluator therefore works with an existential continuation and
//! short-circuits as soon as a witness is found.

use super::{Formula, PathExpr};
use crate::instance::{InstNodeId, Instance};

/// Does `φ` hold at node `n` of `inst` (Def. 3.5, `n ⊨ φ`)?
pub fn holds(inst: &Instance, n: InstNodeId, f: &Formula) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Path(p) => exists(inst, n, p, &mut |_| true),
        Formula::Not(g) => !holds(inst, n, g),
        Formula::And(a, b) => holds(inst, n, a) && holds(inst, n, b),
        Formula::Or(a, b) => holds(inst, n, a) || holds(inst, n, b),
    }
}

/// Does `φ` hold at the root of `inst`? Completion formulas are evaluated
/// here ("defines when the form is complete by being true for the root
/// node", Def. 3.11).
pub fn holds_at_root(inst: &Instance, f: &Formula) -> bool {
    holds(inst, InstNodeId::ROOT, f)
}

/// All end nodes reachable from `n` along `p` (`n —p→ n'`), materialised.
///
/// Evaluation itself never materialises target sets (it short-circuits);
/// this helper exists for witness extraction and debugging. Targets may
/// repeat if reachable along several derivations.
pub fn path_targets(inst: &Instance, n: InstNodeId, p: &PathExpr) -> Vec<InstNodeId> {
    let mut out = Vec::new();
    exists(inst, n, p, &mut |m| {
        out.push(m);
        false // keep enumerating
    });
    out
}

/// Existential traversal: returns `true` iff some node `m` with
/// `n —p→ m` makes `pred(m)` return `true`.
///
/// `pred` returning `false` keeps the search going, so passing a constant
/// `false` visits every target (used by [`path_targets`]).
fn exists(
    inst: &Instance,
    n: InstNodeId,
    p: &PathExpr,
    pred: &mut dyn FnMut(InstNodeId) -> bool,
) -> bool {
    match p {
        PathExpr::Parent => match inst.parent(n) {
            Some(m) => pred(m),
            None => false,
        },
        PathExpr::Label(l) => {
            // `n —l→ n'` iff `(n, n') ∈ E` and `λ(n') = l`.
            for c in inst.children_with_label(n, l) {
                if pred(c) {
                    return true;
                }
            }
            false
        }
        PathExpr::Seq(p1, p2) => exists(inst, n, p1, &mut |m| exists(inst, m, p2, pred)),
        PathExpr::Filter(p1, f) => exists(inst, n, p1, &mut |m| holds(inst, m, f) && pred(m)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use std::sync::Arc;

    fn leave() -> Arc<Schema> {
        Arc::new(Schema::parse("a(n, d, p(b, e)), s, d(a, r(r)), f").unwrap())
    }

    fn inst(text: &str) -> Instance {
        Instance::parse(leave(), text).unwrap()
    }

    fn root_holds(i: &Instance, f: &str) -> bool {
        holds_at_root(i, &Formula::parse(f).unwrap())
    }

    #[test]
    fn atomic_label() {
        let i = inst("a(n), s");
        assert!(root_holds(&i, "a"));
        assert!(root_holds(&i, "s"));
        assert!(!root_holds(&i, "f"));
        assert!(root_holds(&i, "a/n"));
        assert!(!root_holds(&i, "a/d"));
    }

    #[test]
    fn example_3_6_all_periods_have_dates() {
        // ¬a/p[¬b ∨ ¬e]: all periods have begin and end dates.
        let complete = inst("a(n, d, p(b, e), p(b, e))");
        let missing = inst("a(n, d, p(b, e), p(b))");
        assert!(root_holds(&complete, "!a/p[!b | !e]"));
        assert!(!root_holds(&missing, "!a/p[!b | !e]"));
        // Vacuously true with no periods at all.
        assert!(root_holds(&inst("a(n)"), "!a/p[!b | !e]"));
    }

    #[test]
    fn example_3_6_final_needs_decision() {
        // ¬f ∨ d[a ∨ r]
        let f = "!f | d[a | r]";
        assert!(root_holds(&inst("a(n), s, d(a), f"), f));
        assert!(!root_holds(&inst("a(n), s, d, f"), f));
        assert!(root_holds(&inst("a(n), s, d"), f)); // no f yet
    }

    #[test]
    fn example_3_6_not_both_decisions() {
        // d[¬(a ∧ r)]: *some* decision field lacks the a∧r combination.
        // NB the paper's reading: "The application cannot be both rejected
        // and approved" — as written the formula is existential over d.
        let f = "d[!(a & r)]";
        assert!(root_holds(&inst("d(a)"), f));
        assert!(!root_holds(&inst("d(a, r)"), f));
        assert!(!root_holds(&inst("a(n)"), f)); // no d at all: no witness
    }

    #[test]
    fn parent_axis() {
        let i = inst("a(n, p(b)), s");
        let a = i.children_with_label(InstNodeId::ROOT, "a").next().unwrap();
        // From `a`: ¬../s is false because the root has an s child.
        assert!(!holds(&i, a, &Formula::parse("!../s").unwrap()));
        let p = i.children_with_label(a, "p").next().unwrap();
        assert!(holds(&i, p, &Formula::parse("../../s").unwrap()));
        // Root has no parent.
        assert!(!holds(&i, InstNodeId::ROOT, &Formula::parse("..").unwrap()));
    }

    #[test]
    fn filters_on_intermediate_steps() {
        let i = inst("a(n, p(b), p(e))");
        assert!(root_holds(&i, "a[n]/p[b]"));
        assert!(root_holds(&i, "a/p[e]"));
        assert!(!root_holds(&i, "a/p[b & e]"));
        assert!(root_holds(&i, "a[p[b] & p[e]]"));
    }

    #[test]
    fn multiplicity_is_invisible_to_formulas() {
        // Formulas are existential: they cannot count duplicate siblings.
        let one = inst("a(p(b))");
        let two = inst("a(p(b), p(b))");
        for f in ["a/p", "a/p[b]", "!a/p[!b]", "a[p]"] {
            assert_eq!(root_holds(&one, f), root_holds(&two, f), "{f}");
        }
    }

    #[test]
    fn constants() {
        let i = inst("");
        assert!(root_holds(&i, "true"));
        assert!(!root_holds(&i, "false"));
        assert!(root_holds(&i, "false | true"));
    }

    #[test]
    fn path_targets_materialises() {
        let i = inst("a(p(b), p(b), p(e))");
        let a = i.children_with_label(InstNodeId::ROOT, "a").next().unwrap();
        let targets = path_targets(&i, a, &PathExpr::Label("p".into()));
        assert_eq!(targets.len(), 3);
        let f = Formula::parse("p[b]").unwrap();
        let Formula::Path(p) = &f else { unreachable!() };
        assert_eq!(path_targets(&i, a, p).len(), 2);
    }

    #[test]
    fn empty_instance_and_unknown_labels() {
        let i = inst("");
        assert!(!root_holds(&i, "a"));
        // Labels that exist nowhere in the schema simply never match.
        assert!(!root_holds(&i, "zz"));
        assert!(root_holds(&i, "!zz"));
    }
}
