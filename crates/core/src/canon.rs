//! Symmetry reduction: canonical representatives of isomorphism classes.
//!
//! Two instances of the same schema are *isomorphic* when one is obtained
//! from the other by renaming node ids and permuting siblings — the
//! "iso-value renaming" symmetry. Every analysis in this workspace is
//! invariant under that symmetry: formulas (Def. 3.5) only observe labels
//! and tree shape, so guards, completion formulas, and therefore
//! completability and semi-soundness verdicts cannot distinguish
//! isomorphic instances. Quotienting the state space by it is the
//! symmetry reduction the explorers perform.
//!
//! [`Instance::canonicalize`] makes the quotient *constructive*: it
//! returns
//!
//! * a **canonical representative** — the instance rebuilt with children
//!   in canonical (sorted-encoding) order and densely renumbered ids, so
//!   two instances are isomorphic iff their canonical forms are
//!   *identical* (same `to_text`, same node numbering);
//! * a **renaming witness** — the node-id map from the original instance
//!   onto the canonical one, i.e. the isomorphism itself; and
//! * the stable 64-bit **canonical fingerprint** shared by every member
//!   of the class (the [`CanonKey`](crate::CanonKey) fingerprint).
//!
//! The fingerprint is what the solver's `StateStore` and `VerdictCache`
//! key on; the witness is what lets callers transport node-indexed data
//! (selections, annotations) across the quotient.

use crate::instance::{InstNodeId, Instance};
use std::fmt;

/// The result of [`Instance::canonicalize`]: canonical representative,
/// renaming witness, and class fingerprint.
#[derive(Debug, Clone)]
pub struct Canonicalized {
    /// The canonical representative of the isomorphism class: children in
    /// canonical order, node ids dense in canonical pre-order (no
    /// tombstones). Canonicalizing it again is the identity on `to_text`
    /// and on node numbering.
    pub instance: Instance,
    /// The isomorphism witness: `renaming[original_slot]` is the canonical
    /// node id of the original node, `None` for dead (tomb-stoned) slots.
    pub renaming: Vec<Option<InstNodeId>>,
    /// The 64-bit canonical fingerprint of the class — equal for two
    /// instances of the same schema iff they are isomorphic (modulo the
    /// collision-checked caveat of [`crate::intern`]); identical to
    /// `self.canon_key().fingerprint()`.
    pub fingerprint: u64,
}

impl Canonicalized {
    /// Map an original node id through the renaming witness.
    pub fn rename(&self, original: InstNodeId) -> Option<InstNodeId> {
        self.renaming.get(original.index()).copied().flatten()
    }
}

impl fmt::Display for Canonicalized {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} #{:016x}", self.instance.to_text(), self.fingerprint)
    }
}

impl Instance {
    /// Quotient this instance by iso-value renaming: return the canonical
    /// representative of its isomorphism class, the renaming witness onto
    /// it, and the class fingerprint. See the module docs.
    ///
    /// ```
    /// # use idar_core::{Instance, Schema};
    /// # use std::sync::Arc;
    /// let schema = Arc::new(Schema::parse("a(p(b, e)), s").unwrap());
    /// let i1 = Instance::parse(schema.clone(), "s, a(p(e), p(b))").unwrap();
    /// let i2 = Instance::parse(schema, "a(p(b), p(e)), s").unwrap();
    /// let c1 = i1.canonicalize();
    /// let c2 = i2.canonicalize();
    /// // Isomorphic instances canonicalize to the *identical* form.
    /// assert_eq!(c1.instance.to_text(), c2.instance.to_text());
    /// assert_eq!(c1.fingerprint, c2.fingerprint);
    /// // The witness maps original nodes onto canonical ones.
    /// for n in i1.live_nodes() {
    ///     let m = c1.rename(n).unwrap();
    ///     assert_eq!(i1.label(n), c1.instance.label(m));
    /// }
    /// ```
    pub fn canonicalize(&self) -> Canonicalized {
        let mut renaming: Vec<Option<InstNodeId>> = vec![None; self.slot_count()];
        let mut out = Instance::empty(self.schema().clone());
        renaming[InstNodeId::ROOT.index()] = Some(InstNodeId::ROOT);
        rebuild(
            self,
            InstNodeId::ROOT,
            InstNodeId::ROOT,
            &mut out,
            &mut renaming,
        );
        let fingerprint = out.canon_key().fingerprint();
        debug_assert_eq!(
            fingerprint,
            self.canon_key().fingerprint(),
            "canonical representative must stay in the class"
        );
        Canonicalized {
            instance: out,
            renaming,
            fingerprint,
        }
    }
}

/// Copy the children of `src_node` under `dst_node` in canonical order
/// (sorted by canonical subtree encoding, ties broken by original id for
/// determinism), recursing depth-first.
fn rebuild(
    src: &Instance,
    src_node: InstNodeId,
    dst_node: InstNodeId,
    out: &mut Instance,
    renaming: &mut [Option<InstNodeId>],
) {
    let mut kids: Vec<(Vec<u32>, InstNodeId)> = src
        .children(src_node)
        .iter()
        .map(|&c| {
            let mut enc = Vec::new();
            crate::intern::encode_node(src, c, &mut enc);
            (enc, c)
        })
        .collect();
    kids.sort_unstable();
    for (_, c) in kids {
        let nc = out
            .add_child(dst_node, src.schema_node(c))
            .expect("schema edge preserved by canonicalization");
        renaming[c.index()] = Some(nc);
        rebuild(src, c, nc, out, renaming);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::parse("a(n, d, p(b, e)), s, d(a, r(r)), f").unwrap())
    }

    #[test]
    fn canonicalize_is_a_fixpoint() {
        let i = Instance::parse(schema(), "s, a(p(e, b), n, p(b)), f").unwrap();
        let c1 = i.canonicalize();
        let c2 = c1.instance.canonicalize();
        assert_eq!(c1.instance.to_text(), c2.instance.to_text());
        assert_eq!(c1.fingerprint, c2.fingerprint);
        // On an already-canonical compact instance the renaming is the
        // identity.
        for n in c1.instance.live_nodes() {
            assert_eq!(c2.rename(n), Some(n));
        }
    }

    #[test]
    fn isomorphic_instances_canonicalize_identically() {
        let s = schema();
        let variants = [
            "a(p(b, e), n, d), s, d(r(r), a)",
            "s, a(n, d, p(e, b)), d(a, r(r))",
            "d(r(r), a), a(d, n, p(b, e)), s",
        ];
        let canons: Vec<Canonicalized> = variants
            .iter()
            .map(|t| Instance::parse(s.clone(), t).unwrap().canonicalize())
            .collect();
        for c in &canons[1..] {
            assert_eq!(c.instance.to_text(), canons[0].instance.to_text());
            assert_eq!(c.fingerprint, canons[0].fingerprint);
        }
        // Non-isomorphic instance: different fingerprint and text.
        let other = Instance::parse(s, "a(p(b)), s").unwrap().canonicalize();
        assert_ne!(other.fingerprint, canons[0].fingerprint);
        assert_ne!(other.instance.to_text(), canons[0].instance.to_text());
    }

    #[test]
    fn renaming_is_an_isomorphism() {
        let i = Instance::parse(schema(), "s, a(p(e), p(b, e), n), d(a)").unwrap();
        let c = i.canonicalize();
        assert_eq!(c.instance.live_count(), i.live_count());
        let mut seen = std::collections::HashSet::new();
        for n in i.live_nodes() {
            let m = c.rename(n).expect("live nodes are mapped");
            assert!(seen.insert(m), "witness must be injective");
            // Labels and schema nodes agree.
            assert_eq!(i.schema_node(n), c.instance.schema_node(m));
            // Parent edges are preserved.
            match (i.parent(n), c.instance.parent(m)) {
                (None, None) => {}
                (Some(p), Some(q)) => assert_eq!(c.rename(p), Some(q)),
                _ => panic!("parent structure not preserved"),
            }
        }
    }

    #[test]
    fn fingerprint_matches_canon_key() {
        for text in ["", "a", "a(n), s", "d(r(r)), f, a(p(b, e), p(b))"] {
            let i = Instance::parse(schema(), text).unwrap();
            assert_eq!(i.canonicalize().fingerprint, i.canon_key().fingerprint());
        }
    }

    #[test]
    fn dead_slots_are_unmapped() {
        let mut i = Instance::parse(schema(), "a(n), s").unwrap();
        let a = i.children_with_label(InstNodeId::ROOT, "a").next().unwrap();
        let n = i.children_with_label(a, "n").next().unwrap();
        i.remove_leaf(n).unwrap();
        let c = i.canonicalize();
        assert_eq!(c.rename(n), None);
        assert_eq!(c.instance.live_count(), c.instance.slot_count());
    }
}
