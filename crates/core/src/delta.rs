//! Varint delta codec for canonical word sequences.
//!
//! Successive BFS states differ by a single leaf update, so their
//! canonical encodings ([`crate::CanonKey`]) are near-identical word
//! sequences: one schema-node word (plus at most one `OPEN`/`CLOSE` pair)
//! inserted or removed somewhere in the middle. The out-of-core state
//! store exploits that by keeping each state's words as a compact diff
//! against its BFS parent's words, with a periodic full-word *checkpoint*
//! every K states along the parent chain so random access stays O(K)
//! (see `idar-solver`'s `spill` module).
//!
//! # Wire format
//!
//! All integers are LEB128 varints. Word values are rotated by
//! `w.wrapping_add(2)` before encoding so the two tree-delimiter
//! sentinels near `u32::MAX` (`OPEN`, `CLOSE`) — the most frequent words
//! in any encoding — become `1` and `0` and fit a single byte, while
//! schema-node ids `w` encode as `w + 2` (still one byte for schemas
//! under 126 nodes).
//!
//! * **Full record** (checkpoint): `count, word*count`.
//! * **Delta record** (vs. a base sequence): `prefix, removed, inserted,
//!   word*inserted` — keep the first `prefix` base words, drop the next
//!   `removed`, splice in the `inserted` words, keep the base's tail.
//!
//! Both decoders are exact inverses of their encoders for every word
//! sequence (round-trip proptests live in `tests/capacity_properties.rs`).

/// Append `v` to `out` as a LEB128 varint (1–5 bytes).
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a LEB128 varint from `bytes` at `*pos`, advancing `*pos`.
///
/// # Panics
/// On truncated input (the codec only reads records it wrote).
#[inline]
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> u32 {
    let mut v: u32 = 0;
    let mut shift = 0;
    loop {
        let byte = bytes[*pos];
        *pos += 1;
        v |= u32::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Rotate a word so the `OPEN`/`CLOSE` sentinels (near `u32::MAX`)
/// become tiny varints.
#[inline]
fn rot(w: u32) -> u32 {
    w.wrapping_add(2)
}

#[inline]
fn unrot(v: u32) -> u32 {
    v.wrapping_sub(2)
}

/// Encode `words` as a self-contained full record (checkpoint).
pub fn encode_full(words: &[u32], out: &mut Vec<u8>) {
    write_varint(out, words.len() as u32);
    for &w in words {
        write_varint(out, rot(w));
    }
}

/// Decode a full record, appending the words to `out`.
pub fn decode_full(bytes: &[u8], out: &mut Vec<u32>) {
    let mut pos = 0;
    let n = read_varint(bytes, &mut pos) as usize;
    out.reserve(n);
    for _ in 0..n {
        out.push(unrot(read_varint(bytes, &mut pos)));
    }
}

/// Encode `words` as a delta record against `base` (the BFS parent's
/// words): longest common prefix, longest common suffix of the rest, and
/// the replaced middle spelled out.
pub fn encode_delta(base: &[u32], words: &[u32], out: &mut Vec<u8>) {
    let max_p = base.len().min(words.len());
    let mut p = 0;
    while p < max_p && base[p] == words[p] {
        p += 1;
    }
    let max_s = max_p - p;
    let mut s = 0;
    while s < max_s && base[base.len() - 1 - s] == words[words.len() - 1 - s] {
        s += 1;
    }
    let removed = base.len() - p - s;
    let inserted = &words[p..words.len() - s];
    write_varint(out, p as u32);
    write_varint(out, removed as u32);
    write_varint(out, inserted.len() as u32);
    for &w in inserted {
        write_varint(out, rot(w));
    }
}

/// Decode a delta record against `base`, appending the reconstructed
/// words to `out`. Inverse of [`encode_delta`] for the same `base`.
pub fn decode_delta(base: &[u32], bytes: &[u8], out: &mut Vec<u32>) {
    let mut pos = 0;
    let p = read_varint(bytes, &mut pos) as usize;
    let removed = read_varint(bytes, &mut pos) as usize;
    let inserted = read_varint(bytes, &mut pos) as usize;
    out.reserve(p + inserted + base.len() - p - removed);
    out.extend_from_slice(&base[..p]);
    for _ in 0..inserted {
        out.push(unrot(read_varint(bytes, &mut pos)));
    }
    out.extend_from_slice(&base[p + removed..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPEN: u32 = u32::MAX;
    const CLOSE: u32 = u32::MAX - 1;

    fn full_rt(words: &[u32]) -> Vec<u32> {
        let mut enc = Vec::new();
        encode_full(words, &mut enc);
        let mut dec = Vec::new();
        decode_full(&enc, &mut dec);
        dec
    }

    fn delta_rt(base: &[u32], words: &[u32]) -> (Vec<u8>, Vec<u32>) {
        let mut enc = Vec::new();
        encode_delta(base, words, &mut enc);
        let mut dec = Vec::new();
        decode_delta(base, &enc, &mut dec);
        (enc, dec)
    }

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0, 1, 127, 128, 16_383, 16_384, u32::MAX - 1, u32::MAX] {
            let mut out = Vec::new();
            write_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(read_varint(&out, &mut pos), v);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn sentinels_encode_in_one_byte() {
        let mut out = Vec::new();
        encode_full(&[OPEN, CLOSE, 0, 5], &mut out);
        // 1 count byte + 4 one-byte words.
        assert_eq!(out.len(), 5);
        assert_eq!(full_rt(&[OPEN, CLOSE, 0, 5]), vec![OPEN, CLOSE, 0, 5]);
    }

    #[test]
    fn full_round_trips() {
        for words in [
            vec![],
            vec![7],
            vec![3, OPEN, 4, CLOSE, 3, OPEN, 4, 4, CLOSE],
            (0..300).collect::<Vec<u32>>(),
        ] {
            assert_eq!(full_rt(&words), words);
        }
    }

    #[test]
    fn delta_round_trips_single_insertion() {
        let base = vec![1, 2, OPEN, 3, CLOSE, 9];
        let words = vec![1, 2, OPEN, 3, 4, CLOSE, 9];
        let (enc, dec) = delta_rt(&base, &words);
        assert_eq!(dec, words);
        // prefix 4, removed 0, inserted 1: four bytes total.
        assert_eq!(enc.len(), 4);
    }

    #[test]
    fn delta_round_trips_deletion_and_replacement() {
        let base = vec![5, 6, 7, 8, 9];
        for words in [
            vec![5, 6, 8, 9],          // deletion
            vec![5, 6, 42, 8, 9],      // replacement
            vec![],                    // everything removed
            vec![5, 6, 7, 8, 9],       // identical
            vec![9, 8, 7, 6, 5],       // reversal
            vec![5, 5, 6, 7, 8, 9, 9], // grow both ends
        ] {
            let (_, dec) = delta_rt(&base, &words);
            assert_eq!(dec, words, "base {base:?} -> {words:?}");
        }
    }

    #[test]
    fn delta_from_empty_base() {
        let (_, dec) = delta_rt(&[], &[1, 2, 3]);
        assert_eq!(dec, vec![1, 2, 3]);
    }
}
