//! The fragment lattice `F(A, φ, d)` of Sec. 3.5 and the paper's Table 1.
//!
//! Fragments restrict (a) access rules to positive formulas (`A+`), (b) the
//! completion formula to a positive formula (`φ+`), and (c) the schema
//! depth to 1, a constant `k`, or unbounded. Every guarded form classifies
//! into a tightest fragment, and Table 1 assigns each fragment the
//! complexity of its completability and semi-soundness problems.

use crate::guarded::GuardedForm;
use std::fmt;

/// Positivity restriction on a formula class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// Negation-free (`A+` / `φ+`).
    Positive,
    /// Unrestricted (`A−` / `φ−`).
    Unrestricted,
}

/// Depth restriction on schemas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepthClass {
    /// Depth at most 1: only one level of nodes under the root.
    One,
    /// Depth at most the given constant `k ≥ 2`.
    K(u32),
    /// No depth restriction.
    Unbounded,
}

/// A fragment `F(A, φ, d)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fragment {
    /// Restriction on access-rule formulas.
    pub access: Polarity,
    /// Restriction on the completion formula.
    pub completion: Polarity,
    /// Restriction on schema depth.
    pub depth: DepthClass,
}

impl fmt::Display for Fragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let a = match self.access {
            Polarity::Positive => "A+",
            Polarity::Unrestricted => "A-",
        };
        let p = match self.completion {
            Polarity::Positive => "phi+",
            Polarity::Unrestricted => "phi-",
        };
        match self.depth {
            DepthClass::One => write!(f, "F({a}, {p}, 1)"),
            DepthClass::K(k) => write!(f, "F({a}, {p}, {k})"),
            DepthClass::Unbounded => write!(f, "F({a}, {p}, inf)"),
        }
    }
}

/// Classify a guarded form into its tightest fragment.
///
/// Depth is taken from the schema (a depth-0 schema counts as depth 1 —
/// the paper's `d = 1` means "at most one level under the root"). Depths
/// ≥ 2 are reported as `K(depth)`; [`DepthClass::Unbounded`] only arises
/// when talking about problem classes, never a concrete form.
pub fn classify(g: &GuardedForm) -> Fragment {
    let access = if g.rules().all_positive(g.schema()) {
        Polarity::Positive
    } else {
        Polarity::Unrestricted
    };
    let completion = if g.completion().is_positive() {
        Polarity::Positive
    } else {
        Polarity::Unrestricted
    };
    let depth = match g.schema().depth() {
        0 | 1 => DepthClass::One,
        d => DepthClass::K(d),
    };
    Fragment {
        access,
        completion,
        depth,
    }
}

/// A complexity bound as reported in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Complexity {
    /// Polynomial time.
    P,
    /// NP-complete.
    NpComplete,
    /// coNP-complete.
    ConpComplete,
    /// coNP-hard (upper bound open in the paper).
    ConpHard,
    /// `Π^P_{2k}`-hard for depth-k schemas (upper bound open).
    Pi2kHard,
    /// PSPACE-complete.
    PspaceComplete,
    /// PSPACE-hard (upper bound open).
    PspaceHard,
    /// Undecidable.
    Undecidable,
}

impl Complexity {
    /// Is the problem decidable in this cell?
    pub fn decidable(self) -> bool {
        !matches!(self, Complexity::Undecidable)
    }

    /// Does the paper leave the upper bound open (underlined in Table 1)?
    pub fn upper_bound_open(self) -> bool {
        matches!(
            self,
            Complexity::ConpHard | Complexity::Pi2kHard | Complexity::PspaceHard
        )
    }
}

impl fmt::Display for Complexity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Complexity::P => "P",
            Complexity::NpComplete => "NP-complete",
            Complexity::ConpComplete => "coNP-complete",
            Complexity::ConpHard => "coNP-hard",
            Complexity::Pi2kHard => "Pi^P_2k-hard",
            Complexity::PspaceComplete => "PSPACE-complete",
            Complexity::PspaceHard => "PSPACE-hard",
            Complexity::Undecidable => "undecidable",
        };
        write!(f, "{s}")
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// The fragment the row describes.
    pub fragment: Fragment,
    /// Complexity of completability (Def. 3.13) in this fragment.
    pub completability: Complexity,
    /// Complexity of semi-soundness (Def. 3.14) in this fragment.
    pub semisoundness: Complexity,
}

/// The complexity of completability and semi-soundness for a fragment —
/// the paper's Table 1, verbatim.
pub fn table1_row(fragment: Fragment) -> Table1Row {
    use Complexity::*;
    use DepthClass::*;
    use Polarity::*;
    let (c, s) = match (fragment.access, fragment.completion, fragment.depth) {
        (Positive, Positive, One) => (P, ConpComplete),
        (Positive, Positive, K(_)) => (P, ConpHard),
        (Positive, Positive, Unbounded) => (P, ConpHard),
        (Positive, Unrestricted, One) => (NpComplete, ConpComplete),
        // Table 1 lists semi-soundness for F(A+, φ−, 1) as Π^P_2-complete;
        // we fold Π^P_2-complete into the Pi2kHard marker at k = … no:
        // depth 1 has its own entry. See below.
        (Positive, Unrestricted, K(_)) => (NpComplete, Pi2kHard),
        (Positive, Unrestricted, Unbounded) => (PspaceHard, PspaceHard),
        (Unrestricted, Unrestricted, One) => (PspaceComplete, PspaceComplete),
        (Unrestricted, Unrestricted, K(_)) => (Undecidable, Undecidable),
        (Unrestricted, Unrestricted, Unbounded) => (Undecidable, Undecidable),
        (Unrestricted, Positive, One) => (PspaceComplete, PspaceComplete),
        (Unrestricted, Positive, K(_)) => (Undecidable, Undecidable),
        (Unrestricted, Positive, Unbounded) => (Undecidable, Undecidable),
    };
    // Depth-1 A+φ− semi-soundness is Π^P_2-*complete* in Table 1; the k ≥ 2
    // rows are Π^P_2k-hard. Both map to Pi2kHard here except the complete
    // depth-1 cell:
    let s = if fragment.access == Positive
        && fragment.completion == Unrestricted
        && fragment.depth == One
    {
        // Π^P_2-complete. We reuse the marker Pi2kHard for display purposes
        // but flag completeness via `depth == One` in callers; Table 1
        // rendering special-cases it.
        Pi2kHard
    } else {
        s
    };
    Table1Row {
        fragment,
        completability: c,
        semisoundness: s,
    }
}

/// The twelve fragments in the order Table 1 lists them.
pub fn table1_fragments() -> Vec<Fragment> {
    use DepthClass::*;
    use Polarity::*;
    let mut out = Vec::with_capacity(12);
    for (a, p) in [
        (Positive, Positive),
        (Positive, Unrestricted),
        (Unrestricted, Unrestricted),
        (Unrestricted, Positive),
    ] {
        for d in [One, K(2), Unbounded] {
            out.push(Fragment {
                access: a,
                completion: p,
                depth: d,
            });
        }
    }
    out
}

/// Render Table 1 as fixed-width text (used by the `reproduce` binary).
pub fn render_table1() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{:-^66}", " Table 1: complexity results ");
    let _ = writeln!(
        out,
        "{:<18} {:<22} {:<22}",
        "Fragment", "Completability", "Semi-Soundness"
    );
    for frag in table1_fragments() {
        let row = table1_row(frag);
        let semi = if frag.access == Polarity::Positive && frag.completion == Polarity::Unrestricted
        {
            match frag.depth {
                DepthClass::One => "Pi^P_2-complete".to_string(),
                _ => "Pi^P_2k-hard".to_string(),
            }
        } else {
            row.semisoundness.to_string()
        };
        let _ = writeln!(
            out,
            "{:<18} {:<22} {:<22}",
            frag.to_string(),
            row.completability.to_string(),
            semi
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;
    use crate::guarded::{AccessRules, Right};
    use crate::instance::Instance;
    use crate::schema::Schema;
    use std::sync::Arc;

    fn form(schema: &str, rule: &str, completion: &str) -> GuardedForm {
        let schema = Arc::new(Schema::parse(schema).unwrap());
        let mut rules = AccessRules::new(&schema);
        for e in schema.edge_ids() {
            rules.set(Right::Add, e, Formula::parse(rule).unwrap());
            rules.set(Right::Del, e, Formula::parse(rule).unwrap());
        }
        let init = Instance::empty(schema.clone());
        GuardedForm::new(schema, rules, init, Formula::parse(completion).unwrap())
    }

    #[test]
    fn classification() {
        let g = form("a, b", "true", "a & b");
        assert_eq!(
            classify(&g),
            Fragment {
                access: Polarity::Positive,
                completion: Polarity::Positive,
                depth: DepthClass::One
            }
        );
        let g = form("a(b(c))", "!a", "a");
        assert_eq!(
            classify(&g),
            Fragment {
                access: Polarity::Unrestricted,
                completion: Polarity::Positive,
                depth: DepthClass::K(3)
            }
        );
        let g = form("a", "a", "!a");
        assert_eq!(classify(&g).completion, Polarity::Unrestricted);
    }

    #[test]
    fn table1_shape() {
        let frags = table1_fragments();
        assert_eq!(frags.len(), 12);
        // Undecidable exactly for A− at depth ≥ 2 (Thm 4.1 / Sec. 4.2).
        for f in frags {
            let row = table1_row(f);
            let undecidable = f.access == Polarity::Unrestricted && f.depth != DepthClass::One;
            assert_eq!(row.completability == Complexity::Undecidable, undecidable);
            assert_eq!(row.semisoundness == Complexity::Undecidable, undecidable);
        }
    }

    #[test]
    fn positive_fragments_decidable() {
        for f in table1_fragments() {
            if f.access == Polarity::Positive {
                assert!(table1_row(f).completability.decidable());
                assert!(table1_row(f).semisoundness.decidable());
            }
        }
    }

    #[test]
    fn completability_p_iff_both_positive() {
        for f in table1_fragments() {
            let row = table1_row(f);
            let both_pos = f.access == Polarity::Positive && f.completion == Polarity::Positive;
            assert_eq!(row.completability == Complexity::P, both_pos, "{f}");
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let t = render_table1();
        assert_eq!(t.lines().count(), 14); // header x2 + 12 rows
        assert!(t.contains("undecidable"));
        assert!(t.contains("Pi^P_2-complete"));
    }

    #[test]
    fn display_formats() {
        let f = Fragment {
            access: Polarity::Positive,
            completion: Polarity::Unrestricted,
            depth: DepthClass::K(3),
        };
        assert_eq!(f.to_string(), "F(A+, phi-, 3)");
    }
}
